"""The benchmark regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _snapshot(path, means):
    path.write_text(json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }))
    return str(path)


BASE = {
    "bench_ablation_interval_tree.py::test_sweepline_reconstruction_50k": 0.010,
    "bench_ablation_interval_tree.py::test_tree_reconstruction_50k": 0.100,
    "tests/tracing::test_correlation_things": 0.020,
    "bench_fig03_throughput.py::test_fig03": 0.500,
}


def test_gate_passes_when_fast(tmp_path, capsys):
    base = _snapshot(tmp_path / "old.json", BASE)
    cur = _snapshot(
        tmp_path / "new.json", {k: v * 1.1 for k, v in BASE.items()}
    )
    assert compare_bench.main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "benchmark gate passed" in out
    # The non-matching fig03 bench is not part of the gate.
    assert "fig03" not in out


def test_gate_fails_on_regression(tmp_path, capsys):
    base = _snapshot(tmp_path / "old.json", BASE)
    regressed = dict(BASE)
    regressed[
        "bench_ablation_interval_tree.py::test_sweepline_reconstruction_50k"
    ] = 0.013  # 1.3x: beyond the 20% budget
    cur = _snapshot(tmp_path / "new.json", regressed)
    assert compare_bench.main([base, cur]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "FAILED" in captured.err


def test_gate_respects_budget_flag(tmp_path):
    base = _snapshot(tmp_path / "old.json", BASE)
    cur = _snapshot(
        tmp_path / "new.json", {k: v * 1.3 for k, v in BASE.items()}
    )
    assert compare_bench.main([base, cur]) == 1
    assert compare_bench.main([base, cur, "--max-regression", "0.50"]) == 0


def test_custom_patterns(tmp_path, capsys):
    base = _snapshot(tmp_path / "old.json", BASE)
    cur = _snapshot(
        tmp_path / "new.json", {k: v * 2.0 for k, v in BASE.items()}
    )
    # Gate only fig03: the sweep regressions are out of scope.
    assert compare_bench.main([base, cur, "--pattern", "fig03"]) == 1
    out = capsys.readouterr().out
    assert "fig03" in out and "sweepline" not in out


def test_new_benchmarks_are_ignored(tmp_path, capsys):
    # A bench only present in the current snapshot cannot be compared.
    base = _snapshot(tmp_path / "old.json", BASE)
    cur = _snapshot(
        tmp_path / "new.json",
        {**BASE, "bench_insights_engine.py::test_sweep_new_thing": 9.0},
    )
    assert compare_bench.main([base, cur]) == 0


def test_missing_gated_bench_fails(tmp_path, capsys):
    # Renaming/removing a gated bench must fail the gate, not shrink it.
    base = _snapshot(tmp_path / "old.json", BASE)
    shrunk = {
        k: v for k, v in BASE.items() if "sweepline" not in k
    }
    cur = _snapshot(tmp_path / "new.json", shrunk)
    assert compare_bench.main([base, cur]) == 1
    assert "GATED BENCH MISSING" in capsys.readouterr().out


def test_no_matches_at_all_fails(tmp_path, capsys):
    base = _snapshot(tmp_path / "old.json", {"a::b": 1.0})
    cur = _snapshot(tmp_path / "new.json", {"a::b": 5.0})
    assert compare_bench.main([base, cur]) == 1
    assert "no coverage" in capsys.readouterr().out


def test_compare_function_reports_faster():
    lines, regressions = compare_bench.compare(
        {"x::sweepline": 1.0}, {"x::sweepline": 0.5}, ["sweep"], 0.2
    )
    assert regressions == []
    assert any("faster" in line for line in lines)


@pytest.mark.parametrize("ratio,expect", [(1.19, 0), (1.21, 1)])
def test_gate_boundary(tmp_path, ratio, expect):
    means = {"bench::test_sweepline": 0.010}
    base = _snapshot(tmp_path / "old.json", means)
    cur = _snapshot(
        tmp_path / "new.json", {k: v * ratio for k, v in means.items()}
    )
    assert compare_bench.main([base, cur]) == expect
