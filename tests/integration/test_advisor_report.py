"""EXPERIMENTS.md advisor section (experiments/report.py integration)."""

from repro.experiments.report import advisor_section


def test_advisor_section_renders_markdown():
    lines = advisor_section(
        model="DeepLabv3_MobileNet_v2", batch=1, sweep=(1, 2)
    )
    text = "\n".join(lines)
    assert lines[0].startswith("## Advisor")
    assert "`repro advise` output for DeepLabv3_MobileNet_v2" in text
    assert "XSP insights: DeepLabv3_MobileNet_v2" in text
    # Fenced code block is balanced for the markdown report.
    assert text.count("```") == 2
    # The across-stack rule families made it into the report.
    for rule in ("kernel-hotspot", "batch-scaling-knee", "memory-pressure"):
        assert rule in text


def test_comparison_section_renders_markdown():
    from repro.experiments.report import comparison_section

    lines = comparison_section(
        model="DeepLabv3_MobileNet_v2", batch=1
    )
    text = "\n".join(lines)
    assert lines[0].startswith("## Differential analysis")
    assert "`repro diff` output for DeepLabv3_MobileNet_v2" in text
    assert "XSP diff: DeepLabv3_MobileNet_v2" in text
    assert "tensorflow_like (baseline) vs mxnet_like (candidate)" in text
    # Fenced code block is balanced for the markdown report.
    assert text.count("```") == 2
    assert "model-level rollups" in text
