"""EXPERIMENTS.md advisor section (experiments/report.py integration)."""

from repro.experiments.report import advisor_section


def test_advisor_section_renders_markdown():
    lines = advisor_section(
        model="DeepLabv3_MobileNet_v2", batch=1, sweep=(1, 2)
    )
    text = "\n".join(lines)
    assert lines[0].startswith("## Advisor")
    assert "`repro advise` output for DeepLabv3_MobileNet_v2" in text
    assert "XSP insights: DeepLabv3_MobileNet_v2" in text
    # Fenced code block is balanced for the markdown report.
    assert text.count("```") == 2
    # The across-stack rule families made it into the report.
    for rule in ("kernel-hotspot", "batch-scaling-knee", "memory-pressure"):
        assert rule in text
