"""Sec. IV-C system comparison integration tests (Fig. 11)."""

import pytest

from repro.core import AnalysisPipeline, XSPSession
from repro.models import get_model
from repro.workloads import throughput_curve

SYSTEMS = ["Quadro_RTX", "Tesla_V100", "Tesla_P100", "Tesla_P4", "Tesla_M60"]


@pytest.fixture(scope="module")
def per_system_curves():
    graph = get_model(7).graph
    out = {}
    for system in SYSTEMS:
        session = XSPSession(system, "tensorflow_like")
        out[system] = throughput_curve(session, graph, [1, 32, 256], runs=1)
    return out


def test_v100_wins_at_large_batch(per_system_curves):
    """Fig. 11: V100 leads (RTX slightly behind on memory-bound layers)."""
    tput = {s: c.throughputs[256] for s, c in per_system_curves.items()}
    assert tput["Tesla_V100"] == max(tput.values())
    assert tput["Quadro_RTX"] < tput["Tesla_V100"]
    assert tput["Quadro_RTX"] > tput["Tesla_P100"]


def test_slowest_systems_are_p4_m60(per_system_curves):
    tput = {s: c.throughputs[256] for s, c in per_system_curves.items()}
    assert tput["Tesla_M60"] == min(tput.values())
    assert tput["Tesla_P4"] < tput["Tesla_P100"]


def test_throughput_scales_differently_per_system(per_system_curves):
    """Fig. 11: performance scaling with batch differs across systems."""
    scaling = {
        s: c.throughputs[256] / c.throughputs[1]
        for s, c in per_system_curves.items()
    }
    assert scaling["Tesla_V100"] > scaling["Tesla_M60"]


def test_kernel_names_differ_across_architectures():
    """Sec. IV-C: Pascal/Maxwell invoke maxwell_scudnn_* kernels while
    Volta/Turing invoke volta_scudnn_* ones, for the same model+batch."""
    graph = get_model(7).graph
    names = {}
    for system in ("Tesla_V100", "Quadro_RTX", "Tesla_P100", "Tesla_M60"):
        profile = AnalysisPipeline(
            XSPSession(system, "tensorflow_like"), runs_per_level=1
        ).profile_model(graph, 256)
        names[system] = {k.name for k in profile.kernels}
    for volta_like in ("Tesla_V100", "Quadro_RTX"):
        assert any(n.startswith("volta_scudnn") for n in names[volta_like])
        assert not any(n.startswith("maxwell_scudnn") for n in names[volta_like])
    for pascal_like in ("Tesla_P100", "Tesla_M60"):
        assert any(n.startswith("maxwell_scudnn") for n in names[pascal_like])
        assert not any(n.startswith("volta_scudnn") for n in names[pascal_like])


def test_cgemm_dispatch_differs_by_architecture():
    """The cuDNN heuristics choose cgemm only on Volta/Turing."""
    graph = get_model(7).graph
    v100 = AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    ).profile_model(graph, 256)
    p100 = AnalysisPipeline(
        XSPSession("Tesla_P100", "tensorflow_like"), runs_per_level=1
    ).profile_model(graph, 256)
    assert any("cgemm" in k.name for k in v100.kernels)
    assert not any("cgemm" in k.name for k in p100.kernels)
