"""Campaign orchestration tests."""

import pytest

from repro.campaign import Campaign, CampaignPoint
from repro.core import ProfileStore
from repro.core.leveled import LeveledExperiment


def test_grid_expansion():
    campaign = Campaign().add_grid(
        [53, 54], [1, 2], systems=("Tesla_V100",),
        frameworks=("tensorflow_like", "mxnet_like"),
    )
    assert len(campaign.points) == 8


def test_empty_campaign_rejected():
    with pytest.raises(ValueError, match="no points"):
        Campaign().run()


def test_point_label():
    point = CampaignPoint(7, 4)
    assert point.label == "MLPerf_ResNet50_v1.5|tensorflow_like|Tesla_V100|bs4"


def test_campaign_runs_and_tables():
    campaign = Campaign().add_grid([53], [1, 2])
    result = campaign.run()
    assert len(result) == 2
    table = result.table()
    assert len(table) == 2
    assert not result.out_of_memory


def test_campaign_records_oom_instead_of_failing():
    # MLPerf SSD ResNet34 at 1200x1200 cannot fit batch 64 on an 8 GB P4.
    campaign = Campaign()
    campaign.add(CampaignPoint(46, 64, system="Tesla_P4"))
    campaign.add(CampaignPoint(53, 1, system="Tesla_P4"))
    result = campaign.run()
    assert len(result) == 1
    assert len(result.out_of_memory) == 1
    assert result.out_of_memory[0].model == 46


def test_campaign_reuses_pipelines():
    campaign = Campaign().add_grid([53], [1])
    campaign.run()
    assert len(campaign._pipelines) == 1


def test_campaign_accepts_store_path(tmp_path):
    campaign = Campaign(store=tmp_path / "cache").add_grid([53], [1])
    result = campaign.run()
    assert len(result) == 1
    assert isinstance(campaign.store, ProfileStore)
    assert len(campaign.store) == 1  # the profile was persisted


def test_warm_campaign_skips_leveled_experiments(tmp_path, monkeypatch):
    """Second run of the same grid is served entirely from the store."""
    store = ProfileStore(tmp_path / "cache")
    grid = dict(models=[53], batches=[1, 2])
    cold = Campaign(store=store).add_grid(grid["models"], grid["batches"])
    cold_result = cold.run()
    assert len(cold_result) == 2

    def forbidden_run(self, graph, batch):
        raise AssertionError(
            f"warm campaign re-ran the leveled ladder for {graph.name} "
            f"batch {batch}"
        )

    monkeypatch.setattr(LeveledExperiment, "run", forbidden_run)
    warm = Campaign(store=store).add_grid(grid["models"], grid["batches"])
    warm_result = warm.run()
    assert len(warm_result) == 2
    for point, profile in warm_result.profiles.items():
        assert profile.model_latency_ms == pytest.approx(
            cold_result.profiles[point].model_latency_ms
        )


def test_campaign_without_store_still_profiles(monkeypatch):
    # The default (no store) path is unchanged: the ladder runs.
    calls = []
    original = LeveledExperiment.run

    def counting_run(self, graph, batch):
        calls.append((graph.name, batch))
        return original(self, graph, batch)

    monkeypatch.setattr(LeveledExperiment, "run", counting_run)
    Campaign().add_grid([53], [1]).run()
    assert calls
