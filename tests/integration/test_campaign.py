"""Campaign orchestration tests."""

import pytest

from repro.campaign import Campaign, CampaignPoint


def test_grid_expansion():
    campaign = Campaign().add_grid(
        [53, 54], [1, 2], systems=("Tesla_V100",),
        frameworks=("tensorflow_like", "mxnet_like"),
    )
    assert len(campaign.points) == 8


def test_empty_campaign_rejected():
    with pytest.raises(ValueError, match="no points"):
        Campaign().run()


def test_point_label():
    point = CampaignPoint(7, 4)
    assert point.label == "MLPerf_ResNet50_v1.5|tensorflow_like|Tesla_V100|bs4"


def test_campaign_runs_and_tables():
    campaign = Campaign().add_grid([53], [1, 2])
    result = campaign.run()
    assert len(result) == 2
    table = result.table()
    assert len(table) == 2
    assert not result.out_of_memory


def test_campaign_records_oom_instead_of_failing():
    # MLPerf SSD ResNet34 at 1200x1200 cannot fit batch 64 on an 8 GB P4.
    campaign = Campaign()
    campaign.add(CampaignPoint(46, 64, system="Tesla_P4"))
    campaign.add(CampaignPoint(53, 1, system="Tesla_P4"))
    result = campaign.run()
    assert len(result) == 1
    assert len(result.out_of_memory) == 1
    assert result.out_of_memory[0].model == 46


def test_campaign_reuses_pipelines():
    campaign = Campaign().add_grid([53], [1])
    campaign.run()
    assert len(campaign._pipelines) == 1
