"""Determinism guarantees: identical runs, stable hierarchies."""

from repro.core import ProfilingConfig, XSPSession


def _span_signature(trace):
    return [
        (s.name, s.level.name, s.kind.value, s.start_ns, s.end_ns)
        for s in trace.sorted_spans()
    ]


def _hierarchy_signature(run):
    by_id = run.trace.by_id()
    out = []
    for mk in sorted(run.kernels, key=lambda m: m.correlation_id):
        layer = by_id[mk.parent_id]
        out.append((mk.name, layer.name))
    return out


def test_identical_runs_produce_identical_traces(cnn_graph):
    runs = []
    for _ in range(2):
        session = XSPSession("Tesla_V100", "tensorflow_like")
        runs.append(session.profile(cnn_graph, 8,
                                    ProfilingConfig(metrics=())))
    assert _span_signature(runs[0].trace) == _span_signature(runs[1].trace)


def test_jitter_changes_timings_not_structure(cnn_graph):
    """Different run indices jitter latencies but the reconstructed
    kernel->layer hierarchy is identical (DESIGN.md ablation)."""
    session = XSPSession("Tesla_V100", "tensorflow_like")
    runs = [
        session.profile(cnn_graph, 8,
                        ProfilingConfig(metrics=(), run_index=i))
        for i in range(3)
    ]
    signatures = {tuple(_hierarchy_signature(r)) for r in runs}
    assert len(signatures) == 1
    timings = {tuple(_span_signature(r.trace)) for r in runs}
    assert len(timings) == 3  # latencies really differ across runs


def test_serialized_and_async_agree_on_structure(cnn_graph):
    session = XSPSession("Tesla_V100", "tensorflow_like")
    async_run = session.profile(cnn_graph, 8, ProfilingConfig(metrics=()))
    serialized = session.profile(
        cnn_graph, 8, ProfilingConfig(metrics=(), serialized=True)
    )
    assert _hierarchy_signature(async_run) == _hierarchy_signature(serialized)
