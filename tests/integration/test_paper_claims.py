"""Golden-shape integration tests: the paper's qualitative claims.

These pin the reproduction to the evaluation section's findings — who
wins, by roughly what factor, where crossovers fall — without requiring
the authors' absolute numbers.
"""

import pytest

from repro.analysis import (
    convolution_latency_percentage,
    kernel_by_name_table,
    optimal_batch_size,
    top_kernels,
    top_layers,
)
from repro.core import AnalysisPipeline, XSPSession
from repro.models import get_model
from repro.workloads import throughput_curve


@pytest.fixture(scope="module")
def pipeline():
    return AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    )


@pytest.fixture(scope="module")
def resnet_profile(pipeline):
    return pipeline.profile_model(get_model(7).graph, 256)


def test_fig2_leveled_overhead_shape(resnet_profile):
    """Layer profiling adds ~150 ms at batch 256 (paper: 157 ms); GPU
    timeline capture adds a smaller overhead on top."""
    assert 100 < resnet_profile.overheads["M/L"] < 220
    assert 0 < resnet_profile.overheads["M/L/G"] < 60


def test_fig3_resnet_optimal_batch_is_256(pipeline):
    session = pipeline.session
    curve = throughput_curve(session, get_model(7).graph,
                             [1, 16, 64, 128, 256, 512], runs=1)
    # The paper reports 256; its own Table VI latencies yield 128 under
    # the stated 5%-doubling rule. Accept either side of the knee.
    assert curve.optimal_batch in (128, 256)
    # Paper scale: ~930 inputs/s at the optimum, 6.2 ms online.
    assert 700 < curve.max_throughput < 1100
    assert 5 < curve.online_latency_ms < 11


def test_table2_top_layers_are_late_3x3_convs(resnet_profile):
    """Table II: the same three late-stage convs lead (48/51/45, ordering
    within the trio differs by ~1% from the paper); Conv2D everywhere."""
    top = top_layers(resnet_profile, 5)
    names = [row["name"] for row in top]
    assert {"conv2d_45/Conv2D", "conv2d_48/Conv2D",
            "conv2d_51/Conv2D"} <= set(names[:3])
    assert all("Conv2D" in row["layer_type"] for row in top)
    assert top.rows[0]["alloc_mb"] == pytest.approx(25.7, rel=0.01)


def test_table3_top_kernels_are_conv_kernels(resnet_profile):
    """Table III: cgemm/scudnn kernels dominate."""
    top = top_kernels(resnet_profile, 5)
    for row in top:
        assert ("cgemm" in row["name"]) or ("scudnn" in row["name"])
        assert not row["memory_bound"]


def test_table4_kernel_name_aggregation(resnet_profile):
    """Table IV: scudnn 128x64 leads (~31% of model latency); Eigen
    product/sum kernels are memory-bound at ~0.25 flops/byte."""
    table = kernel_by_name_table(resnet_profile)
    leader = table.rows[0]
    assert "scudnn_128x64" in leader["name"]
    assert 20 < leader["latency_pct"] < 55
    eigen_rows = [r for r in table if "Eigen" in r["name"]]
    assert eigen_rows
    for row in eigen_rows:
        if "max" in row["name"] or "sum" in row["name"] or "product" in row["name"]:
            assert row["memory_bound"]
    product = next(r for r in table if "scalar_product_op" in r["name"])
    assert 0.1 < product["arithmetic_intensity"] < 0.6
    # ~30 unique kernel names in the paper; we are in the same regime.
    assert 10 <= len(table) <= 40


def test_relu_kernel_zero_flops_high_occupancy(resnet_profile):
    table = kernel_by_name_table(resnet_profile)
    relu = next(r for r in table if "scalar_max_op" in r["name"])
    assert relu["gflops"] == 0.0
    assert relu["occupancy_pct"] > 90  # paper: 98.39%


def test_table8_conv_percentage_bands(pipeline):
    """Table VIII: IC models 36-80% conv; SSD-style OD models < 15%."""
    resnet = pipeline.profile_model(get_model(7).graph, 32)
    assert 35 < convolution_latency_percentage(resnet) < 85
    ssd = pipeline.profile_model(get_model(44).graph, 4)
    assert convolution_latency_percentage(ssd) < 15


def test_od_models_dominated_by_where(pipeline):
    """Sec. IV-A: for SSD models the dominating layer type is Where."""
    from repro.analysis import latency_by_type

    ssd = pipeline.profile_model(get_model(44).graph, 4)
    table = latency_by_type(ssd)
    assert table.rows[0]["layer_type"] == "Where"


def test_mobilenet_memory_bound_at_optimum(pipeline):
    """Fig. 12: MobileNets (low compute) are memory-bound at their optimal
    batch sizes."""
    profile = pipeline.profile_model(get_model(18).graph, 128)
    assert profile.memory_bound


def test_resnet_stage_trend(resnet_profile):
    """Fig. 5: memory allocation concentrates in the early layers."""
    from repro.analysis import memory_stage

    assert memory_stage(resnet_profile) == "B"


def test_online_latency_ordering_follows_depth(pipeline):
    """Deeper ResNets have higher online latency (Table VIII rows 4-11)."""
    session = pipeline.session
    lat = {}
    for mid in (11, 8, 6):  # ResNet v1 50 / 101 / 152
        curve = throughput_curve(session, get_model(mid).graph, [1], runs=1)
        lat[mid] = curve.online_latency_ms
    assert lat[11] < lat[8] < lat[6]
