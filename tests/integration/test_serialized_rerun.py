"""Ambiguity detection -> serialized re-run flow (Sec. III-A)."""

from repro.core import MLG, ProfilingConfig, XSPSession
from repro.core.profilers import LayerTracer
from repro.frameworks.profiler_format import LayerRecord, tf_step_stats
from repro.tracing import (
    Level,
    Span,
    SpanKind,
    Trace,
    reconstruct_parents,
)


def test_overlapping_layer_spans_trigger_rerun_flag():
    """Synthesize an inter-op-parallel trace: two layers overlap, a kernel
    launch falls inside both -> ambiguous -> needs serialized re-run."""
    trace = Trace(trace_id=1)
    trace.add(Span("predict", 0, 10_000, Level.MODEL, span_id=1))
    trace.add(Span("branchA/conv", 100, 5_000, Level.LAYER, span_id=2,
                   parent_id=1))
    trace.add(Span("branchB/conv", 200, 6_000, Level.LAYER, span_id=3,
                   parent_id=1))
    trace.add(Span("launch", 300, 320, Level.GPU_KERNEL, span_id=4,
                   kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(trace, strict=False)
    assert result.needs_serialized_rerun
    assert result.ambiguous[0].span_id == 4


def test_serialized_trace_resolves_same_workload():
    """After serialization the same two layers no longer overlap and the
    launch resolves unambiguously."""
    trace = Trace(trace_id=2)
    trace.add(Span("predict", 0, 10_000, Level.MODEL, span_id=1))
    trace.add(Span("branchA/conv", 100, 5_000, Level.LAYER, span_id=2,
                   parent_id=1))
    trace.add(Span("branchB/conv", 5_000, 9_000, Level.LAYER, span_id=3,
                   parent_id=1))
    trace.add(Span("launch", 300, 320, Level.GPU_KERNEL, span_id=4,
                   kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(trace, strict=False)
    assert not result.needs_serialized_rerun
    assert trace.by_id()[4].parent_id == 2


def test_session_auto_serialize_flag(v100_session, cnn_graph):
    """auto_serialize is a no-op when the first run is unambiguous."""
    run = v100_session.profile(
        cnn_graph, 2, ProfilingConfig(levels=MLG, auto_serialize=True)
    )
    assert not run.was_serialized_retry


def test_layer_tracer_roundtrip_preserves_order():
    records = [
        LayerRecord(i, f"l{i}", "Relu", (1, 2), i * 100, i * 100 + 50, 8)
        for i in range(1, 6)
    ]
    spans = LayerTracer().convert(tf_step_stats(records), "tensorflow_like", 1)
    assert [s.tags["layer_index"] for s in spans] == [1, 2, 3, 4, 5]
