"""End-to-end parallel-events ambiguity -> serialized re-run.

The paper: "It is possible that there are parallel events where it may be
ambiguous to determine a span's parent. In those cases, XSP requires
another profiling run where the parallel events are serialized."

This test builds a framework whose executor runs two independent branches
on concurrent executor threads (overlapping layer intervals, kernels on
two streams).  Profiled asynchronously, kernel parentage is ambiguous;
XSPSession then automatically re-runs with CUDA_LAUNCH_BLOCKING=1, where
the branches serialize and every kernel resolves to a unique layer.
"""

from __future__ import annotations

import pytest

from repro.core import MLG, ProfilingConfig, XSPSession
from repro.core.session import FRAMEWORKS
from repro.frameworks import Graph
from repro.frameworks.base import PredictionResult
from repro.frameworks.profiler_format import LayerRecord
from repro.frameworks.tensorflow_like import TFSim
from repro.sim import eigen


class InterOpParallelTFSim(TFSim):
    """TFSim with a 2-thread inter-op executor for branch layers.

    Only models shaped as Input -> [branchA, branchB] -> Concat are
    supported; the two branches execute with overlapping host intervals
    (each on its own CUDA stream) unless CUDA_LAUNCH_BLOCKING serializes
    them.
    """

    def predict(self, model, batch, options=None):
        rt = self.runtime
        clock = rt.clock
        profiling = self._profiling_active(options)
        shapes = model.shapes(batch)
        start_ns = clock.now()
        serialized = rt.launch_blocking

        branches = [l for l in model.plan if l.op == "Relu"]
        assert len(branches) == 2, "test model must have 2 branch layers"

        launches = []
        bounds = []  # serialized per-layer (start, end)
        for thread, layer in enumerate(branches):
            layer_start = clock.now()
            out = shapes[layer.source]
            launches.append(rt.launch_kernel(
                eigen.max_kernel(out.elems).with_tags(
                    layer_index=layer.index, layer_name=layer.name
                ),
                stream_id=thread + 1,
            ))
            if serialized:
                rt.stream_synchronize(thread + 1)
            clock.advance_us(5.0)
            bounds.append((layer_start, clock.now()))
        rt.device_synchronize()

        la, lb = launches
        if serialized:
            # Sequential executor: clean, disjoint layer windows.
            windows = bounds
        else:
            # Two overlapping executor threads: thread A's window covers
            # both launches; thread B's starts mid-way and runs longer, so
            # the windows partially overlap (neither nested) and thread
            # B's launch falls inside both — genuinely ambiguous.
            windows = [
                (la.api_start_ns - 2_000, lb.api_end_ns + 2_000),
                (la.api_end_ns + 500, lb.api_end_ns + 6_000),
            ]
        records = []
        for layer, (w_start, w_end) in zip(branches, windows):
            out = shapes[layer.source]
            records.append(LayerRecord(
                index=layer.index, name=layer.name, layer_type="Relu",
                shape=out.dims, start_ns=w_start, end_ns=w_end,
                alloc_bytes=out.nbytes,
            ))
        clock.advance_us(10.0)
        return PredictionResult(
            batch=batch, start_ns=start_ns, end_ns=clock.now(),
            output_shapes={},
            native_profile=self.serialize_profile(records) if profiling
            else None,
        )


@pytest.fixture()
def branch_graph():
    g = Graph("two_branches")
    g.add_op("input", "Input", shape=(8, 16, 16))
    g.add_op("branch_a", "Relu", ["input"])
    g.add_op("branch_b", "Relu", ["input"])
    g.add_op("merge", "Concat", ["branch_a", "branch_b"])
    g.validate()
    return g


@pytest.fixture()
def parallel_session(branch_graph):
    FRAMEWORKS["interop_parallel"] = InterOpParallelTFSim
    yield XSPSession("Tesla_V100", "interop_parallel")
    del FRAMEWORKS["interop_parallel"]


def test_async_run_is_ambiguous_then_serialized(parallel_session, branch_graph):
    run = parallel_session.profile(
        branch_graph, 4, ProfilingConfig(levels=MLG, metrics=())
    )
    # The session detected ambiguity and transparently re-ran serialized.
    assert run.was_serialized_retry
    assert run.config.serialized
    assert not run.correlation.needs_serialized_rerun
    # After serialization every kernel resolves to exactly one layer.
    by_layer = run.kernels_by_layer()
    assert -1 not in by_layer
    assert sorted(len(ks) for ks in by_layer.values()) == [1, 1]
    names = {run.trace.by_id()[mk.launch.parent_id].name
             for mk in run.kernels}
    assert names == {"branch_a/Relu", "branch_b/Relu"}


def test_ambiguity_visible_without_auto_serialize(parallel_session,
                                                  branch_graph):
    run = parallel_session.profile(
        branch_graph, 4,
        ProfilingConfig(levels=MLG, metrics=(), auto_serialize=False),
    )
    assert run.correlation.needs_serialized_rerun
    assert not run.was_serialized_retry
