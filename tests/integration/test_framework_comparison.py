"""Sec. IV-B framework comparison integration tests."""

import pytest

from repro.core import AnalysisPipeline, XSPSession
from repro.models import get_model
from repro.workloads import throughput_curve


@pytest.fixture(scope="module")
def sessions():
    return (
        XSPSession("Tesla_V100", "tensorflow_like"),
        XSPSession("Tesla_V100", "mxnet_like"),
    )


def test_mxnet_resnets_slower_online(sessions):
    """Table X: MXNet ResNets have higher batch-1 latency (1.3-1.8x)."""
    tf, mx = sessions
    graph = get_model(11).graph
    tf_online = throughput_curve(tf, graph, [1], runs=1).online_latency_ms
    mx_online = throughput_curve(mx, graph, [1], runs=1).online_latency_ms
    assert 1.1 < mx_online / tf_online < 2.0


def test_mxnet_resnets_comparable_max_throughput(sessions):
    """Table X: at the optimal batch, MXNet ResNets match TF (0.9-1.1x)."""
    tf, mx = sessions
    graph = get_model(11).graph
    tf_max = throughput_curve(tf, graph, [128, 256], runs=1).max_throughput
    mx_max = throughput_curve(mx, graph, [128, 256], runs=1).max_throughput
    assert 0.85 < mx_max / tf_max < 1.15


def test_mxnet_mobilenets_higher_max_throughput(sessions):
    """Table X: MXNet MobileNets reach 35-74% more throughput."""
    tf, mx = sessions
    graph = get_model(18).graph
    tf_max = throughput_curve(tf, graph, [64, 128, 256], runs=1).max_throughput
    mx_max = throughput_curve(mx, graph, [64, 128, 256], runs=1).max_throughput
    assert 1.2 < mx_max / tf_max < 1.9


def test_root_cause_depthwise_traffic(sessions):
    """The MobileNet gap traces to depthwise kernel DRAM traffic."""
    tf, mx = sessions
    graph = get_model(18).graph
    tf_profile = AnalysisPipeline(tf, runs_per_level=1).profile_model(graph, 128)
    mx_profile = AnalysisPipeline(mx, runs_per_level=1).profile_model(graph, 128)
    def dw_traffic(profile):
        return sum(
            k.dram_bytes for k in profile.kernels
            if "Depthwise" in k.name or "depthwise" in k.name
        )
    assert dw_traffic(tf_profile) > 2 * dw_traffic(mx_profile)


def test_mxnet_fewer_executed_layers(sessions):
    tf, mx = sessions
    graph = get_model(11).graph
    tf_profile = AnalysisPipeline(tf, runs_per_level=1).profile_model(graph, 8)
    mx_profile = AnalysisPipeline(mx, runs_per_level=1).profile_model(graph, 8)
    assert len(mx_profile.layers) < len(tf_profile.layers)
    tf_types = {l.layer_type for l in tf_profile.layers}
    mx_types = {l.layer_type for l in mx_profile.layers}
    assert "Mul" in tf_types and "BatchNorm" not in tf_types
    assert "BatchNorm" in mx_types and "Mul" not in mx_types
