"""Experiment measurement-context tests."""

from repro.experiments import context


def test_context_caches_profiles():
    a = context.model_profile(53, 1)
    b = context.model_profile(53, 1)
    assert a is b


def test_clear_drops_caches():
    a = context.model_profile(53, 1)
    context.clear()
    b = context.model_profile(53, 1)
    assert a is not b
    # Determinism: the recomputed profile is numerically identical.
    assert a.model_latency_ms == b.model_latency_ms
    assert len(a.layers) == len(b.layers)


def test_sessions_keyed_by_system_and_framework():
    assert context.session("Tesla_V100") is context.session("Tesla_V100")
    assert context.session("Tesla_V100") is not context.session("Tesla_P4")
    assert context.session("Tesla_V100", "mxnet_like") is not \
        context.session("Tesla_V100", "tensorflow_like")
