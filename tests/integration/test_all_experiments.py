"""Full experiment suite guard: the EXPERIMENTS.md regression test.

Runs all 21 experiments (shared context makes this ~20 s) and requires
every qualitative agreement check to pass — the same gate the generated
EXPERIMENTS.md reports.
"""

from repro.experiments import run_all


def test_every_experiment_check_passes():
    results = run_all()
    failures = [
        f"{r.exp_id}: {c.claim} ({c.detail})"
        for r in results.values()
        for c in r.checks
        if not c.passed
    ]
    assert not failures, "\n".join(failures)
    total = sum(len(r.checks) for r in results.values())
    assert total >= 85  # the suite currently carries 91 checks
