"""`repro diff` CLI: coordinate/file sides, JSON output, the CI gate."""

import json

from repro.cli import main

SIDE = "model=53,batch=1"
SLOWER = "model=53,batch=1,framework=mxnet_like"


def test_diff_coordinates_text_output(capsys):
    assert main(["diff", SIDE, SLOWER]) == 0
    out = capsys.readouterr().out
    assert "XSP diff: DeepLabv3_MobileNet_v2" in out
    assert "model-level rollups" in out
    assert "findings" in out


def test_self_diff_exits_zero_even_with_tight_gate(capsys):
    assert main(["diff", SIDE, SIDE, "--max-regression", "0.0"]) == 0
    out = capsys.readouterr().out
    assert "1.00x" in out


def test_gate_trips_on_regression(capsys):
    # MXNet is measurably slower online at batch 1 on this model.
    assert main(["diff", SIDE, SLOWER, "--max-regression", "0.01"]) == 1
    err = capsys.readouterr().err
    assert "FAILED" in err and "gate" in err


def test_gate_does_not_trip_when_loose(capsys):
    assert main(["diff", SIDE, SLOWER, "--max-regression", "5.0"]) == 0


def test_json_output_machine_checkable(capsys):
    assert main(["diff", SIDE, SLOWER, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["baseline"]["framework"] == "tensorflow_like"
    assert doc["candidate"]["framework"] == "mxnet_like"
    assert doc["regression_fraction"] > 0
    assert doc["layers"]
    for finding in doc["findings"]:
        assert 0.0 <= finding["severity"] <= 1.0
        assert finding["baseline_evidence"] is not None


def test_min_severity_filters_findings(capsys):
    assert main(["diff", SIDE, SLOWER, "--json"]) == 0
    everything = json.loads(capsys.readouterr().out)
    assert main(["diff", SIDE, SLOWER, "--json",
                 "--min-severity", "0.99"]) == 0
    filtered = json.loads(capsys.readouterr().out)
    assert len(filtered["findings"]) < len(everything["findings"])


def test_store_entries_by_coordinates_round_trip(tmp_path, capsys):
    """Coordinates fill the store cold, then diff warm from disk."""
    cache = str(tmp_path / "cache")
    argv = ["diff", SIDE, "model=53,batch=2", "--cache-dir", cache]
    assert main(argv) == 0
    capsys.readouterr()
    # Warm re-run: served from the two store entries written above.
    from repro.core import ProfileStore

    assert len(ProfileStore(cache)) == 2
    assert main(argv) == 0
    assert "XSP diff" in capsys.readouterr().out


def test_diff_two_trace_files(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    for path, batch in ((a, "1"), (b, "2")):
        assert main(["trace", "--model", "53", "--batch", batch,
                     "--output", str(path)]) == 0
    capsys.readouterr()
    assert main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "XSP diff" in out and "batch 1" in out and "batch 2" in out


def test_mixed_sides_file_vs_coordinates(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["profile", "--model", "53", "--batch", "1", "--runs", "1",
                 "--cache-dir", cache]) == 0
    capsys.readouterr()
    from repro.core import ProfileStore

    entry = next(iter(ProfileStore(cache).entries()))
    assert main(["diff", str(entry), SIDE]) == 0
    assert "1.00x" in capsys.readouterr().out  # same coordinates: no change


def test_bad_side_is_usage_error(capsys):
    assert main(["diff", SIDE, "not-a-file-or-coords"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_coordinate_field_is_usage_error(capsys):
    assert main(["diff", SIDE, "model=53,bogus=1"]) == 2
    assert "bad coordinate" in capsys.readouterr().err


def test_coordinates_need_model(capsys):
    assert main(["diff", SIDE, "batch=4"]) == 2
    assert "model=" in capsys.readouterr().err


def test_json_output_is_strict_json_even_with_one_sided_layers(capsys):
    """Regression: Delta ratios of added layers/kernels are infinite;
    the --json document must stay strict-JSON (no `Infinity` tokens)."""
    # TF vs MXNet has added/removed layers and kernels on both sides.
    assert main(["diff", SIDE, SLOWER, "--json"]) == 0
    out = capsys.readouterr().out
    assert "Infinity" not in out and "NaN" not in out
    json.loads(out, parse_constant=lambda c: (_ for _ in ()).throw(
        AssertionError(f"non-strict JSON constant {c!r} in --json output")
    ))
