"""Experiment-suite machinery tests (registry, results, cheap runners)."""

import pytest

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.result import Check, ExperimentResult


def test_registry_covers_every_paper_artifact():
    figures = {f"fig{i:02d}" for i in range(2, 13)}
    tables = {f"table{i:02d}" for i in range(1, 11)}
    assert set(EXPERIMENTS) == figures | tables


def test_run_all_rejects_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_all(["fig99"])


def test_result_check_and_render():
    result = ExperimentResult("X", "demo", paper={"v": 1},
                              measured={"v": 1.5})
    result.check("matches", True, "ok")
    result.check("fails", False)
    assert not result.all_passed
    assert result.n_passed == 1
    text = result.render()
    assert "[OK ]" in text and "[DEV]" in text
    assert "paper:" in text and "measured:" in text


def test_check_render():
    assert "[OK ]" in Check("c", True).render()
    assert "(why)" in Check("c", False, "why").render()


def test_cheap_experiments_pass():
    for key in ("table01", "table07"):
        result = EXPERIMENTS[key]()
        assert result.all_passed, f"{key}: {[c.claim for c in result.checks if not c.passed]}"


def test_table02_experiment_passes():
    result = EXPERIMENTS["table02"]()
    assert result.all_passed
    assert result.artifact


def test_fig10_crossover_experiment_passes():
    result = EXPERIMENTS["fig10"]()
    assert result.all_passed
    assert result.measured["memory_bound_batches"] == [16, 32]
