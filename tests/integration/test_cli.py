"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_list_models(capsys):
    assert main(["list-models", "--task", "SR"]) == 0
    out = capsys.readouterr().out
    assert "SRGAN" in out


def test_sweep(capsys):
    assert main(["sweep", "--model", "7", "--batches", "1,8"]) == 0
    out = capsys.readouterr().out
    assert "optimal batch size" in out


def test_profile_small_model(capsys):
    assert main(["profile", "--model", "53", "--batch", "1",
                 "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "A2" in out and "A10" in out


def test_trace_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--output", str(out_path)]) == 0
    from repro.tracing.export import load_trace

    trace = load_trace(str(out_path))
    assert len(trace) > 10


def test_trace_chrome_format(tmp_path):
    out_path = tmp_path / "chrome.json"
    assert main(["trace", "--model", "53", "--batch", "1", "--chrome",
                 "--output", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]


def test_trace_library_level(tmp_path):
    out_path = tmp_path / "lib.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--library-level", "--output", str(out_path)]) == 0
    from repro.tracing import Level
    from repro.tracing.export import load_trace

    trace = load_trace(str(out_path))
    assert trace.at_level(Level.LIBRARY)


def test_experiments_single(capsys):
    assert main(["experiments", "--only", "table07"]) == 0
    out = capsys.readouterr().out
    assert "0 deviations" in out


def test_unknown_model_errors():
    with pytest.raises(KeyError):
        main(["sweep", "--model", "999", "--batches", "1"])


# -- every subcommand smoke-tested through main(argv) ------------------------


def test_smoke_every_subcommand(tmp_path, capsys):
    """Each subcommand exits 0 and prints something."""
    trace_out = tmp_path / "t.json"
    invocations = [
        ["list-models"],
        ["profile", "--model", "53", "--batch", "1", "--runs", "1"],
        ["sweep", "--model", "53", "--batches", "1,2"],
        ["experiments", "--only", "table07"],
        ["trace", "--model", "53", "--batch", "1",
         "--output", str(trace_out)],
        ["trace", "--model", "53", "--batch", "1", "--stats"],
        ["advise", "--model", "53", "--batch", "1", "--sweep", "1,2"],
    ]
    for argv in invocations:
        assert main(argv) == 0, f"{argv} failed"
        out = capsys.readouterr().out
        assert out.strip(), f"{argv} printed nothing"


def test_advise_text_output(capsys):
    assert main(["advise", "--model", "53", "--batch", "1",
                 "--sweep", "1,2"]) == 0
    out = capsys.readouterr().out
    assert "XSP insights: DeepLabv3_MobileNet_v2" in out
    # At least 8 distinct rules appear in the output.
    rules = {"gpu-idle-bubbles", "kernel-hotspot", "library-kernel-mix",
             "low-occupancy-kernels", "memory-bound-layers",
             "layer-fusion-candidates", "host-gpu-imbalance",
             "batch-scaling-knee", "memory-pressure"}
    assert sum(rule in out for rule in rules) >= 8


def test_advise_json_output(capsys):
    import json as jsonlib

    assert main(["advise", "--model", "53", "--batch", "1",
                 "--sweep", "1,2", "--json"]) == 0
    data = jsonlib.loads(capsys.readouterr().out)
    assert data["model"] == "DeepLabv3_MobileNet_v2"
    assert len({i["rule"] for i in data["insights"]}) >= 8
    for insight in data["insights"]:
        assert 0.0 <= insight["severity"] <= 1.0
        assert insight["evidence"]


def test_advise_json_respects_min_severity(capsys):
    import json as jsonlib

    argv = ["advise", "--model", "53", "--batch", "1", "--sweep", "none"]
    assert main(argv + ["--json"]) == 0
    everything = jsonlib.loads(capsys.readouterr().out)
    assert main(argv + ["--json", "--min-severity", "0.5"]) == 0
    filtered = jsonlib.loads(capsys.readouterr().out)
    assert len(filtered["insights"]) < len(everything["insights"])
    assert all(i["severity"] >= 0.5 for i in filtered["insights"])


def test_advise_min_severity_filters(capsys):
    assert main(["advise", "--model", "53", "--batch", "1", "--sweep",
                 "none", "--min-severity", "0.99"]) == 0
    out = capsys.readouterr().out
    assert "below severity 0.99" in out or "no insights" in out


def test_advise_from_trace(tmp_path, capsys):
    """Satellite: insights straight from a saved `repro trace` capture —
    no re-profiling, trace rules included."""
    capture = tmp_path / "capture.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--output", str(capture)]) == 0
    capsys.readouterr()
    assert main(["advise", "--from-trace", str(capture)]) == 0
    out = capsys.readouterr().out
    assert "XSP insights: DeepLabv3_MobileNet_v2" in out
    assert "gpu-idle-bubbles" in out  # a trace-requiring rule ran
    # Sweep rules are legitimately skipped (no sweep in a capture).
    assert "batch-scaling-knee (needs sweep)" in out


def test_advise_from_trace_json(tmp_path, capsys):
    import json as jsonlib

    capture = tmp_path / "capture.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--output", str(capture)]) == 0
    capsys.readouterr()
    assert main(["advise", "--from-trace", str(capture), "--json"]) == 0
    data = jsonlib.loads(capsys.readouterr().out)
    assert data["model"] == "DeepLabv3_MobileNet_v2"
    assert {i["rule"] for i in data["insights"]}


def test_advise_from_trace_rejects_non_trace(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert main(["advise", "--from-trace", str(bogus)]) == 2
    assert "error" in capsys.readouterr().err


def test_advise_requires_model_or_trace(capsys):
    assert main(["advise", "--batch", "1"]) == 2
    assert "--model" in capsys.readouterr().err


def test_advise_live_streams_updates(capsys):
    assert main(["advise", "--model", "53", "--batch", "1", "--live",
                 "--evaluations", "1"]) == 0
    out = capsys.readouterr().out
    assert "[live]" in out
    assert "(final)" in out
    assert "XSP insights" in out  # the closing full report


def test_advise_cache_dir_roundtrip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["advise", "--model", "53", "--batch", "1", "--sweep", "none",
            "--cache-dir", cache]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0  # warm: profile served from the store
    second = capsys.readouterr().out
    assert first.splitlines()[0] == second.splitlines()[0]


def test_trace_chrome_path_only(tmp_path):
    out_path = tmp_path / "chrome.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--chrome", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"X", "M", "s", "f"} <= phases


def test_trace_both_formats(tmp_path):
    raw = tmp_path / "raw.json"
    chrome = tmp_path / "chrome.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--output", str(raw), "--chrome", str(chrome)]) == 0
    from repro.tracing.export import load_trace

    assert len(load_trace(str(raw))) > 10
    assert json.loads(chrome.read_text())["traceEvents"]


def test_trace_without_any_output_errors(capsys):
    assert main(["trace", "--model", "53", "--batch", "1"]) == 2
    assert "error" in capsys.readouterr().err
