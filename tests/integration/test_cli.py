"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_list_models(capsys):
    assert main(["list-models", "--task", "SR"]) == 0
    out = capsys.readouterr().out
    assert "SRGAN" in out


def test_sweep(capsys):
    assert main(["sweep", "--model", "7", "--batches", "1,8"]) == 0
    out = capsys.readouterr().out
    assert "optimal batch size" in out


def test_profile_small_model(capsys):
    assert main(["profile", "--model", "53", "--batch", "1",
                 "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "A2" in out and "A10" in out


def test_trace_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--output", str(out_path)]) == 0
    from repro.tracing.export import load_trace

    trace = load_trace(str(out_path))
    assert len(trace) > 10


def test_trace_chrome_format(tmp_path):
    out_path = tmp_path / "chrome.json"
    assert main(["trace", "--model", "53", "--batch", "1", "--chrome",
                 "--output", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]


def test_trace_library_level(tmp_path):
    out_path = tmp_path / "lib.json"
    assert main(["trace", "--model", "53", "--batch", "1",
                 "--library-level", "--output", str(out_path)]) == 0
    from repro.tracing import Level
    from repro.tracing.export import load_trace

    trace = load_trace(str(out_path))
    assert trace.at_level(Level.LIBRARY)


def test_experiments_single(capsys):
    assert main(["experiments", "--only", "table07"]) == 0
    out = capsys.readouterr().out
    assert "0 deviations" in out


def test_unknown_model_errors():
    with pytest.raises(KeyError):
        main(["sweep", "--model", "999", "--batches", "1"])
