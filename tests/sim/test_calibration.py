"""Calibration-table invariants."""

import math

import pytest

from repro.sim.calibration import (
    CLASS_CALIBRATION,
    DEFAULT_METRIC_PASSES,
    HOST_CALIBRATION,
    MAX_COMPUTE_EFFICIENCY,
    PROFILING_CALIBRATION,
)
from repro.sim.cudnn import _cache_curve
from repro.sim.kernels import KernelClass


def test_every_kernel_class_is_calibrated():
    assert {k.value for k in KernelClass} == set(CLASS_CALIBRATION)


def test_calibration_values_physical():
    for name, cal in CLASS_CALIBRATION.items():
        assert 0 < cal.eff_compute <= 1.0, name
        assert 0 < cal.eff_memory <= 1.0, name
        assert 0 < cal.occ_cap <= 1.0, name
        assert cal.waves_half > 0, name
        assert 0 < cal.util_floor < 1, name
        assert cal.fixed_ns > 0, name
        assert 0 <= cal.memory_overlap <= 1.0, name


def test_gemm_style_classes_overlap_memory():
    for klass in ("conv_implicit_gemm", "conv_precomp_gemm", "conv_cgemm",
                  "gemm"):
        assert CLASS_CALIBRATION[klass].memory_overlap == 1.0
    assert CLASS_CALIBRATION["elementwise_eigen"].memory_overlap == 0.0


def test_relu_class_has_near_full_occupancy():
    """Table IV: scalar_max_op at 98.4% occupancy."""
    assert CLASS_CALIBRATION["elementwise_max"].occ_cap > 0.95


def test_mshadow_faster_effective_bandwidth_than_eigen():
    """Sec. IV-B: mshadow element-wise kernels beat Eigen's bandwidth."""
    assert CLASS_CALIBRATION["elementwise_mshadow"].eff_memory > \
        CLASS_CALIBRATION["elementwise_eigen"].eff_memory


def test_max_compute_efficiency_matches_paper_best():
    """No kernel sustains more than ~12.8/15.7 of peak (Table III)."""
    assert MAX_COMPUTE_EFFICIENCY == pytest.approx(0.88, abs=0.05)


def test_host_calibration_framework_contrast():
    tf = HOST_CALIBRATION["tensorflow_like"]
    mx = HOST_CALIBRATION["mxnet_like"]
    assert mx.layer_fixed_us > tf.layer_fixed_us  # dependency engine cost


def test_metric_passes_make_dram_expensive():
    assert DEFAULT_METRIC_PASSES["dram_read_bytes"] >= 20
    assert DEFAULT_METRIC_PASSES["flop_count_sp"] == 1
    assert PROFILING_CALIBRATION.passes_for("dram_read_bytes") >= 20
    assert PROFILING_CALIBRATION.passes_for("unknown_metric") == 1


def test_cache_curve_shape():
    """Per-image precomp traffic peaks at the batch-16/32 switch region
    and decays toward large batches (Table VI)."""
    peak = max(_cache_curve(b) for b in (16, 24, 32))
    assert peak > _cache_curve(4)
    assert peak > 3 * _cache_curve(256)
    for batch in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512):
        assert _cache_curve(batch) > 0
    # monotone decay beyond the peak
    assert _cache_curve(64) > _cache_curve(128) > _cache_curve(256)


def test_profiling_calibration_matches_fig2_scale():
    """157 ms over 234 layers -> ~670 us/layer; 0.24 ms / 3 kernels."""
    assert 157e3 / 234 == pytest.approx(
        PROFILING_CALIBRATION.framework_layer_us, rel=0.05
    )
    assert PROFILING_CALIBRATION.cupti_kernel_us == pytest.approx(80, rel=0.1)
