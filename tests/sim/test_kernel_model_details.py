"""Latency-model detail tests: eff_scale, efficiency cap, size effect."""

import pytest

from repro.sim import KernelClass, KernelSpec, get_system, kernel_duration_ns
from repro.sim.calibration import MAX_COMPUTE_EFFICIENCY
from repro.sim.kernels import effective_throughput_tflops

V100 = get_system("Tesla_V100")


def big_conv(eff_scale=1.0):
    return KernelSpec(
        "volta_scudnn_128x64_relu_interior_nn_v1",
        KernelClass.CONV_PRECOMP_GEMM,
        flops=200e9, dram_read_bytes=100e6, dram_write_bytes=100e6,
        blocks=100_000, eff_scale=eff_scale,
    )


def test_eff_scale_slows_kernel_proportionally():
    base = kernel_duration_ns(big_conv(1.0), V100)
    narrow = kernel_duration_ns(big_conv(0.65), V100)
    assert narrow == pytest.approx(base / 0.65, rel=0.02)


def test_compute_efficiency_capped():
    """Even a fully-saturating grid cannot exceed the Table III maximum."""
    duration = kernel_duration_ns(big_conv(), V100)
    tflops = effective_throughput_tflops(big_conv(), duration)
    # allow the +-1% deterministic run jitter
    assert tflops <= MAX_COMPUTE_EFFICIENCY * V100.peak_tflops * 1.02


def test_memory_overlap_hides_dram_time():
    heavy_traffic = KernelSpec(
        "k", KernelClass.CONV_PRECOMP_GEMM,
        flops=1e9, dram_read_bytes=5e9, dram_write_bytes=5e9, blocks=50_000,
    )
    no_overlap = KernelSpec(
        "k", KernelClass.ELEMENTWISE_EIGEN,
        flops=1e9, dram_read_bytes=5e9, dram_write_bytes=5e9,
        blocks=50_000, threads_per_block=1024,
    )
    assert kernel_duration_ns(heavy_traffic, V100) < \
        kernel_duration_ns(no_overlap, V100)


def test_small_transfers_lose_bandwidth():
    """Two kernels with identical bytes/flop ratios: the tiny one runs at a
    lower effective bandwidth (size_eff floor)."""
    small = KernelSpec("s", KernelClass.ELEMENTWISE_EIGEN, 0.0,
                       100e3, 100e3, blocks=200, threads_per_block=1024)
    large = KernelSpec("l", KernelClass.ELEMENTWISE_EIGEN, 0.0,
                       100e6, 100e6, blocks=200_000, threads_per_block=1024)
    t_small = kernel_duration_ns(small, V100)
    t_large = kernel_duration_ns(large, V100)
    # Per byte, the small kernel is much slower.
    assert (t_small / 200e3) > 2 * (t_large / 200e6)


def test_narrow_gemm_penalty_applied_by_cudnn():
    from repro.sim.cudnn import ConvGeometry, convolution_forward_kernels

    vgg_style = ConvGeometry(batch=64, in_channels=64, in_h=224, in_w=224,
                             out_channels=64, kernel_h=3, kernel_w=3,
                             pad_h=1, pad_w=1)
    deep = ConvGeometry(batch=64, in_channels=256, in_h=14, in_w=14,
                        out_channels=256, kernel_h=3, kernel_w=3,
                        pad_h=1, pad_w=1)
    vgg_kernel = convolution_forward_kernels(vgg_style, V100)[-1]
    deep_kernel = convolution_forward_kernels(deep, V100)[-1]
    assert vgg_kernel.eff_scale < 1.0
    assert deep_kernel.eff_scale == 1.0
    # First-layer (image input) convs are exempt despite giant spatial.
    first = ConvGeometry(batch=256, in_channels=3, in_h=224, in_w=224,
                         out_channels=64, kernel_h=7, kernel_w=7,
                         stride_h=2, stride_w=2, pad_h=3, pad_w=3)
    first_kernel = convolution_forward_kernels(first, V100)[-1]
    assert first_kernel.eff_scale == 1.0
