"""cuDNN-like library tests: heuristics, naming, geometry, traffic."""

import pytest

from repro.sim import get_system
from repro.sim.cudnn import (
    ConvAlgorithm,
    ConvGeometry,
    convolution_forward_kernels,
    depthwise_forward_kernel,
    pooling_forward_kernel,
    select_convolution_algorithm,
    softmax_forward_kernel,
)

V100 = get_system("Tesla_V100")
P4 = get_system("Tesla_P4")


def geom(batch=256, cin=256, hw=14, cout=256, k=3, stride=1, groups=1):
    return ConvGeometry(
        batch=batch, in_channels=cin, in_h=hw, in_w=hw, out_channels=cout,
        kernel_h=k, kernel_w=k, stride_h=stride, stride_w=stride,
        pad_h=k // 2, pad_w=k // 2, groups=groups,
    )


def test_geometry_output_dims():
    g = geom(hw=14, k=3, stride=1)
    assert (g.out_h, g.out_w) == (14, 14)
    g2 = geom(hw=14, k=3, stride=2)
    assert (g2.out_h, g2.out_w) == (7, 7)


def test_geometry_validation():
    with pytest.raises(ValueError):
        ConvGeometry(batch=0, in_channels=3, in_h=8, in_w=8, out_channels=8,
                     kernel_h=3, kernel_w=3)
    with pytest.raises(ValueError, match="groups"):
        ConvGeometry(batch=1, in_channels=6, in_h=8, in_w=8, out_channels=8,
                     kernel_h=3, kernel_w=3, groups=4)


def test_direct_flops_formula():
    g = geom(batch=2, cin=16, hw=8, cout=32, k=3)
    expected = 2.0 * 2 * 32 * 8 * 8 * 16 * 9
    assert g.direct_flops == expected


def test_heuristic_small_batch_implicit_gemm():
    """Sec. III-D3: batch < 16 -> IMPLICIT_GEMM."""
    for batch in (1, 2, 4, 8, 15):
        assert (
            select_convolution_algorithm(geom(batch=batch), V100)
            is ConvAlgorithm.IMPLICIT_GEMM
        )


def test_heuristic_large_batch_precomp():
    for batch in (16, 32, 64):
        assert (
            select_convolution_algorithm(geom(batch=batch), V100)
            is ConvAlgorithm.IMPLICIT_PRECOMP_GEMM
        )


def test_heuristic_cgemm_for_late_3x3_on_volta():
    """conv2d_48-style layers (3x3, 512ch, 7x7 out, bs>=128) -> cgemm."""
    g = geom(batch=256, cin=512, hw=7, cout=512, k=3)
    assert select_convolution_algorithm(g, V100) is ConvAlgorithm.CGEMM
    # ... but not on Pascal (Sec. IV-C: optimized kernels are Volta+).
    assert select_convolution_algorithm(g, P4) is ConvAlgorithm.IMPLICIT_PRECOMP_GEMM


def test_heuristic_depthwise():
    g = geom(cin=64, cout=64, groups=64)
    assert select_convolution_algorithm(g, V100) is ConvAlgorithm.DEPTHWISE


def test_kernel_names_follow_architecture():
    """Sec. IV-C: volta_scudnn_* on Volta/Turing, maxwell_scudnn_* elsewhere."""
    kernels_v = convolution_forward_kernels(geom(), V100, fused_relu=True)
    kernels_p = convolution_forward_kernels(geom(), P4, fused_relu=True)
    assert any(k.name.startswith("volta_scudnn_128x") for k in kernels_v)
    assert any(k.name.startswith("maxwell_scudnn_128x") for k in kernels_p)


def test_tile_selection():
    # Very channel-heavy 1x1 reduce conv (2048 -> 512 at 7x7) -> 128x128;
    # wide shallow conv -> 128x64 (Table IV: 4 vs 34 calls in ResNet50).
    deep_small = convolution_forward_kernels(
        geom(cin=2048, cout=512, hw=7, k=1), V100)
    wide_large = convolution_forward_kernels(
        geom(cin=64, cout=64, hw=56), V100)
    assert any("128x128" in k.name for k in deep_small)
    assert any("128x64" in k.name for k in wide_large)


def test_first_conv_emits_three_kernels():
    """Fig. 1: ShuffleTensor + OffsetComp + the scudnn kernel."""
    g = ConvGeometry(batch=256, in_channels=3, in_h=224, in_w=224,
                     out_channels=64, kernel_h=7, kernel_w=7,
                     stride_h=2, stride_w=2, pad_h=3, pad_w=3)
    kernels = convolution_forward_kernels(g, V100, fused_relu=True)
    assert [k.name for k in kernels[:2]] == ["ShuffleTensor", "OffsetComp"]
    assert len(kernels) == 3


def test_cgemm_emits_transform_plus_main():
    g = geom(batch=256, cin=512, hw=7, cout=512, k=3)
    kernels = convolution_forward_kernels(g, V100)
    names = [k.name for k in kernels]
    assert "flip_filter" in names
    assert "volta_cgemm_32x32_tn" in names
    main = next(k for k in kernels if "cgemm" in k.name)
    # Table III: cgemm inflates flops ~1.31x and has very high AI.
    assert main.flops == pytest.approx(1.31 * g.direct_flops)
    assert main.arithmetic_intensity > 100


def test_algorithm_tag_attached():
    kernels = convolution_forward_kernels(geom(), V100)
    assert all("conv_algorithm" in k.tags for k in kernels)


def test_cache_curve_peaks_at_algorithm_switch():
    """Read traffic per image peaks at batch 16-32 (Table VI)."""
    from repro.sim.cudnn import _cache_curve

    assert _cache_curve(16) > _cache_curve(4)
    assert _cache_curve(32) > _cache_curve(256)
    assert _cache_curve(16) / _cache_curve(256) > 3.0


def test_depthwise_traffic_scale():
    g = geom(cin=64, cout=64, groups=64)
    lean = depthwise_forward_kernel(g)
    heavy = depthwise_forward_kernel(g, traffic_scale=3.2,
                                     name="tensorflow::DW", library="tf")
    assert heavy.dram_read_bytes > 2.5 * lean.dram_read_bytes - g.weight_bytes
    assert heavy.flops == lean.flops  # same math, different traffic


def test_pooling_and_softmax_kernels():
    pool = pooling_forward_kernel(8, 64, 16, 16, 2, in_h=32, in_w=32)
    assert pool.flops == 8 * 64 * 16 * 16 * 4
    soft = softmax_forward_kernel(8, 1001)
    assert soft.name == "cudnn::detail::softmax_fw_kernel"
    assert soft.flops == 6 * 8 * 1001
