"""Eigen/mshadow/cublas/tensorops kernel builder tests."""

import pytest

from repro.sim import cublas, eigen, get_system, mshadow, tensorops
from repro.sim.kernels import KernelClass

V100 = get_system("Tesla_V100")


def test_eigen_kernel_names_match_paper():
    """Table IV: Eigen::TensorCwiseBinaryOp<scalar_*_op> names."""
    assert "scalar_product_op" in eigen.multiply_kernel(100).name
    assert "scalar_sum_op" in eigen.add_kernel(100).name
    assert "scalar_max_op" in eigen.max_kernel(100).name


def test_relu_counts_zero_flops():
    """Table IV reports 0 flops for the ReLU max kernel."""
    assert eigen.max_kernel(10_000).flops == 0.0
    assert eigen.relu6_kernel(10_000).flops == 0.0
    assert mshadow.relu_kernel(10_000).flops == 0.0


def test_relu_uses_high_occupancy_class():
    assert eigen.max_kernel(100).klass is KernelClass.ELEMENTWISE_MAX


def test_eigen_memory_bound():
    k = eigen.multiply_kernel(1_000_000)
    assert k.arithmetic_intensity < V100.ideal_arithmetic_intensity


def test_addn_scales_with_inputs():
    two = eigen.addn_kernel(1000, n_inputs=2)
    four = eigen.addn_kernel(1000, n_inputs=4)
    assert four.dram_read_bytes == 2 * two.dram_read_bytes
    assert four.flops == 3 * two.flops / 1  # n-1 adds per element
    with pytest.raises(ValueError):
        eigen.addn_kernel(1000, n_inputs=1)


def test_elementwise_rejects_empty():
    with pytest.raises(ValueError):
        eigen.multiply_kernel(0)
    with pytest.raises(ValueError):
        mshadow.relu_kernel(0)


def test_mshadow_bn_fused_traffic_close_to_eigen_pair():
    """Sec. IV-B: TF and MXNet ResNet GPU latencies are about the same,
    so fused BN must move close to what TF's Mul+Add pair moves."""
    elems = 1_000_000
    bn = mshadow.batchnorm_inference_kernel(elems)
    pair = eigen.multiply_kernel(elems).dram_bytes + eigen.add_kernel(elems).dram_bytes
    assert 0.8 * pair <= bn.dram_bytes <= 1.1 * pair


def test_cublas_gemm_flops_and_name():
    k = cublas.sgemm_kernel(256, 1001, 2048, V100)
    assert k.flops == 2.0 * 256 * 1001 * 2048
    assert k.name.startswith("volta_sgemm_")
    p4 = cublas.sgemm_kernel(256, 1001, 2048, get_system("Tesla_P4"))
    assert p4.name.startswith("maxwell_sgemm_")
    with pytest.raises(ValueError):
        cublas.sgemm_kernel(0, 1, 1, V100)


def test_dense_layer_single_gemm():
    kernels = cublas.dense_layer_kernels(8, 2048, 1001, V100)
    assert len(kernels) == 1


def test_where_kernels_pair_and_class():
    kernels = tensorops.where_kernels(10_000)
    assert len(kernels) == 2
    assert all(k.klass is KernelClass.WHERE_OP for k in kernels)


def test_tensorops_builders():
    assert tensorops.concat_kernel(1000, 3).flops == 0
    assert tensorops.transpose_kernel(1000).dram_read_bytes == 4000
    assert tensorops.pad_kernel(1000).klass is KernelClass.MEMORY_MOVEMENT
    resize = tensorops.resize_bilinear_kernel(4000, 1000)
    assert resize.flops == 6.0 * 4000
    lrn = tensorops.lrn_kernel(1000)
    assert lrn.klass is KernelClass.REDUCTION
    mean = tensorops.mean_reduce_kernel(100_000, 100)
    assert mean.flops == 100_000
