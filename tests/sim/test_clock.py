"""VirtualClock unit tests."""

import pytest

from repro.sim import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now() == 0


def test_advance():
    c = VirtualClock()
    assert c.advance(100) == 100
    assert c.advance_us(1.5) == 1600
    assert c.advance_ms(0.001) == 2600


def test_advance_negative_rejected():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1)


def test_advance_to_only_moves_forward():
    c = VirtualClock(1000)
    assert c.advance_to(500) == 1000
    assert c.advance_to(2000) == 2000


def test_advance_rounds_fractional_ns():
    c = VirtualClock()
    c.advance(0.6)
    assert c.now() == 1
