"""Device memory pool tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DeviceMemoryPool
from repro.sim.memory import OutOfDeviceMemoryError


def test_alloc_free_accounting():
    pool = DeviceMemoryPool(capacity_bytes=1000)
    a = pool.alloc(400, tag="x")
    b = pool.alloc(500, tag="y")
    assert pool.live_bytes == 900
    assert pool.peak_bytes == 900
    pool.free(a)
    assert pool.live_bytes == 500
    pool.free(b)
    assert pool.live_bytes == 0
    assert pool.peak_bytes == 900


def test_oom():
    pool = DeviceMemoryPool(capacity_bytes=100)
    pool.alloc(80)
    with pytest.raises(OutOfDeviceMemoryError, match="exceeds device"):
        pool.alloc(21)


def test_negative_alloc_rejected():
    with pytest.raises(ValueError):
        DeviceMemoryPool(capacity_bytes=10).alloc(-1)


def test_double_free_rejected():
    pool = DeviceMemoryPool(capacity_bytes=100)
    a = pool.alloc(10)
    pool.free(a)
    with pytest.raises(KeyError):
        pool.free(a)


def test_free_all_and_log():
    pool = DeviceMemoryPool(capacity_bytes=1000)
    pool.alloc(100, tag="conv1")
    pool.alloc(200, tag="conv1")
    pool.alloc(300, tag="relu")
    pool.free_all()
    assert pool.live_bytes == 0
    assert pool.allocated_bytes_by_tag() == {"conv1": 300, "relu": 300}
    kinds = [ev.kind for ev in pool.log]
    assert kinds.count("alloc") == 3 and kinds.count("free") == 3


@settings(max_examples=60, deadline=None)
@given(sizes=st.lists(st.integers(0, 100), max_size=40))
def test_conservation_property(sizes):
    """live = sum(allocs) - sum(frees); peak >= live always."""
    pool = DeviceMemoryPool(capacity_bytes=10_000)
    live = []
    for size in sizes:
        try:
            live.append(pool.alloc(size))
        except OutOfDeviceMemoryError:
            break
        if len(live) > 3:
            pool.free(live.pop(0))
        assert pool.live_bytes == sum(a.nbytes for a in live)
        assert pool.peak_bytes >= pool.live_bytes
