"""CUDA runtime tests: launches, streams, sync, env handling."""

import pytest

from repro.sim import CudaRuntime, KernelClass, KernelSpec, VirtualClock, get_system

V100 = get_system("Tesla_V100")


def spec(flops=1e9):
    return KernelSpec("k", KernelClass.CONV_PRECOMP_GEMM, flops, 1e6, 1e6,
                      blocks=500)


def test_async_launch_does_not_block_host():
    rt = CudaRuntime(V100, VirtualClock())
    record = rt.launch_kernel(spec())
    # Host time advanced only by the API overhead, not kernel duration.
    assert rt.clock.now() == record.api_end_ns
    assert record.device_end_ns > record.api_end_ns


def test_launch_blocking_env_serializes():
    rt = CudaRuntime(V100, VirtualClock(),
                     environment={"CUDA_LAUNCH_BLOCKING": "1"})
    assert rt.launch_blocking
    record = rt.launch_kernel(spec())
    assert rt.clock.now() >= record.device_busy_until_ns


def test_correlation_ids_monotone_unique():
    rt = CudaRuntime(V100)
    ids = [rt.launch_kernel(spec()).correlation_id for _ in range(5)]
    assert ids == sorted(set(ids))


def test_stream_synchronize_advances_host():
    rt = CudaRuntime(V100, VirtualClock())
    record = rt.launch_kernel(spec())
    rt.stream_synchronize()
    assert rt.clock.now() == record.device_busy_until_ns


def test_device_synchronize_covers_all_streams():
    rt = CudaRuntime(V100, VirtualClock())
    rt.launch_kernel(spec(), stream_id=0)
    r2 = rt.launch_kernel(spec(2e9), stream_id=1)
    rt.device_synchronize()
    assert rt.clock.now() >= r2.device_busy_until_ns


def test_two_streams_can_overlap():
    rt = CudaRuntime(V100, VirtualClock())
    r1 = rt.launch_kernel(spec(), stream_id=1)
    r2 = rt.launch_kernel(spec(), stream_id=2)
    assert r2.device_start_ns < r1.device_end_ns  # concurrent execution


def test_memcpy_blocks_and_records():
    rt = CudaRuntime(V100, VirtualClock())
    record = rt.memcpy(120_000_000, kind="h2d")
    assert rt.clock.now() == record.end_ns
    assert record.end_ns - record.start_ns > 900_000  # ~1 ms at 120 GB/s
    with pytest.raises(ValueError):
        rt.memcpy(10, kind="sideways")


def test_launch_callbacks_invoked():
    rt = CudaRuntime(V100)
    seen = []
    rt.on_launch(seen.append)
    rt.launch_kernel(spec())
    assert len(seen) == 1
    assert seen[0].spec.name == "k"


def test_profiler_replay_inflates_busy_not_reported_duration():
    rt = CudaRuntime(V100, VirtualClock())
    rt.profiler_replay_passes = 10
    record = rt.launch_kernel(spec())
    clean = record.device_end_ns - record.device_start_ns
    busy = record.device_busy_until_ns - record.device_start_ns
    assert busy >= 10 * clean


def test_reset_clears_state():
    rt = CudaRuntime(V100)
    rt.launch_kernel(spec())
    rt.memcpy(100)
    rt.reset()
    assert rt.launch_records == []
    assert rt.memcpy_records == []
    assert rt.gpu_busy_ns() == 0


def test_summary_shape():
    rt = CudaRuntime(V100)
    rt.launch_kernel(spec())
    summary = rt.summary()
    assert summary["gpu"] == "Tesla_V100"
    assert summary["kernels"] == 1
