"""Kernel latency/occupancy model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    KernelClass,
    KernelSpec,
    achieved_occupancy,
    get_system,
    kernel_duration_ns,
)
from repro.sim.kernels import (
    effective_throughput_tflops,
    is_memory_bound,
    utilization,
)

V100 = get_system("Tesla_V100")
M60 = get_system("Tesla_M60")


def conv_spec(blocks=400, flops=5e9):
    return KernelSpec(
        name="volta_scudnn_128x64_relu_interior_nn_v1",
        klass=KernelClass.CONV_PRECOMP_GEMM,
        flops=flops,
        dram_read_bytes=50e6,
        dram_write_bytes=60e6,
        blocks=blocks,
    )


def eigen_spec(elems=6_000_000):
    return KernelSpec(
        name="Eigen::TensorCwiseBinaryOp<scalar_product_op>",
        klass=KernelClass.ELEMENTWISE_EIGEN,
        flops=float(elems),
        dram_read_bytes=elems * 4 * 0.36,
        dram_write_bytes=elems * 4 * 0.5,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
    )


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        KernelSpec("bad", KernelClass.GEMM, -1, 0, 0, blocks=1)
    with pytest.raises(ValueError):
        KernelSpec("bad", KernelClass.GEMM, 1, 0, 0, blocks=0)


def test_arithmetic_intensity():
    spec = conv_spec()
    assert spec.arithmetic_intensity == pytest.approx(5e9 / 110e6)
    zero = KernelSpec("z", KernelClass.POOL, 0, 0, 0, blocks=1)
    assert zero.arithmetic_intensity == 0.0


def test_duration_positive_and_deterministic():
    spec = conv_spec()
    d1 = kernel_duration_ns(spec, V100, run_index=0)
    d2 = kernel_duration_ns(spec, V100, run_index=0)
    assert d1 == d2 > 0


def test_run_index_jitter_small_but_nonzero():
    spec = conv_spec()
    durations = {kernel_duration_ns(spec, V100, run_index=i) for i in range(5)}
    assert len(durations) > 1
    assert max(durations) / min(durations) < 1.03


def test_bigger_launch_is_faster_per_flop():
    """Utilization rises with grid size (throughput saturation, Fig. 3)."""
    small = conv_spec(blocks=8, flops=1e9)
    large = conv_spec(blocks=2000, flops=250e9)
    t_small = kernel_duration_ns(small, V100) / 1e9
    t_large = kernel_duration_ns(large, V100) / 1e9
    assert 1e9 / t_small < 250e9 / t_large


def test_conv_kernel_near_peak_efficiency_when_saturated():
    """Table III: big conv kernels reach ~12.8-13 Tflops/s on V100."""
    spec = conv_spec(blocks=4000, flops=60e9)
    duration = kernel_duration_ns(spec, V100)
    tflops = effective_throughput_tflops(spec, duration)
    assert 10.0 < tflops < V100.peak_tflops


def test_eigen_kernel_is_memory_bound_and_slow():
    """Table IV: Eigen kernels ~0.25 flops/byte, ~0.1 Tflops/s."""
    spec = eigen_spec()
    assert is_memory_bound(spec, V100)
    duration = kernel_duration_ns(spec, V100)
    assert effective_throughput_tflops(spec, duration) < 0.5


def test_occupancy_class_caps():
    """Conv ~23% cap, ReLU ~98.5% (paper Tables III/IV)."""
    conv_occ = achieved_occupancy(conv_spec(blocks=5000), V100)
    assert 0.15 < conv_occ <= 0.23
    relu = KernelSpec(
        "Eigen::TensorCwiseBinaryOp<scalar_max_op>",
        KernelClass.ELEMENTWISE_MAX,
        0.0, 20e6, 20e6, blocks=8000, threads_per_block=1024,
    )
    assert achieved_occupancy(relu, V100) > 0.9


def test_occupancy_rises_with_blocks():
    occ_small = achieved_occupancy(conv_spec(blocks=4), V100)
    occ_large = achieved_occupancy(conv_spec(blocks=4000), V100)
    assert occ_small < occ_large


def test_slower_gpu_is_slower():
    spec = conv_spec(blocks=4000, flops=60e9)
    assert kernel_duration_ns(spec, M60) > kernel_duration_ns(spec, V100)


def test_memory_bound_threshold_uses_device_ai():
    # AI of 20 is compute-bound on V100 (17.44) but memory-bound on M60 (30).
    spec = KernelSpec("k", KernelClass.GEMM, 20e9, 0.5e9, 0.5e9, blocks=100)
    assert not is_memory_bound(spec, V100)
    assert is_memory_bound(spec, M60)


@settings(max_examples=60, deadline=None)
@given(
    flops=st.floats(1e6, 1e12),
    read_mb=st.floats(0.01, 5000),
    write_mb=st.floats(0.01, 5000),
    blocks=st.integers(1, 100_000),
    klass=st.sampled_from(list(KernelClass)),
)
def test_duration_always_positive_and_monotone_in_work(
    flops, read_mb, write_mb, blocks, klass
):
    spec = KernelSpec("k", klass, flops, read_mb * 1e6, write_mb * 1e6,
                      blocks=blocks)
    duration = kernel_duration_ns(spec, V100)
    assert duration >= 1
    double = KernelSpec("k", klass, flops * 2, read_mb * 2e6, write_mb * 2e6,
                        blocks=blocks)
    assert kernel_duration_ns(double, V100) >= duration * 0.98


@settings(max_examples=60, deadline=None)
@given(blocks=st.integers(1, 200_000))
def test_utilization_and_occupancy_bounded(blocks):
    spec = conv_spec(blocks=blocks)
    u = utilization(spec, V100)
    occ = achieved_occupancy(spec, V100)
    assert 0.0 < u <= 1.0
    assert 0.0 < occ <= spec.klass.calibration.occ_cap + 1e-9
