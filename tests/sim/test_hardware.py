"""Table VII hardware catalog tests."""

import pytest

from repro.sim import SYSTEMS, Architecture, get_system


def test_all_five_systems_present():
    assert sorted(SYSTEMS) == [
        "Quadro_RTX", "Tesla_M60", "Tesla_P100", "Tesla_P4", "Tesla_V100",
    ]


def test_table7_numbers_verbatim():
    v100 = get_system("Tesla_V100")
    assert v100.peak_tflops == 15.7
    assert v100.memory_bandwidth_gbps == 900.0
    rtx = get_system("Quadro_RTX")
    assert rtx.peak_tflops == 16.3
    assert rtx.memory_bandwidth_gbps == 624.0


@pytest.mark.parametrize(
    "name,expected_ai",
    [
        ("Quadro_RTX", 26.12),
        ("Tesla_V100", 17.44),
        ("Tesla_P100", 12.70),
        ("Tesla_P4", 28.65),
        ("Tesla_M60", 30.00),
    ],
)
def test_ideal_arithmetic_intensity_matches_table7(name, expected_ai):
    # Paper rounds from the same theoretic numbers; allow 2% slack
    # (the paper's P4/M60 entries show 28.34/30.12).
    ai = get_system(name).ideal_arithmetic_intensity
    assert ai == pytest.approx(expected_ai, rel=0.02)


def test_kernel_prefix_per_architecture():
    """Sec. IV-C: Volta/Turing -> volta_*, Pascal/Maxwell -> maxwell_*."""
    assert get_system("Tesla_V100").architecture.kernel_prefix == "volta"
    assert get_system("Quadro_RTX").architecture.kernel_prefix == "volta"
    assert get_system("Tesla_P100").architecture.kernel_prefix == "maxwell"
    assert get_system("Tesla_P4").architecture.kernel_prefix == "maxwell"
    assert get_system("Tesla_M60").architecture.kernel_prefix == "maxwell"


def test_unknown_system_raises_helpfully():
    with pytest.raises(KeyError, match="available"):
        get_system("Tesla_A100")


def test_architectures_covered():
    archs = {s.architecture for s in SYSTEMS.values()}
    assert archs == set(Architecture)
