"""CUPTI memcpy activity tests."""

from repro.sim import CudaRuntime, Cupti, VirtualClock, get_system


def test_memcpy_activities_captured():
    rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
    cupti = Cupti(rt)
    cupti.enable_activities()
    rt.memcpy(1_000_000, kind="h2d")
    rt.memcpy(2_000, kind="d2h")
    copies = [a for a in cupti.activity_records if a.kind == "memcpy"]
    assert [c.name for c in copies] == ["[CUDA memcpy H2D]",
                                        "[CUDA memcpy D2H]"]
    assert copies[0].metrics["bytes"] == 1_000_000.0
    assert copies[0].duration_ns > 0


def test_memcpy_not_captured_when_disabled():
    rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
    cupti = Cupti(rt)
    cupti.enable_callbacks()  # callbacks only, no activities
    rt.memcpy(1_000)
    assert cupti.activity_records == []


def test_memcpy_spans_in_trace(v100_session, cnn_graph):
    from repro.core import ProfilingConfig
    from repro.tracing import Level, SpanKind

    run = v100_session.profile(cnn_graph, 2, ProfilingConfig(metrics=()))
    copies = [s for s in run.trace.at_level(Level.GPU_KERNEL)
              if s.tags.get("activity_kind") == "memcpy"]
    assert copies, "h2d/d2h copies should appear as GPU-level spans"
    assert all(s.kind is SpanKind.INTERNAL for s in copies)
    # The input copy belongs to the Data layer.
    by_id = run.trace.by_id()
    h2d = next(s for s in copies if "H2D" in s.name)
    assert by_id[h2d.parent_id].tags.get("layer_type") == "Data"
