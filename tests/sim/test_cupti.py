"""CUPTI-like profiler tests: callbacks, activities, metric replay."""

import pytest

from repro.sim import CudaRuntime, Cupti, KernelClass, KernelSpec, VirtualClock, get_system
from repro.sim.calibration import DEFAULT_METRIC_PASSES

V100 = get_system("Tesla_V100")


def spec():
    return KernelSpec("volta_scudnn_128x64_relu_interior_nn_v1",
                      KernelClass.CONV_PRECOMP_GEMM, 5e9, 40e6, 50e6,
                      blocks=500)


def make(metrics=(), callbacks=True, activities=True):
    rt = CudaRuntime(V100, VirtualClock())
    cupti = Cupti(rt)
    if callbacks:
        cupti.enable_callbacks()
    if activities:
        cupti.enable_activities()
    if metrics:
        cupti.enable_metrics(metrics)
    return rt, cupti


def test_disabled_cupti_captures_nothing():
    rt = CudaRuntime(V100)
    cupti = Cupti(rt)
    rt.launch_kernel(spec())
    assert cupti.api_records == [] and cupti.activity_records == []


def test_callback_api_captures_cudaLaunchKernel():
    rt, cupti = make(activities=False)
    record = rt.launch_kernel(spec())
    assert len(cupti.api_records) == 1
    api = cupti.api_records[0]
    assert api.name == "cudaLaunchKernel"
    assert api.correlation_id == record.correlation_id
    assert (api.start_ns, api.end_ns) == (record.api_start_ns, record.api_end_ns)


def test_activity_api_captures_kernel_execution():
    rt, cupti = make(callbacks=False)
    record = rt.launch_kernel(spec())
    act = cupti.activity_records[0]
    assert act.name == spec().name
    assert act.correlation_id == record.correlation_id
    assert act.duration_ns == record.duration_ns


def test_profiling_adds_per_kernel_host_overhead():
    rt_plain = CudaRuntime(V100, VirtualClock())
    rt_plain.launch_kernel(spec())
    plain_host = rt_plain.clock.now()
    rt_prof, _ = make()
    rt_prof.launch_kernel(spec())
    assert rt_prof.clock.now() > plain_host


def test_metrics_attached_to_activities():
    rt, cupti = make(metrics=("flop_count_sp", "achieved_occupancy"))
    rt.launch_kernel(spec())
    metrics = cupti.activity_records[0].metrics
    assert metrics["flop_count_sp"] == 5e9
    assert 0 < metrics["achieved_occupancy"] <= 0.23


def test_unknown_metric_rejected():
    rt = CudaRuntime(V100)
    cupti = Cupti(rt)
    with pytest.raises(ValueError, match="unsupported"):
        cupti.enable_metrics(["warp_execution_efficiency"])


def test_dram_metrics_require_many_replay_passes():
    """Sec. III-C: memory metrics can slow execution >100x via replay."""
    rt, cupti = make(metrics=("dram_read_bytes", "dram_write_bytes"))
    assert cupti.replay_passes() >= (
        DEFAULT_METRIC_PASSES["dram_read_bytes"]
        + DEFAULT_METRIC_PASSES["dram_write_bytes"]
    )
    record = rt.launch_kernel(spec())
    busy = record.device_busy_until_ns - record.device_start_ns
    clean = record.device_end_ns - record.device_start_ns
    assert busy > 20 * clean


def test_replay_slowdown_visible_to_host_but_not_reported_duration():
    rt_fast, cupti_fast = make(metrics=("flop_count_sp",))
    rt_fast.launch_kernel(spec())
    rt_fast.stream_synchronize()
    fast_wall = rt_fast.clock.now()
    fast_dur = cupti_fast.activity_records[0].duration_ns

    rt_slow, cupti_slow = make(metrics=("dram_read_bytes", "dram_write_bytes"))
    rt_slow.launch_kernel(spec())
    rt_slow.stream_synchronize()
    slow_wall = rt_slow.clock.now()
    slow_dur = cupti_slow.activity_records[0].duration_ns

    assert slow_wall > 10 * fast_wall  # wall time explodes
    assert slow_dur == pytest.approx(fast_dur, rel=0.02)  # report stays clean


def test_disable_removes_overheads():
    rt, cupti = make(metrics=("dram_read_bytes",))
    cupti.disable()
    assert rt.profiler_replay_passes == 1
    assert rt.profiler_launch_overhead_ns == 0
    rt.launch_kernel(spec())
    assert cupti.activity_records == []


def test_flush_returns_and_clears():
    rt, cupti = make()
    rt.launch_kernel(spec())
    api, act = cupti.flush()
    assert len(api) == 1 and len(act) == 1
    assert cupti.api_records == [] and cupti.activity_records == []
