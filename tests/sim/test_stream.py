"""Stream ordering tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import KernelClass, KernelSpec, Stream


def spec(name="k"):
    return KernelSpec(name, KernelClass.POOL, 1e6, 1e6, 1e6, blocks=8)


def test_in_order_back_to_back():
    s = Stream(stream_id=0)
    r1 = s.enqueue(spec("a"), 1, enqueue_ns=0, duration_ns=100)
    r2 = s.enqueue(spec("b"), 2, enqueue_ns=10, duration_ns=50)
    assert r1.start_ns == 0 and r1.end_ns == 100
    assert r2.start_ns == 100  # waits for the stream, not its enqueue time
    assert r2.end_ns == 150


def test_idle_stream_starts_at_enqueue():
    s = Stream(stream_id=0)
    r = s.enqueue(spec(), 1, enqueue_ns=500, duration_ns=10)
    assert r.start_ns == 500


def test_busy_time_and_pending():
    s = Stream(stream_id=0)
    s.enqueue(spec("a"), 1, 0, 100)
    s.enqueue(spec("b"), 2, 0, 100)
    assert s.busy_ns == 200
    assert len(s.pending_after(150)) == 1
    assert s.pending_after(500) == []


def test_reset():
    s = Stream(stream_id=0)
    s.enqueue(spec(), 1, 0, 100)
    s.reset()
    assert s.records == [] and s.next_free_ns == 0


@settings(max_examples=60, deadline=None)
@given(jobs=st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 500)),
                     min_size=1, max_size=30))
def test_no_overlap_property(jobs):
    """In-order stream: records never overlap and respect enqueue times."""
    s = Stream(stream_id=0)
    enqueue_clock = 0
    for offset, duration in jobs:
        enqueue_clock += offset
        s.enqueue(spec(), 1, enqueue_clock, duration)
    for prev, cur in zip(s.records, s.records[1:]):
        assert cur.start_ns >= prev.end_ns
    for r in s.records:
        assert r.start_ns >= r.enqueue_ns
