"""Per-rule behavior at and around each rule's thresholds."""

import pytest

from repro.insights import InsightContext, get_rule
from repro.sim.hardware import get_system

from factories import (
    make_kernel,
    make_layer,
    make_matching_trace,
    make_profile,
)


def _single(rule_name, ctx):
    insights = get_rule(rule_name)(ctx)
    assert len(insights) == 1, f"{rule_name} emitted {len(insights)}"
    return insights[0]


# -- gpu-idle-bubbles -------------------------------------------------------

def test_idle_bubbles_severity_tracks_gap_size(basic_profile):
    tight = _single(
        "gpu-idle-bubbles",
        InsightContext.build(
            basic_profile, trace=make_matching_trace(basic_profile, gap_us=0.5)
        ),
    )
    loose = _single(
        "gpu-idle-bubbles",
        InsightContext.build(
            basic_profile,
            trace=make_matching_trace(basic_profile, gap_us=2000.0),
        ),
    )
    assert loose.severity > tight.severity
    # The aggregate evidence leads; per-gap evidence carries span ids.
    gap_evidence = [e for e in loose.evidence if e.span_ids]
    assert gap_evidence
    trace = make_matching_trace(basic_profile, gap_us=2000.0)
    by_id = trace.by_id()
    # Same-seed traces have identical span ids: every reference resolves.
    for ev in gap_evidence:
        for sid in ev.span_ids:
            assert sid in by_id


def test_idle_bubbles_need_gpu_spans(basic_profile):
    from repro.tracing import Level, Span, Trace

    t = Trace(trace_id=9)
    t.add(Span("predict", 0, 100, Level.MODEL))
    ctx = InsightContext.build(basic_profile, trace=t)
    assert get_rule("gpu-idle-bubbles")(ctx) == []


# -- kernel-hotspot ---------------------------------------------------------

def test_hotspot_concentration():
    dominant = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64_relu", 0, latency_ms=9.0),
        ]),
        make_layer(1, "Dense", kernels=[
            make_kernel("volta_sgemm_64x32", 1, latency_ms=1.0),
        ]),
    ])
    insight = _single("kernel-hotspot", InsightContext.build(dominant))
    assert "volta_scudnn_128x64_relu" in insight.title
    assert insight.severity == 1.0  # 90% > saturation
    top = insight.evidence[0]
    assert top.measured["share"] == pytest.approx(0.9)
    assert top.kernel_names == ("volta_scudnn_128x64_relu",)
    assert top.layer_indices == (0,)


def test_hotspot_balanced_is_low_severity():
    balanced = make_profile([
        make_layer(i, "Conv2D", kernels=[
            make_kernel(f"kernel_{i}", i, latency_ms=1.0)
        ])
        for i in range(8)
    ])
    insight = _single("kernel-hotspot", InsightContext.build(balanced))
    assert insight.severity == 0.0  # 12.5% share, below the ramp start


# -- library-kernel-mix -----------------------------------------------------

def test_library_mix_flags_custom_kernels():
    custom_heavy = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64", 0, latency_ms=3.0),
        ]),
        make_layer(1, "Relu", kernels=[
            make_kernel("Eigen::TensorCwiseBinaryOp<scalar_max_op>", 1,
                        latency_ms=7.0),
        ]),
    ])
    insight = _single("library-kernel-mix", InsightContext.build(custom_heavy))
    assert insight.severity == 1.0  # 70% custom, above saturation
    assert any("Eigen" in n for e in insight.evidence for n in e.kernel_names)

    library_only = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64", 0, latency_ms=3.0),
        ]),
    ])
    clean = _single("library-kernel-mix", InsightContext.build(library_only))
    assert clean.severity == 0.0
    # Even an all-library profile carries the aggregate evidence record.
    assert clean.evidence
    assert clean.evidence[0].measured["custom_share"] == 0.0


# -- low-occupancy-kernels --------------------------------------------------

def test_occupancy_rule_scores_starved_devices():
    starved = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("k0", 0, latency_ms=2.0, occupancy=0.15),
        ]),
    ])
    healthy = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("k0", 0, latency_ms=2.0, occupancy=0.9),
        ]),
    ])
    bad = _single("low-occupancy-kernels", InsightContext.build(starved))
    good = _single("low-occupancy-kernels", InsightContext.build(healthy))
    assert bad.severity == 1.0
    assert good.severity == 0.0
    # Worst kernels are quoted with their layer.
    assert any(e.layer_indices == (0,) for e in bad.evidence[1:])


# -- memory-bound-layers ----------------------------------------------------

def test_memory_bound_rule_uses_roofline():
    gpu = get_system("Tesla_V100")
    # AI far below the device ideal -> memory-bound.
    memory = make_profile([
        make_layer(0, "Relu", kernels=[
            make_kernel("k", 0, latency_ms=5.0, flops=1e6,
                        dram_read=5e8, dram_write=5e8),
        ]),
    ])
    compute = make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel("k", 0, latency_ms=5.0,
                        flops=1e12, dram_read=5e8, dram_write=5e8),
        ]),
    ])
    mem_insight = _single("memory-bound-layers", InsightContext.build(memory))
    comp_insight = _single("memory-bound-layers", InsightContext.build(compute))
    assert mem_insight.severity == 1.0
    assert comp_insight.severity == 0.0
    lead = mem_insight.evidence[0]
    assert lead.measured["memory_bound_share"] == 1.0
    assert lead.threshold["memory_bound_share"] == 0.40
    per_layer = mem_insight.evidence[1]
    assert per_layer.threshold["arithmetic_intensity"] == pytest.approx(
        gpu.ideal_arithmetic_intensity
    )


# -- layer-fusion-candidates ------------------------------------------------

def test_fusion_runs_detected():
    profile = make_profile([
        make_layer(0, "Conv2D"),
        make_layer(1, "BatchNorm"),
        make_layer(2, "Relu"),
        make_layer(3, "Conv2D"),
        make_layer(4, "Mul"),
        make_layer(5, "Add"),
        make_layer(6, "Relu"),
    ])
    insight = _single("layer-fusion-candidates", InsightContext.build(profile))
    chains = [e.layer_indices for e in insight.evidence]
    assert (4, 5, 6) in chains and (1, 2) in chains


def test_no_fusion_candidates_no_insight():
    profile = make_profile([
        make_layer(0, "Conv2D"),
        make_layer(1, "Relu"),
        make_layer(2, "Conv2D"),
    ])
    assert get_rule("layer-fusion-candidates")(
        InsightContext.build(profile)
    ) == []


# -- host-gpu-imbalance -----------------------------------------------------

def test_host_gpu_imbalance_shares():
    layers = [make_layer(0, "Conv2D", kernels=[
        make_kernel("k", 0, latency_ms=4.0)
    ], latency_ms=4.2)]
    gpu_heavy = make_profile(layers, model_latency_ms=5.0)
    host_heavy = make_profile(layers, model_latency_ms=40.0)
    low = _single("host-gpu-imbalance", InsightContext.build(gpu_heavy))
    high = _single("host-gpu-imbalance", InsightContext.build(host_heavy))
    assert high.severity > low.severity
    assert high.evidence[0].measured["non_gpu_share"] == pytest.approx(0.9)


# -- batch-scaling-knee -----------------------------------------------------

SWEEP = {1: 10.0, 2: 11.0, 4: 13.0, 8: 20.0, 16: 40.0, 32: 80.0}
# throughputs: 100, 182, 308, 400, 400, 400 -> knee at 8.


def test_knee_below_flags_headroom():
    profile = make_profile(
        [make_layer(0, "Conv2D")], batch=1, model_latency_ms=10.0
    )
    insight = _single(
        "batch-scaling-knee", InsightContext.build(profile, sweep=SWEEP)
    )
    assert "below the throughput knee" in insight.title
    assert "batch 8" in insight.title
    assert insight.severity == 1.0  # 4x headroom saturates
    assert insight.evidence[1].measured["headroom"] == pytest.approx(3.0)


def test_knee_direction_never_contradicts_for_unswept_batch():
    # Batch 4 is below the knee (8) but absent from the sweep; even if the
    # profile's own throughput beats the sweep's knee throughput
    # (measurement skew), the insight must not flip to "at/above".
    profile = make_profile(
        [make_layer(0, "Conv2D")], batch=4, model_latency_ms=8.0
    )  # profile throughput 500/s > knee's measured 400/s
    sweep = {k: v for k, v in SWEEP.items() if k != 4}
    insight = _single(
        "batch-scaling-knee", InsightContext.build(profile, sweep=sweep)
    )
    assert "below the throughput knee" in insight.title
    assert insight.severity == 0.0  # clamped headroom


def test_knee_at_optimum_is_informational():
    profile = make_profile(
        [make_layer(0, "Conv2D")], batch=8, model_latency_ms=20.0
    )
    insight = _single(
        "batch-scaling-knee", InsightContext.build(profile, sweep=SWEEP)
    )
    assert "at/above the throughput knee" in insight.title
    assert insight.severity == 0.0


def test_knee_far_beyond_warns():
    profile = make_profile(
        [make_layer(0, "Conv2D")], batch=32, model_latency_ms=80.0
    )
    insight = _single(
        "batch-scaling-knee", InsightContext.build(profile, sweep=SWEEP)
    )
    assert "at/above" in insight.title and insight.severity > 0.0


# -- memory-pressure --------------------------------------------------------

def test_memory_pressure_measured_peak():
    profile = make_profile([make_layer(0, "Conv2D")], system="Tesla_P4")
    capacity = profile.gpu.dram_gb * 1e9
    hot = _single(
        "memory-pressure",
        InsightContext.build(
            profile, peak_device_memory_bytes=int(capacity * 0.95)
        ),
    )
    assert "near the out-of-memory threshold" in hot.title
    assert hot.severity >= 0.8
    cold = _single(
        "memory-pressure",
        InsightContext.build(
            profile, peak_device_memory_bytes=int(capacity * 0.10)
        ),
    )
    assert cold.severity == 0.0
    assert "not the binding constraint" in cold.recommendation


def test_memory_pressure_falls_back_to_alloc_sum():
    profile = make_profile(
        [make_layer(0, "Conv2D", alloc_bytes=7 * 10**9)], system="Tesla_P4"
    )
    insight = _single("memory-pressure", InsightContext.build(profile))
    assert "upper bound" in insight.evidence[0].summary
    assert insight.evidence[0].measured["usage"] == pytest.approx(7 / 8)
