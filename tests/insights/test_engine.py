"""Engine behavior: context ingredients, skipping, ranking, reports."""

import json

import pytest

from repro.insights import (
    Insight,
    InsightContext,
    InsightEngine,
    Rule,
    advise,
)
from repro.insights.rules import BUILTIN_RULES

from factories import make_matching_trace


def test_context_ingredients(basic_profile):
    ctx = InsightContext.build(basic_profile)
    assert ctx.has("profile")
    assert not ctx.has("trace")
    assert not ctx.has("sweep")
    with pytest.raises(ValueError, match="unknown requirement"):
        ctx.has("weather")

    full = InsightContext.build(
        basic_profile,
        trace=make_matching_trace(basic_profile),
        sweep={1: 2.0, 2: 3.0},
    )
    assert full.has("trace") and full.has("sweep")
    # A single sweep point cannot place a knee.
    assert not InsightContext.build(basic_profile, sweep={1: 2.0}).has("sweep")


def test_sweep_normalization(basic_profile):
    # Profiles and raw latencies normalize to the same mapping.
    ctx = InsightContext.build(
        basic_profile, sweep={1: basic_profile, 2: 7.5}
    )
    assert ctx.sweep_latencies_ms == {
        1: basic_profile.model_latency_ms,
        2: 7.5,
    }


def test_profile_only_analysis_skips_and_reports(basic_profile):
    report = InsightEngine().analyze(InsightContext.build(basic_profile))
    assert report.skipped_rules == {
        "batch-scaling-knee": "sweep",
        "gpu-idle-bubbles": "trace",
    }
    # Everything else fired.
    assert set(report.rules_fired) == set(BUILTIN_RULES) - {
        "batch-scaling-knee", "gpu-idle-bubbles",
    }
    assert "skipped rules" in report.render()


def test_full_context_fires_all_builtin_rules(basic_profile):
    report = advise(
        basic_profile,
        trace=make_matching_trace(basic_profile, gap_us=50.0),
        sweep={1: 4.0, 2: 5.0, 4: 7.0, 8: 12.0, 16: 24.0},
        peak_device_memory_bytes=int(2e9),
    )
    assert set(report.rules_fired) == set(BUILTIN_RULES)
    assert not report.skipped_rules


def test_ranking_is_severity_descending(basic_profile):
    report = advise(basic_profile)
    severities = [i.severity for i in report.insights]
    assert severities == sorted(severities, reverse=True)


def test_custom_rule_set(basic_profile):
    calls = []

    def only_rule(ctx):
        calls.append(ctx.profile.model_name)
        return [Insight(rule="custom", title="hello", severity=0.5,
                        recommendation="none")]

    engine = InsightEngine([
        Rule(name="custom", description="", requires=("profile",),
             func=only_rule)
    ])
    report = engine.analyze(InsightContext.build(basic_profile))
    assert calls == ["synthetic"]
    assert report.rules_fired == ["custom"]
    assert report.by_rule("custom")[0].title == "hello"


def test_report_filters_and_serialization(basic_profile):
    report = advise(basic_profile)
    assert len(report.above(0.0)) == len(report)
    assert len(report.above(2.0)) == 0
    rendered = report.render(min_severity=2.0)
    assert "no insights at or above" in rendered

    data = report.to_dict()
    assert data["model"] == "synthetic"
    assert data["system"] == "Tesla_V100"
    assert len(data["insights"]) == len(report)
    json.dumps(data)
