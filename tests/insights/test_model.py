"""Insight/Evidence data model and severity semantics."""

import pytest

from repro.insights import Evidence, Insight, ramp, severity_label


def test_severity_bands():
    assert severity_label(0.0) == "info"
    assert severity_label(0.29) == "info"
    assert severity_label(0.30) == "warning"
    assert severity_label(0.64) == "warning"
    assert severity_label(0.65) == "critical"
    assert severity_label(1.0) == "critical"


def test_ramp():
    assert ramp(0.0, 0.1, 0.5) == 0.0
    assert ramp(0.1, 0.1, 0.5) == 0.0
    assert ramp(0.3, 0.1, 0.5) == pytest.approx(0.5)
    assert ramp(0.5, 0.1, 0.5) == 1.0
    assert ramp(9.0, 0.1, 0.5) == 1.0  # clamps


def test_ramp_rejects_bad_range():
    with pytest.raises(ValueError, match="lo < hi"):
        ramp(0.5, 0.5, 0.5)


def test_insight_severity_validated():
    with pytest.raises(ValueError, match="severity"):
        Insight(rule="r", title="t", severity=1.5, recommendation="x")
    with pytest.raises(ValueError, match="severity"):
        Insight(rule="r", title="t", severity=-0.1, recommendation="x")


def test_insight_band_and_render():
    insight = Insight(
        rule="kernel-hotspot",
        title="one kernel dominates",
        severity=0.8,
        recommendation="optimize it",
        evidence=(
            Evidence(kind="kernel", summary="k1: 5 ms",
                     kernel_names=("k1",), measured={"share": 0.8},
                     threshold={"share": 0.25}),
        ),
    )
    assert insight.severity_band == "critical"
    text = insight.render()
    assert "CRITICAL" in text and "kernel-hotspot" in text
    assert "k1: 5 ms" in text


def test_round_trip_to_dict():
    evidence = Evidence(
        kind="layer",
        summary="layer 3 is slow",
        span_ids=(1, 2),
        layer_indices=(3,),
        kernel_names=("k",),
        measured={"ms": 1.5},
        threshold={"ms": 1.0},
    )
    insight = Insight(
        rule="r", title="t", severity=0.4, recommendation="do less",
        evidence=(evidence,),
    )
    data = insight.to_dict()
    assert data["severity_band"] == "warning"
    assert data["evidence"][0]["span_ids"] == [1, 2]
    assert data["evidence"][0]["layer_indices"] == [3]
    assert data["evidence"][0]["measured"] == {"ms": 1.5}

    import json

    json.dumps(data)  # JSON-serializable end to end
