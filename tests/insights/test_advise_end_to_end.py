"""End-to-end acceptance: the advise pipeline on real zoo models.

The ISSUE's acceptance bar: ``repro advise`` emits >= 8 distinct rule
types on at least one zoo model, each insight carrying severity plus
structured evidence that resolves against the source data.
"""

import pytest

from repro.core import AnalysisPipeline, XSPSession
from repro.insights.rules import BUILTIN_RULES
from repro.models import get_model


@pytest.fixture(scope="module")
def advise_report():
    pipeline = AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    )
    return pipeline.advise(
        get_model(7).graph, 4, sweep_batches=[1, 2, 4, 8]
    )


def test_at_least_eight_rules_fire(advise_report):
    fired = advise_report.rules_fired
    assert len(fired) >= 8, f"only {fired} fired"
    assert set(fired) == set(BUILTIN_RULES)
    assert not advise_report.skipped_rules


def test_every_insight_has_severity_and_evidence(advise_report):
    assert len(advise_report) >= 8
    for insight in advise_report:
        assert 0.0 <= insight.severity <= 1.0
        assert insight.severity_band in ("info", "warning", "critical")
        assert insight.recommendation
        assert insight.evidence
        for ev in insight.evidence:
            assert ev.summary and ev.kind


def test_evidence_resolves_against_sources(advise_report):
    profile_layers = None
    kernel_names = None
    # Rebuild the source views the report's evidence points into.
    pipeline = AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    )
    profile = pipeline.profile_model(get_model(7).graph, 4)
    profile_layers = {layer.index for layer in profile.layers}
    kernel_names = {k.name for k in profile.kernels}
    for insight in advise_report:
        for ev in insight.evidence:
            for idx in ev.layer_indices:
                assert idx in profile_layers
            if ev.kind in ("kernel", "layer"):
                for name in ev.kernel_names:
                    assert name in kernel_names


def test_knee_uses_the_sweep(advise_report):
    knee = advise_report.by_rule("batch-scaling-knee")
    assert len(knee) == 1
    sweep_ev = knee[0].evidence[0]
    assert sweep_ev.kind == "sweep"
    # All four swept batches are quoted as measured throughputs.
    assert set(sweep_ev.measured) == {"1", "2", "4", "8"}


def test_oom_sweep_batches_are_dropped():
    # MLPerf SSD ResNet34 (1200x1200) cannot fit batch 64 on a P4; the
    # sweep silently stops at the largest feasible batch.
    pipeline = AnalysisPipeline(
        XSPSession("Tesla_P4", "tensorflow_like"), runs_per_level=1
    )
    report = pipeline.advise(
        get_model(46).graph, 1, sweep_batches=[1, 2, 64, 128]
    )
    knee = report.by_rule("batch-scaling-knee")
    assert knee, "knee rule should still fire on the feasible prefix"
    assert set(knee[0].evidence[0].measured) == {"1", "2"}
