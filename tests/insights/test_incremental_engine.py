"""IncrementalInsightEngine: re-evaluate only rules whose ingredients changed."""

from __future__ import annotations

from factories import build_basic_profile, make_matching_trace

from repro.insights import (
    IncrementalInsightEngine,
    Insight,
    InsightContext,
    InsightEngine,
    Rule,
    registry,
    rules_requiring,
)
from repro.tracing import Level, Span


def _probe_rule(name: str, requires: tuple[str, ...], counter: dict):
    def func(ctx):
        counter[name] = counter.get(name, 0) + 1
        return [
            Insight(
                rule=name,
                title=name,
                severity=0.5,
                recommendation="n/a",
            )
        ]

    return Rule(name=name, description=name, requires=requires, func=func)


def _context(profile=None, trace=None, sweep=None, peak=None):
    return InsightContext.build(
        profile if profile is not None else build_basic_profile(),
        trace=trace,
        sweep=sweep,
        peak_device_memory_bytes=peak,
    )


def _probe_engine():
    counter: dict[str, int] = {}
    rules = [
        _probe_rule("p-only", ("profile",), counter),
        _probe_rule("t-rule", ("profile", "trace"), counter),
        _probe_rule("s-rule", ("profile", "sweep"), counter),
    ]
    return IncrementalInsightEngine(rules), counter


def test_first_analyze_runs_everything_then_nothing():
    engine, counter = _probe_engine()
    profile = build_basic_profile()
    trace = make_matching_trace(profile)
    context = _context(profile, trace=trace, sweep={1: 5.0, 2: 8.0})
    report = engine.analyze(context)
    assert counter == {"p-only": 1, "t-rule": 1, "s-rule": 1}
    assert sorted(engine.last_refreshed) == ["p-only", "s-rule", "t-rule"]
    # Unchanged context: zero rule evaluations, identical report.
    again = engine.analyze(context)
    assert counter == {"p-only": 1, "t-rule": 1, "s-rule": 1}
    assert engine.last_refreshed == []
    assert [i.rule for i in again] == [i.rule for i in report]


def test_trace_growth_refreshes_only_trace_rules():
    engine, counter = _probe_engine()
    profile = build_basic_profile()
    trace = make_matching_trace(profile)
    context = _context(profile, trace=trace, sweep={1: 5.0, 2: 8.0})
    engine.analyze(context)
    trace.add(Span("late", 0, 5, Level.MODEL, span_id=10_000))
    engine.analyze(context)
    assert counter == {"p-only": 1, "t-rule": 2, "s-rule": 1}
    assert engine.last_refreshed == ["t-rule"]


def test_sweep_change_refreshes_only_sweep_rules():
    engine, counter = _probe_engine()
    profile = build_basic_profile()
    trace = make_matching_trace(profile)
    context = _context(profile, trace=trace, sweep={1: 5.0, 2: 8.0})
    engine.analyze(context)
    context.sweep_latencies_ms[4] = 13.0
    engine.analyze(context)
    assert counter == {"p-only": 1, "t-rule": 1, "s-rule": 2}


def test_profile_replacement_refreshes_profile_dependents():
    engine, counter = _probe_engine()
    trace = make_matching_trace(build_basic_profile())
    engine.analyze(_context(trace=trace, sweep={1: 5.0, 2: 8.0}))
    # A re-derived but content-identical profile reads as unchanged
    # (the live flow rebuilds the profile object on every refresh) ...
    engine.analyze(_context(trace=trace, sweep={1: 5.0, 2: 8.0}))
    assert counter == {"p-only": 1, "t-rule": 1, "s-rule": 1}
    # ... while an actual content change re-runs every profile consumer.
    changed = build_basic_profile()
    changed.model_latency_ms *= 2
    engine.analyze(
        _context(changed, trace=trace, sweep={1: 5.0, 2: 8.0})
    )
    assert counter == {"p-only": 2, "t-rule": 2, "s-rule": 2}


def test_missing_ingredient_skips_and_reevaluates_on_arrival():
    engine, counter = _probe_engine()
    profile = build_basic_profile()
    report = engine.analyze(_context(profile))
    assert counter == {"p-only": 1}
    assert report.skipped_rules == {"t-rule": "trace", "s-rule": "sweep"}
    trace = make_matching_trace(profile)
    report = engine.analyze(_context(profile, trace=trace))
    assert counter["t-rule"] == 1
    assert report.skipped_rules == {"s-rule": "sweep"}


def test_matches_plain_engine_on_builtin_rules():
    """Grow a trace across refreshes: every incremental report must be
    identical to a fresh full-engine run over the same context."""
    profile = build_basic_profile()
    full_trace = make_matching_trace(profile, gap_us=50.0)
    spans = [s for s in full_trace.spans]

    incremental = IncrementalInsightEngine()
    from repro.tracing import Trace

    growing = Trace(trace_id=1)
    for cut in (len(spans) // 3, 2 * len(spans) // 3, len(spans)):
        while len(growing) < cut:
            view = spans[len(growing)]
            growing.add(
                Span(view.name, view.start_ns, view.end_ns, view.level,
                     span_id=view.span_id, kind=view.kind,
                     parent_id=view.parent_id,
                     correlation_id=view.correlation_id,
                     tags=dict(view.iter_tags()))
            )
        context = _context(profile, trace=growing, sweep={1: 5.0, 2: 8.0})
        live = incremental.analyze(context)
        reference = InsightEngine().analyze(context)
        assert [
            (i.rule, i.title, i.severity) for i in live
        ] == [(i.rule, i.title, i.severity) for i in reference]
        assert live.skipped_rules == reference.skipped_rules


def test_rules_requiring_selects_by_ingredient():
    trace_rules = {r.name for r in rules_requiring("trace")}
    assert "gpu-idle-bubbles" in trace_rules
    assert all(
        "trace" in registry.get_rule(name).requires for name in trace_rules
    )
    try:
        rules_requiring("bogus")
    except ValueError:
        pass
    else:  # pragma: no cover - assertion arm
        raise AssertionError("expected ValueError for unknown ingredient")
