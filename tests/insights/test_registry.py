"""Rule registry contract: registration, lookup, replacement, removal."""

import pytest

from repro.insights import registry
from repro.insights.model import Insight
from repro.insights.rules import BUILTIN_RULES


def test_builtin_rules_registered():
    names = registry.rule_names()
    for name in BUILTIN_RULES:
        assert name in names
    assert len(BUILTIN_RULES) >= 8


def test_all_rules_sorted_and_callable():
    rules = registry.all_rules()
    assert [r.name for r in rules] == sorted(r.name for r in rules)
    for r in rules:
        assert callable(r.func) and r.description


def test_register_unregister_cycle():
    @registry.rule("test-temp-rule", description="temp", requires=())
    def temp(ctx):
        return [Insight(rule="test-temp-rule", title="x", severity=0.1,
                        recommendation="y")]

    try:
        assert registry.get_rule("test-temp-rule").requires == ()
        with pytest.raises(ValueError, match="already registered"):
            registry.register(registry.get_rule("test-temp-rule"))
        # replace=True overrides in place.
        replacement = registry.Rule(
            name="test-temp-rule", description="v2", requires=("profile",),
            func=temp,
        )
        registry.register(replacement, replace=True)
        assert registry.get_rule("test-temp-rule").description == "v2"
    finally:
        registry.unregister("test-temp-rule")
    assert "test-temp-rule" not in registry.rule_names()


def test_unknown_requirement_rejected():
    with pytest.raises(ValueError, match="unknown ingredient"):
        registry.register(
            registry.Rule(name="bad", description="", requires=("gpu_dump",),
                          func=lambda ctx: [])
        )
    assert "bad" not in registry.rule_names()


def test_get_rule_unknown():
    with pytest.raises(KeyError, match="unknown insight rule"):
        registry.get_rule("no-such-rule")
