"""Shared fixtures for the insight-engine tests (see factories.py)."""

import pytest

from factories import build_basic_profile


@pytest.fixture
def basic_profile():
    """A mixed synthetic profile: conv hotspots plus an element-wise tail."""
    return build_basic_profile()
