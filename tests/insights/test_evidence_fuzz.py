"""Fuzz: rule evidence must always resolve against its source data.

The acceptance bar for the insight engine is that findings are
machine-checkable: any span id quoted as evidence exists in the trace,
any layer index exists in the profile, any kernel name names a kernel of
the profile.  This fuzzes randomized profile/trace/sweep shapes through
every registered rule and verifies each reference.
"""

from __future__ import annotations

import random

import pytest

from repro.insights import InsightContext, InsightEngine

from factories import make_kernel, make_layer, make_matching_trace, make_profile

KERNEL_NAMES = (
    "volta_scudnn_128x64_relu_interior_nn_v1",
    "volta_scudnn_128x128_relu_small_nn_v1",
    "volta_sgemm_128x64_nn",
    "maxwell_scudnn_128x64_relu",
    "Eigen::TensorCwiseBinaryOp<scalar_sum_op>",
    "Eigen::TensorCwiseBinaryOp<scalar_max_op>",
    "tensorflow::BiasNCHWKernel",
    "concat_variadic_kernel",
    "pooling_fw_4d_kernel",
)
LAYER_TYPES = (
    "Conv2D", "BatchNorm", "Relu", "Add", "Mul", "Dense", "MaxPool",
    "Softmax", "Relu6", "BiasAdd",
)
SYSTEMS = ("Tesla_V100", "Tesla_P4", "Quadro_RTX", "Tesla_M60")


def random_profile(rng: random.Random):
    layers = []
    index = 0
    for _ in range(rng.randint(1, 40)):
        # Occasionally leave holes in the layer numbering, as real
        # profiles do (e.g. Data layers filtered at level M/L/G).
        index += rng.randint(1, 3)
        kernels = [
            make_kernel(
                rng.choice(KERNEL_NAMES),
                index,
                position=pos,
                latency_ms=rng.uniform(0.001, 5.0),
                flops=rng.uniform(0.0, 1e12),
                dram_read=rng.uniform(0.0, 1e9),
                dram_write=rng.uniform(0.0, 1e9),
                occupancy=rng.uniform(0.05, 1.0),
            )
            for pos in range(rng.randint(0, 4))
        ]
        layers.append(
            make_layer(
                index,
                rng.choice(LAYER_TYPES),
                alloc_bytes=rng.randint(0, 1 << 30),
                kernels=kernels,
            )
        )
    return make_profile(
        layers,
        batch=rng.choice([1, 2, 8, 32, 256]),
        system=rng.choice(SYSTEMS),
        model_latency_ms=sum(l.latency_ms for l in layers) * rng.uniform(1.0, 3.0)
        or 1.0,
    )


def random_sweep(rng: random.Random):
    if rng.random() < 0.3:
        return None
    latency = rng.uniform(1.0, 20.0)
    sweep = {}
    batch = 1
    for _ in range(rng.randint(2, 8)):
        sweep[batch] = latency
        batch *= 2
        latency *= rng.uniform(1.05, 2.2)
    return sweep


@pytest.mark.parametrize("seed", range(25))
def test_evidence_always_resolves(seed):
    rng = random.Random(seed)
    profile = random_profile(rng)
    trace = (
        make_matching_trace(profile, gap_us=rng.uniform(0.0, 500.0), seed=seed)
        if rng.random() < 0.8
        else None
    )
    context = InsightContext.build(
        profile,
        trace=trace,
        sweep=random_sweep(rng),
        peak_device_memory_bytes=(
            rng.randint(0, int(16e9)) if rng.random() < 0.5 else None
        ),
    )
    report = InsightEngine().analyze(context)

    span_ids = set(trace.by_id()) if trace is not None else set()
    layer_indices = {layer.index for layer in profile.layers}
    kernel_names = {k.name for k in profile.kernels}

    for insight in report.insights:
        assert 0.0 <= insight.severity <= 1.0
        assert insight.evidence, f"{insight.rule} emitted without evidence"
        for ev in insight.evidence:
            for sid in ev.span_ids:
                assert sid in span_ids, (
                    f"{insight.rule}: span {sid} not in source trace"
                )
            for idx in ev.layer_indices:
                assert idx in layer_indices, (
                    f"{insight.rule}: layer {idx} not in profile"
                )
            if ev.kind in ("kernel", "layer"):
                for name in ev.kernel_names:
                    assert name in kernel_names, (
                        f"{insight.rule}: kernel {name!r} not in profile"
                    )
