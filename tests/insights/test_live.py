"""LiveMonitor: insights over an in-flight capture via the stream cursor."""

from __future__ import annotations

import threading

from factories import build_basic_profile, make_matching_trace

from repro.insights import LiveMonitor
from repro.tracing import Level, Span, TracingServer


def _capture_spans():
    """A realistic capture (model + layers + kernel pairs) as Span list."""
    profile = build_basic_profile()
    trace = make_matching_trace(profile, gap_us=100.0)
    return [
        Span(v.name, v.start_ns, v.end_ns, v.level, span_id=v.span_id,
             kind=v.kind, correlation_id=v.correlation_id,
             tags=dict(v.iter_tags()))
        for v in trace.spans
    ]


def _begin(server):
    return server.begin_trace(
        model="synthetic", system="Tesla_V100",
        framework="tensorflow_like", batch=8,
    )


def test_monitor_refreshes_per_batch_and_finishes():
    server = TracingServer()
    tid = _begin(server)
    monitor = LiveMonitor(server, tid, correlate=True)
    spans = _capture_spans()
    third = len(spans) // 3

    server.publish_many(spans[:third])
    first = monitor.poll()
    assert first is not None and not first.final
    assert first.new_rows == third
    assert first.refreshed_rules  # everything ran on the first refresh

    # Quiet capture: no rows -> no update, no rule evaluations.
    evaluations = dict(monitor.engine.evaluations)
    assert monitor.poll() is None
    assert monitor.engine.evaluations == evaluations

    server.publish_many(spans[third:])
    server.end_trace(tid)
    second = monitor.poll()
    assert second is not None and second.final
    assert second.n_spans == len(spans)
    assert monitor.done
    assert monitor.poll() is None

    # The completed capture's report carries real findings: the 100 us
    # inter-kernel gaps make the idle-bubble rule fire.
    assert second.report.by_rule("gpu-idle-bubbles")


def test_monitor_correlates_incrementally():
    """With correlate=True, kernels arriving unparented get resolved to
    their layers across increments, matching the profile view."""
    server = TracingServer()
    tid = _begin(server)
    monitor = LiveMonitor(server, tid, correlate=True)
    spans = _capture_spans()
    # Split on a span boundary such that each increment carries whole
    # layers (parents never arrive after their children's increment).
    layer_ids = [s.span_id for s in spans if s.level is Level.LAYER]
    cut = next(
        i for i, s in enumerate(spans) if s.span_id == layer_ids[1]
    ) + 1
    server.publish_many(spans[:cut])
    update = monitor.poll()
    assert update is not None
    server.publish_many(spans[cut:])
    server.end_trace(tid)
    final = monitor.poll()
    assert final is not None and final.final
    trace = monitor.trace
    # Every execution span ends up parented under some layer span.
    layer_set = set(layer_ids)
    from repro.tracing.span import SpanKind

    executions = [
        s for s in trace.spans if s.kind is SpanKind.EXECUTION
    ]
    assert executions
    assert all(s.parent_id in layer_set for s in executions)


def test_monitor_blocking_updates_with_producer_thread():
    server = TracingServer()
    tid = _begin(server)
    monitor = LiveMonitor(server, tid)
    spans = _capture_spans()

    def produce():
        half = len(spans) // 2
        server.publish_many(spans[:half])
        server.publish_many(spans[half:])
        server.end_trace(tid)

    producer = threading.Thread(target=produce)
    producer.start()
    updates = list(monitor.updates())
    producer.join()
    assert updates  # at least one refresh observed
    assert updates[-1].final
    assert updates[-1].n_spans == len(spans)
    assert sum(u.new_rows for u in updates) == len(spans)


def test_monitor_empty_closed_trace_yields_nothing():
    server = TracingServer()
    tid = _begin(server)
    monitor = LiveMonitor(server, tid)
    server.end_trace(tid)
    assert monitor.poll() is None
    assert monitor.done
