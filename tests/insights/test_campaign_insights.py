"""Campaign-wide aggregation: systemic patterns across a config grid."""

import json

from repro.insights import aggregate_insights
from repro.insights.campaign import SystemicInsight

from factories import make_kernel, make_layer, make_profile


def _hotspot_profile(batch, kernel="volta_scudnn_128x64_relu"):
    return make_profile([
        make_layer(0, "Conv2D", kernels=[
            make_kernel(kernel, 0, latency_ms=9.0),
        ]),
        make_layer(1, "Dense", kernels=[
            make_kernel("volta_sgemm_64x32", 1, latency_ms=1.0),
        ]),
    ], batch=batch)


def test_hotspot_dominates_across_configs():
    profiles = {
        f"resnet|bs{b}": _hotspot_profile(b) for b in (1, 2, 4, 8)
    }
    result = aggregate_insights(profiles)
    assert len(result.reports) == 4
    hotspot = [s for s in result.systemic if s.rule == "kernel-hotspot"]
    assert len(hotspot) == 1
    finding = hotspot[0]
    assert finding.count == 4 and finding.total == 4
    assert finding.prevalence == 1.0
    assert "volta_scudnn_128x64_relu" in finding.title
    assert "4/4 configs" in finding.title
    assert finding.details[0] == "volta_scudnn_128x64_relu"
    assert set(finding.configs) == set(profiles)


def test_severity_cutoff_filters_rollup():
    profiles = {"p": _hotspot_profile(1)}
    none = aggregate_insights(profiles, severity_cutoff=1.01)
    assert none.systemic == []
    assert len(none.reports) == 1  # per-point reports still collected
    all_fired = aggregate_insights(profiles, severity_cutoff=0.0)
    assert {s.rule for s in all_fired.systemic} >= {
        "kernel-hotspot", "memory-pressure",
    }


def test_ranking_prefers_widespread_then_severe():
    # hotspot fires hot in every config; library-mix only in one.
    profiles = {
        "a": _hotspot_profile(1),
        "b": _hotspot_profile(2),
        "c": make_profile([
            make_layer(0, "Relu", kernels=[
                make_kernel("Eigen::TensorCwiseBinaryOp<scalar_max_op>", 0,
                            latency_ms=5.0),
            ]),
        ]),
    }
    result = aggregate_insights(profiles, severity_cutoff=0.5)
    prevalences = [s.prevalence for s in result.systemic]
    assert prevalences == sorted(prevalences, reverse=True)


def test_out_of_memory_points_surface():
    result = aggregate_insights(
        {"ok": _hotspot_profile(1)},
        out_of_memory=["big_model|bs256", "big_model|bs512"],
    )
    assert result.out_of_memory == ("big_model|bs256", "big_model|bs512")
    assert "exceeded device memory" in result.render()


def test_serialization_round_trip():
    result = aggregate_insights({"p": _hotspot_profile(4)})
    data = result.to_dict()
    json.dumps(data)
    assert "p" in data["points"]
    assert all("prevalence" in s for s in data["systemic"])
    assert isinstance(result.systemic[0], SystemicInsight)
    assert "configurations analyzed" in result.render()


def test_grid_supplies_the_sweep_ingredient():
    # Points sharing (model, system, framework) form a batch->latency
    # curve, so the batch-scaling-knee rule runs without an explicit sweep.
    profiles = {
        f"resnet|bs{b}": _hotspot_profile(b) for b in (1, 2, 4, 8)
    }
    result = aggregate_insights(profiles, severity_cutoff=0.0)
    for report in result.reports.values():
        assert "batch-scaling-knee" in report.rules_fired
    # A single-point grid cannot place a knee.
    single = aggregate_insights({"only": _hotspot_profile(1)})
    report = single.reports["only"]
    assert report.skipped_rules.get("batch-scaling-knee") == "sweep"


def test_universally_skipped_rules_are_surfaced():
    result = aggregate_insights({"p": _hotspot_profile(1)})
    skipped = result.rules_skipped_everywhere
    assert "gpu-idle-bubbles" in skipped  # campaigns carry no traces
    assert "gpu-idle-bubbles" in result.render()
    assert result.to_dict()["rules_skipped_everywhere"] == skipped


def test_campaign_result_insights_end_to_end():
    from repro.campaign import Campaign

    result = Campaign(runs_per_level=1).add_grid([53], [1, 2]).run()
    rollup = result.insights(severity_cutoff=0.2)
    assert len(rollup.reports) == 2
    assert rollup.systemic, "expected systemic findings on a real grid"
    # Point labels match the campaign's.
    for finding in rollup.systemic:
        for label in finding.configs:
            assert label in rollup.reports
