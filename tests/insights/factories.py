"""Factories for insight-engine tests.

``make_profile`` builds fully synthetic :class:`ModelProfile` objects
with tunable bottleneck shapes, so each rule can be exercised at and
around its thresholds without running the (comparatively slow) profiling
pipeline.
"""

from __future__ import annotations

import random

from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile
from repro.tracing import Level, Span, SpanKind, Trace


def make_kernel(
    name: str,
    layer_index: int,
    position: int = 0,
    *,
    latency_ms: float = 1.0,
    flops: float = 1e9,
    dram_read: float = 1e6,
    dram_write: float = 1e6,
    occupancy: float = 0.5,
) -> KernelProfile:
    return KernelProfile(
        name=name,
        layer_index=layer_index,
        position=position,
        latency_ms=latency_ms,
        flops=flops,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        achieved_occupancy=occupancy,
        grid=(1, 1, 1),
        block=(128, 1, 1),
    )


def make_layer(
    index: int,
    layer_type: str = "Conv2D",
    *,
    latency_ms: float | None = None,
    alloc_bytes: int = 1 << 20,
    kernels: list[KernelProfile] | None = None,
) -> LayerProfile:
    kernels = kernels if kernels is not None else [
        make_kernel(f"kernel_{layer_type.lower()}_{index}", index)
    ]
    kernel_ms = sum(k.latency_ms for k in kernels)
    return LayerProfile(
        index=index,
        name=f"layer{index}/{layer_type}",
        layer_type=layer_type,
        shape=(64, 32, 32),
        latency_ms=latency_ms if latency_ms is not None else kernel_ms * 1.1,
        alloc_bytes=alloc_bytes,
        kernels=kernels,
    )


def make_profile(
    layers: list[LayerProfile],
    *,
    batch: int = 8,
    system: str = "Tesla_V100",
    model_latency_ms: float | None = None,
) -> ModelProfile:
    total = sum(layer.latency_ms for layer in layers)
    return ModelProfile(
        model_name="synthetic",
        system=system,
        framework="tensorflow_like",
        batch=batch,
        model_latency_ms=(
            model_latency_ms if model_latency_ms is not None else total * 1.05
        ),
        layers=layers,
        n_runs=1,
    )


def make_matching_trace(
    profile: ModelProfile, *, gap_us: float = 0.0, seed: int = 0
) -> Trace:
    """A trace whose GPU timeline mirrors ``profile``'s kernels.

    One model span, one layer span per layer, and per kernel a
    launch/execution pair with ``gap_us`` of device idle between
    consecutive executions.
    """
    rng = random.Random(seed)
    trace = Trace(trace_id=rng.randint(1, 1 << 30))
    sid = 1
    cursor = 0
    spans: list[Span] = []
    cid = 1
    for layer in profile.layers:
        layer_start = cursor
        for kernel in layer.kernels:
            dur = max(1, int(kernel.latency_ms * 1e6))
            spans.append(
                Span(f"launch:{kernel.name}", cursor, cursor + 500,
                     Level.GPU_KERNEL, span_id=sid, kind=SpanKind.LAUNCH,
                     correlation_id=cid)
            )
            sid += 1
            spans.append(
                Span(kernel.name, cursor + 500, cursor + 500 + dur,
                     Level.GPU_KERNEL, span_id=sid, kind=SpanKind.EXECUTION,
                     correlation_id=cid)
            )
            sid += 1
            cid += 1
            cursor += 500 + dur + int(gap_us * 1e3)
        spans.append(
            Span(f"layer{layer.index}", layer_start, max(cursor, layer_start + 1),
                 Level.LAYER, span_id=sid,
                 tags={"layer_index": layer.index})
        )
        sid += 1
    spans.append(
        Span("predict", 0, max(cursor, 1), Level.MODEL, span_id=sid)
    )
    trace.extend(spans)
    return trace


def build_basic_profile() -> ModelProfile:
    """A mixed profile: conv hotspots plus an element-wise tail."""
    layers = [
        make_layer(0, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64_relu", 0, latency_ms=4.0,
                        flops=8e10, dram_read=5e8, dram_write=5e8,
                        occupancy=0.55),
        ]),
        make_layer(1, "BatchNorm", kernels=[
            make_kernel("Eigen::TensorCwiseBinaryOp<scalar_product_op>", 1,
                        latency_ms=0.4, flops=1e7, dram_read=4e8,
                        dram_write=4e8, occupancy=0.8),
        ]),
        make_layer(2, "Relu", kernels=[
            make_kernel("Eigen::TensorCwiseBinaryOp<scalar_max_op>", 2,
                        latency_ms=0.3, flops=0.0, dram_read=4e8,
                        dram_write=4e8, occupancy=0.8),
        ]),
        make_layer(3, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64_relu", 3, latency_ms=3.0,
                        flops=6e10, dram_read=4e8, dram_write=4e8,
                        occupancy=0.5),
        ]),
        make_layer(4, "Dense", kernels=[
            make_kernel("volta_sgemm_128x64_nn", 4, latency_ms=1.0,
                        flops=2e10, dram_read=2e8, dram_write=2e8,
                        occupancy=0.6),
        ]),
    ]
    return make_profile(layers)
