"""Architecture-specific structure tests."""

import pytest

from repro.frameworks import TFSim
from repro.frameworks.shapes import infer_shapes, model_weight_bytes
from repro.models import get_model
from repro.models.mobilenet import mobilenet_v1, mobilenet_v2
from repro.models.resnet import mlperf_resnet50_v15, resnet_v1, resnet_v2
from repro.models.vgg import vgg
from repro.sim import CudaRuntime, VirtualClock, get_system


def _tf_plan(graph):
    rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
    return TFSim(rt).load(graph)


def test_resnet50_conv_count():
    g = mlperf_resnet50_v15()
    assert g.op_histogram()["Conv2D"] == 53


def test_resnet50_tf_layer_count_near_paper():
    """Paper: 234 executed layers for MLPerf_ResNet50_v1.5."""
    model = _tf_plan(mlperf_resnet50_v15())
    assert 225 <= model.n_layers <= 240
    types = model.layer_types()
    assert types["Conv2D"] == 53
    assert types["Mul"] == 53  # one per decomposed BN
    assert types["AddN"] == 16  # one per residual block


def test_resnet_depths_scale():
    assert resnet_v1(101).op_histogram()["Conv2D"] > \
        resnet_v1(50).op_histogram()["Conv2D"]
    assert resnet_v1(152).op_histogram()["Conv2D"] > \
        resnet_v1(101).op_histogram()["Conv2D"]


def test_resnet_v2_has_preactivation():
    g = resnet_v2(50)
    order = [n.op for n in g.topological_order()]
    # v2 starts stage blocks with BN before conv (after the stem).
    assert "BatchNorm" in order


def test_mobilenet_alpha_reduces_weights():
    full = model_weight_bytes(mobilenet_v1(1.0, 224))
    half = model_weight_bytes(mobilenet_v1(0.5, 224))
    quarter = model_weight_bytes(mobilenet_v1(0.25, 224))
    assert quarter < half < full


def test_mobilenet_resolution_changes_flops_not_weights():
    big = mobilenet_v1(1.0, 224)
    small = mobilenet_v1(1.0, 128)
    assert model_weight_bytes(big) == model_weight_bytes(small)
    shapes_big = infer_shapes(big, 1)
    shapes_small = infer_shapes(small, 1)
    assert shapes_big["conv2d"].elems > shapes_small["conv2d"].elems


def test_mobilenet_v2_inverted_residuals():
    g = mobilenet_v2(1.0, 224)
    assert g.op_histogram()["Add"] >= 5  # residual connections exist


def test_vgg_structure():
    g16, g19 = vgg(16), vgg(19)
    assert g16.op_histogram()["Conv2D"] == 13
    assert g19.op_histogram()["Conv2D"] == 16
    assert g16.op_histogram()["Dense"] == 3
    with pytest.raises(ValueError):
        vgg(11)


def test_vgg_graph_size_larger_than_resnet():
    """Table VIII: VGG16 528 MB vs ResNet50 ~100 MB graphs."""
    assert model_weight_bytes(vgg(16)) > \
        2 * model_weight_bytes(mlperf_resnet50_v15())


def test_inception_v3_has_parallel_branches():
    g = get_model(3).graph
    assert g.op_histogram()["Concat"] >= 9


def test_detection_models_dominated_by_where_ops():
    """Sec. IV-A: OD model graphs are full of Where layers."""
    for model_id in (40, 43, 44, 45, 47):
        hist = get_model(model_id).graph.op_histogram()
        assert hist["Where"] >= 50, f"model {model_id} has too few Where ops"


def test_faster_rcnn_nas_is_huge():
    g = get_model(38).graph
    hist = g.op_histogram()
    assert hist.get("DepthwiseConv2D", 0) >= 30


def test_deeplab_outputs_at_input_resolution_scale():
    g = get_model(52).graph
    shapes = infer_shapes(g, 1)
    out = [n for n in g.outputs()][0]
    assert shapes[out.name].height >= 500  # decoder upsamples back


def test_srgan_upscales_4x():
    g = get_model(55).graph
    shapes = infer_shapes(g, 1)
    out = g.outputs()[0]
    in_h = shapes[g.input_node.name].height
    assert shapes[out.name].height == in_h * 4
