"""Zoo registry tests: all 65 models build and validate."""

import pytest

from repro.frameworks import MXSim, TFSim
from repro.frameworks.shapes import infer_shapes, model_weight_bytes
from repro.models import MODEL_ZOO, MXNET_ZOO, get_model, list_models
from repro.models.zoo import image_classification_ids
from repro.sim import CudaRuntime, VirtualClock, get_system


def test_55_models_registered():
    assert sorted(MODEL_ZOO) == list(range(1, 56))


def test_10_mxnet_models_registered():
    assert sorted(MXNET_ZOO) == [4, 5, 6, 8, 10, 11, 18, 23, 28, 34]


def test_task_breakdown_matches_table8():
    by_task = {}
    for entry in MODEL_ZOO.values():
        by_task.setdefault(entry.task, []).append(entry.model_id)
    assert len(by_task["IC"]) == 37
    assert len(by_task["OD"]) == 10
    assert len(by_task["IS"]) == 4
    assert len(by_task["SS"]) == 3
    assert len(by_task["SR"]) == 1


def test_image_classification_ids():
    ids = image_classification_ids()
    assert len(ids) == 37
    assert ids[0] == 1 and ids[-1] == 37


@pytest.mark.parametrize("model_id", sorted(MODEL_ZOO))
def test_every_model_builds_and_infers_shapes(model_id):
    entry = get_model(model_id)
    graph = entry.graph
    graph.validate()
    shapes = infer_shapes(graph, 2)
    assert all(shape.batch == 2 for shape in shapes.values())
    assert model_weight_bytes(graph) > 0


@pytest.mark.parametrize("model_id", [7, 18, 44, 52, 55])
def test_representative_models_execute_on_both_frameworks(model_id):
    graph = get_model(model_id).graph
    for cls in (TFSim, MXSim):
        rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
        fw = cls(rt)
        result = fw.predict(fw.load(graph), 1)
        assert result.latency_ms > 0
        assert rt.memory.live_bytes == 0


def test_lookup_by_name_and_id():
    assert get_model("MLPerf_ResNet50_v1.5").model_id == 7
    assert get_model(7).name == "MLPerf_ResNet50_v1.5"
    with pytest.raises(KeyError):
        get_model(99)
    with pytest.raises(KeyError):
        get_model("NoSuchNet")


def test_list_models_filter():
    assert len(list_models()) == 55
    assert all(e.task == "OD" for e in list_models("OD"))


def test_paper_reference_data_carried():
    entry = get_model(7)
    assert entry.paper.optimal_batch == 256
    assert entry.paper.online_latency_ms == 6.22
    assert entry.paper.max_throughput == 930.7
    assert entry.paper.conv_pct == 58.7


def test_graph_cached_per_entry():
    entry = get_model(7)
    assert entry.graph is entry.graph
