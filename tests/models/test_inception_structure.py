"""Inception family structural tests."""

from repro.frameworks.shapes import infer_shapes, model_weight_bytes
from repro.models import get_model


def test_v3_stem_reaches_35x35():
    g = get_model(3).graph  # Inception v3 at 299x299
    shapes = infer_shapes(g, 1)
    # After the stem the grid is 35x35 (paper architecture).
    stem_out = [s for s in shapes.values()
                if len(s.dims) == 4 and s.height == 35]
    assert stem_out


def test_v3_output_is_mixed_channel_concat():
    g = get_model(3).graph
    shapes = infer_shapes(g, 1)
    final_concats = [n for n in g.nodes() if n.op == "Concat"]
    assert shapes[final_concats[-1].name].channels == 2048


def test_v4_deeper_than_v3():
    v3, v4 = get_model(3).graph, get_model(2).graph
    assert v4.op_histogram()["Conv2D"] > v3.op_histogram()["Conv2D"]
    assert model_weight_bytes(v4) > model_weight_bytes(v3)


def test_inception_resnet_has_residual_adds():
    g = get_model(1).graph
    assert g.op_histogram()["Add"] >= 20


def test_asymmetric_convs_present_in_v3():
    g = get_model(3).graph
    kernels = {tuple(n.attrs["kernel"]) if isinstance(n.attrs["kernel"], tuple)
               else (n.attrs["kernel"], n.attrs["kernel"])
               for n in g.nodes() if n.op == "Conv2D"}
    assert (1, 7) in kernels and (7, 1) in kernels


def test_googlenet_flavours_share_structure():
    plain = get_model(21).graph  # Inception v1
    caffe = get_model(22).graph  # BVLC GoogLeNet (LRN, no BN)
    assert plain.op_histogram()["Conv2D"] == caffe.op_histogram()["Conv2D"]
    assert "LRN" in caffe.op_histogram()
    assert "LRN" not in plain.op_histogram()
    assert "BatchNorm" not in caffe.op_histogram()
