"""Every zoo model executes end-to-end at batch 1 on the TF-like stack."""

import pytest

from repro.frameworks import TFSim
from repro.models import MODEL_ZOO, get_model
from repro.sim import CudaRuntime, VirtualClock, get_system


@pytest.mark.parametrize("model_id", sorted(MODEL_ZOO))
def test_model_runs_at_batch_one(model_id):
    entry = get_model(model_id)
    rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
    fw = TFSim(rt)
    result = fw.predict(fw.load(entry.graph), 1)
    assert result.latency_ms > 0.1
    assert rt.memory.live_bytes == 0
    assert rt.launch_records, "every model must launch GPU kernels"


def test_online_latency_sanity_bands():
    """Coarse sanity: online latencies sit in plausible bands per task."""
    rt_latency = {}
    for model_id in (7, 18, 44, 38):
        entry = get_model(model_id)
        rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
        fw = TFSim(rt)
        rt_latency[model_id] = fw.predict(fw.load(entry.graph), 1).latency_ms
    assert rt_latency[18] < rt_latency[7] < rt_latency[44] < rt_latency[38]


def test_zoo_accuracy_ordering_within_ic():
    """Table VIII sorts IC models by reported accuracy."""
    from repro.models import list_models

    accuracies = [e.paper.accuracy for e in list_models("IC")]
    assert accuracies == sorted(accuracies, reverse=True)


def test_zoo_sweep_batches_start_at_one():
    for entry in MODEL_ZOO.values():
        assert entry.sweep_batches[0] == 1
        assert list(entry.sweep_batches) == sorted(entry.sweep_batches)
