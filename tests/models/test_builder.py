"""ModelBuilder tests."""

from repro.frameworks.shapes import infer_shapes
from repro.models import ModelBuilder


def test_tf_style_unique_names():
    b = ModelBuilder("m")
    assert b.unique("conv2d") == "conv2d"
    assert b.unique("conv2d") == "conv2d_1"
    assert b.unique("conv2d") == "conv2d_2"
    assert b.unique("relu") == "relu"


def test_conv_bn_relu_block():
    b = ModelBuilder("m")
    x = b.input(3, 8, 8)
    out = b.conv_bn_relu(x, 16, 3)
    g = b.build()
    assert g.op_histogram() == {"Input": 1, "Conv2D": 1, "BatchNorm": 1,
                                "Relu": 1}
    assert infer_shapes(g, 2)[out].dims == (2, 16, 8, 8)


def test_separable_block():
    b = ModelBuilder("m")
    x = b.input(32, 16, 16)
    out = b.separable_block(x, 64, strides=2)
    g = b.build()
    hist = g.op_histogram()
    assert hist["DepthwiseConv2D"] == 1 and hist["Conv2D"] == 1
    assert hist["Relu6"] == 2
    assert infer_shapes(g, 1)[out].dims == (1, 64, 8, 8)


def test_classifier_head():
    b = ModelBuilder("m")
    x = b.input(3, 8, 8)
    x = b.conv(x, 8, 3)
    out = b.classifier(x, classes=100)
    g = b.build()
    assert infer_shapes(g, 4)[out].dims == (4, 100)


def test_residual_and_concat():
    b = ModelBuilder("m")
    x = b.input(4, 8, 8)
    a = b.conv(x, 4, 3)
    summed = b.add([x, a])
    cat = b.concat([summed, a])
    g = b.build()
    shapes = infer_shapes(g, 1)
    assert shapes[summed].channels == 4
    assert shapes[cat].channels == 8
