"""Shared fixtures.

Sessions and profiled runs are expensive enough (virtual-time execution of
hundreds of layers) that integration fixtures are module/session scoped.
"""

from __future__ import annotations

import pytest

from repro.core import AnalysisPipeline, XSPSession
from repro.frameworks import Graph
from repro.models import get_model


def small_cnn() -> Graph:
    """A tiny but structurally complete CNN (conv/bn/relu/residual/fc)."""
    g = Graph("small_cnn")
    g.add_op("input", "Input", shape=(3, 32, 32))
    g.add_op("conv1", "Conv2D", ["input"], filters=16, kernel=3, strides=1,
             padding="same")
    g.add_op("bn1", "BatchNorm", ["conv1"])
    g.add_op("relu1", "Relu", ["bn1"])
    g.add_op("conv2", "Conv2D", ["relu1"], filters=16, kernel=3, strides=1,
             padding="same")
    g.add_op("bn2", "BatchNorm", ["conv2"])
    g.add_op("res", "Add", ["relu1", "bn2"])
    g.add_op("relu2", "Relu", ["res"])
    g.add_op("pool", "MaxPool", ["relu2"], kernel=2, strides=2)
    g.add_op("gap", "GlobalAvgPool", ["pool"])
    g.add_op("fc", "Dense", ["gap"], units=10)
    g.add_op("softmax", "Softmax", ["fc"])
    g.validate()
    return g


@pytest.fixture(scope="session")
def cnn_graph() -> Graph:
    return small_cnn()


@pytest.fixture(scope="session")
def v100_session() -> XSPSession:
    return XSPSession(system="Tesla_V100", framework="tensorflow_like")


@pytest.fixture(scope="session")
def mx_session() -> XSPSession:
    return XSPSession(system="Tesla_V100", framework="mxnet_like")


@pytest.fixture(scope="session")
def cnn_profile(cnn_graph):
    pipeline = AnalysisPipeline(
        XSPSession(system="Tesla_V100", framework="tensorflow_like"),
        runs_per_level=2,
    )
    return pipeline.profile_model(cnn_graph, batch=8)


@pytest.fixture(scope="session")
def resnet50_profile():
    pipeline = AnalysisPipeline(
        XSPSession(system="Tesla_V100", framework="tensorflow_like"),
        runs_per_level=2,
    )
    return pipeline.profile_model(get_model(7).graph, batch=256)


@pytest.fixture(scope="session")
def resnet50_sweep():
    pipeline = AnalysisPipeline(
        XSPSession(system="Tesla_V100", framework="tensorflow_like"),
        runs_per_level=1,
    )
    return pipeline.sweep(get_model(7).graph, [1, 4, 16, 32, 64, 256])
