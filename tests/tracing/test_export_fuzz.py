"""Round-trip fuzz for the trace storage and JSON export.

Randomized traces with exotic tag/log values (objects, nested tuples,
bytes, unicode names), random parent assignments, and every level/kind
must survive ``trace_from_json(trace_to_json(t))`` with span ids,
parents, and levels intact.  Values only need to *serialize* (exotic
ones may degrade to ``repr``); identity and structure must be lossless.

The same corpus fuzzes the storage stack itself: ingesting a ``Span``
into the columnar ``SpanTable`` and reading it back through a view must
be the identity, view materialization (promoting packed tags) must not
change what the exporter sees, and a JSON round trip must reproduce the
columns exactly.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.tracing import Level, Span, SpanKind, Trace
from repro.tracing.export import trace_from_json, trace_to_json

_NAMES = (
    "predict",
    "conv2d_тест",  # cyrillic
    "カーネル",  # japanese
    "Eigen::TensorCwiseBinaryOp<scalar_max_op<float>, const T1, T2>",
    "layer/with/slashes and spaces",
    "emoji🔥kernel",
    "",  # empty name
)


@dataclasses.dataclass
class _Opaque:
    """A non-JSON value someone stuffed into tags/logs."""

    x: int

    def __repr__(self) -> str:
        return f"Opaque(x={self.x})"


def _exotic_value(rng: random.Random):
    choices = (
        lambda: rng.randint(-(1 << 40), 1 << 40),
        lambda: rng.random() * 1e12,
        lambda: rng.choice(_NAMES),
        lambda: None,
        lambda: rng.random() < 0.5,
        lambda: (rng.randint(0, 9),) * rng.randint(0, 4),  # tuple shapes
        lambda: [(1, 2), {"nested": (3, 4)}],
        lambda: {"k": {"deep": (5, 6)}, 7: "int-key"},
        lambda: _Opaque(rng.randint(0, 99)),
        lambda: b"\x00raw-bytes",
        lambda: float("inf"),
    )
    return rng.choice(choices)()


def _random_spans(rng: random.Random) -> list[Span]:
    n = rng.randint(1, 40)
    spans: list[Span] = []
    span_ids: list[int] = []
    for i in range(n):
        start = rng.randint(0, 10**9)
        span = Span(
            name=rng.choice(_NAMES),
            start_ns=start,
            end_ns=start + rng.randint(0, 10**6),
            level=rng.choice(list(Level)),
            span_id=1000 + i,
            parent_id=rng.choice(span_ids) if span_ids and rng.random() < 0.7
            else None,
            kind=rng.choice(list(SpanKind)),
            correlation_id=rng.randint(1, 99) if rng.random() < 0.5 else None,
            tags={f"tag{j}": _exotic_value(rng) for j in range(rng.randint(0, 4))},
        )
        for _ in range(rng.randint(0, 3)):
            span.log(
                rng.randint(0, 10**9),
                **{f"f{j}": _exotic_value(rng) for j in range(rng.randint(1, 3))},
            )
        spans.append(span)
        span_ids.append(span.span_id)
    return spans


def _random_trace(seed: int) -> Trace:
    rng = random.Random(seed)
    trace = Trace(
        trace_id=rng.randint(1, 1 << 31),
        metadata={"model": rng.choice(_NAMES), "weird": _exotic_value(rng)},
    )
    trace.extend(_random_spans(rng))
    return trace


@pytest.mark.parametrize("seed", range(25))
def test_round_trip_preserves_identity_and_structure(seed):
    original = _random_trace(seed)
    restored = trace_from_json(trace_to_json(original))

    assert restored.trace_id == original.trace_id
    assert len(restored) == len(original)
    for a, b in zip(original.spans, restored.spans):
        assert b.span_id == a.span_id
        assert b.parent_id == a.parent_id
        assert b.level is a.level
        assert b.kind is a.kind
        assert b.name == a.name
        assert (b.start_ns, b.end_ns) == (a.start_ns, a.end_ns)
        assert b.correlation_id == a.correlation_id
        assert len(b.logs) == len(a.logs)
        for la, lb in zip(a.logs, b.logs):
            assert lb.timestamp_ns == la.timestamp_ns
            assert set(lb.fields) == {str(k) for k in la.fields}


@pytest.mark.parametrize("seed", range(25))
def test_round_trip_is_stable(seed):
    """Export of a restored trace is byte-identical (fixpoint after one
    trip: exotic values have already degraded to their JSON forms)."""
    once = trace_to_json(_random_trace(seed))
    assert trace_to_json(trace_from_json(once)) == once


# -- storage equivalence: Span -> SpanTable -> view is the identity ---------


def _columns(trace: Trace) -> dict:
    table = trace.table
    return {
        "span_id": table.span_id.tolist(),
        "start_ns": table.start_ns.tolist(),
        "end_ns": table.end_ns.tolist(),
        "level": table.level.tolist(),
        "kind": table.kind.tolist(),
        "parent_id": table.parent_id.tolist(),
        "correlation_id": table.correlation_id.tolist(),
        "names": [table.name_of(r) for r in range(len(table))],
        "tags": [dict(table.iter_tags(r)) for r in range(len(table))],
        "logs": [table.peek_logs(r) for r in range(len(table))],
    }


@pytest.mark.parametrize("seed", range(25))
def test_table_views_are_equivalent_to_ingested_spans(seed):
    """Every field read through a view equals the span that was ingested,
    and view/span equality holds in both directions."""
    rng = random.Random(seed * 7919 + 1)
    spans = _random_spans(rng)
    trace = Trace(trace_id=7)
    trace.extend(spans)
    assert len(trace) == len(spans)
    for original, view in zip(spans, trace.spans):
        assert view.name == original.name
        assert view.start_ns == original.start_ns
        assert view.end_ns == original.end_ns
        assert view.duration_ns == original.duration_ns
        assert view.level is original.level
        assert view.kind is original.kind
        assert view.span_id == original.span_id
        assert view.trace_id == original.trace_id == 7  # stamped by add()
        assert view.parent_id == original.parent_id
        assert view.correlation_id == original.correlation_id
        assert dict(view.iter_tags()) == original.tags
        assert view.logs == original.logs
        assert view == original and original == view


@pytest.mark.parametrize("seed", range(25))
def test_view_materialization_does_not_change_export(seed):
    """Promoting every row's packed tags/logs (reading ``view.tags``)
    leaves the JSON export byte-identical: packed and materialized
    storage are the same logical trace."""
    trace = _random_trace(seed)
    before = trace_to_json(trace)
    for view in trace.spans:
        view.tags  # promotes packed tag-sets into the side-store
        view.logs  # materializes empty log lists
    assert trace_to_json(trace) == before


@pytest.mark.parametrize("seed", range(25))
def test_json_round_trip_reproduces_columns(seed):
    """trace -> JSON -> trace reproduces the whole SpanTable: every
    column, interned name, tag mapping, and log list."""
    original = _random_trace(seed)
    restored = trace_from_json(trace_to_json(original))
    a, b = _columns(original), _columns(restored)
    # Exotic tag/log values may only have degraded to their JSON forms;
    # compare those after one normalizing trip.
    for key in ("span_id", "start_ns", "end_ns", "level", "kind",
                "parent_id", "correlation_id", "names"):
        assert b[key] == a[key], key
    roundtwice = trace_from_json(trace_to_json(restored))
    assert _columns(roundtwice) == _columns(restored)


@pytest.mark.parametrize("seed", range(10))
def test_mutation_through_views_reaches_storage_and_export(seed):
    """parent_id writes, tag() and log() through views land in the
    columns/side-stores and round-trip through the export."""
    trace = _random_trace(seed)
    views = list(trace.spans)
    root = views[0]
    for view in views[1:]:
        view.parent_id = root.span_id
    trace.touch_parents()
    views[-1].tag("edited", "yes").log(123, event="flush")
    restored = trace_from_json(trace_to_json(trace))
    restored_views = list(restored.spans)
    for view in restored_views[1:]:
        assert view.parent_id == root.span_id
    assert restored_views[-1].tags["edited"] == "yes"
    assert restored_views[-1].logs[-1].fields == {"event": "flush"}
    assert {v.span_id for v in trace.children_of(root)} == {
        v.span_id for v in restored.children_of(restored_views[0])
    }


@pytest.mark.parametrize("seed", range(10))
def test_round_trip_preserves_hierarchy_queries(seed):
    """Parent/child indexes built on the restored trace match the original."""
    original = _random_trace(seed)
    restored = trace_from_json(trace_to_json(original))
    assert {s.span_id for s in restored.roots()} == {
        s.span_id for s in original.roots()
    }
    for span in original.spans:
        restored_span = restored.by_id()[span.span_id]
        assert {c.span_id for c in restored.children_of(restored_span)} == {
            c.span_id for c in original.children_of(span)
        }
