"""Round-trip fuzz for the trace JSON export.

Randomized traces with exotic tag/log values (objects, nested tuples,
bytes, unicode names), random parent assignments, and every level/kind
must survive ``trace_from_json(trace_to_json(t))`` with span ids,
parents, and levels intact.  Values only need to *serialize* (exotic
ones may degrade to ``repr``); identity and structure must be lossless.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.tracing import Level, Span, SpanKind, Trace
from repro.tracing.export import trace_from_json, trace_to_json

_NAMES = (
    "predict",
    "conv2d_тест",  # cyrillic
    "カーネル",  # japanese
    "Eigen::TensorCwiseBinaryOp<scalar_max_op<float>, const T1, T2>",
    "layer/with/slashes and spaces",
    "emoji🔥kernel",
    "",  # empty name
)


@dataclasses.dataclass
class _Opaque:
    """A non-JSON value someone stuffed into tags/logs."""

    x: int

    def __repr__(self) -> str:
        return f"Opaque(x={self.x})"


def _exotic_value(rng: random.Random):
    choices = (
        lambda: rng.randint(-(1 << 40), 1 << 40),
        lambda: rng.random() * 1e12,
        lambda: rng.choice(_NAMES),
        lambda: None,
        lambda: rng.random() < 0.5,
        lambda: (rng.randint(0, 9),) * rng.randint(0, 4),  # tuple shapes
        lambda: [(1, 2), {"nested": (3, 4)}],
        lambda: {"k": {"deep": (5, 6)}, 7: "int-key"},
        lambda: _Opaque(rng.randint(0, 99)),
        lambda: b"\x00raw-bytes",
        lambda: float("inf"),
    )
    return rng.choice(choices)()


def _random_trace(seed: int) -> Trace:
    rng = random.Random(seed)
    trace = Trace(
        trace_id=rng.randint(1, 1 << 31),
        metadata={"model": rng.choice(_NAMES), "weird": _exotic_value(rng)},
    )
    n = rng.randint(1, 40)
    span_ids: list[int] = []
    for i in range(n):
        start = rng.randint(0, 10**9)
        span = Span(
            name=rng.choice(_NAMES),
            start_ns=start,
            end_ns=start + rng.randint(0, 10**6),
            level=rng.choice(list(Level)),
            span_id=1000 + i,
            parent_id=rng.choice(span_ids) if span_ids and rng.random() < 0.7
            else None,
            kind=rng.choice(list(SpanKind)),
            correlation_id=rng.randint(1, 99) if rng.random() < 0.5 else None,
            tags={f"tag{j}": _exotic_value(rng) for j in range(rng.randint(0, 4))},
        )
        for _ in range(rng.randint(0, 3)):
            span.log(
                rng.randint(0, 10**9),
                **{f"f{j}": _exotic_value(rng) for j in range(rng.randint(1, 3))},
            )
        trace.add(span)
        span_ids.append(span.span_id)
    return trace


@pytest.mark.parametrize("seed", range(25))
def test_round_trip_preserves_identity_and_structure(seed):
    original = _random_trace(seed)
    restored = trace_from_json(trace_to_json(original))

    assert restored.trace_id == original.trace_id
    assert len(restored) == len(original)
    for a, b in zip(original.spans, restored.spans):
        assert b.span_id == a.span_id
        assert b.parent_id == a.parent_id
        assert b.level is a.level
        assert b.kind is a.kind
        assert b.name == a.name
        assert (b.start_ns, b.end_ns) == (a.start_ns, a.end_ns)
        assert b.correlation_id == a.correlation_id
        assert len(b.logs) == len(a.logs)
        for la, lb in zip(a.logs, b.logs):
            assert lb.timestamp_ns == la.timestamp_ns
            assert set(lb.fields) == {str(k) for k in la.fields}


@pytest.mark.parametrize("seed", range(25))
def test_round_trip_is_stable(seed):
    """Export of a restored trace is byte-identical (fixpoint after one
    trip: exotic values have already degraded to their JSON forms)."""
    once = trace_to_json(_random_trace(seed))
    assert trace_to_json(trace_from_json(once)) == once


@pytest.mark.parametrize("seed", range(10))
def test_round_trip_preserves_hierarchy_queries(seed):
    """Parent/child indexes built on the restored trace match the original."""
    original = _random_trace(seed)
    restored = trace_from_json(trace_to_json(original))
    assert {s.span_id for s in restored.roots()} == {
        s.span_id for s in original.roots()
    }
    for span in original.spans:
        restored_span = restored.by_id()[span.span_id]
        assert {c.span_id for c in restored.children_of(restored_span)} == {
            c.span_id for c in original.children_of(span)
        }
