"""TraceIndex: indexed queries agree with naive scans and survive mutation."""

import random

from repro.tracing import Level, Span, SpanKind, Trace
from repro.tracing.correlation import reconstruct_parents


def _random_trace(n=120, seed=5):
    rng = random.Random(seed)
    t = Trace(trace_id=1)
    for i in range(1, n + 1):
        start = rng.randint(0, 10_000)
        end = start + rng.randint(0, 2_000)
        level = rng.choice(list(Level))
        kind = rng.choice(list(SpanKind))
        parent = rng.choice([None, rng.randint(1, n)])
        t.add(Span(f"s{i}", start, end, level, span_id=i, parent_id=parent,
                   kind=kind))
    return t


def test_indexed_queries_match_naive_scans():
    t = _random_trace()
    spans = t.spans
    assert t.sorted_spans() == sorted(
        spans, key=lambda s: (s.start_ns, -s.duration_ns)
    )
    for level in Level:
        assert t.at_level(level) == [s for s in spans if s.level == level]
    for kind in SpanKind:
        assert t.of_kind(kind) == [s for s in spans if s.kind == kind]
    assert t.by_id() == {s.span_id: s for s in spans}
    assert t.levels_present() == sorted({s.level for s in spans})
    assert t.span_extent_ns() == (
        min(s.start_ns for s in spans),
        max(s.end_ns for s in spans),
    )
    ids = {s.span_id for s in spans}
    assert t.roots() == [
        s for s in spans if s.parent_id is None or s.parent_id not in ids
    ]
    for span in spans[:10]:
        expected = sorted(
            (s for s in spans if s.parent_id == span.span_id),
            key=lambda s: s.start_ns,
        )
        assert t.children_of(span) == expected


def test_index_is_reused_across_queries():
    t = _random_trace()
    t.sorted_spans()
    idx = t.index
    t.at_level(Level.LAYER)
    t.by_id()
    assert t.index is idx  # no rebuild between read-only queries


def test_add_invalidates_index():
    t = _random_trace()
    assert len(t.at_level(Level.MODEL)) == sum(
        1 for s in t.spans if s.level == Level.MODEL
    )
    before = len(t.at_level(Level.MODEL))
    t.add(Span("late", 0, 1, Level.MODEL, span_id=999))
    assert len(t.at_level(Level.MODEL)) == before + 1
    assert t.by_id()[999].name == "late"


def test_direct_span_list_append_is_caught_by_length_check():
    t = _random_trace()
    t.sorted_spans()  # build the index
    t.spans.append(Span("sneaky", 0, 5, Level.MODEL, span_id=1000))
    assert 1000 in t.by_id()


def test_returned_containers_are_copies():
    t = _random_trace()
    layer = t.at_level(Level.LAYER)
    n = len(layer)
    layer.clear()  # caller-side mutation must not corrupt the index
    assert len(t.at_level(Level.LAYER)) == n
    ordered = t.sorted_spans()
    ordered.reverse()
    assert t.sorted_spans() == sorted(
        t.spans, key=lambda s: (s.start_ns, -s.duration_ns)
    )


def test_touch_parents_refreshes_children_and_roots():
    t = Trace(trace_id=1)
    t.add(Span("root", 0, 100, Level.MODEL, span_id=1))
    t.add(Span("child", 10, 20, Level.LAYER, span_id=2))
    assert [s.span_id for s in t.roots()] == [1, 2]
    t.by_id()[2].parent_id = 1
    t.touch_parents()
    assert [s.span_id for s in t.roots()] == [1]
    assert [s.span_id for s in t.children_of(t.by_id()[1])] == [2]


def test_reconstruction_updates_parent_indexes_automatically():
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 1000, Level.MODEL, span_id=1))
    t.add(Span("conv", 100, 500, Level.LAYER, span_id=2))
    # Query first so the index (including children/roots) is built...
    assert len(t.roots()) == 2
    # ...then reconstruct: the correlation pass must invalidate it.
    reconstruct_parents(t)
    assert [s.span_id for s in t.roots()] == [1]
    assert [s.span_id for s in t.children_of(t.by_id()[1])] == [2]


def test_empty_trace_queries():
    t = Trace(trace_id=1)
    assert t.sorted_spans() == []
    assert t.at_level(Level.LAYER) == []
    assert t.by_id() == {}
    assert t.roots() == []
    assert t.levels_present() == []
    assert t.span_extent_ns() == (0, 0)
