"""Parent reconstruction + launch/execution correlation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing import (
    AmbiguousParentError,
    Level,
    Span,
    SpanKind,
    Trace,
    correlate_launch_execution,
    reconstruct_parents,
)
from repro.tracing.correlation import build_hierarchy, kernels_by_parent


def _nested_trace():
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 1000, Level.MODEL, span_id=1))
    t.add(Span("conv", 100, 500, Level.LAYER, span_id=2))
    t.add(Span("relu", 500, 800, Level.LAYER, span_id=3))
    t.add(Span("launchA", 150, 160, Level.GPU_KERNEL, span_id=4,
               kind=SpanKind.LAUNCH, correlation_id=1))
    t.add(Span("launchB", 600, 610, Level.GPU_KERNEL, span_id=5,
               kind=SpanKind.LAUNCH, correlation_id=2))
    t.add(Span("kernelA", 200, 400, Level.GPU_KERNEL, span_id=6,
               kind=SpanKind.EXECUTION, correlation_id=1))
    t.add(Span("kernelB", 650, 760, Level.GPU_KERNEL, span_id=7,
               kind=SpanKind.EXECUTION, correlation_id=2))
    return t


def test_layers_get_model_parent():
    t = _nested_trace()
    reconstruct_parents(t)
    assert t.by_id()[2].parent_id == 1
    assert t.by_id()[3].parent_id == 1


def test_launch_spans_get_layer_parent():
    t = _nested_trace()
    reconstruct_parents(t)
    assert t.by_id()[4].parent_id == 2
    assert t.by_id()[5].parent_id == 3


def test_execution_spans_not_parented_by_interval():
    """Execution spans wait for launch/execution correlation."""
    t = _nested_trace()
    reconstruct_parents(t)
    assert t.by_id()[6].parent_id is None


def test_correlate_launch_execution_merges_and_propagates_parent():
    t = _nested_trace()
    reconstruct_parents(t)
    merged = correlate_launch_execution(t)
    assert len(merged) == 2
    kernel_a = next(m for m in merged if m.name == "kernelA")
    assert kernel_a.parent_id == 2  # from the launch span
    assert kernel_a.duration_ns == 200  # from the execution span
    assert t.by_id()[6].parent_id == 2  # propagated onto the exec span


def test_kernels_by_parent_groups():
    t = _nested_trace()
    reconstruct_parents(t)
    groups = kernels_by_parent(t)
    assert {k for k in groups} == {2, 3}


def test_build_hierarchy_runs_both_passes():
    t = _nested_trace()
    result = build_hierarchy(t)
    assert not result.needs_serialized_rerun
    assert len(result.assigned) == 4  # 2 layers + 2 launches


def test_existing_parents_are_preserved():
    t = _nested_trace()
    t.by_id()[2].parent_id = 999  # pre-assigned by the profiler
    reconstruct_parents(t)
    assert t.by_id()[2].parent_id == 999


def test_nested_candidates_pick_tightest():
    t = Trace(trace_id=1)
    t.add(Span("outer", 0, 1000, Level.LAYER, span_id=1))
    t.add(Span("inner", 100, 900, Level.LAYER, span_id=2, parent_id=1))
    # inner is fully nested in outer; the kernel must go to inner.
    t.add(Span("launch", 200, 210, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(t)
    assert t.by_id()[3].parent_id == 2
    assert not result.needs_serialized_rerun


def test_parallel_overlap_is_ambiguous_strict_raises():
    t = Trace(trace_id=1)
    t.add(Span("layerA", 0, 500, Level.LAYER, span_id=1))
    t.add(Span("layerB", 100, 700, Level.LAYER, span_id=2))  # overlaps A
    t.add(Span("launch", 200, 210, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    with pytest.raises(AmbiguousParentError, match="CUDA_LAUNCH_BLOCKING"):
        reconstruct_parents(t, strict=True)


def test_parallel_overlap_nonstrict_flags_rerun():
    t = Trace(trace_id=1)
    t.add(Span("layerA", 0, 500, Level.LAYER, span_id=1))
    t.add(Span("layerB", 100, 700, Level.LAYER, span_id=2))
    t.add(Span("launch", 200, 210, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(t, strict=False)
    assert result.needs_serialized_rerun
    assert t.by_id()[3].parent_id is None


def test_skipped_levels_bridge_to_nearest_present():
    """With no LAYER level in the trace, kernels parent onto the model."""
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 1000, Level.MODEL, span_id=1))
    t.add(Span("launch", 100, 110, Level.GPU_KERNEL, span_id=2,
               kind=SpanKind.LAUNCH, correlation_id=1))
    reconstruct_parents(t)
    assert t.by_id()[2].parent_id == 1


def test_duplicate_correlation_ids_rejected():
    t = Trace(trace_id=1)
    t.add(Span("l1", 0, 10, Level.GPU_KERNEL, span_id=1,
               kind=SpanKind.LAUNCH, correlation_id=5))
    t.add(Span("l2", 10, 20, Level.GPU_KERNEL, span_id=2,
               kind=SpanKind.LAUNCH, correlation_id=5))
    with pytest.raises(ValueError, match="duplicate launch"):
        correlate_launch_execution(t)


def test_launch_without_execution_is_skipped():
    t = Trace(trace_id=1)
    t.add(Span("launch", 0, 10, Level.GPU_KERNEL, span_id=1,
               kind=SpanKind.LAUNCH, correlation_id=1))
    assert correlate_launch_execution(t) == []


# -- property-based: reconstruction yields a level-monotone forest ----------


@st.composite
def layered_trace(draw):
    """Random trace with one model span, nested layers, nested launches."""
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 10_000, Level.MODEL, span_id=1))
    n_layers = draw(st.integers(1, 8))
    cursor = 0
    layer_bounds = []
    for i in range(n_layers):
        width = draw(st.integers(10, 800))
        start = cursor
        end = min(10_000, cursor + width)
        if end <= start:
            break
        t.add(Span(f"layer{i}", start, end, Level.LAYER, span_id=100 + i))
        layer_bounds.append((100 + i, start, end))
        cursor = end + draw(st.integers(0, 50))
    for j in range(draw(st.integers(0, 12))):
        owner = draw(st.sampled_from(layer_bounds))
        _, lo, hi = owner
        if hi - lo < 4:
            continue
        a = draw(st.integers(lo, hi - 2))
        b = draw(st.integers(a + 1, hi))
        t.add(Span(f"launch{j}", a, b, Level.GPU_KERNEL, span_id=200 + j,
                   kind=SpanKind.LAUNCH, correlation_id=j))
    return t


@settings(max_examples=80, deadline=None)
@given(trace=layered_trace())
def test_reconstruction_is_level_monotone_forest(trace):
    reconstruct_parents(trace, strict=True)
    by_id = trace.by_id()
    for span in trace.spans:
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        assert parent.level < span.level
        assert parent.contains(span)
    # No cycles: walking parents always terminates at a root.
    for span in trace.spans:
        seen = set()
        node = span
        while node.parent_id is not None:
            assert node.span_id not in seen
            seen.add(node.span_id)
            node = by_id[node.parent_id]


def test_identical_intervals_are_ambiguous():
    """Two parallel layers spanning the same window cannot disambiguate a
    contained kernel — only a serialized re-run can."""
    t = Trace(trace_id=1)
    t.add(Span("layerA", 0, 500, Level.LAYER, span_id=1))
    t.add(Span("layerB", 0, 500, Level.LAYER, span_id=2))
    t.add(Span("launch", 100, 110, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(t, strict=False)
    assert result.needs_serialized_rerun
    assert t.by_id()[3].parent_id is None
