"""Trace JSON persistence tests."""

import pytest

from repro.tracing import Level, Span, SpanKind, Trace
from repro.tracing.export import (
    FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)


def sample_trace():
    t = Trace(trace_id=42, metadata={"model": "m", "batch": 8})
    t.add(Span("predict", 0, 1000, Level.MODEL, span_id=1,
               tags={"batch": 8, "shape": (8, 3, 4, 4)}))
    t.add(Span("conv", 100, 600, Level.LAYER, span_id=2, parent_id=1))
    launch = Span("kernel", 150, 160, Level.GPU_KERNEL, span_id=3,
                  kind=SpanKind.LAUNCH, correlation_id=9)
    launch.log(155, event="queued")
    t.add(launch)
    return t


def test_round_trip_preserves_everything():
    original = sample_trace()
    restored = trace_from_json(trace_to_json(original))
    assert restored.trace_id == 42
    assert restored.metadata == {"model": "m", "batch": 8}
    assert len(restored) == 3
    for a, b in zip(original.spans, restored.spans):
        assert (a.name, a.start_ns, a.end_ns, a.level, a.span_id,
                a.parent_id, a.kind, a.correlation_id) == \
            (b.name, b.start_ns, b.end_ns, b.level, b.span_id,
             b.parent_id, b.kind, b.correlation_id)
    # tuples become lists in JSON; values are preserved.
    assert restored.spans[0].tags["shape"] == [8, 3, 4, 4]
    assert restored.spans[2].logs[0].fields == {"event": "queued"}


def test_file_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    save_trace(sample_trace(), str(path))
    restored = load_trace(str(path))
    assert len(restored) == 3


def test_version_check():
    import json

    doc = json.loads(trace_to_json(sample_trace()))
    doc["format_version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="format version"):
        trace_from_json(json.dumps(doc))


def test_restored_trace_supports_analysis_queries():
    from repro.tracing import reconstruct_parents

    restored = trace_from_json(trace_to_json(sample_trace()))
    reconstruct_parents(restored)  # the launch span gets its layer parent
    assert [s.name for s in restored.roots()] == ["predict"]
    assert len(restored.at_level(Level.LAYER)) == 1
    assert restored.by_id()[3].parent_id == 2


def test_real_profiled_trace_round_trips(v100_session, cnn_graph):
    from repro.core import ProfilingConfig

    run = v100_session.profile(cnn_graph, 2, ProfilingConfig(metrics=()))
    restored = trace_from_json(trace_to_json(run.trace))
    assert len(restored) == len(run.trace)
    assert restored.levels_present() == run.trace.levels_present()


# -- Chrome trace_event export ----------------------------------------------


def test_chrome_export_structure():
    import json

    from repro.tracing.export import trace_to_chrome

    doc = json.loads(trace_to_chrome(sample_trace()))
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]

    meta = [e for e in events if e["ph"] == "M"]
    names = {e["name"]: e for e in meta}
    assert names["process_name"]["args"]["name"] == "m"
    thread_names = [
        e["args"]["name"] for e in meta if e["name"] == "thread_name"
    ]
    assert "L1 MODEL" in thread_names and "L4 GPU_KERNEL" in thread_names

    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 3
    predict = next(e for e in complete if e["name"] == "predict")
    assert predict["ts"] == 0 and predict["dur"] == 1.0  # microseconds
    assert predict["args"]["span_id"] == 1
    assert predict["tid"] == int(Level.MODEL)


def test_chrome_export_flow_events_join_launch_execution():
    import json

    from repro.tracing.export import trace_to_chrome

    t = sample_trace()
    t.add(Span("kernel", 200, 230, Level.GPU_KERNEL, span_id=4,
               kind=SpanKind.EXECUTION, correlation_id=9))
    events = json.loads(trace_to_chrome(t))["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"] == 9
    assert finishes[0]["bp"] == "e"


def test_trace_method_delegates_to_export():
    t = sample_trace()
    from repro.tracing.export import trace_to_chrome

    assert t.to_chrome_trace() == trace_to_chrome(t)


def test_non_json_log_fields_export_via_jsonable():
    """Regression: a span log carrying a non-JSON object (tags already
    degraded via _jsonable; log fields crashed trace_to_json)."""

    class Payload:
        def __repr__(self):
            return "Payload<7>"

    t = Trace(trace_id=1)
    span = Span("predict", 0, 10, Level.MODEL, span_id=1)
    span.log(5, payload=Payload(), shape=(1, 2), ok=True)
    t.add(span)
    restored = trace_from_json(trace_to_json(t))  # must not raise
    fields = restored.spans[0].logs[0].fields
    assert fields["payload"] == "Payload<7>"
    assert fields["shape"] == [1, 2]
    assert fields["ok"] is True
