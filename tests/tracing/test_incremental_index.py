"""Incremental index maintenance: the no-rebuild-on-append contract.

PR 5's tentpole: appending spans to a trace must not invalidate its
``TraceIndex`` — the next query *advances* the index, merge-sorting the
pending tail into the built structures.  These tests guard the contract
directly (`k` appends followed by queries cost at most one cold build,
ever) and check the maintained structures stay identical to a cold
rebuild, including the gap folds and the incremental correlation
watermarks layered on top.
"""

from __future__ import annotations

import random

import pytest

import repro.tracing.index as index_mod
from repro.tracing import (
    LaunchExecutionState,
    Level,
    Span,
    SpanKind,
    Trace,
    correlate_launch_execution,
    reconstruct_parents,
)


def _span(i: int, start: int, end: int, level=Level.GPU_KERNEL, **kwargs):
    return Span(f"s{i % 4}", start, end, level, span_id=i, **kwargs)


def _count_cold_builds(monkeypatch):
    """Patch the module's timeline sort to count *cold* (full) builds."""
    calls = {"cold": 0}
    original = index_mod._timeline_rows

    def counting(table, rows=None, *, n=None):
        if rows is None:
            calls["cold"] += 1
        return original(table, rows, n=n)

    monkeypatch.setattr(index_mod, "_timeline_rows", counting)
    return calls


def test_k_appends_and_queries_cost_one_cold_build(monkeypatch):
    """The interleaved add/query pathology: k single-span appends each
    followed by a query must not cost k full index rebuilds."""
    trace = Trace(trace_id=1)
    for i in range(1, 201):
        trace.add(_span(i, 10 * i, 10 * i + 8))
    calls = _count_cold_builds(monkeypatch)
    trace.sorted_spans()  # the one cold build
    assert calls["cold"] == 1
    index_before = trace.index
    for i in range(201, 251):
        trace.add(_span(i, 10 * i, 10 * i + 8))
        assert trace.sorted_spans()[-1].span_id == i
        assert trace.index.row_by_id()[i] == i - 1
    assert calls["cold"] == 1  # 50 appendsx queries, zero extra rebuilds
    assert trace.index is index_before  # same index object, advanced


def test_append_then_query_matches_cold_rebuild():
    rng = random.Random(5)
    trace = Trace(trace_id=1)
    for i in range(1, 401):
        start = rng.randint(0, 50_000)
        trace.add(
            _span(
                i,
                start,
                start + rng.randint(1, 2_000),
                rng.choice(list(Level)),
                kind=rng.choice(list(SpanKind)),
            )
        )
        if i % 61 == 0:
            trace.sorted_spans()  # keep the index live mid-growth
            trace.gaps(Level.GPU_KERNEL)
    incremental = {
        "sorted": [s.span_id for s in trace.sorted_spans()],
        "gaps": trace.gaps(Level.GPU_KERNEL),
        "roots": [s.span_id for s in trace.roots()],
        "extent": trace.span_extent_ns(),
        "levels": trace.levels_present(),
    }
    trace.invalidate_index()
    cold = {
        "sorted": [s.span_id for s in trace.sorted_spans()],
        "gaps": trace.gaps(Level.GPU_KERNEL),
        "roots": [s.span_id for s in trace.roots()],
        "extent": trace.span_extent_ns(),
        "levels": trace.levels_present(),
    }
    assert incremental == cold


def test_in_order_appends_extend_gap_list_in_place():
    """Time-ordered appends continue the gap fold — the cached list
    object is extended, never recomputed from scratch."""
    trace = Trace(trace_id=1)
    trace.add(_span(1, 0, 10))
    trace.add(_span(2, 20, 30))
    gaps = trace.index.gaps(Level.GPU_KERNEL)
    assert [(g.start_ns, g.end_ns) for g in gaps] == [(10, 20)]
    trace.add(_span(3, 50, 60))
    gaps_after = trace.index.gaps(Level.GPU_KERNEL)
    assert gaps_after is gaps  # same list, folded forward
    assert [(g.start_ns, g.end_ns) for g in gaps] == [(10, 20), (30, 50)]
    assert [g.before_id for g in gaps] == [1, 2]


def test_out_of_order_append_rebuilds_gap_key_correctly():
    """A span landing before already-folded rows can split or fill a
    gap; the key falls back to a recompute and stays correct."""
    trace = Trace(trace_id=1)
    trace.add(_span(1, 0, 10))
    trace.add(_span(2, 100, 110))
    assert [(g.start_ns, g.end_ns) for g in trace.gaps(Level.GPU_KERNEL)] == [
        (10, 100)
    ]
    trace.add(_span(3, 40, 60))  # fills the middle of the recorded gap
    assert [(g.start_ns, g.end_ns) for g in trace.gaps(Level.GPU_KERNEL)] == [
        (10, 40),
        (60, 100),
    ]
    trace.invalidate_index()
    assert [(g.start_ns, g.end_ns) for g in trace.gaps(Level.GPU_KERNEL)] == [
        (10, 40),
        (60, 100),
    ]


def test_new_span_id_resolves_dangling_parent_root():
    """An append can turn an existing root into a child (its dangling
    parent_id becomes a real span id) — the advance must notice."""
    trace = Trace(trace_id=1)
    trace.add(_span(1, 10, 20, parent_id=99))
    assert [s.span_id for s in trace.roots()] == [1]  # parent unknown
    trace.add(_span(99, 0, 100, Level.LAYER))
    assert [s.span_id for s in trace.roots()] == [99]
    assert [c.span_id for c in trace.children_of(trace.by_id()[99])] == [1]


def test_watermark_tracks_completed_appends():
    trace = Trace(trace_id=1)
    assert trace.watermark == 0
    trace.add(_span(1, 0, 5))
    assert trace.watermark == 1 == len(trace)
    trace.add_row(name="r", start_ns=5, end_ns=9, level=Level.MODEL, span_id=2)
    assert trace.watermark == 2
    assert trace.index.covered == 2


def test_pure_python_advance_matches_numpy(monkeypatch):
    """The advance path is index-representation agnostic: grow two
    traces identically, one with numpy cold builds and one without."""
    rng = random.Random(17)
    spans = []
    for i in range(1, 301):
        start = rng.randint(0, 30_000)
        spans.append(
            _span(i, start, start + rng.randint(1, 900),
                  rng.choice(list(Level)), kind=rng.choice(list(SpanKind)))
        )

    def grow(trace):
        out = []
        for i, s in enumerate(spans):
            trace.add(
                Span(s.name, s.start_ns, s.end_ns, s.level,
                     span_id=s.span_id, kind=s.kind)
            )
            if i % 41 == 0:
                out.append([v.span_id for v in trace.sorted_spans()])
        out.append([v.span_id for v in trace.sorted_spans()])
        out.append(trace.span_extent_ns())
        return out

    accelerated = grow(Trace(trace_id=1))
    monkeypatch.setattr(index_mod, "_np", None)
    fallback = grow(Trace(trace_id=2))
    assert fallback == accelerated


# -- incremental correlation (the since_row watermark) ----------------------


def _layer_with_kernels(layer_id: int, start: int, n_kernels: int, sid: int):
    """One layer span followed by its launch/execution kernel pairs."""
    spans = [
        Span(f"layer{layer_id}", start, start + 10_000, Level.LAYER,
             span_id=sid)
    ]
    sid += 1
    cursor = start + 100
    for _ in range(n_kernels):
        cid = sid
        spans.append(
            Span("k", cursor, cursor + 50, Level.GPU_KERNEL, span_id=sid,
                 kind=SpanKind.LAUNCH, correlation_id=cid)
        )
        sid += 1
        spans.append(
            Span("k", cursor + 25, cursor + 400, Level.GPU_KERNEL,
                 span_id=sid, kind=SpanKind.EXECUTION, correlation_id=cid)
        )
        sid += 1
        cursor += 500
    return spans, sid


def _streamed_capture():
    """Batches shaped like streaming ingest: each batch is one complete
    evaluation chunk (parents arrive with or before their children)."""
    batches = []
    sid = 1
    for layer_id in range(6):
        spans, sid = _layer_with_kernels(layer_id, layer_id * 20_000, 4, sid)
        batches.append(spans)
    return batches


def test_incremental_correlation_matches_cold():
    batches = _streamed_capture()

    # Cold reference: everything at once.
    cold = Trace(trace_id=1)
    for batch in batches:
        cold.extend(
            Span(s.name, s.start_ns, s.end_ns, s.level, span_id=s.span_id,
                 kind=s.kind, correlation_id=s.correlation_id)
            for s in batch
        )
    cold_result = reconstruct_parents(cold, strict=False)
    cold_kernels = correlate_launch_execution(cold)

    # Incremental: correlate after every batch with rising watermarks.
    live = Trace(trace_id=2)
    state = LaunchExecutionState()
    assigned: dict[int, int] = {}
    kernels = []
    seen = 0
    for batch in batches:
        live.extend(batch)
        result = reconstruct_parents(live, strict=False, since_row=seen)
        assigned.update(result.assigned)
        kernels.extend(
            correlate_launch_execution(live, since_row=seen, state=state)
        )
        seen = live.watermark

    assert assigned == cold_result.assigned
    assert [k.correlation_id for k in kernels] == [
        k.correlation_id for k in cold_kernels
    ]
    assert [k.parent_id for k in kernels] == [
        k.parent_id for k in cold_kernels
    ]
    assert list(live.table.parent_id) == list(cold.table.parent_id)


def test_incremental_correlation_pairs_across_increments():
    """A launch whose execution arrives in a later increment merges
    exactly once, when the pair completes."""
    trace = Trace(trace_id=1)
    trace.add(Span("k", 0, 10, Level.GPU_KERNEL, span_id=1,
                   kind=SpanKind.LAUNCH, correlation_id=7))
    state = LaunchExecutionState()
    first = correlate_launch_execution(trace, since_row=0, state=state)
    assert first == []
    watermark = trace.watermark
    trace.add(Span("k", 5, 40, Level.GPU_KERNEL, span_id=2,
                   kind=SpanKind.EXECUTION, correlation_id=7))
    second = correlate_launch_execution(
        trace, since_row=watermark, state=state
    )
    assert [k.correlation_id for k in second] == [7]
    third = correlate_launch_execution(
        trace, since_row=trace.watermark, state=state
    )
    assert third == []  # already merged, nothing new


def test_to_row_pins_the_scan_window():
    """Rows published after a caller snapshots the watermark must stay
    out of the pinned window — and be picked up, once, next increment
    (the LiveMonitor mid-refresh race)."""
    trace = Trace(trace_id=1)
    trace.add(Span("k", 0, 10, Level.GPU_KERNEL, span_id=1,
                   kind=SpanKind.LAUNCH, correlation_id=1))
    trace.add(Span("k", 5, 40, Level.GPU_KERNEL, span_id=2,
                   kind=SpanKind.EXECUTION, correlation_id=1))
    snapshot = trace.watermark
    # "Mid-refresh" publication, after the snapshot was taken.
    trace.add(Span("k", 50, 60, Level.GPU_KERNEL, span_id=3,
                   kind=SpanKind.LAUNCH, correlation_id=2))
    trace.add(Span("k", 55, 90, Level.GPU_KERNEL, span_id=4,
                   kind=SpanKind.EXECUTION, correlation_id=2))
    state = LaunchExecutionState()
    first = correlate_launch_execution(
        trace, since_row=0, to_row=snapshot, state=state
    )
    assert [k.correlation_id for k in first] == [1]
    second = correlate_launch_execution(
        trace, since_row=snapshot, to_row=trace.watermark, state=state
    )
    assert [k.correlation_id for k in second] == [2]


def test_incremental_duplicate_launch_detected_across_increments():
    trace = Trace(trace_id=1)
    trace.add(Span("k", 0, 10, Level.GPU_KERNEL, span_id=1,
                   kind=SpanKind.LAUNCH, correlation_id=9))
    state = LaunchExecutionState()
    correlate_launch_execution(trace, since_row=0, state=state)
    watermark = trace.watermark
    trace.add(Span("k", 20, 30, Level.GPU_KERNEL, span_id=2,
                   kind=SpanKind.LAUNCH, correlation_id=9))
    with pytest.raises(ValueError, match="duplicate launch"):
        correlate_launch_execution(trace, since_row=watermark, state=state)
