"""Sweep-line correlator == interval-tree reference, on adversarial forests.

The sweep-line engine replaces the per-orphan interval-tree queries in
``reconstruct_parents``; these tests pin its exact equivalence — parent
assignments, ambiguity detection, and strict-mode raises — on randomly
generated span forests that deliberately mix nesting, partial overlap,
identical intervals, touching endpoints, and skipped levels.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing import (
    AmbiguousParentError,
    Level,
    Span,
    SpanKind,
    Trace,
    reconstruct_parents,
)

LEVELS = [Level.MODEL, Level.LAYER, Level.LIBRARY, Level.GPU_KERNEL]


def _random_forest(rng: random.Random, n_spans: int) -> Trace:
    """A span forest with nested, overlapping, and identical intervals."""
    t = Trace(trace_id=1)
    sid = 0
    horizon = 40 * n_spans
    for _ in range(n_spans):
        sid += 1
        level = rng.choice(LEVELS)
        style = rng.random()
        if style < 0.15 and t.spans:
            # Clone an existing interval (identical-interval ambiguity food).
            other = rng.choice(t.spans)
            start, end = other.start_ns, other.end_ns
        elif style < 0.45 and t.spans:
            # Nest inside an existing span.
            outer = rng.choice(t.spans)
            if outer.duration_ns >= 2:
                start = rng.randint(outer.start_ns, outer.end_ns - 1)
                end = rng.randint(start, outer.end_ns)
            else:
                start, end = outer.start_ns, outer.end_ns
        else:
            start = rng.randint(0, horizon)
            end = start + rng.randint(0, horizon // 4)
        kind = rng.choice(
            [SpanKind.INTERNAL, SpanKind.INTERNAL, SpanKind.LAUNCH,
             SpanKind.EXECUTION]
        )
        t.add(Span(f"s{sid}", start, end, level, span_id=sid, kind=kind))
    return t


def _parents(trace: Trace) -> dict[int, int | None]:
    return {s.span_id: s.parent_id for s in trace.spans}


def _run(trace: Trace, *, strict: bool, engine: str):
    """(parents, assigned, ambiguous-ids, raised-span-id or None)."""
    try:
        result = reconstruct_parents(trace, strict=strict, engine=engine)
    except AmbiguousParentError as err:
        return (
            _parents(trace),
            None,
            None,
            (err.span.span_id, frozenset(c.span_id for c in err.candidates)),
        )
    return (
        _parents(trace),
        dict(result.assigned),
        [s.span_id for s in result.ambiguous],
        None,
    )


@pytest.mark.parametrize("strict", [False, True])
@pytest.mark.parametrize("seed", range(25))
def test_sweep_matches_tree_on_random_forests(seed, strict):
    rng = random.Random(seed)
    n = rng.randint(2, 200)
    forest_tree = _random_forest(random.Random(seed * 1009 + 1), n)
    forest_sweep = _random_forest(random.Random(seed * 1009 + 1), n)
    assert _parents(forest_tree) == _parents(forest_sweep)  # same input
    out_tree = _run(forest_tree, strict=strict, engine="tree")
    out_sweep = _run(forest_sweep, strict=strict, engine="sweep")
    assert out_tree == out_sweep


@settings(max_examples=60, deadline=None)
@given(
    intervals=st.lists(
        st.tuples(
            st.integers(0, 60),
            st.integers(0, 25),
            st.sampled_from(LEVELS),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_sweep_matches_tree_hypothesis(intervals):
    """Tiny coordinate space maximizes identical/touching intervals."""
    def build():
        t = Trace(trace_id=1)
        for i, (start, width, level) in enumerate(intervals, 1):
            t.add(Span(f"s{i}", start, start + width, level, span_id=i))
        return t

    t_tree, t_sweep = build(), build()
    assert _run(t_tree, strict=False, engine="tree") == \
        _run(t_sweep, strict=False, engine="sweep")


def test_sweep_detects_identical_interval_ambiguity():
    t = Trace(trace_id=1)
    t.add(Span("layerA", 0, 500, Level.LAYER, span_id=1))
    t.add(Span("layerB", 0, 500, Level.LAYER, span_id=2))
    t.add(Span("launch", 100, 110, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    result = reconstruct_parents(t, strict=False, engine="sweep")
    assert result.needs_serialized_rerun
    assert t.by_id()[3].parent_id is None


def test_sweep_strict_raises_on_partial_overlap():
    t = Trace(trace_id=1)
    t.add(Span("layerA", 0, 500, Level.LAYER, span_id=1))
    t.add(Span("layerB", 100, 700, Level.LAYER, span_id=2))
    t.add(Span("launch", 200, 210, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    with pytest.raises(AmbiguousParentError, match="CUDA_LAUNCH_BLOCKING"):
        reconstruct_parents(t, strict=True, engine="sweep")


def test_sweep_picks_tightest_nested_parent():
    t = Trace(trace_id=1)
    t.add(Span("outer", 0, 1000, Level.LAYER, span_id=1))
    t.add(Span("inner", 100, 900, Level.LAYER, span_id=2, parent_id=1))
    t.add(Span("launch", 200, 210, Level.GPU_KERNEL, span_id=3,
               kind=SpanKind.LAUNCH, correlation_id=1))
    reconstruct_parents(t, engine="sweep")
    assert t.by_id()[3].parent_id == 2


def test_sweep_handles_sequential_layers_without_stack_growth():
    """Sequential (non-nested) same-level spans expire from the stack front;
    a long trace must not degrade to scanning every dead layer."""
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 10**9, Level.MODEL, span_id=1))
    sid = 2
    cursor = 0
    expected = {}
    for _ in range(300):
        layer = Span(f"layer{sid}", cursor, cursor + 100, Level.LAYER,
                     span_id=sid)
        t.add(layer)
        launch_id = sid + 1
        t.add(Span(f"launch{launch_id}", cursor + 10, cursor + 20,
                   Level.GPU_KERNEL, span_id=launch_id,
                   kind=SpanKind.LAUNCH, correlation_id=launch_id))
        expected[launch_id] = sid
        cursor += 150
        sid += 2
    reconstruct_parents(t, engine="sweep")
    by_id = t.by_id()
    for launch_id, layer_id in expected.items():
        assert by_id[launch_id].parent_id == layer_id


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown correlation engine"):
        reconstruct_parents(Trace(trace_id=1), engine="quadtree")
