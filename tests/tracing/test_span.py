"""Unit tests for the span data model."""

import pytest

from repro.tracing import Level, Span, SpanKind, new_span_id, new_trace_id


def test_span_ids_unique():
    ids = {new_span_id() for _ in range(100)}
    assert len(ids) == 100


def test_trace_ids_unique():
    assert new_trace_id() != new_trace_id()


def test_span_duration():
    s = Span("op", 1_000, 4_000, Level.MODEL)
    assert s.duration_ns == 3_000
    assert s.duration_us == pytest.approx(3.0)
    assert s.duration_ms == pytest.approx(0.003)


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError, match="precedes"):
        Span("bad", 100, 50, Level.MODEL)


def test_span_zero_duration_allowed():
    s = Span("instant", 100, 100, Level.LAYER)
    assert s.duration_ns == 0


def test_containment_inclusive_endpoints():
    outer = Span("outer", 0, 100, Level.LAYER)
    inner = Span("inner", 0, 100, Level.GPU_KERNEL)
    assert outer.contains(inner)
    assert inner.contains(outer)  # identical intervals contain each other


def test_containment_strict():
    outer = Span("outer", 0, 100, Level.LAYER)
    inner = Span("inner", 10, 90, Level.GPU_KERNEL)
    assert outer.contains(inner)
    assert not inner.contains(outer)


def test_overlap():
    a = Span("a", 0, 50, Level.LAYER)
    b = Span("b", 40, 90, Level.LAYER)
    c = Span("c", 60, 70, Level.LAYER)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_tags_and_logs_chain():
    s = Span("op", 0, 10, Level.MODEL)
    s.tag("batch", 8).tag("framework", "tf")
    s.log(5, event="checkpoint", detail=1)
    assert s.tags["batch"] == 8
    assert dict(s.iter_tags())["framework"] == "tf"
    assert s.logs[0].timestamp_ns == 5
    assert s.logs[0].fields["event"] == "checkpoint"


def test_level_ordering_model_is_level_one():
    assert Level.MODEL == 1
    assert Level.MODEL < Level.LAYER < Level.LIBRARY < Level.GPU_KERNEL


def test_level_short_names():
    assert Level.MODEL.short_name == "M"
    assert Level.LAYER.short_name == "L"
    assert Level.GPU_KERNEL.short_name == "G"


def test_span_kinds():
    launch = Span("k", 0, 1, Level.GPU_KERNEL, kind=SpanKind.LAUNCH,
                  correlation_id=7)
    execution = Span("k", 5, 9, Level.GPU_KERNEL, kind=SpanKind.EXECUTION,
                     correlation_id=7)
    assert launch.correlation_id == execution.correlation_id
    assert launch.kind is SpanKind.LAUNCH
