"""Unit tests for tracers."""

from repro.tracing import BufferingTracer, Level, NoopTracer, Span


def test_buffering_tracer_buffers_and_forwards():
    sink_calls = []
    t = BufferingTracer("t", Level.LAYER, sink_calls.append)
    t.span("op", 0, 10)
    assert len(t.buffer) == 1
    assert len(sink_calls) == 1
    assert sink_calls[0].name == "op"


def test_tracer_tags_origin():
    t = BufferingTracer("layer_tracer", Level.LAYER)
    s = t.span("op", 0, 10)
    assert s.tags["tracer"] == "layer_tracer"


def test_disabled_tracer_drops_spans():
    t = BufferingTracer("t", Level.LAYER)
    t.disable()
    t.span("op", 0, 10)
    assert t.buffer == []
    t.enable()
    t.span("op2", 0, 10)
    assert len(t.buffer) == 1


def test_noop_tracer_never_emits():
    t = NoopTracer("noop", Level.MODEL)
    t.span("op", 0, 10)
    # NoopTracer has no buffer; publishing must simply not raise.
    assert t.enabled


def test_span_level_comes_from_tracer():
    t = BufferingTracer("t", Level.GPU_KERNEL)
    s = t.span("kernel", 0, 5)
    assert s.level == Level.GPU_KERNEL


def test_timed_span_context_manager():
    clock = {"now": 100}
    t = BufferingTracer("t", Level.MODEL)
    with t.timed_span("region", lambda: clock["now"]) as span:
        clock["now"] = 400
    assert span.start_ns == 100
    assert span.end_ns == 400
    assert t.buffer == [span]


def test_drain_clears_buffer():
    t = BufferingTracer("t", Level.LAYER)
    t.span("a", 0, 1)
    t.span("b", 1, 2)
    drained = t.drain()
    assert [s.name for s in drained] == ["a", "b"]
    assert t.buffer == []
