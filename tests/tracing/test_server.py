"""Unit tests for the tracing server."""

from repro.tracing import Level, Span, TracingServer


def _span(name, start=0, end=10, level=Level.MODEL):
    return Span(name, start, end, level)


def test_begin_trace_routes_spans():
    server = TracingServer()
    tid = server.begin_trace(model="m")
    server.publish(_span("a"))
    trace = server.end_trace(tid)
    assert [s.name for s in trace.spans] == ["a"]
    assert trace.metadata["model"] == "m"


def test_publish_to_explicit_trace_id():
    server = TracingServer()
    t1 = server.begin_trace()
    t2 = server.begin_trace()
    span = _span("explicit")
    span.trace_id = t1
    server.publish(span)
    assert len(server.get_trace(t1)) == 1
    assert len(server.get_trace(t2)) == 0


def test_publish_without_trace_creates_one():
    server = TracingServer()
    server.publish(_span("orphan"))
    assert len(server.traces()) == 1


def test_end_trace_deactivates():
    server = TracingServer()
    tid = server.begin_trace()
    server.end_trace(tid)
    assert server.active_trace_id is None


def test_subscribers_see_spans():
    server = TracingServer()
    seen = []
    server.subscribe(seen.append)
    server.begin_trace()
    server.publish(_span("x"))
    assert [s.name for s in seen] == ["x"]


def test_publish_many_batches_into_columns():
    """The batch ingest path: one lock round, spans land in the active
    trace's columnar table, subscribers still see every span."""
    server = TracingServer()
    seen = []
    server.subscribe(seen.append)
    tid = server.begin_trace()
    server.publish_many(_span(f"s{i}", i, i + 1) for i in range(5))
    trace = server.end_trace(tid)
    assert [s.name for s in trace.spans] == [f"s{i}" for i in range(5)]
    assert [s.name for s in seen] == [f"s{i}" for i in range(5)]


def test_publish_many_drops_spans_for_ended_traces():
    server = TracingServer()
    tid = server.begin_trace()
    server.end_trace(tid)
    late = _span("late")
    late.trace_id = tid
    server.publish_many([late])
    assert server.traces() == []


def test_buffering_tracer_batch_sink_reaches_server():
    """publish_many on a tracer with a batch sink lands the whole batch
    in the active trace, tagged with the tracer's name."""
    from repro.tracing import BufferingTracer

    server = TracingServer()
    tid = server.begin_trace()
    tracer = BufferingTracer(
        "gpu", Level.GPU_KERNEL, server.publish, server.publish_many
    )
    published = tracer.publish_many(
        _span(f"k{i}", i, i + 1, Level.GPU_KERNEL) for i in range(3)
    )
    assert [s.name for s in published] == ["k0", "k1", "k2"]
    assert [s.name for s in tracer.buffer] == ["k0", "k1", "k2"]
    trace = server.end_trace(tid)
    assert [s.name for s in trace.spans] == ["k0", "k1", "k2"]
    assert all(s.tags["tracer"] == "gpu" for s in trace.spans)


def test_disabled_tracer_suppresses_batch_publication_only():
    """Like per-span publish: a disabled tracer still returns the
    converted spans (untagged), it just publishes and buffers nothing."""
    from repro.tracing import BufferingTracer

    server = TracingServer()
    tid = server.begin_trace()
    tracer = BufferingTracer(
        "gpu", Level.GPU_KERNEL, server.publish, server.publish_many
    )
    tracer.disable()
    returned = tracer.publish_many([_span("suppressed")])
    assert [s.name for s in returned] == ["suppressed"]
    assert "tracer" not in returned[0].tags
    assert tracer.buffer == []
    assert len(server.end_trace(tid)) == 0


def test_multiple_tracers_aggregate_into_one_timeline():
    """The core idea: spans from different tracers merge into one trace."""
    from repro.tracing import BufferingTracer

    server = TracingServer()
    tid = server.begin_trace()
    model_tracer = BufferingTracer("model", Level.MODEL, server.publish)
    layer_tracer = BufferingTracer("layer", Level.LAYER, server.publish)
    model_tracer.span("predict", 0, 100)
    layer_tracer.span("conv", 10, 60)
    layer_tracer.span("relu", 60, 90)
    trace = server.end_trace(tid)
    assert len(trace) == 3
    assert {s.tags["tracer"] for s in trace} == {"model", "layer"}


def test_clear():
    server = TracingServer()
    server.begin_trace()
    server.publish(_span("a"))
    server.clear()
    assert server.traces() == []


def test_end_trace_evicts_finished_trace():
    """A long-lived server must not grow without bound: ending a trace
    removes it from the server while the caller keeps the timeline."""
    server = TracingServer()
    tid = server.begin_trace(model="m")
    server.publish(_span("a"))
    trace = server.end_trace(tid)
    assert [s.name for s in trace.spans] == ["a"]  # caller owns the result
    assert server.traces() == []  # server no longer holds it
    try:
        server.get_trace(tid)
    except KeyError:
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("ended trace still retrievable")


def test_get_trace_still_serves_open_traces():
    server = TracingServer()
    t1 = server.begin_trace()
    t2 = server.begin_trace()
    server.end_trace(t2)
    assert server.get_trace(t1) is not None  # open trace unaffected
    assert [t.trace_id for t in server.traces()] == [t1]


def test_many_trace_lifecycles_leave_server_empty():
    """The profile-many-models lifecycle: begin/publish/end N times."""
    server = TracingServer()
    for i in range(50):
        tid = server.begin_trace(run=i)
        server.publish(_span(f"s{i}"))
        trace = server.end_trace(tid)
        assert len(trace) == 1
    assert server.traces() == []
    assert server.active_trace_id is None


def test_publish_after_end_is_dropped_not_resurrected():
    """Regression: a late publish addressed to an ended trace must not
    re-create an orphan timeline in the server (unbounded growth again)."""
    server = TracingServer()
    tid = server.begin_trace()
    server.publish(_span("on-time"))
    trace = server.end_trace(tid)
    late = _span("late")
    late.trace_id = tid
    server.publish(late)
    assert server.traces() == []  # nothing resurrected server-side
    assert [s.name for s in trace.spans] == ["on-time"]


def test_eviction_state_is_bounded_across_many_lifecycles():
    """The leak fix must not swap trace growth for ended-id growth."""
    server = TracingServer()
    for i in range(200):
        tid = server.begin_trace()
        server.publish(_span(f"s{i}"))
        server.end_trace(tid)
    assert server.traces() == []
    # O(1) bookkeeping: a single watermark int, not a per-trace id set.
    assert isinstance(server._ended_watermark, int)
    assert not any(
        isinstance(v, (set, list, dict)) and len(v) >= 200
        for v in vars(server).values()
    )


def test_publish_after_clear_is_dropped_too():
    """clear() must not let late publishes revive cleared traces."""
    server = TracingServer()
    tid = server.begin_trace()
    server.publish(_span("pre-clear"))
    server.clear()
    late = _span("late")
    late.trace_id = tid
    server.publish(late)
    assert server.traces() == []
