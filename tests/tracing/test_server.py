"""Unit tests for the tracing server."""

from repro.tracing import Level, Span, TracingServer


def _span(name, start=0, end=10, level=Level.MODEL):
    return Span(name, start, end, level)


def test_begin_trace_routes_spans():
    server = TracingServer()
    tid = server.begin_trace(model="m")
    server.publish(_span("a"))
    trace = server.end_trace(tid)
    assert [s.name for s in trace.spans] == ["a"]
    assert trace.metadata["model"] == "m"


def test_publish_to_explicit_trace_id():
    server = TracingServer()
    t1 = server.begin_trace()
    t2 = server.begin_trace()
    span = _span("explicit")
    span.trace_id = t1
    server.publish(span)
    assert len(server.get_trace(t1)) == 1
    assert len(server.get_trace(t2)) == 0


def test_publish_without_trace_creates_one():
    server = TracingServer()
    server.publish(_span("orphan"))
    assert len(server.traces()) == 1


def test_end_trace_deactivates():
    server = TracingServer()
    tid = server.begin_trace()
    server.end_trace(tid)
    assert server.active_trace_id is None


def test_subscribers_see_spans():
    server = TracingServer()
    seen = []
    server.subscribe(seen.append)
    server.begin_trace()
    server.publish(_span("x"))
    assert [s.name for s in seen] == ["x"]


def test_multiple_tracers_aggregate_into_one_timeline():
    """The core idea: spans from different tracers merge into one trace."""
    from repro.tracing import BufferingTracer

    server = TracingServer()
    tid = server.begin_trace()
    model_tracer = BufferingTracer("model", Level.MODEL, server.publish)
    layer_tracer = BufferingTracer("layer", Level.LAYER, server.publish)
    model_tracer.span("predict", 0, 100)
    layer_tracer.span("conv", 10, 60)
    layer_tracer.span("relu", 60, 90)
    trace = server.end_trace(tid)
    assert len(trace) == 3
    assert {s.tags["tracer"] for s in trace} == {"model", "layer"}


def test_clear():
    server = TracingServer()
    server.begin_trace()
    server.publish(_span("a"))
    server.clear()
    assert server.traces() == []
