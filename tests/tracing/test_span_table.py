"""SpanTable unit tests: columns, interning, promotion, nbytes, fallback.

The storage contract (see ``src/repro/tracing/table.py``): spans ingest
into typed columns with interned names and packed scalar tag-sets; views
are flyweights that read columns and write ``parent_id`` through; reading
``view.tags`` promotes (materializes) the row; read-only consumers peek
without promoting.  The pure-Python index fallback must agree with the
numpy-accelerated builders on every query family.
"""

from __future__ import annotations

import random

import pytest

from repro.tracing import Level, Span, SpanKind, SpanTable, Trace
from repro.tracing.table import NONE_ID


def _span(i: int, **kwargs) -> Span:
    defaults = dict(
        name=f"op{i % 3}",
        start_ns=10 * i,
        end_ns=10 * i + 5,
        level=Level.GPU_KERNEL,
        span_id=i,
    )
    defaults.update(kwargs)
    return Span(**defaults)


# -- columns and interning --------------------------------------------------


def test_append_fills_columns():
    table = SpanTable()
    row = table.append(
        _span(1, kind=SpanKind.LAUNCH, correlation_id=77, parent_id=9)
    )
    assert row == 0
    assert table.span_id[0] == 1
    assert table.start_ns[0] == 10
    assert table.end_ns[0] == 15
    assert table.level[0] == int(Level.GPU_KERNEL)
    assert table.kind_of(0) is SpanKind.LAUNCH
    assert table.parent_id[0] == 9
    assert table.correlation_id_of(0) == 77
    assert len(table) == 1


def test_none_ids_use_sentinel():
    table = SpanTable()
    table.append(_span(1))
    assert table.parent_id[0] == NONE_ID
    assert table.parent_id_of(0) is None
    assert table.correlation_id[0] == NONE_ID
    assert table.correlation_id_of(0) is None


def test_invalid_interval_rejected():
    table = SpanTable()
    with pytest.raises(ValueError, match="precedes"):
        table.append_row(
            name="bad", start_ns=10, end_ns=5, level=Level.MODEL, span_id=1
        )


def test_names_are_interned():
    table = SpanTable()
    for i in range(1, 100):
        table.append(_span(i))  # cycles over 3 distinct names
    assert len(table._names) == 3
    assert [table.name_of(r) for r in range(3)] == ["op1", "op2", "op0"]


def test_scalar_tag_sets_are_shared():
    table = SpanTable()
    for i in range(1, 50):
        table.append(_span(i, tags={"tracer": "gpu", "idx": 7}))
    # One pooled tag-set serves all 49 rows.
    assert len(table._tag_pool) == 1
    assert len(table._tags) == 0
    assert dict(table.iter_tags(13)) == {"tracer": "gpu", "idx": 7}


def test_equal_but_differently_typed_tag_values_do_not_conflate():
    """True/1/1.0 are == and hash alike, but must not share a pooled
    tag-set: each row reads back the exact value type it ingested."""
    table = SpanTable()
    table.append(_span(1, tags={"x": True}))
    table.append(_span(2, tags={"x": 1}))
    table.append(_span(3, tags={"x": 1.0}))
    values = [table.peek_tags(r)["x"] for r in range(3)]
    assert values == [True, 1, 1.0]
    assert [type(v) for v in values] == [bool, int, float]


def test_unpackable_tags_go_to_side_store():
    table = SpanTable()
    table.append(_span(1, tags={"shape": [8, 3, 4]}))  # list: not packable
    assert table.tag_set_id[0] == NONE_ID
    assert table.peek_tags(0) == {"shape": [8, 3, 4]}


def test_tags_promotion_is_sticky_and_isolated():
    table = SpanTable()
    table.append(_span(1, tags={"tracer": "gpu"}))
    table.append(_span(2, tags={"tracer": "gpu"}))
    tags = table.tags_of(0)
    tags["extra"] = 1
    assert table.tags_of(0) is tags  # same dict on re-read
    # The sibling sharing the packed set is unaffected.
    assert dict(table.iter_tags(1)) == {"tracer": "gpu"}


def test_peek_does_not_promote():
    table = SpanTable()
    table.append(_span(1, tags={"tracer": "gpu"}))
    table.peek_tags(0)
    table.iter_tags(0)
    assert table.tag_set_id[0] != NONE_ID and 0 not in table._tags


def test_nbytes_grows_with_rows_and_promotion():
    table = SpanTable()
    empty = table.nbytes
    for i in range(1, 200):
        table.append(_span(i, tags={"tracer": "gpu"}))
    packed = table.nbytes
    assert packed > empty
    for row in range(len(table)):
        table.tags_of(row)
    assert table.nbytes > packed  # materialized dicts are counted


# -- views ------------------------------------------------------------------


def test_view_writes_parent_through():
    trace = Trace(trace_id=1)
    trace.add(_span(1, level=Level.LAYER, start_ns=0, end_ns=100))
    trace.add(_span(2, start_ns=10, end_ns=20))
    view = trace.by_id()[2]
    view.parent_id = 1
    trace.touch_parents()
    assert trace.table.parent_id[1] == 1
    assert [c.span_id for c in trace.children_of(trace.by_id()[1])] == [2]


def test_view_equality_and_span_equality():
    trace = Trace(trace_id=3)
    span = _span(5, tags={"a": 1})
    trace.add(span)
    view = trace.spans[0]
    assert view == trace.spans[0]
    assert view == span and span == view
    other = _span(6)
    trace.add(other)
    assert view != trace.spans[1]
    assert view != other


def test_view_is_unhashable_like_span():
    trace = Trace(trace_id=1)
    trace.add(_span(1))
    with pytest.raises(TypeError):
        hash(trace.spans[0])
    with pytest.raises(TypeError):
        hash(_span(2))


def test_to_span_detaches():
    trace = Trace(trace_id=1)
    trace.add(_span(1, tags={"tracer": "gpu"}))
    detached = trace.table.to_span(0)
    detached.tags["x"] = 1
    detached.parent_id = 99
    assert dict(trace.table.iter_tags(0)) == {"tracer": "gpu"}
    assert trace.table.parent_id_of(0) is None


# -- the span sequence ------------------------------------------------------


def test_span_sequence_supports_list_protocol():
    trace = Trace(trace_id=1)
    for i in range(1, 6):
        trace.add(_span(i))
    seq = trace.spans
    assert len(seq) == 5 and bool(seq)
    assert seq[0].span_id == 1 and seq[-1].span_id == 5
    assert [s.span_id for s in seq[1:3]] == [2, 3]
    assert random.Random(0).choice(seq).span_id in range(1, 6)
    with pytest.raises(IndexError):
        seq[5]
    assert not Trace(trace_id=2).spans


def test_span_sequence_append_is_caught_by_index():
    trace = Trace(trace_id=1)
    trace.add(_span(1))
    trace.sorted_spans()  # build index
    trace.spans.append(_span(2, trace_id=42))  # raw append keeps trace_id
    assert 2 in trace.by_id()
    assert trace.by_id()[2].trace_id == 42


# -- numpy fallback parity --------------------------------------------------


def _query_snapshot(trace: Trace):
    trace.invalidate_index()
    return {
        "sorted": [s.span_id for s in trace.sorted_spans()],
        "by_level": {
            lvl.name: [s.span_id for s in spans]
            for lvl, spans in ((l, trace.at_level(l)) for l in Level)
        },
        "by_kind": {
            k.value: [s.span_id for s in trace.of_kind(k)] for k in SpanKind
        },
        "extent": trace.span_extent_ns(),
        "roots": [s.span_id for s in trace.roots()],
        "gaps": [
            (g.start_ns, g.end_ns, g.before_id, g.after_id)
            for g in trace.gaps(Level.GPU_KERNEL, SpanKind.LAUNCH)
        ],
    }


def test_pure_python_index_matches_numpy(monkeypatch):
    import repro.tracing.index as index_mod

    rng = random.Random(11)
    trace = Trace(trace_id=1)
    for i in range(1, 400):  # above the numpy cutover threshold
        start = rng.randint(0, 10_000)
        trace.add(
            Span(
                f"s{i}",
                start,
                start + rng.randint(0, 500),
                rng.choice(list(Level)),
                span_id=i,
                kind=rng.choice(list(SpanKind)),
                parent_id=rng.choice([None, rng.randint(1, 400)]),
            )
        )
    accelerated = _query_snapshot(trace)
    monkeypatch.setattr(index_mod, "_np", None)
    fallback = _query_snapshot(trace)
    assert fallback == accelerated


# -- incremental maintenance == cold rebuild (fuzz) -------------------------


def _live_snapshot(trace: Trace):
    """Full query-family snapshot *without* dropping the live index."""
    index = trace.index
    return {
        "sorted": [trace.table.span_id[r] for r in index.rows_sorted()],
        "level_rows": {
            lvl: list(rows) for lvl, rows in index.level_rows().items()
        },
        "level_sorted": {
            lvl: index.level_rows_sorted(lvl)[:]
            for lvl in index.levels_present()
        },
        "kind_rows": {
            k: list(rows) for k, rows in index.kind_rows().items()
        },
        "row_by_id": dict(index.row_by_id()),
        "extent": index.extent_ns(),
        "levels": index.levels_present()[:],
        "gaps": {
            (lvl, kind): [
                (g.start_ns, g.end_ns, g.before_id, g.after_id)
                for g in index.gaps(lvl, kind)
            ]
            for lvl in (Level.GPU_KERNEL, Level.LAYER)
            for kind in (None, SpanKind.EXECUTION)
        },
        "children": {
            k: list(v) for k, v in index.children_rows().items()
        },
        "roots": index.root_rows()[:],
    }


def _fuzz_incremental_maintenance(seed: int) -> None:
    """Random interleavings of add / add_row / publish_many / queries /
    touch_parents; after every mutation burst the live (incrementally
    advanced) index must answer every query family exactly like a cold
    rebuild of the same trace."""
    from repro.tracing import TracingServer

    rng = random.Random(seed)
    server = TracingServer()
    tid = server.begin_trace()
    trace = server.get_trace(tid)
    next_id = 1

    def random_span():
        nonlocal next_id
        start = rng.randint(0, 20_000)
        span = Span(
            f"op{rng.randint(0, 3)}",
            start,
            start + rng.randint(0, 800),
            rng.choice(list(Level)),
            span_id=next_id,
            kind=rng.choice(list(SpanKind)),
            parent_id=rng.choice([None, rng.randint(1, 60)]),
            correlation_id=rng.choice([None, next_id]),
            tags=rng.choice([None, {"tracer": "gpu"}, {"idx": next_id}]),
        )
        next_id += 1
        return span

    for step in range(120):
        op = rng.randrange(5)
        if op == 0:
            trace.add(random_span())
        elif op == 1:
            span = random_span()
            trace.add_row(
                name=span.name,
                start_ns=span.start_ns,
                end_ns=span.end_ns,
                level=span.level,
                span_id=span.span_id,
                kind=span.kind,
                parent_id=span.parent_id,
                correlation_id=span.correlation_id,
            )
        elif op == 2:
            server.publish_many(
                random_span() for _ in range(rng.randint(1, 12))
            )
        elif op == 3 and len(trace) > 0:
            # Query a random family to force structures live mid-growth.
            rng.choice(
                (
                    trace.sorted_spans,
                    trace.roots,
                    trace.by_id,
                    trace.span_extent_ns,
                    lambda: trace.gaps(Level.GPU_KERNEL, SpanKind.EXECUTION),
                    lambda: trace.at_level(Level.LAYER),
                )
            )()
        elif op == 4 and len(trace) > 0:
            # Post-hoc parent edit through a view + touch_parents.
            row = rng.randrange(len(trace))
            view = trace.spans[row]
            view.parent_id = rng.choice([None, rng.randint(1, 60)])
            trace.touch_parents()
        if step % 13 == 0 and len(trace) > 0:
            live = _live_snapshot(trace)
            trace.invalidate_index()
            assert live == _live_snapshot(trace), (
                f"incremental != cold at seed={seed} step={step}"
            )
    live = _live_snapshot(trace)
    trace.invalidate_index()
    assert live == _live_snapshot(trace)


@pytest.mark.parametrize("seed", range(6))
def test_incremental_maintenance_equals_cold_rebuild(seed):
    _fuzz_incremental_maintenance(seed)


@pytest.mark.parametrize("seed", range(6, 10))
def test_incremental_maintenance_equals_cold_rebuild_pure_python(
    seed, monkeypatch
):
    import repro.tracing.index as index_mod

    monkeypatch.setattr(index_mod, "_np", None)
    _fuzz_incremental_maintenance(seed)
