"""Interval tree: unit + property-based tests against a naive oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing import Interval, IntervalTree


def test_interval_rejects_inverted():
    with pytest.raises(ValueError):
        Interval(10, 5)


def test_interval_contains_point_inclusive():
    iv = Interval(10, 20)
    assert iv.contains_point(10)
    assert iv.contains_point(20)
    assert not iv.contains_point(21)


def test_interval_containment_and_overlap():
    outer, inner = Interval(0, 100), Interval(10, 20)
    assert outer.contains_interval(inner)
    assert not inner.contains_interval(outer)
    assert Interval(0, 10).overlaps(Interval(10, 20))  # touching counts
    assert not Interval(0, 9).overlaps(Interval(10, 20))


def test_empty_tree():
    tree = IntervalTree([])
    assert tree.stab(5) == []
    assert tree.containing(Interval(0, 1)) == []
    assert tree.overlapping(Interval(0, 1)) == []
    assert tree.tightest_containing(Interval(0, 1)) is None


def test_stab_simple():
    tree = IntervalTree([Interval(0, 10, "a"), Interval(5, 15, "b"),
                         Interval(20, 30, "c")])
    assert sorted(iv.data for iv in tree.stab(7)) == ["a", "b"]
    assert [iv.data for iv in tree.stab(25)] == ["c"]
    assert tree.stab(16) == []


def test_containing_query():
    tree = IntervalTree([Interval(0, 100, "outer"), Interval(10, 50, "mid"),
                         Interval(20, 30, "tight")])
    found = sorted(iv.data for iv in tree.containing(Interval(22, 28)))
    assert found == ["mid", "outer", "tight"]


def test_tightest_containing_prefers_smallest():
    tree = IntervalTree([Interval(0, 100, "outer"), Interval(10, 50, "mid")])
    assert tree.tightest_containing(Interval(20, 30)).data == "mid"


def test_duplicate_intervals_all_returned():
    tree = IntervalTree([Interval(0, 10, "a"), Interval(0, 10, "b")])
    assert sorted(iv.data for iv in tree.stab(5)) == ["a", "b"]


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
        lambda t: Interval(min(t), max(t))
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(intervals=intervals_strategy, point=st.integers(-10, 1010))
def test_stab_matches_naive_oracle(intervals, point):
    tree = IntervalTree(intervals)
    expected = sorted(
        (iv.start, iv.end) for iv in intervals if iv.contains_point(point)
    )
    actual = sorted((iv.start, iv.end) for iv in tree.stab(point))
    assert actual == expected


@settings(max_examples=120, deadline=None)
@given(
    intervals=intervals_strategy,
    q=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
)
def test_containing_matches_naive_oracle(intervals, q):
    query = Interval(min(q), max(q))
    tree = IntervalTree(intervals)
    expected = sorted(
        (iv.start, iv.end) for iv in intervals if iv.contains_interval(query)
    )
    actual = sorted((iv.start, iv.end) for iv in tree.containing(query))
    assert actual == expected


@settings(max_examples=120, deadline=None)
@given(
    intervals=intervals_strategy,
    q=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
)
def test_overlapping_matches_naive_oracle(intervals, q):
    query = Interval(min(q), max(q))
    tree = IntervalTree(intervals)
    expected = sorted(
        (iv.start, iv.end) for iv in intervals if iv.overlaps(query)
    )
    actual = sorted((iv.start, iv.end) for iv in tree.overlapping(query))
    assert actual == expected
