"""Unit tests for Trace queries and export."""

import json

from repro.tracing import Level, Span, Trace


def _trace():
    t = Trace(trace_id=1)
    t.add(Span("predict", 0, 1000, Level.MODEL, span_id=1))
    t.add(Span("conv", 100, 600, Level.LAYER, span_id=2, parent_id=1))
    t.add(Span("relu", 600, 900, Level.LAYER, span_id=3, parent_id=1))
    t.add(Span("kernel", 150, 500, Level.GPU_KERNEL, span_id=4, parent_id=2))
    return t


def test_at_level():
    t = _trace()
    assert len(t.at_level(Level.LAYER)) == 2
    assert len(t.at_level(Level.GPU_KERNEL)) == 1


def test_sorted_spans_parents_first():
    t = _trace()
    ordered = t.sorted_spans()
    assert ordered[0].name == "predict"


def test_children_index():
    t = _trace()
    index = t.children_index()
    assert [s.name for s in index[1]] == ["conv", "relu"]
    assert [s.name for s in index[2]] == ["kernel"]


def test_roots():
    t = _trace()
    assert [s.name for s in t.roots()] == ["predict"]


def test_levels_present_sorted():
    t = _trace()
    assert t.levels_present() == [Level.MODEL, Level.LAYER, Level.GPU_KERNEL]


def test_span_extent():
    t = _trace()
    assert t.span_extent_ns() == (0, 1000)
    assert Trace(trace_id=9).span_extent_ns() == (0, 0)


def test_first_named_and_find():
    t = _trace()
    assert t.first_named("conv").span_id == 2
    assert t.first_named("nope") is None
    assert len(t.find(lambda s: s.duration_ns > 400)) == 2


def test_chrome_trace_export_is_valid_json():
    t = _trace()
    doc = json.loads(t.to_chrome_trace())
    # One complete event per span, plus "M" metadata (process/thread
    # naming) and any launch/execution flow arrows.
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 4
    event = complete[0]
    assert {"name", "ts", "dur", "args"} <= set(event)


def test_summary():
    s = _trace().summary()
    assert s["n_spans"] == 4
    assert s["per_level"]["LAYER"] == 2
