"""TracingServer streaming surface: stream cursors, row batches, publish_rows."""

from __future__ import annotations

import threading

from repro.tracing import Level, Span, TracingServer


def _span(i: int, start: int = 0, end: int = 10, level=Level.MODEL):
    return Span(f"s{i}", start, end, level, span_id=i)


def test_poll_yields_contiguous_batches():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    assert stream.poll() is None
    server.publish_many(_span(i, i, i + 1) for i in range(1, 4))
    batch = stream.poll()
    assert (batch.start, batch.stop) == (0, 3)
    assert list(batch) == [0, 1, 2]
    assert [v.span_id for v in batch.views()] == [1, 2, 3]
    server.publish(_span(4, 10, 11))
    batch = stream.poll()
    assert (batch.start, batch.stop) == (3, 4)
    assert stream.poll() is None
    assert stream.cursor == 4


def test_poll_max_rows_windows():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    server.publish_many(_span(i, i, i + 1) for i in range(1, 8))
    sizes = []
    while True:
        batch = stream.poll(max_rows=3)
        if batch is None:
            break
        sizes.append(len(batch))
    assert sizes == [3, 3, 1]


def test_stream_defaults_to_active_trace():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream()
    assert stream.trace.trace_id == tid


def test_at_end_after_end_trace():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    server.publish(_span(1))
    assert not stream.at_end
    server.end_trace(tid)
    assert not stream.at_end  # one row still unread
    assert len(stream.read()) == 1
    assert stream.at_end
    assert stream.read(timeout=0.01) is None


def test_iteration_terminates_when_trace_ends():
    server = TracingServer()
    tid = server.begin_trace()
    server.publish_many(_span(i, i, i + 1) for i in range(1, 6))
    stream = server.stream(tid)
    server.end_trace(tid)
    rows = [row for batch in stream for row in batch]
    assert rows == list(range(5))


def test_read_blocks_until_publication():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)

    def produce():
        server.publish(_span(1))
        server.publish(_span(2))
        server.end_trace(tid)

    producer = threading.Thread(target=produce)
    producer.start()
    consumed = [row for batch in stream for row in batch]
    producer.join()
    assert consumed == [0, 1]
    assert stream.at_end


def test_read_timeout_not_restarted_by_other_traces():
    """The condition is shared server-wide: wakeups for *other* traces'
    publications must not restart a quiet stream's timeout."""
    import time

    server = TracingServer()
    quiet = server.begin_trace()
    busy = server.begin_trace()
    stream = server.stream(quiet)
    stop = threading.Event()

    def chatter():
        i = 1
        while not stop.is_set():
            span = _span(i)
            span.trace_id = busy
            server.publish(span)
            i += 1
            time.sleep(0.01)

    noisy = threading.Thread(target=chatter, daemon=True)
    noisy.start()
    start = time.monotonic()
    assert stream.read(timeout=0.15) is None
    elapsed = time.monotonic() - start
    stop.set()
    noisy.join()
    assert elapsed < 2.0  # bounded by the deadline, not restarted forever
    assert not stream.at_end


def test_publish_rows_streams_span_free():
    """The columnar batch path: rows land without any Span object and
    stream cursors see them."""
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    count = server.publish_rows(
        tid,
        (
            dict(name=f"r{i}", start_ns=i, end_ns=i + 2,
                 level=Level.GPU_KERNEL, span_id=100 + i)
            for i in range(3)
        ),
    )
    assert count == 3
    batch = stream.read()
    assert [batch.table.name_of(r) for r in batch] == ["r0", "r1", "r2"]
    trace = server.end_trace(tid)
    assert [s.span_id for s in trace.spans] == [100, 101, 102]
    assert all(s.trace_id == tid for s in trace.spans)


def test_publish_rows_to_ended_trace_raises():
    server = TracingServer()
    tid = server.begin_trace()
    server.end_trace(tid)
    try:
        server.publish_rows(tid, [dict(name="x", start_ns=0, end_ns=1,
                                       level=Level.MODEL, span_id=1)])
    except KeyError:
        pass
    else:  # pragma: no cover - assertion arm
        raise AssertionError("expected KeyError for ended trace")


def test_stream_survives_trace_end_eviction():
    """end_trace evicts the trace from the server; an existing cursor
    keeps draining the (closed) timeline it already holds."""
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    server.publish_many(_span(i, i, i + 1) for i in range(1, 4))
    server.end_trace(tid)
    assert server.traces() == []
    assert len(stream.read()) == 3
    assert stream.at_end


def test_annotate_trace_merges_metadata():
    server = TracingServer()
    tid = server.begin_trace(model="m")
    server.annotate_trace(tid, application="app", batch=4)
    trace = server.end_trace(tid)
    assert trace.metadata == {"model": "m", "application": "app", "batch": 4}


def test_clear_closes_open_traces():
    server = TracingServer()
    tid = server.begin_trace()
    stream = server.stream(tid)
    server.publish(_span(1))
    server.clear()
    assert len(stream.read()) == 1
    assert stream.at_end


def test_mid_capture_queries_advance_not_rebuild():
    """An open trace is queryable between publications: the index
    advances over each published batch (the PR 5 'live trace' contract)."""
    server = TracingServer()
    tid = server.begin_trace()
    trace = server.get_trace(tid)
    server.publish_many(
        _span(i, 100 * i, 100 * i + 50, Level.GPU_KERNEL) for i in range(1, 5)
    )
    index = trace.index
    assert len(trace.sorted_spans()) == 4
    server.publish_many(
        _span(i, 100 * i, 100 * i + 50, Level.GPU_KERNEL) for i in range(5, 9)
    )
    assert trace.index is index  # advanced in place, not rebuilt
    assert [s.span_id for s in trace.sorted_spans()] == list(range(1, 9))


def test_chunked_publish_many_streams_progressively():
    """Tracer.publish_many(chunk_size=...) delivers bounded chunks, so a
    cursor polled between lock rounds can observe partial progress."""
    from repro.tracing import BufferingTracer

    server = TracingServer()
    tid = server.begin_trace()
    observed: list[int] = []

    class Probe(BufferingTracer):
        def emit_many(self, batch):
            super().emit_many(batch)
            observed.append(len(batch))

    tracer = Probe("gpu", Level.GPU_KERNEL, server.publish,
                   server.publish_many)
    published = tracer.publish_many(
        (_span(i, i, i + 1, Level.GPU_KERNEL) for i in range(1, 11)),
        chunk_size=4,
    )
    assert len(published) == 10
    assert observed == [4, 4, 2]
    trace = server.end_trace(tid)
    assert len(trace) == 10
    assert all(s.tags["tracer"] == "gpu" for s in trace.spans)
