"""Gap index: idle intervals between spans, served index-once/query-many."""

from repro.tracing import Gap, Level, Span, SpanKind, Trace


def _trace(spans):
    t = Trace(trace_id=1)
    t.extend(spans)
    return t


def test_simple_gaps():
    t = _trace([
        Span("a", 0, 10, Level.GPU_KERNEL, span_id=1),
        Span("b", 15, 20, Level.GPU_KERNEL, span_id=2),
        Span("c", 30, 40, Level.GPU_KERNEL, span_id=3),
    ])
    gaps = t.gaps(Level.GPU_KERNEL)
    assert gaps == [
        Gap(start_ns=10, end_ns=15, before_id=1, after_id=2),
        Gap(start_ns=20, end_ns=30, before_id=2, after_id=3),
    ]
    assert gaps[0].duration_ns == 5
    assert gaps[1].duration_ms == 10 / 1e6


def test_overlapping_spans_coalesce():
    # b overlaps a; c nests inside b; only the interval after b is idle.
    t = _trace([
        Span("a", 0, 10, Level.GPU_KERNEL, span_id=1),
        Span("b", 5, 25, Level.GPU_KERNEL, span_id=2),
        Span("c", 7, 9, Level.GPU_KERNEL, span_id=3),
        Span("d", 30, 35, Level.GPU_KERNEL, span_id=4),
    ])
    gaps = t.gaps(Level.GPU_KERNEL)
    assert gaps == [Gap(start_ns=25, end_ns=30, before_id=2, after_id=4)]


def test_containing_span_swallows_gaps():
    # One long span covers everything: no idle time at its level.
    t = _trace([
        Span("all", 0, 100, Level.GPU_KERNEL, span_id=1),
        Span("x", 10, 20, Level.GPU_KERNEL, span_id=2),
        Span("y", 40, 50, Level.GPU_KERNEL, span_id=3),
    ])
    assert t.gaps(Level.GPU_KERNEL) == []


def test_kind_filter():
    t = _trace([
        Span("launch1", 0, 2, Level.GPU_KERNEL, span_id=1,
             kind=SpanKind.LAUNCH),
        Span("exec1", 5, 10, Level.GPU_KERNEL, span_id=2,
             kind=SpanKind.EXECUTION),
        Span("launch2", 3, 4, Level.GPU_KERNEL, span_id=3,
             kind=SpanKind.LAUNCH),
        Span("exec2", 20, 30, Level.GPU_KERNEL, span_id=4,
             kind=SpanKind.EXECUTION),
    ])
    exec_gaps = t.gaps(Level.GPU_KERNEL, SpanKind.EXECUTION)
    assert exec_gaps == [Gap(start_ns=10, end_ns=20, before_id=2, after_id=4)]
    # Unfiltered view interleaves the launches.
    assert len(t.gaps(Level.GPU_KERNEL)) == 3


def test_adjacent_spans_leave_no_gap():
    t = _trace([
        Span("a", 0, 10, Level.LAYER, span_id=1),
        Span("b", 10, 20, Level.LAYER, span_id=2),
    ])
    assert t.gaps(Level.LAYER) == []


def test_empty_and_missing_level():
    assert Trace(trace_id=1).gaps(Level.GPU_KERNEL) == []
    t = _trace([Span("m", 0, 10, Level.MODEL, span_id=1)])
    assert t.gaps(Level.GPU_KERNEL) == []


def test_gap_queries_are_cached_until_mutation():
    t = _trace([
        Span("a", 0, 10, Level.GPU_KERNEL, span_id=1),
        Span("b", 20, 30, Level.GPU_KERNEL, span_id=2),
    ])
    first = t.index.gaps(Level.GPU_KERNEL)
    # Same snapshot: the cached list object itself is served again.
    assert t.index.gaps(Level.GPU_KERNEL) is first

    t.add(Span("c", 12, 14, Level.GPU_KERNEL, span_id=3))
    rebuilt = t.gaps(Level.GPU_KERNEL)
    assert [g.duration_ns for g in rebuilt] == [2, 6]


def test_evidence_span_ids_resolve():
    spans = [
        Span(f"k{i}", i * 100, i * 100 + 50, Level.GPU_KERNEL, span_id=i + 1)
        for i in range(20)
    ]
    t = _trace(spans)
    by_id = t.by_id()
    for gap in t.gaps(Level.GPU_KERNEL):
        assert gap.before_id in by_id and gap.after_id in by_id
        assert by_id[gap.before_id].end_ns == gap.start_ns
        assert by_id[gap.after_id].start_ns == gap.end_ns
