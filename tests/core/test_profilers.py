"""Tracer conversion tests (layer + GPU)."""

import pytest

from repro.core.profilers import GpuTracer, LayerTracer
from repro.frameworks.profiler_format import LayerRecord, mx_profile, tf_step_stats
from repro.sim.cupti import ActivityRecord, ApiRecord
from repro.tracing import Level, SpanKind


def _records():
    return [
        LayerRecord(1, "conv1/Conv2D", "Conv2D", (4, 8, 8, 8), 0, 1000, 64),
        LayerRecord(2, "relu1/Relu", "Relu", (4, 8, 8, 8), 1000, 1400, 64),
    ]


def test_layer_tracer_parses_tf_format():
    tracer = LayerTracer()
    spans = tracer.convert(tf_step_stats(_records()), "tensorflow_like", 77)
    assert [s.name for s in spans] == ["conv1/Conv2D", "relu1/Relu"]
    assert all(s.parent_id == 77 for s in spans)
    assert all(s.level == Level.LAYER for s in spans)
    assert spans[0].tags["layer_type"] == "Conv2D"
    assert spans[0].tags["alloc_bytes"] == 64


def test_layer_tracer_parses_mx_format():
    tracer = LayerTracer()
    spans = tracer.convert(mx_profile(_records()), "mxnet_like", None)
    assert len(spans) == 2
    assert spans[1].tags["layer_index"] == 2


def test_layer_tracer_unknown_framework():
    with pytest.raises(ValueError, match="no profile parser"):
        LayerTracer().convert({}, "caffe2_like", None)


def test_gpu_tracer_builds_launch_and_exec_spans():
    api = [ApiRecord("cudaLaunchKernel", 9, 100, 110)]
    acts = [ActivityRecord("kernel", "volta_scudnn", 9, 0, 150, 400,
                           (10, 1, 1), (256, 1, 1),
                           metrics={"flop_count_sp": 5e9})]
    spans = GpuTracer().convert(api, acts)
    launch = next(s for s in spans if s.kind is SpanKind.LAUNCH)
    execution = next(s for s in spans if s.kind is SpanKind.EXECUTION)
    assert launch.correlation_id == execution.correlation_id == 9
    # Launch span is labeled with the kernel it launches.
    assert launch.name == "volta_scudnn"
    assert launch.tags["api"] == "cudaLaunchKernel"
    assert execution.tags["metric.flop_count_sp"] == 5e9
    assert execution.tags["grid"] == (10, 1, 1)
