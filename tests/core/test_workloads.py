"""Workload helper tests (throughput curves, OOM handling)."""

import pytest

from repro.models import ModelBuilder
from repro.sim.memory import OutOfDeviceMemoryError
from repro.workloads import (
    ThroughputCurve,
    extend_curve_to_optimum,
    measure_latency,
    throughput_curve,
)


def test_measure_latency_repeatable(v100_session, cnn_graph):
    a = measure_latency(v100_session, cnn_graph, 4, runs=2)
    b = measure_latency(v100_session, cnn_graph, 4, runs=2)
    assert a == b  # deterministic virtual time + fixed run indices


def test_throughput_curve_basic(v100_session, cnn_graph):
    curve = throughput_curve(v100_session, cnn_graph, [1, 4, 16], runs=1)
    assert set(curve.latencies_ms) == {1, 4, 16}
    assert curve.online_latency_ms == curve.latencies_ms[1]
    assert curve.max_throughput >= curve.throughputs[1]


def test_online_latency_requires_batch_one():
    curve = ThroughputCurve("m", "s", "f", {4: 10.0})
    with pytest.raises(KeyError, match="batch size 1"):
        curve.online_latency_ms


def _huge_model():
    b = ModelBuilder("huge")
    x = b.input(64, 1024, 1024)  # 256 MB per image at fp32
    x = b.conv_bn_relu(x, 64, 3)
    x = b.conv_bn_relu(x, 64, 3)
    x = b.classifier(x, 10)
    return b.build()


def test_oom_truncates_sweep(v100_session):
    graph = _huge_model()
    curve = throughput_curve(v100_session, graph, [1, 2, 64, 256], runs=1)
    assert 1 in curve.latencies_ms
    assert 256 not in curve.latencies_ms  # 16 GB device cannot fit it


def test_oom_at_batch_one_raises():
    from repro.core import XSPSession

    session = XSPSession("Tesla_M60")  # 8 GB device
    b = ModelBuilder("way_too_big")
    x = b.input(256, 4096, 2048)  # 8.6 GB input alone
    x = b.conv_bn_relu(x, 256, 3)
    x = b.classifier(x, 10)
    with pytest.raises(OutOfDeviceMemoryError):
        throughput_curve(session, b.build(), [1], runs=1)


def test_extend_curve_to_optimum(v100_session, cnn_graph):
    curve = throughput_curve(v100_session, cnn_graph, [1, 2], runs=1)
    extended = extend_curve_to_optimum(v100_session, cnn_graph, curve,
                                       max_batch=64, runs=1)
    top = max(extended.latencies_ms)
    assert extended.optimal_batch < top or top >= 64
