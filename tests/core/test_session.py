"""XSPSession integration tests."""

import pytest

from repro.core import M, ML, MLG, ProfilingConfig, XSPSession
from repro.tracing import Level, SpanKind


def _run(session, graph, batch=4, levels=MLG, **kw):
    return session.profile(graph, batch, ProfilingConfig(levels=levels, **kw))


def test_model_level_only(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph, levels=M)
    assert run.trace.at_level(Level.LAYER) == []
    assert run.trace.at_level(Level.GPU_KERNEL) == []
    names = {s.name for s in run.trace.at_level(Level.MODEL)}
    assert names == {"input_preprocess", "predict", "output_postprocess"}


def test_ml_level_has_layer_spans(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph, levels=ML)
    layers = run.trace.at_level(Level.LAYER)
    assert len(layers) > 5
    assert all(s.parent_id == run.predict_span.span_id for s in layers)
    assert run.trace.at_level(Level.GPU_KERNEL) == []


def test_mlg_level_full_stack(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph)
    kernels = run.trace.at_level(Level.GPU_KERNEL)
    assert kernels
    launches = [s for s in kernels if s.kind is SpanKind.LAUNCH]
    executions = [s for s in kernels if s.kind is SpanKind.EXECUTION]
    assert len(launches) == len(executions) == len(run.kernels)


def test_kernels_correlated_to_layers(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph)
    by_layer = run.kernels_by_layer()
    assert -1 not in by_layer  # every kernel found its layer
    # The first Conv2D layer owns at least one scudnn/implicit kernel.
    layer_spans = {s.tags["layer_index"]: s for s in run.layer_spans()}
    conv_idx = next(
        i for i, s in layer_spans.items() if s.tags["layer_type"] == "Conv2D"
    )
    conv_kernel_names = [k.name for k in by_layer[conv_idx]]
    assert any("convolve" in n or "scudnn" in n for n in conv_kernel_names)


def test_launch_spans_contained_in_their_layer(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph)
    by_id = run.trace.by_id()
    for mk in run.kernels:
        layer = by_id[mk.parent_id]
        assert layer.contains(mk.launch)


def test_layer_spans_nest_in_predict(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph, levels=ML)
    for span in run.trace.at_level(Level.LAYER):
        assert run.predict_span.contains(span)


def test_metrics_attached(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph)
    flops = [k.metrics.get("metric.flop_count_sp") for k in run.kernels]
    assert any(f and f > 0 for f in flops)


def test_serialized_config_sets_env(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph, serialized=True)
    assert run.config.serialized
    assert not run.correlation.needs_serialized_rerun


def test_no_ambiguity_in_sequential_execution(v100_session, cnn_graph):
    run = _run(v100_session, cnn_graph)
    assert not run.correlation.needs_serialized_rerun
    assert not run.was_serialized_retry


def test_run_summary(v100_session, cnn_graph):
    summary = _run(v100_session, cnn_graph).summary()
    assert summary["system"] == "Tesla_V100"
    assert summary["levels"] == "M/L/G"
    assert summary["n_kernels"] > 0


def test_unknown_framework_rejected():
    with pytest.raises(KeyError, match="unknown framework"):
        XSPSession(framework="pytorch_like")


def test_framework_aliases():
    assert XSPSession(framework="tf").framework_cls.name == "tensorflow_like"
    assert XSPSession(framework="mx").framework_cls.name == "mxnet_like"


def test_mxnet_session_profiles(mx_session, cnn_graph):
    run = _run(mx_session, cnn_graph)
    types = {s.tags["layer_type"] for s in run.layer_spans()}
    assert "Convolution" in types
    assert "BatchNorm" in types


def test_run_index_changes_latency_slightly(v100_session, cnn_graph):
    a = _run(v100_session, cnn_graph, levels=M, run_index=0)
    b = _run(v100_session, cnn_graph, levels=M, run_index=1)
    assert a.model_latency_ms != b.model_latency_ms
    assert abs(a.model_latency_ms - b.model_latency_ms) < 0.2 * a.model_latency_ms
