"""Leveled experimentation tests (Fig. 2 behaviour)."""

import pytest

from repro.core import LeveledExperiment, XSPSession


@pytest.fixture(scope="module")
def leveled(cnn_graph):
    session = XSPSession("Tesla_V100", "tensorflow_like")
    return LeveledExperiment(session, runs_per_level=2).run(cnn_graph, 8)


def test_all_rungs_present(leveled):
    assert set(leveled.runs) == {"M", "M/L", "M/L/G", "M/L/G+metrics"}
    assert all(len(runs) == 2 for runs in leveled.runs.values())


def test_deeper_profiling_costs_more(leveled):
    m = leveled.predict_latency_at("M")
    ml = leveled.predict_latency_at("M/L")
    mlg = leveled.predict_latency_at("M/L/G")
    assert m < ml < mlg


def test_overhead_ladder_positive(leveled):
    ladder = leveled.overhead_ladder()
    assert set(ladder) == {"M/L", "M/L/G"}
    assert ladder["M/L"] > 0
    assert ladder["M/L/G"] > 0


def test_metrics_run_much_slower_than_unprofiled(leveled):
    """DRAM counters force kernel replay (paper: >100x slowdowns possible);
    the metric-collection run dwarfs the unprofiled execution."""
    assert (
        leveled.predict_latency_at("M/L/G+metrics")
        > 10 * leveled.predict_latency_at("M")
    )
    assert (
        leveled.predict_latency_at("M/L/G+metrics")
        > 2 * leveled.predict_latency_at("M/L/G")
    )


def test_accurate_model_latency_is_from_m_runs(leveled):
    assert leveled.model_latency_ms == leveled.predict_latency_at("M")
    assert leveled.throughput == pytest.approx(
        8 / (leveled.model_latency_ms / 1e3)
    )


def test_missing_rung_raises(leveled):
    with pytest.raises(KeyError, match="no runs at"):
        leveled.runs_at("M/L/G/X")


def test_runs_per_level_validation():
    session = XSPSession()
    with pytest.raises(ValueError):
        LeveledExperiment(session, runs_per_level=0)
