"""Library-level (Sec. III-E extension) tests."""

import pytest

from repro.analysis.ext_library import library_call_table
from repro.core import MLLibG, ProfilingConfig, XSPSession
from repro.core.library_level import LibraryTracer, api_name_for
from repro.tracing import Level, SpanKind


@pytest.fixture(scope="module")
def lib_run(cnn_graph):
    session = XSPSession("Tesla_V100", "tensorflow_like")
    return session.profile(cnn_graph, 8,
                           ProfilingConfig(levels=MLLibG, metrics=()))


def test_library_spans_present(lib_run):
    spans = lib_run.trace.at_level(Level.LIBRARY)
    assert spans
    names = {s.name for s in spans}
    assert "cudnnConvolutionForward" in names
    assert "Eigen::TensorDevice::run" in names
    assert "cublasSgemm" in names


def test_four_level_hierarchy(lib_run):
    """launch -> LIBRARY -> LAYER -> MODEL via interval containment."""
    by_id = lib_run.trace.by_id()
    for mk in lib_run.kernels:
        library = by_id[mk.launch.parent_id]
        assert library.level == Level.LIBRARY
        layer = by_id[library.parent_id]
        assert layer.level == Level.LAYER
        model = by_id[layer.parent_id]
        assert model.level == Level.MODEL


def test_library_span_covers_its_kernels(lib_run):
    by_id = lib_run.trace.by_id()
    for mk in lib_run.kernels:
        library = by_id[mk.launch.parent_id]
        assert library.contains(mk.launch)


def test_conv_call_groups_helper_kernels(lib_run):
    """The first conv's ShuffleTensor/OffsetComp/main kernels belong to a
    single cudnnConvolutionForward call."""
    spans = lib_run.trace.at_level(Level.LIBRARY)
    conv_calls = [s for s in spans if s.name == "cudnnConvolutionForward"]
    assert any(s.tags["n_kernels"] >= 3 for s in conv_calls)


def test_library_call_table(lib_run):
    table = library_call_table(lib_run)
    assert table.rows
    total = sum(r["latency_pct"] for r in table)
    assert total == pytest.approx(100.0)
    assert sum(r["kernels"] for r in table) == len(lib_run.kernels)


def test_library_table_requires_library_level(v100_session, cnn_graph):
    run = v100_session.profile(cnn_graph, 2, ProfilingConfig(metrics=()))
    with pytest.raises(ValueError, match="MLLibG"):
        library_call_table(run)


def test_mlg_run_has_no_library_spans(v100_session, cnn_graph):
    run = v100_session.profile(cnn_graph, 2, ProfilingConfig(metrics=()))
    assert run.trace.at_level(Level.LIBRARY) == []


def test_api_name_mapping():
    from repro.sim.cuda import KernelLaunchRecord
    from repro.sim.kernels import KernelClass, KernelSpec

    def record(name, klass, library):
        spec = KernelSpec(name, klass, 1.0, 1.0, 1.0, blocks=1,
                          tags={"library": library})
        return KernelLaunchRecord(1, spec, 0, 0, 1, 2, 3, 3)

    assert api_name_for(record("k", KernelClass.POOL, "cudnn")) == \
        "cudnnPoolingForward"
    assert api_name_for(record("k", KernelClass.GEMM, "cublas")) == \
        "cublasSgemm"
    assert api_name_for(
        record("Eigen::x", KernelClass.ELEMENTWISE_EIGEN, "eigen")
    ) == "Eigen::TensorDevice::run"
    assert api_name_for(
        record("k", KernelClass.MEMORY_MOVEMENT, "")
    ) == "launchGenericOp"


def test_tracer_groups_by_layer_and_api():
    from repro.sim.cuda import KernelLaunchRecord
    from repro.sim.kernels import KernelClass, KernelSpec

    def record(cid, klass, library, layer, t0):
        spec = KernelSpec(f"k{cid}", klass, 1.0, 1.0, 1.0, blocks=1,
                          tags={"library": library, "layer_index": layer})
        return KernelLaunchRecord(cid, spec, 0, t0, t0 + 5, t0 + 10,
                                  t0 + 20, t0 + 20)

    records = [
        record(1, KernelClass.CONV_PRECOMP_GEMM, "cudnn", 1, 0),
        record(2, KernelClass.CONV_PRECOMP_GEMM, "cudnn", 1, 10),
        record(3, KernelClass.ELEMENTWISE_EIGEN, "eigen", 2, 30),
        record(4, KernelClass.CONV_PRECOMP_GEMM, "cudnn", 3, 50),
    ]
    spans = LibraryTracer().convert(records)
    assert [s.tags["n_kernels"] for s in spans] == [2, 1, 1]
    assert spans[0].name == spans[2].name == "cudnnConvolutionForward"
