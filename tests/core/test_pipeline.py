"""AnalysisPipeline / ModelProfile tests."""

import pytest


def test_profile_layer_structure(cnn_profile):
    assert cnn_profile.batch == 8
    assert cnn_profile.layers
    indices = [layer.index for layer in cnn_profile.layers]
    assert indices == sorted(indices)
    types = {layer.layer_type for layer in cnn_profile.layers}
    assert "Conv2D" in types and "Mul" in types


def test_every_compute_layer_has_kernels(cnn_profile):
    for layer in cnn_profile.layers:
        if layer.layer_type in ("Conv2D", "Relu", "Mul", "Add", "AddN"):
            assert layer.kernels, f"{layer.name} has no kernels"


def test_layer_invariants(cnn_profile):
    for layer in cnn_profile.layers:
        assert layer.latency_ms >= 0
        assert layer.kernel_latency_ms <= layer.latency_ms * 1.05
        assert layer.non_gpu_latency_ms >= 0
        if layer.kernels:
            assert 0 <= layer.achieved_occupancy <= 1


def test_model_aggregates_consistent(cnn_profile):
    assert cnn_profile.kernel_latency_ms == pytest.approx(
        sum(l.kernel_latency_ms for l in cnn_profile.layers)
    )
    assert cnn_profile.flops == pytest.approx(
        sum(k.flops for k in cnn_profile.kernels)
    )
    assert 0 < cnn_profile.gpu_latency_percentage <= 100


def test_kernel_profile_derived_metrics(cnn_profile):
    kernel = max(cnn_profile.kernels, key=lambda k: k.flops)
    assert kernel.arithmetic_intensity > 0
    assert kernel.arithmetic_throughput_tflops > 0
    assert kernel.dram_bytes == kernel.dram_read_bytes + kernel.dram_write_bytes


def test_overheads_recorded(cnn_profile):
    assert set(cnn_profile.overheads) == {"M/L", "M/L/G"}


def test_throughput(cnn_profile):
    assert cnn_profile.throughput == pytest.approx(
        8 / (cnn_profile.model_latency_ms / 1e3)
    )


def test_resnet50_profile_matches_paper_shape(resnet50_profile):
    """Golden-shape assertions for the paper's running example."""
    p = resnet50_profile
    assert 200 <= p.model_latency_ms <= 400  # paper: 275 ms
    assert 85 <= p.gpu_latency_percentage <= 97  # paper: 92.4%
    assert 225 <= len(p.layers) <= 240  # paper: 234
    assert not p.memory_bound  # compute-bound at optimal batch
    assert 100 <= p.overheads["M/L"] <= 220  # paper: 157 ms
    top = max(p.layers, key=lambda l: l.latency_ms)
    assert top.layer_type == "Conv2D"
    assert top.alloc_mb == pytest.approx(25.7, rel=0.01)  # Table II


def test_sweep_contains_all_batches(resnet50_sweep):
    assert sorted(resnet50_sweep) == [1, 4, 16, 32, 64, 256]
    for batch, profile in resnet50_sweep.items():
        assert profile.batch == batch
