"""Profiling level-set tests."""

import pytest

from repro.core.levels import LADDER, M, ML, MLG, ProfilingLevelSet
from repro.tracing import Level


def test_labels():
    assert M.label == "M"
    assert ML.label == "M/L"
    assert MLG.label == "M/L/G"


def test_membership():
    assert Level.MODEL in M and Level.LAYER not in M
    assert Level.LAYER in ML
    assert Level.GPU_KERNEL in MLG


def test_deepest():
    assert M.deepest == Level.MODEL
    assert MLG.deepest == Level.GPU_KERNEL


def test_parse_round_trip():
    for level_set in LADDER:
        assert ProfilingLevelSet.parse(level_set.label) == level_set
    with pytest.raises(ValueError):
        ProfilingLevelSet.parse("M/X")


def test_with_level():
    assert M.with_level(Level.LAYER) == ML


def test_ladder_is_cumulative():
    for shallow, deep in zip(LADDER, LADDER[1:]):
        assert shallow.levels < deep.levels
