"""Statistics tests (incl. hypothesis bounds)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import Summary, mean, median, trimmed_mean


def test_trimmed_mean_drops_outliers():
    values = [1.0, 1.1, 1.05, 0.95, 100.0]
    assert trimmed_mean(values, 0.2) < 2.0


def test_trimmed_mean_plain_mean_when_small():
    assert trimmed_mean([3.0], 0.2) == 3.0
    assert trimmed_mean([1.0, 3.0], 0.2) == 2.0


def test_trimmed_mean_validation():
    with pytest.raises(ValueError):
        trimmed_mean([])
    with pytest.raises(ValueError):
        trimmed_mean([1.0], proportion=0.5)


def test_mean_median():
    assert mean([1, 2, 3]) == 2
    assert median([1, 2, 3]) == 2
    assert median([1, 2, 3, 4]) == 2.5
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        median([])


def test_summary():
    s = Summary.of([1.0, 2.0, 3.0])
    assert s.mean == 2.0 and s.minimum == 1.0 and s.maximum == 3.0
    assert s.n == 3 and s.std == pytest.approx(0.8164965809)


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50),
    proportion=st.floats(0.0, 0.49),
)
def test_trimmed_mean_bounded_by_extremes(values, proportion):
    tm = trimmed_mean(values, proportion)
    eps = 1e-9 * max(abs(v) for v in values)
    assert min(values) - eps <= tm <= max(values) + eps
