"""Property-based session/trace invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProfilingConfig, XSPSession
from repro.tracing import Level, SpanKind

_session = XSPSession("Tesla_V100", "tensorflow_like")


@settings(max_examples=12, deadline=None)
@given(batch=st.sampled_from([1, 2, 5, 8, 16, 33]))
def test_trace_invariants_across_batches(cnn_graph, batch):
    run = _session.profile(cnn_graph, batch, ProfilingConfig(metrics=()))
    trace = run.trace
    by_id = trace.by_id()

    # Every span's parent (when set) exists and contains it level-above.
    for span in trace.spans:
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        assert parent.level < span.level
        if span.kind is not SpanKind.EXECUTION:
            assert parent.contains(span)

    # Layer spans tile the predict span without overlap.
    layers = sorted(trace.at_level(Level.LAYER), key=lambda s: s.start_ns)
    for a, b in zip(layers, layers[1:]):
        assert a.end_ns <= b.start_ns
    assert all(run.predict_span.contains(s) for s in layers)

    # Launch/execution pairing is complete and 1:1.
    launches = [s for s in trace.spans if s.kind is SpanKind.LAUNCH]
    executions = [s for s in trace.spans if s.kind is SpanKind.EXECUTION]
    assert len(launches) == len(executions) == len(run.kernels)
    assert {s.correlation_id for s in launches} == \
        {s.correlation_id for s in executions}

    # Kernel execution never precedes its launch.
    for mk in run.kernels:
        assert mk.execution.start_ns >= mk.launch.start_ns
