"""Application-level profiling tests (Sec. III-E extension)."""

import pytest

from repro.core import ProfilingConfig, XSPSession
from repro.tracing import Level


@pytest.fixture(scope="module")
def app(cnn_graph):
    session = XSPSession("Tesla_V100", "tensorflow_like")
    trace, runs = session.profile_application(
        [(cnn_graph, 2), (cnn_graph, 4)],
        name="double_eval",
        config=ProfilingConfig(metrics=()),
    )
    return trace, runs


def test_single_application_span(app):
    trace, runs = app
    apps = trace.at_level(Level.APPLICATION)
    assert len(apps) == 1
    assert apps[0].name == "double_eval"
    assert apps[0].tags["evaluations"] == 2
    assert len(runs) == 2


def test_model_spans_parented_on_application(app):
    trace, _ = app
    app_span = trace.at_level(Level.APPLICATION)[0]
    predicts = [s for s in trace.at_level(Level.MODEL)
                if s.name == "predict"]
    assert len(predicts) == 2
    assert all(s.parent_id == app_span.span_id for s in predicts)
    assert all(app_span.contains(s) for s in predicts)


def test_evaluations_do_not_overlap(app):
    trace, _ = app
    predicts = sorted(
        (s for s in trace.at_level(Level.MODEL) if s.name == "predict"),
        key=lambda s: s.start_ns,
    )
    assert predicts[0].end_ns < predicts[1].start_ns


def test_spans_tagged_with_model(app):
    trace, _ = app
    layer = trace.at_level(Level.LAYER)[0]
    assert layer.tags["model"] == "small_cnn"


def test_empty_workload_rejected(cnn_graph):
    session = XSPSession()
    with pytest.raises(ValueError, match="empty"):
        session.profile_application([])


def test_mixed_model_application(cnn_graph):
    from repro.models import get_model

    session = XSPSession()
    trace, runs = session.profile_application(
        [(cnn_graph, 1), (get_model(53).graph, 1)],
        config=ProfilingConfig(metrics=()),
    )
    models = {s.tags.get("model") for s in trace.at_level(Level.LAYER)}
    assert models == {"small_cnn", "DeepLabv3_MobileNet_v2"}
