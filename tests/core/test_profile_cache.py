"""On-disk ModelProfile store: round-trip fidelity, keying, invalidation,
and the warm-cache fast path that skips the leveled experiment ladder."""

import json

import pytest

from repro.core import AnalysisPipeline, LeveledExperiment, ProfileStore, XSPSession
from repro.core import cache as cache_mod
from repro.models import get_model

MODEL_ID = 53  # small graph keeps the cold computes cheap
BATCH = 4
RUNS = 2


@pytest.fixture()
def graph():
    return get_model(MODEL_ID).graph


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "profiles")


def _pipeline(store=None, runs=RUNS):
    return AnalysisPipeline(
        XSPSession("Tesla_V100"), runs_per_level=runs, store=store
    )


def test_round_trip_preserves_all_derived_properties(graph, store):
    original = _pipeline().profile_model(graph, BATCH)
    store.put(original, runs_per_level=RUNS)
    restored = store.get(
        graph.name, "Tesla_V100", "tensorflow_like", BATCH, RUNS
    )
    assert restored is not None
    assert restored is not original

    assert restored.model_latency_ms == original.model_latency_ms
    assert restored.throughput == original.throughput
    assert restored.flops == original.flops
    assert restored.dram_read_bytes == original.dram_read_bytes
    assert restored.dram_write_bytes == original.dram_write_bytes
    assert restored.achieved_occupancy == original.achieved_occupancy
    assert restored.arithmetic_intensity == original.arithmetic_intensity
    assert restored.memory_bound == original.memory_bound  # roofline class
    assert restored.gpu_latency_percentage == original.gpu_latency_percentage
    assert restored.overheads == original.overheads
    assert restored.n_runs == original.n_runs

    assert len(restored.layers) == len(original.layers)
    for mine, theirs in zip(restored.layers, original.layers):
        assert mine.index == theirs.index
        assert mine.name == theirs.name
        assert mine.layer_type == theirs.layer_type
        assert mine.shape == theirs.shape
        assert mine.latency_ms == theirs.latency_ms
        assert mine.alloc_bytes == theirs.alloc_bytes
        assert mine.achieved_occupancy == theirs.achieved_occupancy
        assert len(mine.kernels) == len(theirs.kernels)
        for rk, ok in zip(mine.kernels, theirs.kernels):
            assert rk == ok  # KernelProfile is a frozen dataclass


def test_missing_entry_is_none(graph, store):
    assert store.get(graph.name, "Tesla_V100", "tensorflow_like", BATCH,
                     RUNS) is None


def test_runs_per_level_is_part_of_the_key(graph, store):
    profile = _pipeline(store).profile_model(graph, BATCH)
    assert store.get(graph.name, profile.system, profile.framework, BATCH,
                     RUNS) is not None
    # A different repetition count must miss (it changes the statistics).
    assert store.get(graph.name, profile.system, profile.framework, BATCH,
                     RUNS + 1) is None


def test_statistic_is_part_of_the_key(graph, store):
    """A pipeline with a different merge statistic must not be served a
    profile merged with another one."""
    _pipeline(store).profile_model(graph, BATCH)  # trimmed_mean entry

    def mean(values):
        return sum(values) / len(values)

    ran = []
    other = AnalysisPipeline(
        XSPSession("Tesla_V100"), runs_per_level=RUNS, statistic=mean,
        store=store,
    )

    original_run = LeveledExperiment.run

    def tracking_run(self, *args, **kwargs):
        ran.append(1)
        return original_run(self, *args, **kwargs)

    LeveledExperiment.run, saved = tracking_run, LeveledExperiment.run
    try:
        profile = other.profile_model(graph, BATCH)
    finally:
        LeveledExperiment.run = saved
    assert ran, "different statistic must miss the cache and recompute"
    assert profile.model_latency_ms > 0


def test_schema_version_change_invalidates(graph, store):
    profile = _pipeline(store).profile_model(graph, BATCH)
    path = store.path_for(graph.name, profile.system, profile.framework,
                          BATCH, RUNS)
    document = json.loads(path.read_text())
    document["schema_version"] = cache_mod.SCHEMA_VERSION + 1
    path.write_text(json.dumps(document))
    assert store.get(graph.name, profile.system, profile.framework, BATCH,
                     RUNS) is None


def test_corrupt_entry_is_a_miss(graph, store):
    profile = _pipeline(store).profile_model(graph, BATCH)
    path = store.path_for(graph.name, profile.system, profile.framework,
                          BATCH, RUNS)
    path.write_text("{not json")
    assert store.get(graph.name, profile.system, profile.framework, BATCH,
                     RUNS) is None


def test_mismatched_stored_key_is_a_miss(graph, store):
    profile = _pipeline(store).profile_model(graph, BATCH)
    path = store.path_for(graph.name, profile.system, profile.framework,
                          BATCH, RUNS)
    document = json.loads(path.read_text())
    document["key"]["batch"] = BATCH + 1  # simulated filename collision
    path.write_text(json.dumps(document))
    assert store.get(graph.name, profile.system, profile.framework, BATCH,
                     RUNS) is None


def test_warm_cache_skips_leveled_experiment_entirely(
    graph, store, monkeypatch
):
    """Quickstart-style repeat run: zero calls into LeveledExperiment.run."""
    cold = _pipeline(store).profile_model(graph, BATCH)

    calls = []

    def counting_run(self, *args, **kwargs):  # pragma: no cover - must not run
        calls.append(args)
        raise AssertionError("warm-cache run must not re-profile")

    monkeypatch.setattr(LeveledExperiment, "run", counting_run)
    warm = _pipeline(store).profile_model(graph, BATCH)
    assert calls == []
    assert warm.model_latency_ms == cold.model_latency_ms
    assert warm.throughput == cold.throughput


def test_clear_and_entries(graph, store):
    _pipeline(store).profile_model(graph, BATCH)
    _pipeline(store).profile_model(graph, BATCH + 1)
    assert len(store) == 2
    assert store.clear() == 2
    assert len(store) == 0


def test_context_consults_store_from_environment(tmp_path, monkeypatch):
    from repro.experiments import context

    cache_dir = tmp_path / "ctx-cache"
    monkeypatch.setenv(context.CACHE_ENV, str(cache_dir))
    context.clear()
    try:
        cold = context.model_profile(MODEL_ID, BATCH)
        assert cache_dir.exists() and any(cache_dir.iterdir())

        # New process simulated: drop in-memory caches, forbid re-profiling.
        context.clear()

        def no_run(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("profile must come from the disk store")

        monkeypatch.setattr(LeveledExperiment, "run", no_run)
        warm = context.model_profile(MODEL_ID, BATCH)
        assert warm is not cold
        assert warm.model_latency_ms == cold.model_latency_ms
    finally:
        monkeypatch.delenv(context.CACHE_ENV, raising=False)
        context.clear()


def test_clear_sweeps_orphaned_tmp_files(graph, store):
    """A crashed put() leaves <name>.json<rand>.tmp orphans; clear() must
    sweep them while entries()/len keep excluding them."""
    profile = _pipeline(store).profile_model(graph, BATCH)
    entry = store.path_for(profile.model_name, profile.system,
                           profile.framework, BATCH, RUNS)
    orphan = store.root / (entry.name + "a1b2c3.tmp")
    orphan.write_text('{"partial":')
    assert len(store) == 1  # the orphan is not a visible entry
    assert orphan not in list(store.entries())
    assert store.clear() == 2  # the entry and the orphan
    assert not orphan.exists()
    assert list(store.entries()) == []


def test_get_ignores_orphaned_tmp_files(graph, store):
    """Lookups see only committed entries even with orphans present."""
    profile = _pipeline(store).profile_model(graph, BATCH)
    (store.root / "junk.json123.tmp").write_text("{")
    warm = store.get(profile.model_name, profile.system, profile.framework,
                     BATCH, RUNS)
    assert warm is not None
    assert warm.model_latency_ms == profile.model_latency_ms
