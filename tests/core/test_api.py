"""startSpan/finishSpan API tests."""

from repro.core.api import finish_span, start_span
from repro.core.profilers import ModelTracer
from repro.sim import VirtualClock
from repro.tracing import Level


def test_start_finish_measures_region():
    clock = VirtualClock()
    tracer = ModelTracer()
    scope = start_span(tracer, clock.now, "predict", batch=8)
    clock.advance_ms(5)
    span = finish_span(scope, status="ok")
    assert span.duration_ms == 5.0
    assert span.tags["batch"] == 8
    assert span.tags["status"] == "ok"
    assert span.level == Level.MODEL
    assert tracer.buffer == [span]


def test_nested_spans_via_parent_id():
    clock = VirtualClock()
    tracer = ModelTracer()
    outer = start_span(tracer, clock.now, "evaluate")
    inner = start_span(tracer, clock.now, "predict",
                       parent_id=outer.span.span_id)
    clock.advance_ms(1)
    finish_span(inner)
    clock.advance_ms(1)
    finish_span(outer)
    assert inner.span.parent_id == outer.span.span_id
    assert outer.span.duration_ms == 2.0
