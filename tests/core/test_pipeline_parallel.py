"""Parallel batch sweeps: worker-process fan-out matches the serial path."""

import pytest

from repro.core import AnalysisPipeline, ProfileStore, XSPSession
from repro.models import get_model

MODEL_ID = 53
BATCHES = (1, 2, 4)


@pytest.fixture(scope="module")
def graph():
    return get_model(MODEL_ID).graph


def _pipeline(**kwargs):
    return AnalysisPipeline(XSPSession("Tesla_V100"), runs_per_level=2,
                            **kwargs)


def _assert_profiles_equal(a, b):
    assert a.model_latency_ms == b.model_latency_ms
    assert a.throughput == b.throughput
    assert a.flops == b.flops
    assert a.achieved_occupancy == b.achieved_occupancy
    assert a.memory_bound == b.memory_bound
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        assert la.latency_ms == lb.latency_ms
        assert [k.name for k in la.kernels] == [k.name for k in lb.kernels]


def test_parallel_sweep_matches_serial(graph):
    serial = _pipeline().sweep(graph, BATCHES)
    parallel = _pipeline().sweep(graph, BATCHES, parallel=True)
    assert sorted(parallel) == sorted(serial) == sorted(BATCHES)
    for batch in BATCHES:
        _assert_profiles_equal(serial[batch], parallel[batch])


def test_parallel_sweep_fills_the_store(graph, tmp_path):
    store = ProfileStore(tmp_path)
    _pipeline(store=store).sweep(graph, BATCHES, parallel=True)
    assert len(store) == len(BATCHES)
    for batch in BATCHES:
        assert store.get(graph.name, "Tesla_V100", "tensorflow_like", batch,
                         2) is not None


def test_parallel_sweep_serves_cached_batches_without_workers(
    graph, tmp_path, monkeypatch
):
    store = ProfileStore(tmp_path)
    warmup = _pipeline(store=store)
    expected = warmup.sweep(graph, BATCHES)

    import repro.core.pipeline as pipeline_mod

    def no_workers(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("fully cached sweep must not spawn workers")

    monkeypatch.setattr(pipeline_mod, "ProcessPoolExecutor", no_workers)
    served = _pipeline(store=store).sweep(graph, BATCHES, parallel=True)
    for batch in BATCHES:
        _assert_profiles_equal(expected[batch], served[batch])


def test_unpicklable_statistic_falls_back_to_serial(graph):
    calls = []

    def local_stat(values):  # locals don't pickle -> serial fallback
        calls.append(1)
        return sum(values) / len(values)

    pipe = _pipeline(statistic=local_stat)
    result = pipe.sweep(graph, BATCHES, parallel=True)
    assert sorted(result) == sorted(BATCHES)
    assert calls  # the statistic ran in this process


def test_parallel_sweep_with_custom_gpu_spec(graph):
    """Workers must profile the actual GPUSpec, not look its name up."""
    from dataclasses import replace

    from repro.sim.hardware import get_system

    custom = replace(get_system("Tesla_V100"), name="Custom_V100_OC",
                     peak_tflops=20.0)
    pipe = AnalysisPipeline(XSPSession(custom), runs_per_level=2)
    serial = pipe.sweep(graph, BATCHES)
    parallel = pipe.sweep(graph, BATCHES, parallel=True)
    for batch in BATCHES:
        a, b = serial[batch], parallel[batch]
        assert b.system == "Custom_V100_OC"
        # (not _assert_profiles_equal: .memory_bound needs a cataloged
        # system name, which a custom spec deliberately is not)
        assert a.model_latency_ms == b.model_latency_ms
        assert a.flops == b.flops
        assert len(a.layers) == len(b.layers)


def test_kernels_by_layer_memo_is_caller_safe(graph):
    """In-place mutation of a returned bucket must not leak into the memo."""
    run = XSPSession("Tesla_V100").profile(graph, 2)
    first = run.kernels_by_layer()
    some_layer = next(iter(first))
    before = [mk.name for mk in first[some_layer]]
    first[some_layer].reverse()
    first[some_layer].append(first[some_layer][0])
    again = run.kernels_by_layer()
    assert [mk.name for mk in again[some_layer]] == before


def test_worker_span_id_ranges_are_disjoint():
    """Seeded workers draw span ids from namespace-disjoint ranges.

    Regression: every ProcessPoolExecutor worker inherits a fresh module
    state, so without the initializer each worker's span counter restarts
    at 1 and spans from different workers collide.
    """
    import repro.tracing.span as span_mod
    from repro.tracing.span import (
        _NAMESPACE_MASK,
        _NAMESPACE_SHIFT,
        seed_span_ids,
    )

    first_seeded = 1 << _NAMESPACE_SHIFT
    draws_per_worker = 1000

    def ids_for(namespace):
        base = seed_span_ids(namespace)
        return {base + i for i in range(draws_per_worker)}

    original_counter = span_mod._span_counter
    try:
        seen = set()
        for namespace in (1234, 5678, 90123, _NAMESPACE_MASK + 1234):
            ids = ids_for(namespace)
            assert not (ids & seen), f"namespace {namespace} collides"
            # Disjoint from the parent's unseeded counter range (slot 0).
            assert min(ids) >= first_seeded
            seen |= ids
        # A namespace hashing to slot 0 must not fall back onto the
        # parent's range either.
        wrapped = ids_for(_NAMESPACE_MASK << _NAMESPACE_SHIFT)
        assert min(wrapped) >= first_seeded
    finally:
        span_mod._span_counter = original_counter


def test_worker_initializer_seeds_subprocess_counters():
    """The sweep pool's initializer really runs in the workers."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.pipeline import _seed_worker_span_ids
    from repro.tracing.span import _NAMESPACE_SHIFT

    with ProcessPoolExecutor(
        max_workers=2, initializer=_seed_worker_span_ids
    ) as pool:
        batches = list(pool.map(_draw_span_ids, range(4)))
    for ids in batches:
        assert min(ids) >= 1 << _NAMESPACE_SHIFT
    by_worker: dict[int, set] = {}
    for ids in batches:
        by_worker.setdefault(ids[0] >> _NAMESPACE_SHIFT, set()).update(ids)
    workers = list(by_worker.values())
    for i, a in enumerate(workers):
        for b in workers[i + 1:]:
            assert not (a & b), "span ids collide across workers"


def _draw_span_ids(_):
    """Module-level (picklable) worker task: draw a few span ids."""
    from repro.tracing.span import new_span_id

    return [new_span_id() for _ in range(50)]


def test_single_batch_sweep_stays_serial(graph, monkeypatch):
    import repro.core.pipeline as pipeline_mod

    def no_workers(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("single-batch sweep must not spawn workers")

    monkeypatch.setattr(pipeline_mod, "ProcessPoolExecutor", no_workers)
    result = _pipeline().sweep(graph, [8], parallel=True)
    assert sorted(result) == [8]
