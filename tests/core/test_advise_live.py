"""AnalysisPipeline.advise_live: streaming insights over a live capture."""

from repro.core import AnalysisPipeline, XSPSession
from repro.tracing import Level


def test_advise_live_yields_final_report(cnn_graph):
    session = XSPSession("Tesla_V100", "tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=1)
    updates = list(
        pipeline.advise_live(cnn_graph, 2, evaluations=2)
    )
    assert updates
    final = updates[-1]
    assert final.final
    assert final.report.model_name == cnn_graph.name
    assert final.report.system == "Tesla_V100"
    # Every streamed row was accounted for, monotonically.
    assert final.n_spans == sum(u.new_rows for u in updates)
    marks = [u.n_spans for u in updates]
    assert marks == sorted(marks)
    assert all(u.report is not None for u in updates)


def test_advise_live_incremental_engine_reuses_quiet_rules(cnn_graph):
    """Sweep rules stay skipped, trace/profile rules refresh per update —
    and the final update's report matches a fresh engine run."""
    from repro.insights import InsightContext, InsightEngine
    from repro.insights.live import LiveUpdate

    session = XSPSession("Tesla_V100", "tensorflow_like")
    pipeline = AnalysisPipeline(session, runs_per_level=1)
    updates = list(pipeline.advise_live(cnn_graph, 1, evaluations=1))
    final = updates[-1]
    assert isinstance(final, LiveUpdate)
    assert "batch-scaling-knee" in final.report.skipped_rules
