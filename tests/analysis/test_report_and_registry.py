"""Full report + Table I registry tests."""

from repro.analysis import ANALYSIS_REGISTRY
from repro.analysis.report import full_report


def test_registry_matches_table1():
    assert len(ANALYSIS_REGISTRY) == 15
    ids = [a.analysis_id for a in ANALYSIS_REGISTRY]
    assert ids == [f"A{i}" for i in range(1, 16)]
    # XSP performs all 15; A11-A14 are exclusive to XSP.
    assert all(a.xsp for a in ANALYSIS_REGISTRY)
    exclusives = [
        a.analysis_id
        for a in ANALYSIS_REGISTRY
        if not (a.end_to_end_benchmarking or a.framework_profilers
                or a.nvidia_profilers)
    ]
    assert exclusives == ["A11", "A12", "A13", "A14"]


def test_registry_level_requirements():
    by_id = {a.analysis_id: a for a in ANALYSIS_REGISTRY}
    assert by_id["A1"].levels == "M"
    assert by_id["A11"].levels == "L/G"
    assert by_id["A15"].levels == "M/G"


def test_full_report_renders(cnn_profile):
    text = full_report(cnn_profile)
    for marker in ("A1", "A2", "A5", "A6", "A7", "A8", "A10", "A11", "A9",
                   "A13"):
        assert marker in text
    assert cnn_profile.model_name in text


def test_full_report_with_sweep(resnet50_sweep):
    text = full_report(resnet50_sweep[256], resnet50_sweep)
    assert "A15" in text
    assert "Batch Size" in text
