"""Comparison and export module tests."""

import pytest

from repro.analysis.compare import (
    compare_frameworks,
    compare_models,
    compare_systems,
    comparison_table,
    speedup_summary,
)
from repro.analysis.export import (
    save_table,
    table_from_json,
    table_to_csv,
    table_to_json,
)
from repro.analysis.tables import Column, Table
from repro.core import AnalysisPipeline, XSPSession


@pytest.fixture(scope="module")
def two_framework_profiles(cnn_graph):
    out = []
    for framework in ("tensorflow_like", "mxnet_like"):
        pipeline = AnalysisPipeline(
            XSPSession("Tesla_V100", framework), runs_per_level=1
        )
        out.append(pipeline.profile_model(cnn_graph, 4))
    return out


def test_comparison_table_rows(two_framework_profiles):
    table = comparison_table(
        {p.framework: p for p in two_framework_profiles}
    )
    assert len(table) == 2
    assert {r["label"] for r in table} == {"tensorflow_like", "mxnet_like"}
    for row in table:
        assert row["latency_ms"] > 0 and 0 < row["gpu_pct"] <= 100


def test_compare_frameworks_validates_dimensions(two_framework_profiles):
    table = compare_frameworks(two_framework_profiles)
    assert "Framework comparison" in table.title


def test_compare_rejects_mixed_dimensions(two_framework_profiles, cnn_graph):
    other_batch = AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    ).profile_model(cnn_graph, 8)
    with pytest.raises(ValueError, match="differ in batch"):
        compare_frameworks([two_framework_profiles[0], other_batch])
    with pytest.raises(ValueError, match="differ in framework"):
        compare_models(two_framework_profiles)


def test_compare_systems(cnn_graph):
    profiles = [
        AnalysisPipeline(XSPSession(system, "tensorflow_like"),
                         runs_per_level=1).profile_model(cnn_graph, 4)
        for system in ("Tesla_V100", "Tesla_M60")
    ]
    table = compare_systems(profiles)
    rows = {r["label"]: r for r in table}
    assert rows["Tesla_V100"]["latency_ms"] < rows["Tesla_M60"]["latency_ms"]


def test_speedup_summary(two_framework_profiles):
    tf, mx = two_framework_profiles
    summary = speedup_summary(baseline=mx, candidate=tf)
    assert summary["speedup"] == pytest.approx(
        mx.model_latency_ms / tf.model_latency_ms
    )
    assert summary["throughput_ratio"] > 0


def test_empty_comparison_rejected():
    with pytest.raises(ValueError):
        comparison_table({})


# -- export ----------------------------------------------------------------


def sample_table():
    t = Table("t", [Column("name", "Name"), Column("ok", "OK?"),
                    Column("value", "Value", ".2f")])
    t.add(name="a", ok=True, value=1.5)
    t.add(name="b", ok=False, value=None)
    return t


def test_csv_export():
    csv_text = table_to_csv(sample_table())
    lines = csv_text.strip().splitlines()
    assert lines[0] == "Name,OK?,Value"
    assert lines[1] == "a,yes,1.5"
    assert lines[2] == "b,no,"


def test_json_round_trip():
    restored = table_from_json(table_to_json(sample_table()))
    assert restored.title == "t"
    assert restored.rows[0]["name"] == "a"
    assert restored.rows[0]["ok"] is True
    assert len(restored.columns) == 3


def test_save_table_dispatch(tmp_path):
    table = sample_table()
    save_table(table, str(tmp_path / "t.csv"))
    save_table(table, str(tmp_path / "t.json"))
    assert (tmp_path / "t.csv").read_text().startswith("Name,")
    assert '"title": "t"' in (tmp_path / "t.json").read_text()
    with pytest.raises(ValueError, match="unsupported"):
        save_table(table, str(tmp_path / "t.xlsx"))
