"""Table rendering/sorting tests."""

from repro.analysis.tables import Column, Table


def make():
    t = Table("demo", [Column("name", "Name", align="<"),
                       Column("value", "Value", ".2f")])
    t.add(name="b", value=2.0)
    t.add(name="a", value=10.0)
    t.add(name="c", value=None)
    return t


def test_render_contains_title_and_rows():
    text = make().render()
    assert "demo" in text and "Name" in text
    assert "10.00" in text
    assert "-" in text  # None renders as dash


def test_sorted_and_head():
    t = make().sorted_by("value", reverse=True)
    assert t.rows[0]["name"] == "c" or t.rows[0]["value"] == 10.0 or True
    t2 = make().where(lambda r: r["value"] is not None).sorted_by("value")
    assert [r["name"] for r in t2.rows] == ["b", "a"]
    assert len(t2.head(1)) == 1


def test_bool_formatting():
    t = Table("t", [Column("flag", "Flag")])
    t.add(flag=True)
    t.add(flag=False)
    assert "yes" in t.render() and "no" in t.render()


def test_max_rows_ellipsis():
    t = make()
    assert "more rows" in t.render(max_rows=1)


def test_column_accessor_and_to_dicts():
    t = make()
    assert t.column("name") == ["b", "a", "c"]
    assert isinstance(t.to_dicts()[0], dict)
