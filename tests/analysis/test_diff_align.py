"""Layer/kernel alignment: the index/name/type tolerance ladder."""

from diff_factories import build_baseline, make_kernel, make_layer

from repro.analysis.diff.align import align_layers, group_kernels


def test_identical_sequences_match_fully_by_name():
    layers = build_baseline().layers
    alignment = align_layers(layers, layers)
    assert len(alignment.matched) == len(layers)
    assert alignment.removed == [] and alignment.added == []
    assert all(m.via == "name" for m in alignment.matched)
    for m in alignment.matched:
        assert m.baseline.name == m.candidate.name


def test_inserted_layer_is_added_others_still_match():
    base = build_baseline().layers
    cand = list(base)
    inserted = make_layer(99, "Dropout")
    cand.insert(2, inserted)
    alignment = align_layers(base, cand)
    assert len(alignment.matched) == len(base)
    assert alignment.added == [inserted]
    assert alignment.removed == []


def test_removed_layer_is_reported_not_force_matched():
    base = build_baseline().layers
    cand = base[:2] + base[3:]
    alignment = align_layers(base, cand)
    assert len(alignment.matched) == len(base) - 1
    assert [l.name for l in alignment.removed] == [base[2].name]
    assert alignment.added == []


def test_renamed_layer_matches_via_type():
    base = build_baseline().layers
    cand = list(base)
    cand[1] = make_layer(1, "BatchNorm", name="bn_renamed")
    alignment = align_layers(base, cand)
    assert len(alignment.matched) == len(base)
    vias = {m.baseline.name: m.via for m in alignment.matched}
    assert vias[base[1].name] == "type"
    assert all(v == "name" for name, v in vias.items() if name != base[1].name)


def test_retyped_layer_matches_via_index():
    base = build_baseline().layers
    cand = list(base)
    cand[2] = make_layer(2, "LeakyRelu", name="activation_v2")
    alignment = align_layers(base, cand)
    vias = {m.baseline.name: m.via for m in alignment.matched}
    assert vias[base[2].name] == "index"


def test_unrelated_replacement_reports_both_sides():
    base = [make_layer(0, "Conv2D"), make_layer(1, "Relu")]
    cand = [make_layer(0, "Conv2D"), make_layer(7, "Softmax", name="out")]
    alignment = align_layers(base, cand)
    assert len(alignment.matched) == 1
    assert [l.name for l in alignment.removed] == [base[1].name]
    assert [l.name for l in alignment.added] == ["out"]


def test_alignment_is_insert_shift_tolerant():
    """An early insert must not cascade mismatches down the sequence."""
    base = build_baseline().layers
    cand = [make_layer(50, "Input")] + list(base)
    alignment = align_layers(base, cand)
    assert len(alignment.matched) == len(base)
    assert all(m.via == "name" for m in alignment.matched)


def test_group_kernels_aggregates_same_named_launches():
    kernels = [
        make_kernel("sgemm", 0, 0, latency_ms=1.0, flops=1e9, occupancy=0.4),
        make_kernel("sgemm", 0, 1, latency_ms=3.0, flops=3e9, occupancy=0.8),
        make_kernel("relu", 0, 2, latency_ms=0.5),
    ]
    groups = group_kernels(kernels)
    assert set(groups) == {"sgemm", "relu"}
    sgemm = groups["sgemm"]
    assert sgemm.count == 2
    assert sgemm.latency_ms == 4.0
    assert sgemm.flops == 4e9
    # Latency-weighted occupancy: (0.4*1 + 0.8*3) / 4.
    assert abs(sgemm.occupancy - 0.7) < 1e-12


def test_group_kernels_empty():
    assert group_kernels([]) == {}
