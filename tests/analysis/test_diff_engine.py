"""diff_profiles: deltas, rollups, and finding classification."""

import copy
import json

import pytest
from diff_factories import (
    build_baseline,
    make_kernel,
    make_layer,
    make_profile,
    scaled,
)

from repro.analysis.diff import Delta, diff_profiles
from repro.analysis.diff.model import FINDING_KINDS


# -- Delta semantics ----------------------------------------------------------


def test_delta_ratio_and_pct():
    d = Delta(2.0, 3.0)
    assert d.delta == 1.0
    assert d.ratio == 1.5
    assert abs(d.pct_change - 50.0) < 1e-12


def test_delta_zero_baseline():
    assert Delta(0.0, 0.0).ratio == 1.0
    assert Delta(0.0, 5.0).ratio == float("inf")


# -- self-diff is clean (acceptance criterion) --------------------------------


def test_self_diff_yields_no_findings_above_zero():
    p = build_baseline()
    diff = diff_profiles(p, p)
    assert diff.findings_above(1e-9) == []
    assert diff.speedup == 1.0
    assert diff.regression_fraction == 0.0
    for delta in diff.totals.values():
        assert delta.delta == 0.0
    for layer in diff.layers:
        assert layer.status == "matched"
        assert layer.latency_ms.delta == 0.0
        for kernel in layer.kernels:
            assert kernel.status == "matched"
            assert kernel.latency_ms.delta == 0.0


def test_self_diff_on_real_profile_is_clean(cnn_profile):
    diff = diff_profiles(cnn_profile, cnn_profile)
    assert diff.findings_above(1e-9) == []
    assert diff.regression_fraction == 0.0


# -- regression / improvement classification ----------------------------------


def test_uniform_slowdown_classified_as_regression():
    base = build_baseline()
    diff = diff_profiles(base, scaled(base, 1.3))
    assert abs(diff.regression_fraction - 0.3) < 1e-9
    assert abs(diff.speedup - 1 / 1.3) < 1e-9
    top = diff.findings[0]
    regressions = [f for f in diff.findings if f.kind == "regression"]
    assert len(regressions) == 1 and regressions[0].severity > 0.3
    assert top.severity >= regressions[0].severity
    assert not [f for f in diff.findings if f.kind == "improvement"]


def test_uniform_speedup_classified_as_improvement():
    base = build_baseline()
    diff = diff_profiles(base, scaled(base, 0.5))
    improvements = [f for f in diff.findings if f.kind == "improvement"]
    assert len(improvements) == 1 and improvements[0].severity > 0.5
    assert not [f for f in diff.findings if f.kind == "regression"]
    assert abs(diff.speedup - 2.0) < 1e-9


def test_regression_evidence_names_the_contributing_layers():
    base = build_baseline()
    cand = copy.deepcopy(base)
    cand.layers[3].latency_ms *= 3  # one layer regresses hard
    cand.model_latency_ms = sum(l.latency_ms for l in cand.layers) * 1.05
    diff = diff_profiles(base, cand)
    finding = next(f for f in diff.findings if f.kind == "regression")
    cited = {
        i for ev in finding.candidate_evidence for i in ev.layer_indices
    }
    assert cand.layers[3].index in cited


# -- new hotspot / mix shift --------------------------------------------------


def test_new_kernel_dominating_gpu_time_is_a_new_hotspot():
    base = build_baseline()
    cand = copy.deepcopy(base)
    cand.layers[4].kernels = [
        make_kernel("wgrad_winograd_surprise", 4, latency_ms=4.0)
    ]
    diff = diff_profiles(base, cand)
    hotspots = [f for f in diff.findings if f.kind == "new-hotspot"]
    assert hotspots, [f.title for f in diff.findings]
    assert "wgrad_winograd_surprise" in hotspots[0].title
    assert hotspots[0].severity > 0.3
    # Per-side resolution: the kernel exists in the candidate only.
    assert any(
        "wgrad_winograd_surprise" in ev.kernel_names
        for ev in hotspots[0].candidate_evidence
    )
    assert not any(
        "wgrad_winograd_surprise" in ev.kernel_names
        for ev in hotspots[0].baseline_evidence
    )


def test_kernel_mix_shift_scores_with_distribution_distance():
    base = build_baseline()
    cand = copy.deepcopy(base)
    # Swap every Eigen kernel for library ones: a big mix move.
    for layer in cand.layers:
        layer.kernels = [
            make_kernel("volta_sgemm_128x64_nn", layer.index,
                        latency_ms=sum(k.latency_ms for k in layer.kernels))
        ]
    diff = diff_profiles(base, cand)
    mix = next(f for f in diff.findings if f.kind == "kernel-mix-shift")
    assert mix.severity > 0.3
    identical = diff_profiles(base, base)
    same_mix = next(
        f for f in identical.findings if f.kind == "kernel-mix-shift"
    )
    assert same_mix.severity == 0.0


# -- evidence resolves against both sources (acceptance criterion) ------------


def _resolve(evidence, profile):
    layer_indices = {layer.index for layer in profile.layers}
    kernel_names = {k.name for k in profile.kernels}
    for ev in evidence:
        for idx in ev.layer_indices:
            assert idx in layer_indices, (ev.summary, idx)
        for name in ev.kernel_names:
            assert name in kernel_names, (ev.summary, name)


@pytest.mark.parametrize("factor", [0.6, 1.0, 1.8])
def test_every_finding_resolves_per_side(factor):
    base = build_baseline()
    cand = scaled(base, factor)
    cand.layers[0].kernels = [
        make_kernel("brand_new_kernel", 0, latency_ms=5.0)
    ]
    diff = diff_profiles(base, cand)
    for finding in diff.findings:
        assert finding.kind in FINDING_KINDS
        assert 0.0 <= finding.severity <= 1.0
        _resolve(finding.baseline_evidence, base)
        _resolve(finding.candidate_evidence, cand)


# -- added/removed layers and kernels -----------------------------------------


def test_added_and_removed_layers_read_as_zero_on_the_missing_side():
    base = build_baseline()
    cand_layers = list(copy.deepcopy(base).layers)
    del cand_layers[1]
    cand_layers.append(make_layer(9, "Softmax"))
    cand = make_profile(cand_layers)
    diff = diff_profiles(base, cand)
    removed = diff.layers_with_status("removed")
    added = diff.layers_with_status("added")
    assert [l.name for l in removed] == [base.layers[1].name]
    assert removed[0].candidate_index is None
    assert removed[0].latency_ms.candidate == 0.0
    assert [l.name for l in added] == ["layer9/Softmax"]
    assert added[0].baseline_index is None
    assert added[0].latency_ms.baseline == 0.0


def test_kernel_swap_within_matched_layer():
    base = build_baseline()
    cand = copy.deepcopy(base)
    cand.layers[0].kernels = [
        make_kernel("volta_scudnn_winograd_128x128", 0, latency_ms=2.0)
    ]
    diff = diff_profiles(base, cand)
    layer0 = diff.layers[0]
    by_status = {k.status: k for k in layer0.kernels}
    assert by_status["removed"].name == "volta_scudnn_128x64_relu"
    assert by_status["removed"].latency_ms.candidate == 0.0
    assert by_status["added"].name == "volta_scudnn_winograd_128x128"
    assert by_status["added"].latency_ms.baseline == 0.0


# -- serialization / rendering ------------------------------------------------


def test_to_dict_is_json_serializable_and_filters_by_severity():
    base = build_baseline()
    diff = diff_profiles(base, scaled(base, 1.4))
    doc = json.loads(json.dumps(diff.to_dict(min_severity=0.0)))
    assert doc["baseline"]["model_name"] == "synthetic"
    assert doc["speedup"] == pytest.approx(1 / 1.4)
    assert {f["kind"] for f in doc["findings"]} <= set(FINDING_KINDS)
    assert len(doc["layers"]) == len(base.layers)
    strict = diff.to_dict(min_severity=0.99)
    assert len(strict["findings"]) <= len(doc["findings"])


def test_render_mentions_headline_and_findings():
    base = build_baseline()
    text = diff_profiles(base, scaled(base, 1.5)).render()
    assert "XSP diff" in text
    assert "slower" in text
    assert "model-level rollups" in text
    assert "regression" in text


def test_real_framework_diff_aligns_and_classifies(cnn_graph, mx_session):
    """End-to-end: TF vs MXNet profiles of the same graph."""
    from repro.core import AnalysisPipeline, XSPSession

    tf = AnalysisPipeline(
        XSPSession("Tesla_V100", "tensorflow_like"), runs_per_level=1
    ).profile_model(cnn_graph, 4)
    mx = AnalysisPipeline(mx_session, runs_per_level=1).profile_model(
        cnn_graph, 4
    )
    diff = diff_profiles(tf, mx)
    assert diff.baseline["framework"] == "tensorflow_like"
    assert diff.candidate["framework"] == "mxnet_like"
    # Most layers correspond across frameworks.
    assert len(diff.layers_with_status("matched")) >= len(mx.layers) // 2
    assert diff.findings  # at least the latency headline + mix shift
    for finding in diff.findings:
        _resolve(finding.baseline_evidence, tf)
        _resolve(finding.candidate_evidence, mx)


def test_zero_latency_baseline_is_an_infinite_regression():
    """A degenerate zero-latency baseline must read as infinitely slower,
    not as parity (speedup and regression_fraction must agree)."""
    base = make_profile([make_layer(0, "Conv2D")], model_latency_ms=0.0)
    cand = make_profile([make_layer(0, "Conv2D")], model_latency_ms=5.0)
    diff = diff_profiles(base, cand)
    assert diff.regression_fraction == float("inf")
    assert diff.speedup == 0.0
    assert "slower" in diff.render()
