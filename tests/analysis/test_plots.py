"""ASCII plot renderer tests."""

import pytest

from repro.analysis.plots import ascii_roofline, ascii_series
from repro.analysis.roofline import RooflinePoint
from repro.sim import get_system

V100 = get_system("Tesla_V100")


def test_roofline_plot_contains_roof_and_points():
    points = [
        RooflinePoint("mem", 0.25, 0.1),
        RooflinePoint("cmp", 200.0, 12.0),
    ]
    art = ascii_roofline(points, V100, width=40, height=10)
    assert "ridge 17.44" in art
    assert "/" in art and "-" in art and "o" in art
    lines = art.splitlines()
    assert len([l for l in lines if l.startswith("|")]) == 10


def test_roofline_rejects_empty():
    with pytest.raises(ValueError):
        ascii_roofline([], V100)
    with pytest.raises(ValueError):
        ascii_roofline([RooflinePoint("z", 0.0, 0.0)], V100)


def test_series_chart_shape():
    series = [(i, float(i % 7)) for i in range(1, 200)]
    art = ascii_series(series, title="demo", width=50, height=8)
    lines = art.splitlines()
    assert lines[0] == "demo"
    assert len([l for l in lines if l.startswith("|")]) == 8
    assert "over 199 layers" in art


def test_series_rejects_empty():
    with pytest.raises(ValueError):
        ascii_series([])


def test_plots_from_real_profile(cnn_profile):
    from repro.analysis import kernel_roofline, layer_latency_series

    art = ascii_roofline(kernel_roofline(cnn_profile), cnn_profile.gpu)
    assert "o" in art
    art2 = ascii_series(layer_latency_series(cnn_profile))
    assert "#" in art2
