"""Diff inputs: store entries, bare profile JSONs, and raw trace captures."""

import json

import pytest

from repro.analysis.diff import (
    load_profile_json,
    profile_from_trace,
)
from repro.core import ProfileStore, ProfilingConfig
from repro.core.cache import profile_to_dict
from repro.tracing.export import save_trace


def test_load_store_entry(tmp_path, cnn_profile):
    store = ProfileStore(tmp_path)
    path = store.put(cnn_profile, runs_per_level=2)
    loaded = load_profile_json(str(path))
    assert loaded.model_name == cnn_profile.model_name
    assert loaded.model_latency_ms == cnn_profile.model_latency_ms
    assert len(loaded.layers) == len(cnn_profile.layers)


def test_load_bare_profile_dict(tmp_path, cnn_profile):
    path = tmp_path / "bare.json"
    path.write_text(json.dumps(profile_to_dict(cnn_profile)))
    loaded = load_profile_json(str(path))
    assert loaded.model_latency_ms == cnn_profile.model_latency_ms
    assert [l.name for l in loaded.layers] == [
        l.name for l in cnn_profile.layers
    ]


def test_load_trace_capture(tmp_path, v100_session, cnn_graph):
    run = v100_session.profile(cnn_graph, 4, ProfilingConfig())
    path = tmp_path / "trace.json"
    save_trace(run.trace, str(path))
    profile = load_profile_json(str(path))
    assert profile.model_name == cnn_graph.name
    assert profile.system == "Tesla_V100"
    assert profile.batch == 4
    assert profile.layers
    # Correlated kernels made it into their layers with metric tags.
    assert profile.kernels
    assert profile.flops > 0
    assert all(k.layer_index >= 0 for k in profile.kernels)


def test_profile_from_trace_uses_predict_span_latency(
    v100_session, cnn_graph
):
    run = v100_session.profile(cnn_graph, 2, ProfilingConfig(metrics=()))
    profile = profile_from_trace(run.trace)
    assert profile.model_latency_ms == pytest.approx(
        run.predict_span.duration_ms
    )
    # Layer latencies mirror the layer spans.
    assert len(profile.layers) == len(run.layer_spans())


def test_trace_diffs_against_itself_cleanly(v100_session, cnn_graph):
    from repro.analysis.diff import diff_profiles

    run = v100_session.profile(cnn_graph, 2, ProfilingConfig())
    profile = profile_from_trace(run.trace)
    assert diff_profiles(profile, profile).findings_above(1e-9) == []


def test_unrecognized_json_is_rejected(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError, match="neither"):
        load_profile_json(str(path))


def test_invalid_json_is_rejected(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_profile_json(str(path))


def test_non_object_json_is_rejected(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="JSON object"):
        load_profile_json(str(path))


def test_library_level_trace_still_attaches_kernels(v100_session, cnn_graph):
    """Regression: with the LIBRARY level captured, execution spans hang
    off cuDNN API spans, not layer spans — kernels must still resolve to
    their enclosing layer through the ancestor chain."""
    from repro.core import MLLibG

    run = v100_session.profile(
        cnn_graph, 2, ProfilingConfig(levels=MLLibG)
    )
    profile = profile_from_trace(run.trace)
    assert profile.kernels, "library-level trace lost every kernel"
    assert len(profile.kernels) == len(run.kernels)
