"""Roofline math tests."""

import pytest

from repro.analysis.roofline import RooflinePoint, classify, roofline_curve
from repro.sim import get_system

V100 = get_system("Tesla_V100")


def test_classification_threshold():
    low = RooflinePoint("l", 5.0, 1.0)
    high = RooflinePoint("h", 100.0, 10.0)
    assert low.memory_bound(V100)
    assert not high.memory_bound(V100)
    assert classify(low, V100) == "memory-bound"
    assert classify(high, V100) == "compute-bound"


def test_attainable_ceiling():
    # Below the ridge: bandwidth-limited ceiling; above: peak flops.
    point = RooflinePoint("p", 10.0, 1.0)
    assert point.attainable_tflops(V100) == pytest.approx(10 * 900e9 / 1e12)
    ridge = RooflinePoint("r", 1000.0, 1.0)
    assert ridge.attainable_tflops(V100) == V100.peak_tflops


def test_efficiency_bounded():
    point = RooflinePoint("p", 100.0, 7.0)
    assert 0 < point.efficiency(V100) < 1


def test_curve_monotone_then_flat():
    curve = roofline_curve(V100, [1.0, 10.0, 17.44, 100.0, 1000.0])
    values = [v for _, v in curve]
    assert values == sorted(values)
    assert values[-1] == values[-2] == V100.peak_tflops
