"""Grid-vs-grid diffing: axis detection, point matching, OOM set diffs."""

import pytest
from diff_factories import build_baseline, scaled

from repro.analysis.diff.campaign import diff_campaigns
from repro.campaign import Campaign, CampaignPoint, CampaignResult

MODEL = 53  # DeepLabv3_MobileNet_v2: small enough for fast grids


def _result(points_to_profiles, oom=()):
    result = CampaignResult()
    result.profiles = dict(points_to_profiles)
    result.out_of_memory = list(oom)
    return result


def _grid(framework, batches=(1, 2), factor=1.0):
    base = build_baseline()
    return {
        CampaignPoint(MODEL, b, framework=framework): scaled(base, factor)
        for b in batches
    }


def test_framework_axis_detected_and_points_matched():
    baseline = _result(_grid("tensorflow_like"))
    candidate = _result(_grid("mxnet_like", factor=1.2))
    diff = baseline.diff(candidate)
    assert diff.axis == {
        "framework": ("tensorflow_like", "mxnet_like")
    }
    assert len(diff.diffs) == 2
    assert diff.only_in_baseline == () and diff.only_in_candidate == ()
    for point_diff in diff.diffs.values():
        assert point_diff.regression_fraction == pytest.approx(0.2)
    assert diff.max_regression_fraction == pytest.approx(0.2)
    assert diff.mean_speedup == pytest.approx(1 / 1.2)
    assert len(diff.regressed(beyond=0.1)) == 2
    assert diff.improved() == {}


def test_non_identical_point_sets_reported_not_dropped():
    baseline = _result(_grid("tensorflow_like", batches=(1, 2, 4)))
    candidate = _result(_grid("mxnet_like", batches=(2, 4, 8)))
    diff = baseline.diff(candidate)
    assert len(diff.diffs) == 2  # batches 2 and 4
    assert len(diff.only_in_baseline) == 1  # batch 1
    assert "batch=1" in diff.only_in_baseline[0]
    assert len(diff.only_in_candidate) == 1  # batch 8
    assert "batch=8" in diff.only_in_candidate[0]


def test_oom_set_differences():
    tf = _grid("tensorflow_like", batches=(1, 2, 4))
    mx = _grid("mxnet_like", batches=(1, 2))
    baseline = _result(
        tf, oom=[CampaignPoint(MODEL, 8, framework="tensorflow_like")]
    )
    candidate = _result(
        mx,
        oom=[
            CampaignPoint(MODEL, 4, framework="mxnet_like"),
            CampaignPoint(MODEL, 8, framework="mxnet_like"),
        ],
    )
    diff = baseline.diff(candidate)
    assert len(diff.diffs) == 2
    assert len(diff.newly_oom) == 1 and "batch=4" in diff.newly_oom[0]
    assert diff.resolved_oom == ()
    assert len(diff.oom_in_both) == 1 and "batch=8" in diff.oom_in_both[0]
    # The reverse direction flips newly/resolved.
    reverse = candidate.diff(baseline)
    assert len(reverse.resolved_oom) == 1
    assert reverse.newly_oom == ()


def test_same_coordinates_keep_full_key():
    baseline = _result(_grid("tensorflow_like"))
    candidate = _result(_grid("tensorflow_like", factor=0.8))
    diff = baseline.diff(candidate)
    assert diff.axis == {}
    assert len(diff.diffs) == 2
    assert all(d.speedup == pytest.approx(1.25) for d in diff.diffs.values())
    assert len(diff.improved(beyond=0.1)) == 2


def test_empty_side_rejected():
    with pytest.raises(ValueError, match="both sides"):
        diff_campaigns({}, _grid("tensorflow_like"))


def test_render_and_to_dict():
    baseline = _result(_grid("tensorflow_like"))
    candidate = _result(
        _grid("mxnet_like", batches=(1,), factor=1.5),
        oom=[CampaignPoint(MODEL, 2, framework="mxnet_like")],
    )
    diff = baseline.diff(candidate)
    text = diff.render()
    assert "Campaign diff" in text
    assert "framework: tensorflow_like -> mxnet_like" in text
    assert "newly OOM in candidate" in text
    doc = diff.to_dict()
    assert doc["axis"]["framework"] == ["tensorflow_like", "mxnet_like"]
    assert len(doc["points"]) == 1
    assert doc["newly_oom"]


def test_real_campaign_grids_diff_end_to_end(tmp_path):
    """Two real grids (cold + warm via the store) diff point-for-point."""
    store = tmp_path / "store"
    tf = Campaign(store=store).add_grid([MODEL], [1, 2]).run()
    mx = (
        Campaign(store=store)
        .add_grid([MODEL], [1, 2], frameworks=("mxnet_like",))
        .run()
    )
    diff = tf.diff(mx)
    assert diff.axis == {"framework": ("tensorflow_like", "mxnet_like")}
    assert len(diff.diffs) == 2
    for label, point_diff in diff.diffs.items():
        assert label.startswith("model=DeepLabv3")
        assert point_diff.findings
        assert point_diff.baseline["framework"] == "tensorflow_like"
        assert point_diff.candidate["framework"] == "mxnet_like"
