"""Synthetic profile factories for the differential-analysis tests.

Mirrors ``tests/insights/factories.py`` (kept separate so the two test
trees don't share a sys.path module name) with helpers to *perturb* a
profile: scale latencies, rename/insert/drop layers, swap kernels —
the shapes the alignment and classification logic must tolerate.
"""

from __future__ import annotations

import copy

from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile


def make_kernel(
    name: str,
    layer_index: int,
    position: int = 0,
    *,
    latency_ms: float = 1.0,
    flops: float = 1e9,
    dram_read: float = 1e6,
    dram_write: float = 1e6,
    occupancy: float = 0.5,
) -> KernelProfile:
    return KernelProfile(
        name=name,
        layer_index=layer_index,
        position=position,
        latency_ms=latency_ms,
        flops=flops,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        achieved_occupancy=occupancy,
        grid=(1, 1, 1),
        block=(128, 1, 1),
    )


def make_layer(
    index: int,
    layer_type: str = "Conv2D",
    *,
    name: str | None = None,
    latency_ms: float | None = None,
    alloc_bytes: int = 1 << 20,
    kernels: list[KernelProfile] | None = None,
) -> LayerProfile:
    kernels = kernels if kernels is not None else [
        make_kernel(f"kernel_{layer_type.lower()}_{index}", index)
    ]
    kernel_ms = sum(k.latency_ms for k in kernels)
    return LayerProfile(
        index=index,
        name=name if name is not None else f"layer{index}/{layer_type}",
        layer_type=layer_type,
        shape=(64, 32, 32),
        latency_ms=latency_ms if latency_ms is not None else kernel_ms * 1.1,
        alloc_bytes=alloc_bytes,
        kernels=kernels,
    )


def make_profile(
    layers: list[LayerProfile],
    *,
    batch: int = 8,
    system: str = "Tesla_V100",
    framework: str = "tensorflow_like",
    model_name: str = "synthetic",
    model_latency_ms: float | None = None,
) -> ModelProfile:
    total = sum(layer.latency_ms for layer in layers)
    return ModelProfile(
        model_name=model_name,
        system=system,
        framework=framework,
        batch=batch,
        model_latency_ms=(
            model_latency_ms if model_latency_ms is not None else total * 1.05
        ),
        layers=layers,
        n_runs=1,
    )


def build_baseline() -> ModelProfile:
    """Five layers, mixed kernel mix — the diff tests' reference side."""
    layers = [
        make_layer(0, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64_relu", 0, latency_ms=4.0,
                        flops=8e10, occupancy=0.55),
        ]),
        make_layer(1, "BatchNorm", kernels=[
            make_kernel("Eigen::BatchNormKernel", 1, latency_ms=0.4,
                        occupancy=0.8),
        ]),
        make_layer(2, "Relu", kernels=[
            make_kernel("Eigen::ReluKernel", 2, latency_ms=0.3,
                        occupancy=0.8),
        ]),
        make_layer(3, "Conv2D", kernels=[
            make_kernel("volta_scudnn_128x64_relu", 3, latency_ms=3.0,
                        flops=6e10, occupancy=0.5),
        ]),
        make_layer(4, "Dense", kernels=[
            make_kernel("volta_sgemm_128x64_nn", 4, latency_ms=1.0,
                        flops=2e10, occupancy=0.6),
        ]),
    ]
    return make_profile(layers)


def scaled(profile: ModelProfile, factor: float) -> ModelProfile:
    """The same profile with every latency multiplied by ``factor``."""
    clone = copy.deepcopy(profile)
    clone.model_latency_ms *= factor
    for layer in clone.layers:
        layer.latency_ms *= factor
        layer.kernels = [
            KernelProfile(
                name=k.name, layer_index=k.layer_index, position=k.position,
                latency_ms=k.latency_ms * factor, flops=k.flops,
                dram_read_bytes=k.dram_read_bytes,
                dram_write_bytes=k.dram_write_bytes,
                achieved_occupancy=k.achieved_occupancy,
                grid=k.grid, block=k.block,
            )
            for k in layer.kernels
        ]
    return clone
