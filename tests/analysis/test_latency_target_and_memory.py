"""A1 latency-target rule + peak device memory tests."""

import pytest

from repro.analysis import optimal_batch_for_latency_target
from repro.core import M, ProfilingConfig, XSPSession


def test_latency_target_selects_largest_feasible():
    latencies = {1: 5.0, 2: 8.0, 4: 14.0, 8: 26.0}
    assert optimal_batch_for_latency_target(latencies, 15.0) == 4
    assert optimal_batch_for_latency_target(latencies, 5.0) == 1
    assert optimal_batch_for_latency_target(latencies, 100.0) == 8


def test_latency_target_unreachable():
    assert optimal_batch_for_latency_target({1: 10.0}, 9.0) is None


def test_latency_target_validation():
    with pytest.raises(ValueError):
        optimal_batch_for_latency_target({1: 1.0}, 0.0)


def test_latency_target_on_measured_curve(v100_session, cnn_graph):
    from repro.workloads import throughput_curve

    curve = throughput_curve(v100_session, cnn_graph, [1, 4, 16], runs=1)
    target = curve.latencies_ms[4] * 1.01
    assert optimal_batch_for_latency_target(curve.latencies_ms, target) == 4


def test_peak_device_memory_reported(v100_session, cnn_graph):
    run = v100_session.profile(cnn_graph, 8, ProfilingConfig(levels=M,
                                                             metrics=()))
    assert run.peak_device_memory_mb > 0
    bigger = v100_session.profile(cnn_graph, 64, ProfilingConfig(levels=M,
                                                                 metrics=()))
    assert bigger.peak_device_memory_mb > run.peak_device_memory_mb


def test_peak_memory_below_device_capacity(v100_session, cnn_graph):
    run = v100_session.profile(cnn_graph, 8, ProfilingConfig(levels=M,
                                                             metrics=()))
    assert run.peak_device_memory_mb < v100_session.gpu.dram_gb * 1024
