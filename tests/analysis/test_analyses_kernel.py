"""A8-A15 tests (kernel-level and correlated analyses)."""

import pytest

from repro.analysis import (
    bound_by_layer_type,
    bound_counts,
    gpu_vs_nongpu_series,
    gpu_vs_nongpu_table,
    kernel_by_layer_table,
    kernel_by_name_table,
    kernel_information_table,
    kernel_roofline,
    layer_dram_read_series,
    layer_flops_series,
    layer_roofline,
    model_aggregate_row,
    model_aggregate_table,
    model_non_gpu_latency_ms,
    model_roofline_points,
    top_kernels,
    top_layers_by_kernels,
)


def test_a8_kernel_table(cnn_profile):
    table = kernel_information_table(cnn_profile)
    assert len(table) == len(cnn_profile.kernels)
    top = top_kernels(cnn_profile, 3)
    assert top.rows[0]["latency_ms"] >= top.rows[-1]["latency_ms"]
    for row in table:
        assert row["layer_index"] > 0


def test_a9_roofline_points(cnn_profile):
    points = kernel_roofline(cnn_profile)
    assert points
    counts = bound_counts(cnn_profile)
    assert counts["memory-bound"] + counts["compute-bound"] == len(points)
    assert counts["memory-bound"] > 0  # eigen kernels


def test_a10_aggregation_rules(cnn_profile):
    table = kernel_by_name_table(cnn_profile)
    # Sum of counts equals total kernel invocations.
    assert sum(r["count"] for r in table) == len(cnn_profile.kernels)
    # Aggregated latency sums to the model's kernel latency.
    assert sum(r["latency_ms"] for r in table) == pytest.approx(
        cnn_profile.kernel_latency_ms
    )
    # Occupancy is latency-weighted, so it stays within [0, 100].
    assert all(0 <= r["occupancy_pct"] <= 100 for r in table)


def test_a11_kernel_by_layer(cnn_profile):
    table = kernel_by_layer_table(cnn_profile)
    assert len(table) == sum(1 for l in cnn_profile.layers if l.kernels)
    top = top_layers_by_kernels(cnn_profile, 2)
    assert len(top) == 2
    for row in table:
        assert row["kernel_latency_ms"] <= row["latency_ms"] * 1.05


def test_a12_series_lengths(cnn_profile):
    flops = layer_flops_series(cnn_profile)
    reads = layer_dram_read_series(cnn_profile)
    assert len(flops) == len(reads) == len(cnn_profile.layers)
    assert sum(v for _, v in flops) == pytest.approx(cnn_profile.flops / 1e9)


def test_a13_gpu_vs_nongpu(cnn_profile):
    series = gpu_vs_nongpu_series(cnn_profile)
    for _, gpu_share, non_gpu_share in series:
        assert 0 <= gpu_share <= 1
        assert gpu_share + non_gpu_share == pytest.approx(1.0)
    table = gpu_vs_nongpu_table(cnn_profile)
    assert len(table) == len(cnn_profile.layers)
    assert model_non_gpu_latency_ms(cnn_profile) > 0


def test_a14_layer_roofline(cnn_profile):
    points = layer_roofline(cnn_profile)
    assert points
    bounds = bound_by_layer_type(cnn_profile)
    # Paper Fig. 9: conv compute-bound, element-wise memory-bound.
    assert bounds["Conv2D"] == "compute-bound"
    assert bounds["Mul"] == "memory-bound"
    assert bounds["Relu"] == "memory-bound"


def test_a15_aggregate_row_and_table(resnet50_sweep):
    row = model_aggregate_row(resnet50_sweep[256])
    assert row["batch"] == 256
    assert row["kernel_latency_ms"] < row["model_latency_ms"]
    table = model_aggregate_table(resnet50_sweep, model_name="r50",
                                  system="Tesla_V100")
    assert [r["batch"] for r in table] == sorted(resnet50_sweep)


def test_a15_fig10_memory_bound_dip(resnet50_sweep):
    """Fig. 10 / Table VI: memory-bound at batch 16 and 32 only."""
    bound = {b: p.memory_bound for b, p in resnet50_sweep.items()}
    assert bound[16] and bound[32]
    assert not bound[1] and not bound[64] and not bound[256]


def test_a15_occupancy_rises_toward_optimum(resnet50_sweep):
    """Table VI: achieved occupancy grows with batch size."""
    occ = {b: p.achieved_occupancy for b, p in resnet50_sweep.items()}
    assert occ[256] > occ[16] > occ[1]


def test_model_roofline_points(resnet50_sweep):
    points = model_roofline_points(resnet50_sweep)
    assert [p.label for p in points] == [
        f"bs{b}" for b in sorted(resnet50_sweep)
    ]
