"""A1-A7 + stage analysis tests (layer-level analyses)."""

import pytest

from repro.analysis import (
    convolution_latency_percentage,
    latency_by_type,
    latency_stage,
    layer_information_table,
    layer_latency_series,
    layer_memory_series,
    layer_type_distribution,
    memory_by_type,
    model_information_table,
    optimal_batch_size,
    throughputs,
    top_layers,
)
from repro.analysis.stages import stage_of, stage_summary, stage_totals


def test_a1_throughput_and_optimal_batch():
    latencies = {1: 10.0, 2: 11.0, 4: 13.0, 8: 20.0, 16: 39.0}
    tput = throughputs(latencies)
    assert tput[1] == pytest.approx(100.0)
    # 8 -> 16 gains 400->410 (2.5% < 5%): optimal is 8.
    assert optimal_batch_size(latencies) == 8
    table = model_information_table(latencies, model_name="m", system="s")
    optimal_rows = [r for r in table if r["optimal"]]
    assert [r["batch"] for r in optimal_rows] == [8]


def test_a1_optimal_batch_requires_data():
    with pytest.raises(ValueError):
        optimal_batch_size({})
    # Monotone-improving curve: optimum is the largest measured batch.
    assert optimal_batch_size({1: 10.0, 2: 12.0}) == 2


def test_a2_layer_table(cnn_profile):
    table = layer_information_table(cnn_profile)
    assert len(table) == len(cnn_profile.layers)
    assert top_layers(cnn_profile, 3).rows[0]["latency_ms"] >= \
        top_layers(cnn_profile, 3).rows[1]["latency_ms"]
    assert "\u27e8" in table.rows[0]["shape"]  # paper-style shape brackets


def test_a3_a4_series_in_execution_order(cnn_profile):
    lat = layer_latency_series(cnn_profile)
    mem = layer_memory_series(cnn_profile)
    assert [i for i, _ in lat] == [l.index for l in cnn_profile.layers]
    assert len(mem) == len(lat)
    assert all(v >= 0 for _, v in lat)


def test_a5_distribution_sums_to_100(cnn_profile):
    table = layer_type_distribution(cnn_profile)
    assert sum(r["percentage"] for r in table) == pytest.approx(100.0)
    assert sum(r["count"] for r in table) == len(cnn_profile.layers)


def test_a6_latency_by_type_conv_dominates(cnn_profile):
    table = latency_by_type(cnn_profile)
    assert table.rows[0]["layer_type"] == "Conv2D"
    assert sum(r["percentage"] for r in table) == pytest.approx(100.0)


def test_a6_conv_percentage(cnn_profile):
    pct = convolution_latency_percentage(cnn_profile)
    assert 10 < pct < 95


def test_a7_memory_by_type(cnn_profile):
    table = memory_by_type(cnn_profile)
    assert sum(r["percentage"] for r in table) == pytest.approx(100.0)


def test_stage_of_partition():
    assert stage_of(0, 9) == "B"
    assert stage_of(4, 9) == "M"
    assert stage_of(8, 9) == "E"
    with pytest.raises(ValueError):
        stage_of(0, 0)


def test_stage_totals_cover_everything(cnn_profile):
    totals = stage_totals(cnn_profile, lambda l: l.latency_ms)
    assert sum(totals.values()) == pytest.approx(
        sum(l.latency_ms for l in cnn_profile.layers)
    )


def test_stage_summary_labels(cnn_profile):
    summary = stage_summary(cnn_profile)
    assert set(summary) == {"latency", "memory", "flops", "access"}
    assert all(v in ("B", "M", "E") for v in summary.values())
    assert latency_stage(cnn_profile) == summary["latency"]
