"""Graph IR tests."""

import pytest

from repro.frameworks import Graph
from repro.frameworks.graph import GraphError, Node


def test_unsupported_op_rejected():
    with pytest.raises(ValueError, match="unsupported op"):
        Node("n", "Convolution3D")


def test_duplicate_name_rejected():
    g = Graph("g")
    g.add_op("a", "Input", shape=(3, 4, 4))
    with pytest.raises(GraphError, match="duplicate"):
        g.add_op("a", "Relu", ["a"])


def test_forward_reference_rejected():
    g = Graph("g")
    with pytest.raises(GraphError, match="unknown input"):
        g.add_op("relu", "Relu", ["missing"])


def test_topological_order_stable(cnn_graph):
    order = [n.name for n in cnn_graph.topological_order()]
    assert order[0] == "input"
    assert order.index("conv1") < order.index("bn1") < order.index("relu1")
    assert order.index("relu1") < order.index("res")


def test_outputs_and_roots(cnn_graph):
    assert [n.name for n in cnn_graph.outputs()] == ["softmax"]
    assert cnn_graph.input_node.name == "input"


def test_consumers(cnn_graph):
    consumers = {n.name for n in cnn_graph.consumers("relu1")}
    assert consumers == {"conv2", "res"}


def test_op_histogram(cnn_graph):
    hist = cnn_graph.op_histogram()
    assert hist["Conv2D"] == 2
    assert hist["BatchNorm"] == 2


def test_missing_input_node():
    g = Graph("no_input")
    with pytest.raises(GraphError, match="no Input"):
        g.validate()


def test_validate_passes(cnn_graph):
    cnn_graph.validate()


def test_duplicate_inputs_supported():
    """Add(x, x) is legal; topological sort counts edges, not producers."""
    g = Graph("dup")
    g.add_op("input", "Input", shape=(3, 4, 4))
    g.add_op("double", "Add", ["input", "input"])
    order = [n.name for n in g.topological_order()]
    assert order == ["input", "double"]
