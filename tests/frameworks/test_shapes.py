"""Shape inference + flops accounting tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import Graph, TensorShape, infer_shapes
from repro.frameworks.shapes import model_weight_bytes


def test_tensor_shape_helpers():
    s = TensorShape((8, 64, 14, 14))
    assert s.batch == 8 and s.channels == 64
    assert s.height == s.width == 14
    assert s.elems == 8 * 64 * 14 * 14
    assert s.nbytes == s.elems * 4
    assert s.with_batch(2).dims == (2, 64, 14, 14)
    assert str(s) == "\u27e88, 64, 14, 14\u27e9"


def test_invalid_shape():
    with pytest.raises(ValueError):
        TensorShape((0, 3))


def test_conv_same_vs_valid():
    g = Graph("g")
    g.add_op("input", "Input", shape=(3, 224, 224))
    g.add_op("same", "Conv2D", ["input"], filters=64, kernel=7, strides=2,
             padding="same")
    g.add_op("valid", "Conv2D", ["same"], filters=64, kernel=3, strides=1,
             padding="valid")
    shapes = infer_shapes(g, 1)
    assert shapes["same"].dims == (1, 64, 112, 112)
    assert shapes["valid"].dims == (1, 64, 110, 110)


def test_full_cnn_shapes(cnn_graph):
    shapes = infer_shapes(cnn_graph, 4)
    assert shapes["conv1"].dims == (4, 16, 32, 32)
    assert shapes["pool"].dims == (4, 16, 16, 16)
    assert shapes["gap"].dims == (4, 16, 1, 1)
    assert shapes["fc"].dims == (4, 10)
    assert shapes["softmax"].dims == (4, 10)


def test_depthwise_multiplier():
    g = Graph("g")
    g.add_op("input", "Input", shape=(32, 56, 56))
    g.add_op("dw", "DepthwiseConv2D", ["input"], kernel=3, strides=2,
             padding="same", depth_multiplier=2)
    shapes = infer_shapes(g, 2)
    assert shapes["dw"].dims == (2, 64, 28, 28)


def test_concat_sums_channels():
    g = Graph("g")
    g.add_op("input", "Input", shape=(8, 10, 10))
    g.add_op("a", "Conv2D", ["input"], filters=4, kernel=1)
    g.add_op("b", "Conv2D", ["input"], filters=6, kernel=1)
    g.add_op("cat", "Concat", ["a", "b"])
    assert infer_shapes(g, 3)["cat"].dims == (3, 10, 10, 10)


def test_mismatched_add_rejected():
    g = Graph("g")
    g.add_op("input", "Input", shape=(8, 10, 10))
    g.add_op("a", "Conv2D", ["input"], filters=4, kernel=1)
    g.add_op("b", "Conv2D", ["input"], filters=6, kernel=1)
    g.add_op("bad", "Add", ["a", "b"])
    with pytest.raises(ValueError, match="mismatched"):
        infer_shapes(g, 1)


def test_flatten_resize_pad():
    g = Graph("g")
    g.add_op("input", "Input", shape=(2, 8, 8))
    g.add_op("pad", "Pad", ["input"], pad=2)
    g.add_op("up", "ResizeBilinear", ["pad"], scale=2)
    g.add_op("flat", "Flatten", ["up"])
    shapes = infer_shapes(g, 1)
    assert shapes["pad"].dims == (1, 2, 12, 12)
    assert shapes["up"].dims == (1, 2, 24, 24)
    assert shapes["flat"].dims == (1, 2 * 24 * 24)


def test_weight_bytes_counts_parameters(cnn_graph):
    weights = model_weight_bytes(cnn_graph)
    conv1 = 16 * 3 * 9 * 4
    conv2 = 16 * 16 * 9 * 4
    bn = 2 * 4 * 16 * 4
    fc = (10 * 16 + 10) * 4
    assert weights == conv1 + conv2 + bn + fc


@settings(max_examples=40, deadline=None)
@given(batch=st.integers(1, 512))
def test_batch_scales_elems_linearly(cnn_graph, batch):
    """Flop/byte accounting foundation: elems scale exactly with batch."""
    base = infer_shapes(cnn_graph, 1)
    scaled = infer_shapes(cnn_graph, batch)
    for name, shape in base.items():
        assert scaled[name].elems == shape.elems * batch
