"""Framework executor behaviour tests (shared engine + both frameworks)."""

import pytest

from repro.frameworks import MXSim, RunOptions, TFSim
from repro.sim import CudaRuntime, VirtualClock, get_system

V100 = get_system("Tesla_V100")


def make(cls=TFSim):
    rt = CudaRuntime(V100, VirtualClock())
    return rt, cls(rt)


def test_predict_returns_latency_and_outputs(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    result = fw.predict(model, 4)
    assert result.latency_ms > 0
    assert result.output_shapes == {"softmax": (4, 10)}
    assert result.native_profile is None


def test_layer_profiling_via_run_options(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    result = fw.predict(model, 4, RunOptions(trace_level="FULL"))
    assert result.native_profile is not None
    assert "step_stats" in result.native_profile


def test_mx_profiler_state_toggle(cnn_graph):
    rt, fw = make(MXSim)
    model = fw.load(cnn_graph)
    assert fw.predict(model, 4).native_profile is None
    fw.set_profiler_state(True)
    profile = fw.predict(model, 4).native_profile
    assert profile is not None and "events" in profile
    fw.set_profiler_state(False)
    assert fw.predict(model, 4).native_profile is None


def test_profiling_inflates_latency_but_layer_latencies_accurate(cnn_graph):
    """Fig. 2: layer profiling adds overhead to the model prediction."""
    rt, fw = make()
    model = fw.load(cnn_graph)
    plain = fw.predict(model, 4).latency_ms
    rt.reset()
    profiled = fw.predict(model, 4, RunOptions(trace_level="FULL"))
    assert profiled.latency_ms > plain * 1.5
    from repro.frameworks.profiler_format import parse_tf_step_stats

    layer_total = sum(
        r.duration_ms for r in parse_tf_step_stats(profiled.native_profile)
    )
    # Accurate layer latencies: they sum to ~the unprofiled latency, far
    # below the inflated prediction latency.
    assert layer_total < plain * 1.15


def test_memory_released_after_predict(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    fw.predict(model, 8)
    assert rt.memory.live_bytes == 0


def test_peak_memory_below_sum_of_all_layers(cnn_graph):
    """Liveness-based freeing keeps the working set bounded."""
    rt, fw = make()
    model = fw.load(cnn_graph)
    fw.predict(model, 8)
    total_allocated = sum(
        ev.nbytes for ev in rt.memory.log if ev.kind == "alloc"
    )
    assert rt.memory.peak_bytes < total_allocated


def test_wrong_framework_model_rejected(cnn_graph):
    _, tf = make()
    _, mx = make(MXSim)
    model = tf.load(cnn_graph)
    with pytest.raises(ValueError, match="compiled for"):
        mx.predict(model, 1)


def test_latency_grows_with_batch(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    lat1 = fw.predict(model, 1).latency_ms
    rt.reset()
    lat64 = fw.predict(model, 64).latency_ms
    assert lat64 > lat1


def test_kernels_tagged_with_layer(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    fw.predict(model, 4)
    assert all("layer_index" in r.spec.tags for r in rt.launch_records)
    assert all("layer_name" in r.spec.tags for r in rt.launch_records)


def test_data_layer_does_h2d_copy(cnn_graph):
    rt, fw = make()
    model = fw.load(cnn_graph)
    fw.predict(model, 4)
    kinds = [m.kind for m in rt.memcpy_records]
    assert "h2d" in kinds and "d2h" in kinds


def test_tf_eigen_vs_mx_mshadow_kernels(cnn_graph):
    rt_tf, tf = make()
    tf.predict(tf.load(cnn_graph), 4)
    tf_names = {r.spec.name for r in rt_tf.launch_records}
    assert any("Eigen::" in n for n in tf_names)

    rt_mx, mx = make(MXSim)
    mx.predict(mx.load(cnn_graph), 4)
    mx_names = {r.spec.name for r in rt_mx.launch_records}
    assert any("mxnet::" in n for n in mx_names)
    assert not any("Eigen::" in n for n in mx_names)


def test_mx_fewer_layers_than_tf(cnn_graph):
    """BN fusion means MXNet executes fewer layers."""
    _, tf = make()
    _, mx = make(MXSim)
    assert mx.load(cnn_graph).n_layers < tf.load(cnn_graph).n_layers


def test_compiled_model_helpers(cnn_graph):
    _, fw = make()
    model = fw.load(cnn_graph)
    assert model.n_layers == len(model.plan)
    assert model.layer_types()["Conv2D"] == 2
    shapes = model.shapes(4)
    assert shapes["softmax"].dims == (4, 10)
    assert model.shapes(4) is shapes  # cached
