"""Graph-to-plan compilation tests (BN decomposition etc.)."""

from repro.frameworks.optimizer import (
    MX_REWRITE_RULES,
    TF_REWRITE_RULES,
    build_plan,
)


def test_tf_decomposes_batchnorm(cnn_graph):
    plan = build_plan(cnn_graph, TF_REWRITE_RULES)
    types = [layer.layer_type for layer in plan]
    assert "Mul" in types and "Add" in types
    assert "BatchNorm" not in types
    # Paper Sec. III-D2: Conv2D -> Mul -> Add -> Relu sequence.
    conv_pos = types.index("Conv2D")
    assert types[conv_pos : conv_pos + 4] == ["Conv2D", "Mul", "Add", "Relu"]


def test_mx_keeps_batchnorm_fused(cnn_graph):
    plan = build_plan(cnn_graph, MX_REWRITE_RULES)
    types = [layer.layer_type for layer in plan]
    assert "BatchNorm" in types
    assert "Mul" not in types


def test_tf_splits_dense(cnn_graph):
    types = [l.layer_type for l in build_plan(cnn_graph, TF_REWRITE_RULES)]
    assert "MatMul" in types and "BiasAdd" in types


def test_mx_keeps_dense_fused(cnn_graph):
    types = [l.layer_type for l in build_plan(cnn_graph, MX_REWRITE_RULES)]
    assert "FullyConnected" in types


def test_residual_add_becomes_addn_in_tf(cnn_graph):
    types = [l.layer_type for l in build_plan(cnn_graph, TF_REWRITE_RULES)]
    assert "AddN" in types


def test_indices_are_one_based_and_contiguous(cnn_graph):
    plan = build_plan(cnn_graph, TF_REWRITE_RULES)
    assert [l.index for l in plan] == list(range(1, len(plan) + 1))


def test_tf_slash_names(cnn_graph):
    plan = build_plan(cnn_graph, TF_REWRITE_RULES)
    conv = next(l for l in plan if l.layer_type == "Conv2D")
    assert conv.name == "conv1/Conv2D"
    mul = next(l for l in plan if l.layer_type == "Mul")
    assert mul.name == "bn1/mul"


def test_mx_bare_names(cnn_graph):
    plan = build_plan(cnn_graph, MX_REWRITE_RULES)
    conv = next(l for l in plan if l.layer_type == "Convolution")
    assert conv.name == "conv1"


def test_plan_inputs_reference_plan_layers(cnn_graph):
    for rules in (TF_REWRITE_RULES, MX_REWRITE_RULES):
        plan = build_plan(cnn_graph, rules)
        names = {l.name for l in plan}
        for layer in plan:
            assert set(layer.inputs) <= names


def test_identity_folded_away():
    from repro.frameworks import Graph

    g = Graph("g")
    g.add_op("input", "Input", shape=(3, 8, 8))
    g.add_op("id", "Identity", ["input"])
    g.add_op("relu", "Relu", ["id"])
    plan = build_plan(g, TF_REWRITE_RULES)
    names = [l.name for l in plan]
    assert not any("id" == n for n in names)
    relu = next(l for l in plan if l.layer_type == "Relu")
    assert relu.inputs == ["input/Data"]
