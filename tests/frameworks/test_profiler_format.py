"""Native profiler format round-trip tests."""

import pytest

from repro.frameworks.profiler_format import (
    PARSERS,
    LayerRecord,
    mx_profile,
    parse_mx_profile,
    parse_tf_step_stats,
    tf_step_stats,
)


def records():
    return [
        LayerRecord(1, "data/Data", "Data", (8, 3, 32, 32), 0, 100_000, 0),
        LayerRecord(2, "conv1/Conv2D", "Conv2D", (8, 16, 32, 32),
                    100_000, 500_000, 524_288),
        LayerRecord(3, "bn1/mul", "Mul", (8, 16, 32, 32),
                    500_000, 550_000, 524_288),
    ]


def test_tf_round_trip():
    parsed = parse_tf_step_stats(tf_step_stats(records()))
    assert parsed == records()


def test_mx_round_trip():
    parsed = parse_mx_profile(mx_profile(records()))
    assert parsed == records()


def test_tf_format_is_step_stats_shaped():
    doc = tf_step_stats(records())
    node = doc["step_stats"]["dev_stats"][0]["node_stats"][0]
    assert {"node_name", "op", "all_start_micros", "op_end_rel_micros"} <= set(node)


def test_mx_format_is_event_list():
    doc = mx_profile(records())
    assert doc["profile_version"].startswith("mxsim")
    assert doc["events"][0]["operator"] == "Data"


def test_parsers_registry():
    assert set(PARSERS) == {"tensorflow_like", "mxnet_like"}


def test_record_durations():
    r = records()[1]
    assert r.duration_ns == 400_000
    assert r.duration_ms == pytest.approx(0.4)


def test_parsers_sort_by_index():
    shuffled = list(reversed(records()))
    parsed = parse_tf_step_stats(tf_step_stats(shuffled))
    assert [r.index for r in parsed] == [1, 2, 3]
