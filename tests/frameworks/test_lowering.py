"""Plan-layer -> library geometry lowering tests."""

import pytest

from repro.frameworks import Graph, TFSim
from repro.frameworks.lowering import conv_geometry, depthwise_geometry, pool_window
from repro.frameworks.shapes import infer_shapes
from repro.sim import CudaRuntime, VirtualClock, get_system


def _plan_and_shapes(graph, batch=2):
    fw = TFSim(CudaRuntime(get_system("Tesla_V100"), VirtualClock()))
    model = fw.load(graph)
    return model.plan, infer_shapes(graph, batch)


def test_conv_geometry_resolves_same_padding():
    g = Graph("g")
    g.add_op("input", "Input", shape=(16, 28, 28))
    g.add_op("c", "Conv2D", ["input"], filters=32, kernel=3, strides=2,
             padding="same")
    g.validate()
    plan, shapes = _plan_and_shapes(g)
    layer = next(l for l in plan if l.op == "Conv2D")
    geom = conv_geometry(layer, shapes)
    assert (geom.in_channels, geom.out_channels) == (16, 32)
    assert (geom.out_h, geom.out_w) == (14, 14)
    assert geom.batch == 2


def test_conv_geometry_valid_padding_no_pad():
    g = Graph("g")
    g.add_op("input", "Input", shape=(8, 10, 10))
    g.add_op("c", "Conv2D", ["input"], filters=8, kernel=3, strides=1,
             padding="valid")
    g.validate()
    plan, shapes = _plan_and_shapes(g)
    geom = conv_geometry(next(l for l in plan if l.op == "Conv2D"), shapes)
    assert geom.pad_h == geom.pad_w == 0
    assert geom.out_h == 8


def test_depthwise_geometry_groups():
    g = Graph("g")
    g.add_op("input", "Input", shape=(24, 16, 16))
    g.add_op("dw", "DepthwiseConv2D", ["input"], kernel=3, strides=1,
             padding="same", depth_multiplier=2)
    g.validate()
    plan, shapes = _plan_and_shapes(g)
    layer = next(l for l in plan if l.op == "DepthwiseConv2D")
    geom = depthwise_geometry(layer, shapes)
    assert geom.groups == 24
    assert geom.out_channels == 48
    assert geom.is_depthwise


def test_pool_window_pair():
    g = Graph("g")
    g.add_op("input", "Input", shape=(4, 8, 8))
    g.add_op("p", "MaxPool", ["input"], kernel=(2, 3), strides=2)
    g.validate()
    plan, _ = _plan_and_shapes(g)
    layer = next(l for l in plan if l.op == "MaxPool")
    assert pool_window(layer) == (2, 3)


def test_pair_helper_rejects_bad_values():
    from repro.frameworks.lowering import _pair

    assert _pair(3) == (3, 3)
    assert _pair((1, 7)) == (1, 7)
    with pytest.raises(ValueError):
        _pair("3x3")
