"""Property-based tests of graph-to-plan compilation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import Graph
from repro.frameworks.optimizer import (
    MX_REWRITE_RULES,
    TF_REWRITE_RULES,
    build_plan,
)
from repro.frameworks.shapes import infer_shapes


@st.composite
def random_chain_graph(draw):
    """A random sequential CNN with occasional residual merges."""
    g = Graph("random")
    g.add_op("input", "Input", shape=(3, 32, 32))
    last = "input"
    channels = 3
    merge_candidates = []
    n_ops = draw(st.integers(1, 14))
    for i in range(n_ops):
        op = draw(st.sampled_from(
            ["Conv2D", "BatchNorm", "Relu", "Add", "MaxPool"]
        ))
        name = f"op{i}"
        if op == "Conv2D":
            channels = draw(st.sampled_from([8, 16, 32]))
            g.add_op(name, "Conv2D", [last], filters=channels, kernel=3,
                     strides=1, padding="same")
            merge_candidates = []  # spatial may change relative to old ones
        elif op == "MaxPool":
            g.add_op(name, "MaxPool", [last], kernel=2, strides=2,
                     padding="same")
            merge_candidates = []
        elif op == "Add" and merge_candidates:
            g.add_op(name, "Add", [last, merge_candidates[-1]])
        elif op in ("BatchNorm", "Relu"):
            g.add_op(name, op, [last])
        else:
            g.add_op(name, "Relu", [last])
        last = name
        merge_candidates.append(last)
    g.add_op("gap", "GlobalAvgPool", [last])
    g.add_op("fc", "Dense", ["gap"], units=10)
    g.validate()
    return g


@settings(max_examples=50, deadline=None)
@given(graph=random_chain_graph())
def test_plan_invariants_hold_for_any_graph(graph):
    for rules in (TF_REWRITE_RULES, MX_REWRITE_RULES):
        plan = build_plan(graph, rules)
        # 1. contiguous 1-based indices
        assert [l.index for l in plan] == list(range(1, len(plan) + 1))
        # 2. inputs always reference earlier plan layers
        seen = set()
        for layer in plan:
            assert set(layer.inputs) <= seen or not layer.inputs
            seen.add(layer.name)
        # 3. every source node resolves in shape inference
        shapes = infer_shapes(graph, 2)
        for layer in plan:
            assert layer.source in shapes
        # 4. BN handling is rule-consistent
        types = {l.layer_type for l in plan}
        if any(n.op == "BatchNorm" for n in graph.nodes()):
            if rules.decompose_batchnorm:
                assert "BatchNorm" not in types
            else:
                assert "BatchNorm" in types


@settings(max_examples=25, deadline=None)
@given(graph=random_chain_graph(), batch=st.sampled_from([1, 3, 8]))
def test_any_random_graph_executes(graph, batch):
    """Every generated graph runs end-to-end on the simulated stack."""
    from repro.frameworks import TFSim
    from repro.sim import CudaRuntime, VirtualClock, get_system

    rt = CudaRuntime(get_system("Tesla_V100"), VirtualClock())
    fw = TFSim(rt)
    result = fw.predict(fw.load(graph), batch)
    assert result.latency_ms > 0
    assert rt.memory.live_bytes == 0
