"""Host-cost model behaviour tests."""

from repro.frameworks import Graph, TFSim
from repro.sim import CudaRuntime, VirtualClock, get_system

V100 = get_system("Tesla_V100")


def _where_chain(n):
    g = Graph(f"where_{n}")
    g.add_op("input", "Input", shape=(8, 32, 32))
    last = "input"
    for i in range(n):
        g.add_op(f"w{i}", "Where", [last])
        last = f"w{i}"
    g.add_op("out", "Relu", [last])
    g.validate()
    return g


def test_where_layers_cost_extra_host_time():
    rt1 = CudaRuntime(V100, VirtualClock())
    fw1 = TFSim(rt1)
    few = fw1.predict(fw1.load(_where_chain(5)), 1).latency_ms
    rt2 = CudaRuntime(V100, VirtualClock())
    fw2 = TFSim(rt2)
    many = fw2.predict(fw2.load(_where_chain(50)), 1).latency_ms
    # ~45 extra Where layers at >100 us each.
    assert many - few > 45 * 0.1


def test_where_cost_scales_with_batch():
    """Sec. IV-A: Where host work scales with the number of images."""
    graph = _where_chain(20)
    latencies = {}
    for batch in (1, 8):
        rt = CudaRuntime(V100, VirtualClock())
        fw = TFSim(rt)
        latencies[batch] = fw.predict(fw.load(graph), batch).latency_ms
    assert latencies[8] > 2.5 * latencies[1]


def test_per_image_feed_cost():
    """Prediction cost includes a per-input host component."""
    g = Graph("tiny")
    g.add_op("input", "Input", shape=(1, 2, 2))
    g.add_op("relu", "Relu", ["input"])
    g.validate()
    rt = CudaRuntime(V100, VirtualClock())
    fw = TFSim(rt)
    model = fw.load(g)
    lat1 = fw.predict(model, 1).latency_ms
    rt.reset()
    lat512 = fw.predict(model, 512).latency_ms
    # 511 extra images at 6 us each dominates this degenerate model.
    assert lat512 - lat1 > 511 * 0.006 * 0.8
