"""Benchmark: regenerate the paper's Fig. 2 leveled experimentation ladder."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig02(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig02"], rounds=1)
    print()
    print(result.render())
