"""Benchmark: regenerate the paper's Fig. 5 per-layer latency/memory series (A3/A4)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig05(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig05"], rounds=3)
    print()
    print(result.render())
