"""Insight-engine benchmarks: rules over a 50k-span trace.

Two guarantees are asserted alongside the timings:

* the full rule set analyzes a 50k-span across-stack trace without
  pathological cost, and
* the gap index keeps its index-once/query-many contract — repeated gap
  queries are served from cache (object identity) and cost orders of
  magnitude less than the first, i.e. the insight engine added no new
  O(n) scan to :class:`Trace`.
"""

from __future__ import annotations

import random
import time

from bench_ablation_interval_tree import N_SPANS, make_synthetic_trace

from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile
from repro.insights import InsightContext, InsightEngine
from repro.tracing import Level, SpanKind

KERNEL_NAMES = (
    "volta_scudnn_128x64_relu_interior_nn_v1",
    "volta_sgemm_128x64_nn",
    "Eigen::TensorCwiseBinaryOp<scalar_sum_op>",
    "tensorflow::BiasNCHWKernel",
)
LAYER_TYPES = ("Conv2D", "BatchNorm", "Relu", "Add", "Dense")


def make_synthetic_profile(n_layers: int = 2000, seed: int = 5) -> ModelProfile:
    """A profile big enough that rule cost, not setup, dominates."""
    rng = random.Random(seed)
    layers = []
    for index in range(n_layers):
        kernels = [
            KernelProfile(
                name=rng.choice(KERNEL_NAMES),
                layer_index=index,
                position=pos,
                latency_ms=rng.uniform(0.01, 2.0),
                flops=rng.uniform(0.0, 1e11),
                dram_read_bytes=rng.uniform(1e5, 1e9),
                dram_write_bytes=rng.uniform(1e5, 1e9),
                achieved_occupancy=rng.uniform(0.1, 1.0),
                grid=(1, 1, 1),
                block=(128, 1, 1),
            )
            for pos in range(rng.randint(1, 3))
        ]
        kernel_ms = sum(k.latency_ms for k in kernels)
        layers.append(
            LayerProfile(
                index=index,
                name=f"layer{index}",
                layer_type=rng.choice(LAYER_TYPES),
                shape=(64, 56, 56),
                latency_ms=kernel_ms * rng.uniform(1.0, 1.5),
                alloc_bytes=rng.randint(1 << 16, 1 << 26),
                kernels=kernels,
            )
        )
    total = sum(layer.latency_ms for layer in layers)
    return ModelProfile(
        model_name="synthetic50k",
        system="Tesla_V100",
        framework="tensorflow_like",
        batch=64,
        model_latency_ms=total * 1.1,
        layers=layers,
    )


def _context() -> InsightContext:
    return InsightContext.build(
        make_synthetic_profile(),
        trace=make_synthetic_trace(),  # the ablation's 50k-span shape
        sweep={1: 10.0, 2: 12.0, 4: 16.0, 8: 26.0, 16: 48.0, 32: 95.0},
        peak_device_memory_bytes=int(9e9),
    )


def test_insight_engine_50k_trace(benchmark):
    """All rules over a 50k-span trace + 2k-layer profile."""
    context = _context()
    assert len(context.trace.spans) >= N_SPANS * 0.9
    report = benchmark(lambda: InsightEngine().analyze(context))
    assert len(report.rules_fired) >= 8
    assert not report.skipped_rules


def test_gap_index_no_rescan(benchmark):
    """Cached gap queries are lookups, not scans of the 50k spans."""
    trace = make_synthetic_trace()

    start = time.perf_counter()
    first = trace.index.gaps(Level.GPU_KERNEL, SpanKind.LAUNCH)
    build_s = time.perf_counter() - start

    # Identity: the same snapshot serves the same list object.
    assert trace.index.gaps(Level.GPU_KERNEL, SpanKind.LAUNCH) is first

    n_queries = 1000
    start = time.perf_counter()
    for _ in range(n_queries):
        trace.index.gaps(Level.GPU_KERNEL, SpanKind.LAUNCH)
    cached_s = time.perf_counter() - start
    # 1000 cached queries must cost (much) less than one build; the
    # generous factor keeps the assertion robust on noisy machines while
    # still catching any reintroduced O(n) rescan.
    assert cached_s < build_s * max(1.0, n_queries / 50), (
        f"cached gap queries rescan the trace: first build {build_s:.6f}s, "
        f"{n_queries} cached queries {cached_s:.6f}s"
    )

    benchmark(lambda: trace.index.gaps(Level.GPU_KERNEL, SpanKind.LAUNCH))
