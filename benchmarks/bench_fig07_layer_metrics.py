"""Benchmark: regenerate the paper's Fig. 7 per-layer GPU metrics (A12)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig07(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig07"], rounds=3)
    print()
    print(result.render())
