"""Benchmark: regenerate the paper's Fig. 12 roofline of 37 IC models."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig12(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig12"], rounds=1)
    print()
    print(result.render())
