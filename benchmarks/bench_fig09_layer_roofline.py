"""Benchmark: regenerate the paper's Fig. 9 layer roofline (A14)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig09(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig09"], rounds=3)
    print()
    print(result.render())
