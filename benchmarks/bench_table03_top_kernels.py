"""Benchmark: regenerate the paper's Table III top-5 kernels (A8)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table03(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table03"], rounds=3)
    print()
    print(result.render())
