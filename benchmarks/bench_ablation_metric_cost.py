"""Ablation: GPU metric collection cost (kernel replay, Sec. III-C).

Quantifies the run-time cost of each metric set on the profiled
application: timeline-only capture is cheap; flop counters add ~nothing;
DRAM byte counters force tens of replay passes (the paper reports >100x
slowdowns for memory metrics).
"""

from __future__ import annotations

import pytest

from repro.core import MLG, ProfilingConfig, XSPSession
from repro.models import get_model

BATCH = 32


@pytest.fixture(scope="module")
def session():
    return XSPSession("Tesla_V100", "tensorflow_like")


@pytest.fixture(scope="module")
def graph():
    return get_model(7).graph


def _profiled_latency(session, graph, metrics):
    run = session.profile(
        graph, BATCH, ProfilingConfig(levels=MLG, metrics=tuple(metrics))
    )
    return run.model_latency_ms


def test_timeline_only(benchmark, session, graph):
    latency = benchmark.pedantic(
        _profiled_latency, args=(session, graph, ()), rounds=1, iterations=1
    )
    assert latency > 0


def test_flop_counters(benchmark, session, graph):
    latency = benchmark.pedantic(
        _profiled_latency,
        args=(session, graph, ("flop_count_sp", "achieved_occupancy")),
        rounds=1, iterations=1,
    )
    baseline = _profiled_latency(session, graph, ())
    assert latency < 1.6 * baseline  # flop counters are nearly free


def test_dram_counters_cause_replay_blowup(benchmark, session, graph):
    latency = benchmark.pedantic(
        _profiled_latency,
        args=(session, graph,
              ("flop_count_sp", "dram_read_bytes", "dram_write_bytes",
               "achieved_occupancy")),
        rounds=1, iterations=1,
    )
    baseline = _profiled_latency(session, graph, ())
    # Virtual-time slowdown of the profiled application (paper: >100x
    # possible; ours lands in the tens for this metric set).
    assert latency > 10 * baseline
