"""Diff-engine benchmark: aligning and classifying two 2k-layer profiles.

Alongside the timing, two contracts are asserted:

* a self-diff is clean (zero findings above severity 0) even at this
  scale, and
* a perturbed candidate (scaled latencies + renamed and inserted layers
  + a swapped kernel mix) still aligns nearly every layer — the
  alignment ladder, not positional luck, carries the matching.
"""

from __future__ import annotations

import random

from bench_insights_engine import make_synthetic_profile

from repro.analysis.diff import diff_profiles
from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile

N_LAYERS = 2000


def make_perturbed_candidate(
    baseline: ModelProfile, seed: int = 11
) -> ModelProfile:
    """A realistic B side: uniformly slower, with structural churn."""
    rng = random.Random(seed)
    layers: list[LayerProfile] = []
    for layer in baseline.layers:
        factor = rng.uniform(1.05, 1.45)
        name = layer.name
        if rng.random() < 0.05:  # renamed (same type): the "type" rung
            name = f"renamed_{layer.index}"
        kernels = [
            KernelProfile(
                name=(
                    "volta_scudnn_winograd_128x128"
                    if rng.random() < 0.10  # kernel-mix churn
                    else k.name
                ),
                layer_index=k.layer_index,
                position=k.position,
                latency_ms=k.latency_ms * factor,
                flops=k.flops,
                dram_read_bytes=k.dram_read_bytes,
                dram_write_bytes=k.dram_write_bytes,
                achieved_occupancy=k.achieved_occupancy,
                grid=k.grid,
                block=k.block,
            )
            for k in layer.kernels
        ]
        layers.append(
            LayerProfile(
                index=layer.index,
                name=name,
                layer_type=layer.layer_type,
                shape=layer.shape,
                latency_ms=layer.latency_ms * factor,
                alloc_bytes=layer.alloc_bytes,
                kernels=kernels,
            )
        )
        if rng.random() < 0.02:  # inserted layers
            layers.append(
                LayerProfile(
                    index=10_000 + layer.index,
                    name=f"inserted_{layer.index}",
                    layer_type="Reshape",
                    shape=(1,),
                    latency_ms=0.01,
                    alloc_bytes=1 << 12,
                    kernels=[],
                )
            )
    total = sum(l.latency_ms for l in layers)
    return ModelProfile(
        model_name=baseline.model_name,
        system=baseline.system,
        framework=baseline.framework,
        batch=baseline.batch,
        model_latency_ms=total * 1.1,
        layers=layers,
    )


def test_diff_engine_2k_layers(benchmark):
    """Full diff (align + deltas + classification) of two 2k-layer sides."""
    baseline = make_synthetic_profile(N_LAYERS)
    candidate = make_perturbed_candidate(baseline)
    diff = benchmark(lambda: diff_profiles(baseline, candidate))
    matched = diff.layers_with_status("matched")
    assert len(matched) >= 0.95 * N_LAYERS
    assert diff.layers_with_status("added")  # the inserted layers
    assert diff.regression_fraction > 0.05
    kinds = {f.kind for f in diff.findings}
    assert "regression" in kinds and "kernel-mix-shift" in kinds


def test_diff_engine_self_diff_2k_layers(benchmark):
    """Self-diff at scale: the clean-diff contract has no size threshold."""
    profile = make_synthetic_profile(N_LAYERS)
    diff = benchmark(lambda: diff_profiles(profile, profile))
    assert diff.findings_above(1e-9) == []
    assert diff.speedup == 1.0
