"""Benchmark: regenerate the paper's Table VII system catalog."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table07(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table07"], rounds=5)
    print()
    print(result.render())
