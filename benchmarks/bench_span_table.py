"""Ablation: columnar SpanTable storage vs the object-per-span baseline.

The PR 4 acceptance targets, measured on a 200k-span across-stack
timeline capture (one model span, layers with index/type/shape tags,
launch/execution kernel pairs — the shape ``repro trace`` produces):

* building the structural trace indexes (timeline ordering, level/kind
  partitions, id map, extent) over the columnar storage is at least
  ``MIN_INDEX_SPEEDUP``x faster than the same builds over a list of
  ``Span`` objects (the pre-PR 4 representation, kept here as the
  baseline), and
* the resident footprint of the capture is at least ``MIN_MEMORY_RATIO``x
  smaller (``SpanTable.nbytes`` vs a deep ``sys.getsizeof`` walk of the
  object list that counts every shared object once).
"""

from __future__ import annotations

import random
import sys
import time
from operator import attrgetter

from repro.tracing import Level, Span, SpanKind, Trace
from repro.tracing.span import LogEntry

N_SPANS = 200_000
MIN_INDEX_SPEEDUP = 2.0
MIN_MEMORY_RATIO = 3.0

LAYER_TYPES = ("Conv2D", "BatchNorm", "Relu", "Add", "Dense")
KERNEL_NAMES = (
    "volta_scudnn_128x64_relu_interior_nn_v1",
    "volta_sgemm_128x64_nn",
    "Eigen::TensorCwiseBinaryOp<scalar_sum_op>",
    "tensorflow::BiasNCHWKernel",
)


def make_capture_spans(n_spans: int = N_SPANS, seed: int = 3) -> list[Span]:
    """A realistic timeline capture: layers + launch/execution pairs."""
    rng = random.Random(seed)
    spans: list[Span] = []
    sid = 1
    spans.append(
        Span("predict", 0, 1 << 60, Level.MODEL, span_id=sid,
             tags={"tracer": "model", "batch": 64})
    )
    sid += 1
    n_layers = max(1, n_spans // 24)
    cursor = 0
    layers: list[Span] = []
    for index in range(n_layers):
        width = rng.randint(20_000, 400_000)
        layer = Span(
            f"layer{index}", cursor, cursor + width, Level.LAYER,
            span_id=sid,
            tags={
                "tracer": "layer",
                "layer_index": index,
                "layer_type": rng.choice(LAYER_TYPES),
                "shape": (64, 56, 56),
            },
        )
        sid += 1
        spans.append(layer)
        layers.append(layer)
        cursor += width + rng.randint(0, 1_000)
    while sid < n_spans:
        layer = rng.choice(layers)
        if layer.duration_ns < 8:
            continue
        launch_start = rng.randint(layer.start_ns, layer.end_ns - 4)
        launch_end = rng.randint(launch_start + 1, layer.end_ns)
        name = rng.choice(KERNEL_NAMES)
        spans.append(
            Span(name, launch_start, launch_start + 2, Level.GPU_KERNEL,
                 span_id=sid, kind=SpanKind.LAUNCH, correlation_id=sid,
                 tags={"tracer": "gpu"})
        )
        spans.append(
            Span(name, launch_start + 1, launch_end, Level.GPU_KERNEL,
                 span_id=sid + 1, kind=SpanKind.EXECUTION,
                 correlation_id=sid, tags={"tracer": "gpu"})
        )
        sid += 2
    return spans


# -- the object-per-span baseline (the pre-PR 4 Trace representation) -------

_START = attrgetter("start_ns")
_END = attrgetter("end_ns")


def build_object_indexes(spans: list[Span]):
    """The seed TraceIndex's structural builds over a span-object list."""
    ordered = sorted(spans, key=_END, reverse=True)
    ordered.sort(key=_START)
    by_level: dict[Level, list[Span]] = {}
    for s in spans:
        try:
            by_level[s.level].append(s)
        except KeyError:
            by_level[s.level] = [s]
    by_kind: dict[SpanKind, list[Span]] = {}
    for s in spans:
        try:
            by_kind[s.kind].append(s)
        except KeyError:
            by_kind[s.kind] = [s]
    by_id = {s.span_id: s for s in spans}
    extent = (min(s.start_ns for s in spans), max(s.end_ns for s in spans))
    return ordered, by_level, by_kind, by_id, extent


def build_columnar_indexes(trace: Trace):
    """The same structural family over the SpanTable-backed index."""
    index = trace.index
    return (
        index.rows_sorted(),
        index.level_rows(),
        index.kind_rows(),
        index.row_by_id(),
        index.extent_ns(),
    )


def object_list_nbytes(spans: list[Span]) -> int:
    """Deep size of the object-list representation, shared objects once."""
    seen: set[int] = set()

    def sizeof(obj) -> int:
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        total = sys.getsizeof(obj)
        if isinstance(obj, dict):
            for k, v in obj.items():
                total += sizeof(k) + sizeof(v)
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                total += sizeof(item)
        elif isinstance(obj, LogEntry):
            total += sizeof(obj.fields)
        return total

    total = sys.getsizeof(spans)
    for span in spans:
        total += sys.getsizeof(span) + sizeof(span.__dict__)
    return total


# -- benchmarks -------------------------------------------------------------


def _fresh_trace(spans: list[Span]) -> Trace:
    trace = Trace(trace_id=1)
    trace.extend(spans)
    return trace


def test_index_build_columnar_200k(benchmark):
    """TraceIndex structural build over the SoA columns (the hot path)."""
    spans = make_capture_spans()
    trace = _fresh_trace(spans)

    def build():
        trace.invalidate_index()
        return build_columnar_indexes(trace)

    rows_sorted, level_rows, *_ = benchmark(build)
    assert len(rows_sorted) == len(spans)
    assert sum(map(len, level_rows.values())) == len(spans)


def test_index_build_object_list_200k(benchmark):
    """The same builds over the pre-PR 4 span-object list (baseline)."""
    spans = make_capture_spans()
    ordered, by_level, *_ = benchmark.pedantic(
        build_object_indexes, args=(spans,), rounds=2, iterations=1
    )
    assert len(ordered) == len(spans)
    assert sum(map(len, by_level.values())) == len(spans)


def test_columnar_vs_object_speed_and_memory():
    """The PR 4 acceptance oracle: >= 2x faster index build and >= 3x
    lower resident trace memory at 200k spans, with identical results."""
    spans = make_capture_spans()
    trace = _fresh_trace(spans)

    object_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        ordered, by_level, by_kind, by_id, extent = build_object_indexes(
            spans
        )
        object_s = min(object_s, time.perf_counter() - start)

    columnar_s = float("inf")
    for _ in range(3):
        trace.invalidate_index()
        start = time.perf_counter()
        rows, level_rows, kind_rows, row_by_id, col_extent = (
            build_columnar_indexes(trace)
        )
        columnar_s = min(columnar_s, time.perf_counter() - start)

    # Same answers from both representations.
    span_ids = trace.table.span_id
    assert [span_ids[r] for r in rows] == [s.span_id for s in ordered]
    assert {
        lvl: [span_ids[r] for r in rws] for lvl, rws in level_rows.items()
    } == {lvl: [s.span_id for s in ss] for lvl, ss in by_level.items()}
    assert {
        k: [span_ids[r] for r in rws] for k, rws in kind_rows.items()
    } == {k: [s.span_id for s in ss] for k, ss in by_kind.items()}
    assert set(row_by_id) == set(by_id)
    assert col_extent == extent

    speedup = object_s / columnar_s
    assert speedup >= MIN_INDEX_SPEEDUP, (
        f"columnar index build only {speedup:.2f}x faster than the "
        f"object-list baseline ({columnar_s * 1e3:.0f} ms vs "
        f"{object_s * 1e3:.0f} ms on {len(spans)} spans)"
    )

    table_bytes = trace.table.nbytes
    object_bytes = object_list_nbytes(spans)
    ratio = object_bytes / table_bytes
    assert ratio >= MIN_MEMORY_RATIO, (
        f"columnar storage only {ratio:.2f}x smaller "
        f"({table_bytes / 1e6:.1f} MB vs {object_bytes / 1e6:.1f} MB)"
    )
