"""Benchmark: regenerate the paper's Table V kernels by layer (A11)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table05(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table05"], rounds=3)
    print()
    print(result.render())
