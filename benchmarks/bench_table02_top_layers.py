"""Benchmark: regenerate the paper's Table II top-5 layers (A2)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table02(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table02"], rounds=3)
    print()
    print(result.render())
