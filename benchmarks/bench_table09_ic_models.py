"""Benchmark: regenerate the paper's Table IX in-depth IC characterization."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table09(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table09"], rounds=1)
    print()
    print(result.render())
