"""Benchmark: regenerate the paper's Fig. 8 GPU vs non-GPU latency (A13)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig08(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig08"], rounds=3)
    print()
    print(result.render())
