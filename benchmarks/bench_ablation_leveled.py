"""Ablation: leveled experimentation vs single-run profiling (Sec. III-C).

A single all-levels run inflates the model latency by the full profiling
overhead; leveled experimentation recovers the accurate latency from the
M-only rung.  This bench quantifies the error a naive single-run design
would make.
"""

from __future__ import annotations

import pytest

from repro.core import LeveledExperiment, M, MLG, ProfilingConfig, XSPSession
from repro.models import get_model

BATCH = 64


@pytest.fixture(scope="module")
def session():
    return XSPSession("Tesla_V100", "tensorflow_like")


@pytest.fixture(scope="module")
def graph():
    return get_model(7).graph


def test_leveled_ladder(benchmark, session, graph):
    experiment = LeveledExperiment(session, runs_per_level=1)
    leveled = benchmark.pedantic(
        experiment.run, args=(graph, BATCH), rounds=1, iterations=1
    )
    truth = leveled.model_latency_ms
    naive = leveled.predict_latency_at("M/L/G")
    # The naive single-run design overstates model latency massively;
    # leveled experimentation reads it from the M rung.
    assert naive > 1.5 * truth
    overheads = leveled.overhead_ladder()
    assert overheads["M/L"] > 0 and overheads["M/L/G"] > 0


def test_single_run_all_levels(benchmark, session, graph):
    config = ProfilingConfig(levels=MLG, metrics=())
    run = benchmark.pedantic(
        session.profile, args=(graph, BATCH, config), rounds=1, iterations=1
    )
    baseline = session.profile(graph, BATCH, ProfilingConfig(levels=M,
                                                             metrics=()))
    assert run.model_latency_ms > baseline.model_latency_ms
