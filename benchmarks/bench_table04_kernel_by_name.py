"""Benchmark: regenerate the paper's Table IV kernels by name (A10)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table04(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table04"], rounds=3)
    print()
    print(result.render())
