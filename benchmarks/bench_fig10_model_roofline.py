"""Benchmark: regenerate the paper's Fig. 10 model roofline across batches (A15)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig10(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig10"], rounds=1)
    print()
    print(result.render())
