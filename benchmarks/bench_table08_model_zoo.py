"""Benchmark: regenerate the paper's Table VIII 55-model characterization."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table08(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table08"], rounds=1)
    print()
    print(result.render())
