#!/usr/bin/env python
"""Compare two pytest-benchmark JSON snapshots and gate on regressions.

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--max-regression 0.20] [--pattern REGEX ...]

Benchmarks present in both snapshots and matching any ``--pattern`` are
compared by mean time; if any is more than ``--max-regression`` slower
than the baseline, the script lists the offenders and exits 1.  The
default patterns guard the PR 1 hot paths — the sweep-line/correlation
engines — whose speedups later PRs must not quietly give back.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Benchmarks gated by default: the sweep-line vs interval-tree
#: correlation ablation plus anything else exercising correlation, and
#: the PR 5 incremental index-maintenance path.
DEFAULT_PATTERNS = (r"sweep", r"correlation", r"reconstruction", r"incremental")


def load_means(path: str) -> dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    return {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in doc.get("benchmarks", [])
    }


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    patterns: list[str],
    max_regression: float,
) -> tuple[list[str], list[str]]:
    """Returns (report lines, regression lines)."""
    regexes = [re.compile(p, re.IGNORECASE) for p in patterns]
    shared = sorted(
        name
        for name in baseline.keys() & current.keys()
        if any(r.search(name) for r in regexes)
    )
    lines: list[str] = []
    regressions: list[str] = []
    # A gated bench that vanished from the current snapshot (renamed or
    # deleted) would silently shrink coverage — fail the gate so the
    # rename is acknowledged by re-recording the baseline.
    for name in sorted(baseline.keys() - current.keys()):
        if any(r.search(name) for r in regexes):
            line = (
                f"{name}: GATED BENCH MISSING from current snapshot "
                "(renamed/removed?)"
            )
            lines.append(line)
            regressions.append(line)
    for name in shared:
        old, new = baseline[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + max_regression:
            verdict = "REGRESSION"
        elif ratio < 1.0:
            verdict = "faster"
        line = (
            f"{name}: {old * 1e3:.3f} ms -> {new * 1e3:.3f} ms "
            f"({ratio:.2f}x) {verdict}"
        )
        lines.append(line)
        if verdict == "REGRESSION":
            regressions.append(line)
    if not shared and not regressions:
        # Nothing to gate at all: neither snapshot knows the guarded
        # benches.  Failing here keeps the gate honest — a pattern typo
        # or wholesale rename cannot turn it into a no-op.
        line = f"no benchmarks matched {patterns!r} — gate has no coverage"
        lines.append(line)
        regressions.append(line)
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="older BENCH_*.json snapshot")
    parser.add_argument("current", help="newer BENCH_*.json snapshot")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--pattern", action="append", default=None,
                        metavar="REGEX",
                        help="benchmark name filter (repeatable; default: "
                        + ", ".join(DEFAULT_PATTERNS) + ")")
    args = parser.parse_args(argv)

    patterns = args.pattern or list(DEFAULT_PATTERNS)
    lines, regressions = compare(
        load_means(args.baseline),
        load_means(args.current),
        patterns,
        args.max_regression,
    )
    print(f"comparing {args.baseline} -> {args.current} "
          f"(gate: >{args.max_regression:.0%} slower)")
    for line in lines:
        print(f"  {line}")
    if regressions:
        print(f"FAILED: {len(regressions)} gate violation(s) "
              f"(regression beyond {args.max_regression:.0%}, or gated "
              "benches missing)", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
