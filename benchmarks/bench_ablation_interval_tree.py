"""Ablation: interval-tree parent reconstruction vs a naive O(n^2) scan.

DESIGN.md calls out the interval tree as a key design decision; this
bench quantifies the win on realistically-sized traces and verifies both
strategies assign identical parents.
"""

from __future__ import annotations

import random

import pytest

from repro.tracing import Interval, IntervalTree


def make_intervals(n: int, seed: int = 7) -> list[Interval]:
    rng = random.Random(seed)
    intervals = []
    cursor = 0
    for i in range(n):
        start = cursor
        end = start + rng.randint(10, 500)
        intervals.append(Interval(start, end, i))
        cursor = end + rng.randint(0, 5)
    return intervals


def make_queries(intervals: list[Interval], per_parent: int = 3,
                 seed: int = 11) -> list[Interval]:
    rng = random.Random(seed)
    queries = []
    for iv in intervals:
        for _ in range(per_parent):
            if iv.end - iv.start < 3:
                continue
            a = rng.randint(iv.start, iv.end - 2)
            b = rng.randint(a + 1, iv.end)
            queries.append(Interval(a, b))
    return queries


N_PARENTS = 400


def _tree_assign(intervals, queries):
    tree = IntervalTree(intervals)
    return [tree.tightest_containing(q) for q in queries]


def _naive_assign(intervals, queries):
    out = []
    for q in queries:
        best = None
        for iv in intervals:
            if iv.contains_interval(q):
                if best is None or iv.length < best.length or (
                    iv.length == best.length and iv.start < best.start
                ):
                    best = iv
        out.append(best)
    return out


@pytest.fixture(scope="module")
def workload():
    intervals = make_intervals(N_PARENTS)
    queries = make_queries(intervals)
    return intervals, queries


def test_interval_tree_assignment(benchmark, workload):
    intervals, queries = workload
    assigned = benchmark(_tree_assign, intervals, queries)
    assert len(assigned) == len(queries)
    assert all(a is not None for a in assigned)


def test_naive_scan_assignment(benchmark, workload):
    intervals, queries = workload
    assigned = benchmark.pedantic(
        _naive_assign, args=workload, rounds=1, iterations=1
    )
    # Oracle check: both strategies agree.
    expected = _tree_assign(intervals, queries)
    assert [(a.start, a.end) for a in assigned] == \
        [(e.start, e.end) for e in expected]
