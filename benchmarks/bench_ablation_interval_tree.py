"""Ablation: parent-reconstruction strategies on realistic trace shapes.

Three rungs, two granularities:

* raw containment queries — optimized interval tree vs a naive O(n^2)
  scan (the original ablation), and
* full ``reconstruct_parents`` on a 50k-span synthetic trace — the
  sweep-line engine (hot path) vs the interval-tree reference engine,
  with byte-identical parent-assignment verification and an asserted
  >= 5x end-to-end speedup.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.tracing import Interval, IntervalTree, Level, Span, SpanKind, Trace
from repro.tracing.correlation import reconstruct_parents


def make_intervals(n: int, seed: int = 7) -> list[Interval]:
    rng = random.Random(seed)
    intervals = []
    cursor = 0
    for i in range(n):
        start = cursor
        end = start + rng.randint(10, 500)
        intervals.append(Interval(start, end, i))
        cursor = end + rng.randint(0, 5)
    return intervals


def make_queries(intervals: list[Interval], per_parent: int = 3,
                 seed: int = 11) -> list[Interval]:
    rng = random.Random(seed)
    queries = []
    for iv in intervals:
        for _ in range(per_parent):
            if iv.end - iv.start < 3:
                continue
            a = rng.randint(iv.start, iv.end - 2)
            b = rng.randint(a + 1, iv.end)
            queries.append(Interval(a, b))
    return queries


N_PARENTS = 400


def _tree_assign(intervals, queries):
    tree = IntervalTree(intervals)
    return [tree.tightest_containing(q) for q in queries]


def _naive_assign(intervals, queries):
    out = []
    for q in queries:
        best = None
        for iv in intervals:
            if iv.contains_interval(q):
                if best is None or iv.length < best.length or (
                    iv.length == best.length and iv.start < best.start
                ):
                    best = iv
        out.append(best)
    return out


@pytest.fixture(scope="module")
def workload():
    intervals = make_intervals(N_PARENTS)
    queries = make_queries(intervals)
    return intervals, queries


def test_interval_tree_assignment(benchmark, workload):
    intervals, queries = workload
    assigned = benchmark(_tree_assign, intervals, queries)
    assert len(assigned) == len(queries)
    assert all(a is not None for a in assigned)


def test_naive_scan_assignment(benchmark, workload):
    intervals, queries = workload
    assigned = benchmark.pedantic(
        _naive_assign, args=workload, rounds=1, iterations=1
    )
    # Oracle check: both strategies agree.
    expected = _tree_assign(intervals, queries)
    assert [(a.start, a.end) for a in assigned] == \
        [(e.start, e.end) for e in expected]


# -- full reconstruct_parents: sweep-line vs interval-tree reference --------

#: Acceptance target for the end-to-end reconstruction speedup.
N_SPANS = 50_000
MIN_SPEEDUP = 5.0


def make_synthetic_trace(n_spans: int = N_SPANS, seed: int = 3) -> Trace:
    """An across-stack trace shaped like a real capture: one model span,
    sequential layers (a few of them nested sub-layers), cuDNN-style
    library spans, and a dominant population of kernel-launch spans."""
    rng = random.Random(seed)
    t = Trace(trace_id=1)
    sid = 1
    t.add(Span("predict", 0, 1 << 60, Level.MODEL, span_id=sid))
    sid += 1
    n_layers = max(1, n_spans // 12)
    cursor = 0
    layers: list[Span] = []
    for _ in range(n_layers):
        width = rng.randint(20_000, 400_000)
        layer = Span(f"layer{sid}", cursor, cursor + width, Level.LAYER,
                     span_id=sid)
        sid += 1
        t.add(layer)
        layers.append(layer)
        if rng.random() < 0.1 and width > 4_000:
            lo = cursor + width // 4
            hi = cursor + (3 * width) // 4
            t.add(Span(f"sublayer{sid}", lo, hi, Level.LAYER, span_id=sid,
                       parent_id=layer.span_id))
            sid += 1
        cursor += width + rng.randint(0, 1_000)
    while sid <= n_spans:
        layer = rng.choice(layers)
        if layer.duration_ns < 4:
            continue
        a = rng.randint(layer.start_ns, layer.end_ns - 2)
        b = rng.randint(a + 1, layer.end_ns)
        t.add(Span(f"launch{sid}", a, b, Level.GPU_KERNEL, span_id=sid,
                   kind=SpanKind.LAUNCH, correlation_id=sid))
        sid += 1
    return t


def _parent_map(trace: Trace) -> dict[int, int | None]:
    return {s.span_id: s.parent_id for s in trace.spans}


def _fresh_trace_setup():
    """Each timed round reconstructs a fresh trace (assignment mutates it)."""
    return (make_synthetic_trace(),), {}


def test_sweepline_reconstruction_50k(benchmark):
    """The hot path: one sweep, per-level active-parent stacks."""
    result = benchmark.pedantic(
        lambda tr: reconstruct_parents(tr, strict=False, engine="sweep"),
        setup=_fresh_trace_setup, rounds=3, iterations=1,
    )
    assert len(result.assigned) > N_SPANS * 0.9


def test_tree_reconstruction_50k(benchmark):
    """The reference path: per-orphan interval-tree containment queries."""
    result = benchmark.pedantic(
        lambda tr: reconstruct_parents(tr, strict=False, engine="tree"),
        setup=_fresh_trace_setup, rounds=1, iterations=1,
    )
    assert len(result.assigned) > N_SPANS * 0.9


def test_sweep_vs_tree_identical_and_faster():
    """The ablation's oracle: byte-identical parent assignments, and the
    sweep at least ``MIN_SPEEDUP``x faster end-to-end on 50k spans."""
    tree_trace = make_synthetic_trace()
    start = time.perf_counter()
    tree_result = reconstruct_parents(tree_trace, strict=False, engine="tree")
    tree_s = time.perf_counter() - start

    sweep_s = float("inf")
    for _ in range(3):  # best-of-3 guards against scheduler noise
        sweep_trace = make_synthetic_trace()
        start = time.perf_counter()
        sweep_result = reconstruct_parents(
            sweep_trace, strict=False, engine="sweep"
        )
        sweep_s = min(sweep_s, time.perf_counter() - start)

    assert _parent_map(tree_trace) == _parent_map(sweep_trace)
    assert tree_result.assigned == sweep_result.assigned
    assert [s.span_id for s in tree_result.ambiguous] == \
        [s.span_id for s in sweep_result.ambiguous]
    speedup = tree_s / sweep_s
    assert speedup >= MIN_SPEEDUP, (
        f"sweep-line only {speedup:.1f}x faster than the interval-tree "
        f"reference ({sweep_s * 1e3:.0f} ms vs {tree_s * 1e3:.0f} ms)"
    )
