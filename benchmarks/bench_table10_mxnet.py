"""Benchmark: regenerate the paper's Table X MXNet vs TensorFlow."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table10(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table10"], rounds=1)
    print()
    print(result.render())
