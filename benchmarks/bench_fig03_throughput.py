"""Benchmark: regenerate the paper's Fig. 3 throughput across batch sizes."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig03(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig03"], rounds=1)
    print()
    print(result.render())
