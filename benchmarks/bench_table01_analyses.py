"""Benchmark: regenerate the paper's Table I capability matrix."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table01(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table01"], rounds=5)
    print()
    print(result.render())
