#!/usr/bin/env bash
# Run the full benchmark suite and record the results as pytest-benchmark
# JSON, so the repo's perf trajectory is tracked PR over PR:
#
#     benchmarks/run_benchmarks.sh                # writes BENCH_pr1.json
#     benchmarks/run_benchmarks.sh BENCH_pr2.json # next PR's snapshot
#
# Extra arguments after the output name are passed through to pytest, e.g.
#
#     benchmarks/run_benchmarks.sh BENCH_quick.json -k ablation
#
# Compare two snapshots with: pytest-benchmark compare BENCH_pr1.json ...
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr1.json}"
shift || true

# Benchmark modules are named bench_*.py so the tier-1 test run
# (`pytest -x -q`) never collects them; widen the pattern here only.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks/ \
    -o python_files="test_*.py bench_*.py" \
    --benchmark-json="$OUT" "$@"

echo "wrote benchmark results to $OUT"
