#!/usr/bin/env bash
# Run the full benchmark suite and record the results as pytest-benchmark
# JSON, so the repo's perf trajectory is tracked PR over PR:
#
#     benchmarks/run_benchmarks.sh                # writes BENCH_local.json
#     benchmarks/run_benchmarks.sh BENCH_pr3.json # a PR's committed snapshot
#
# BENCH_pr*.json are committed per-PR baselines — the default output is
# deliberately a scratch name so a bare run never clobbers them.
#
# --compare gates the run against a previous snapshot: after recording,
# the sweep/correlation benches are diffed and any mean-time regression
# beyond 20% fails the script (see benchmarks/compare_bench.py):
#
#     benchmarks/run_benchmarks.sh BENCH_pr2.json --compare BENCH_pr1.json
#
# Extra arguments are passed through to pytest, e.g.
#
#     benchmarks/run_benchmarks.sh BENCH_quick.json -k ablation
#
# Compare two snapshots ad hoc with: pytest-benchmark compare BENCH_*.json
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_local.json"
BASELINE=""
PYTEST_ARGS=()
GATE_PATTERNS=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --compare)
            [[ $# -ge 2 ]] || { echo "--compare needs a snapshot path" >&2; exit 2; }
            BASELINE="$2"
            shift 2
            ;;
        --gate-pattern)
            # Restrict the --compare gate to these regexes (repeatable).
            # Needed when a quick `-k` subset runs: the default gate
            # would flag the skipped benches as missing.
            [[ $# -ge 2 ]] || { echo "--gate-pattern needs a regex" >&2; exit 2; }
            GATE_PATTERNS+=(--pattern "$2")
            shift 2
            ;;
        --max-regression)
            # Forwarded to the compare gate (CI uses a looser bar than
            # the 20% local default to absorb shared-runner jitter).
            [[ $# -ge 2 ]] || { echo "--max-regression needs a fraction" >&2; exit 2; }
            GATE_PATTERNS+=(--max-regression "$2")
            shift 2
            ;;
        *)
            if [[ ${#PYTEST_ARGS[@]} -eq 0 && "$1" != -* ]]; then
                OUT="$1"
            else
                PYTEST_ARGS+=("$1")
            fi
            shift
            ;;
    esac
done

if [[ -n "$BASELINE" ]] && \
   [[ "$(realpath -m "$BASELINE")" == "$(realpath -m "$OUT")" ]]; then
    echo "error: --compare baseline '$BASELINE' is also the output snapshot;" \
         "pass a different output name (e.g. BENCH_pr3.json)" >&2
    exit 2
fi

# Benchmark modules are named bench_*.py so the tier-1 test run
# (`pytest -x -q`) never collects them; widen the pattern here only.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks/ \
    -o python_files="test_*.py bench_*.py" \
    --benchmark-json="$OUT" ${PYTEST_ARGS+"${PYTEST_ARGS[@]}"}

echo "wrote benchmark results to $OUT"

if [[ -n "$BASELINE" ]]; then
    python benchmarks/compare_bench.py "$BASELINE" "$OUT" \
        ${GATE_PATTERNS+"${GATE_PATTERNS[@]}"}
fi
