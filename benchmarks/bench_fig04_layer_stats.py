"""Benchmark: regenerate the paper's Fig. 4 layer type statistics (A5/A6/A7)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig04(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig04"], rounds=3)
    print()
    print(result.render())
