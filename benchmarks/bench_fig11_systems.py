"""Benchmark: regenerate the paper's Fig. 11 five-system comparison."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig11(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig11"], rounds=1)
    print()
    print(result.render())
