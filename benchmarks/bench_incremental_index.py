"""Ablation: incremental index maintenance vs rebuild-per-query.

The PR 5 acceptance oracle.  A live ``TracingServer`` interleaves span
appends with queries; before PR 5 every ``Trace.add`` invalidated the
``TraceIndex`` and the next query paid a full O(n log n) rebuild of every
structure.  With append-aware maintenance, the same interleaving advances
the built structures in place (bisect-merge into the orderings, appends
into the partitions/id map, gap folds continued).

Measured on a 100k-span across-stack capture with ``N_ROUNDS``
append→query rounds (each round lands one launch/execution kernel pair,
then runs the row-level query families the correlation/insight hot paths
use): the incremental path must be at least ``MIN_SPEEDUP``x faster than
the rebuild-per-query baseline, with every round's query results — and
the final index state, structure for structure — identical.
"""

from __future__ import annotations

import time

from bench_span_table import make_capture_spans

from repro.tracing import Level, Span, SpanKind, Trace

N_SPANS = 100_000
N_ROUNDS = 40
MIN_SPEEDUP = 5.0


def _tail_pairs(base: int, start_at: int, n_pairs: int) -> list[Span]:
    """Launch/execution pairs extending the capture in time order.

    One continuous stream: successive chunks taken from it keep the
    appends in-order (the streaming reality), so the incremental path's
    fast fold is exercised, not the out-of-order fallback.
    """
    spans: list[Span] = []
    sid = base
    cursor = start_at
    for _ in range(n_pairs):
        spans.append(
            Span("late_kernel", cursor, cursor + 2, Level.GPU_KERNEL,
                 span_id=sid, kind=SpanKind.LAUNCH, correlation_id=sid)
        )
        spans.append(
            Span("late_kernel", cursor + 1, cursor + 900, Level.GPU_KERNEL,
                 span_id=sid + 1, kind=SpanKind.EXECUTION,
                 correlation_id=sid)
        )
        sid += 2
        cursor += 1_500
    return spans


def _chunked_tail(spans, n_chunks: int) -> list[list[Span]]:
    extent_hi = 1 << 60  # the capture's predict span end
    tail = _tail_pairs(len(spans) + 1, extent_hi + 10, n_chunks * N_ROUNDS)
    per_chunk = 2 * N_ROUNDS
    return [
        tail[i * per_chunk:(i + 1) * per_chunk] for i in range(n_chunks)
    ]


def _fresh_trace(spans) -> Trace:
    trace = Trace(trace_id=1)
    trace.extend(spans)
    # Warm every query family so the interleaved rounds measure
    # maintenance, not first-touch builds.
    _query_round(trace)
    return trace


def _query_round(trace: Trace):
    """The row-level families the hot paths consult between appends."""
    index = trace.index
    rows = index.rows_sorted()
    return (
        rows[-1],
        len(rows),
        {lvl: len(r) for lvl, r in index.level_rows().items()},
        index.row_by_id()[trace.table.span_id[len(trace) - 1]],
        index.extent_ns(),
        len(index.gaps(Level.GPU_KERNEL, SpanKind.EXECUTION)),
    )


def _run_rounds(trace: Trace, tail, *, rebuild: bool):
    results = []
    for span in tail:
        trace.add(span)
        if rebuild:
            trace.invalidate_index()  # the pre-PR 5 behavior
        results.append(_query_round(trace))
    return results


def _index_snapshot(trace: Trace):
    index = trace.index
    return {
        "sorted": list(index.rows_sorted()),
        "levels": {l: list(r) for l, r in index.level_rows().items()},
        "kinds": {k: list(r) for k, r in index.kind_rows().items()},
        "by_id": dict(index.row_by_id()),
        "extent": index.extent_ns(),
        "gaps": [
            (g.start_ns, g.end_ns, g.before_id, g.after_id)
            for g in index.gaps(Level.GPU_KERNEL, SpanKind.EXECUTION)
        ],
        "roots": list(index.root_rows()),
    }


def test_interleaved_incremental_100k(benchmark):
    """N append→query rounds served by in-place index advancement."""
    spans = make_capture_spans(N_SPANS)
    trace = _fresh_trace(spans)
    iteration = iter(_chunked_tail(spans, 64))

    def interleave():
        return _run_rounds(trace, next(iteration), rebuild=False)

    results = benchmark.pedantic(interleave, rounds=3, iterations=1)
    assert len(results) == 2 * N_ROUNDS


def test_interleaved_rebuild_100k(benchmark):
    """The same rounds with the seed's rebuild-per-query behavior."""
    spans = make_capture_spans(N_SPANS)
    trace = _fresh_trace(spans)
    iteration = iter(_chunked_tail(spans, 8))

    def interleave():
        return _run_rounds(trace, next(iteration), rebuild=True)

    results = benchmark.pedantic(interleave, rounds=2, iterations=1)
    assert len(results) == 2 * N_ROUNDS


def test_incremental_vs_rebuild_speedup_and_identity():
    """The acceptance oracle: >= 5x faster interleaved append/query at
    100k spans, with byte-identical query results and index state."""
    spans = make_capture_spans(N_SPANS)
    incremental = _fresh_trace(spans)
    rebuild = _fresh_trace(spans)
    chunks = _chunked_tail(spans, 3)

    incremental_s = float("inf")
    rebuild_s = float("inf")
    for tail in chunks:
        clone = [
            Span(s.name, s.start_ns, s.end_ns, s.level, span_id=s.span_id,
                 kind=s.kind, correlation_id=s.correlation_id)
            for s in tail
        ]

        start = time.perf_counter()
        incremental_results = _run_rounds(incremental, tail, rebuild=False)
        incremental_s = min(incremental_s, time.perf_counter() - start)

        start = time.perf_counter()
        rebuild_results = _run_rounds(rebuild, clone, rebuild=True)
        rebuild_s = min(rebuild_s, time.perf_counter() - start)

        # Every round answered identically.
        assert incremental_results == rebuild_results

    # The maintained index is structure-for-structure a cold rebuild.
    assert _index_snapshot(incremental) == _index_snapshot(rebuild)

    speedup = rebuild_s / incremental_s
    assert speedup >= MIN_SPEEDUP, (
        f"incremental maintenance only {speedup:.2f}x faster than "
        f"rebuild-per-query ({incremental_s * 1e3:.1f} ms vs "
        f"{rebuild_s * 1e3:.1f} ms for {2 * N_ROUNDS} append/query "
        f"rounds on {len(spans)} spans)"
    )
