"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures via
:mod:`repro.experiments` and asserts its qualitative agreement checks.
Expensive experiments run one round (`pedantic`); the timing reported is
the full regenerate-from-scratch cost for that artifact (measurement +
analysis), with the shared measurement context reused across benchmarks
exactly as the XSP pipeline reuses traces across analyses.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, runner, *, rounds: int = 1):
    """Benchmark one experiment runner and validate its checks."""
    result = benchmark.pedantic(runner, rounds=rounds, iterations=1)
    failed = [c.claim for c in result.checks if not c.passed]
    assert not failed, f"{result.exp_id} checks failed: {failed}"
    return result


#: Benchmark modules that build their workloads synthetically and never
#: touch the shared experiment context; a run collecting only these
#: (e.g. the CI quick-pattern gate) skips the expensive warm-up.
_SYNTHETIC_MODULES = {
    "bench_ablation_interval_tree",
    "bench_diff_engine",
    "bench_incremental_index",
    "bench_insights_engine",
    "bench_span_table",
}


@pytest.fixture(scope="session", autouse=True)
def _warm_shared_context(request):
    """Pre-build the shared ResNet50 profile so per-benchmark timings
    reflect each artifact's own work, not the shared warm-up."""
    if all(
        item.module.__name__ in _SYNTHETIC_MODULES
        for item in request.session.items
    ):
        yield
        return
    from repro.experiments import context

    context.model_profile(context.RESNET50_ID, 256)
    yield
