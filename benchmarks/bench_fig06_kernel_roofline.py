"""Benchmark: regenerate the paper's Fig. 6 kernel roofline (A9)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_fig06(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["fig06"], rounds=3)
    print()
    print(result.render())
