"""Ablation: serialized (CUDA_LAUNCH_BLOCKING=1) vs asynchronous profiling.

The serialized re-run XSP uses to disambiguate parallel events costs
extra wall time; this bench quantifies the cost and checks the traces
stay semantically identical (same kernels, same layer attribution).
"""

from __future__ import annotations

import pytest

from repro.core import MLG, ProfilingConfig, XSPSession
from repro.models import get_model

BATCH = 16


@pytest.fixture(scope="module")
def session():
    return XSPSession("Tesla_V100", "tensorflow_like")


@pytest.fixture(scope="module")
def graph():
    return get_model(7).graph


def test_async_profiling(benchmark, session, graph):
    config = ProfilingConfig(levels=MLG, metrics=())
    run = benchmark.pedantic(
        session.profile, args=(graph, BATCH, config), rounds=1, iterations=1
    )
    assert not run.correlation.needs_serialized_rerun


def test_serialized_profiling_same_attribution(benchmark, session, graph):
    config = ProfilingConfig(levels=MLG, metrics=(), serialized=True)
    run = benchmark.pedantic(
        session.profile, args=(graph, BATCH, config), rounds=1, iterations=1
    )
    async_run = session.profile(
        graph, BATCH, ProfilingConfig(levels=MLG, metrics=())
    )
    serialized_kernels = {
        (k.name, layer) for layer, ks in run.kernels_by_layer().items()
        for k in ks
    }
    async_kernels = {
        (k.name, layer) for layer, ks in async_run.kernels_by_layer().items()
        for k in ks
    }
    assert serialized_kernels == async_kernels
