"""Benchmark: regenerate the paper's Table VI model aggregate across batches (A15)."""

from benchmarks.conftest import run_experiment
from repro.experiments import EXPERIMENTS


def test_table06(benchmark):
    result = run_experiment(benchmark, EXPERIMENTS["table06"], rounds=1)
    print()
    print(result.render())
