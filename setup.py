"""Legacy setuptools shim.

Keeps ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` working on offline machines whose setuptools
predates PEP 660 editable wheels (the project metadata lives in
pyproject.toml).
"""

from setuptools import setup

setup()
