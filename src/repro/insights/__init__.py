"""Insight engine: rule-based across-stack bottleneck detection.

XSP's central claim is that correlating model-, framework-, and
library-level profiles enables optimization insights "not possible at any
single stack level".  This package automates that step: a pluggable
registry of rules (:mod:`repro.insights.registry`) consumes a
:class:`~repro.core.pipeline.ModelProfile` plus optional raw
:class:`~repro.tracing.trace.Trace` and batch-sweep data, and emits
ranked, evidence-backed :class:`~repro.insights.model.Insight` objects —
every claim resolving back to span ids, layer indices, and kernel names
in the source capture.

Entry points:

* :func:`advise` / :class:`InsightEngine` — one configuration.
* :func:`aggregate_insights` / :class:`CampaignInsights` — a whole
  campaign grid ("hotspot kernel X dominates in 12/20 configs").
* ``AnalysisPipeline.advise`` and the ``repro advise`` CLI wire this into
  the profiling pipeline end to end.
"""

from repro.insights.model import (
    Evidence,
    Insight,
    ramp,
    severity_label,
)
from repro.insights.registry import (
    Rule,
    all_rules,
    get_rule,
    register,
    rule,
    rule_names,
    rules_requiring,
    unregister,
)
from repro.insights.engine import (
    IncrementalInsightEngine,
    InsightContext,
    InsightEngine,
    InsightReport,
    advise,
)
from repro.insights.live import LiveMonitor, LiveUpdate
from repro.insights.rules import BUILTIN_RULES  # registers built-in rules
from repro.insights.campaign import (
    CampaignInsights,
    SystemicInsight,
    aggregate_insights,
)

__all__ = [
    "BUILTIN_RULES",
    "CampaignInsights",
    "Evidence",
    "IncrementalInsightEngine",
    "Insight",
    "InsightContext",
    "InsightEngine",
    "InsightReport",
    "LiveMonitor",
    "LiveUpdate",
    "Rule",
    "SystemicInsight",
    "advise",
    "aggregate_insights",
    "all_rules",
    "get_rule",
    "ramp",
    "register",
    "rule",
    "rule_names",
    "rules_requiring",
    "severity_label",
    "unregister",
]
