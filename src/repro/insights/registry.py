"""Pluggable rule registry for the insight engine.

A *rule* is a named function from an
:class:`~repro.insights.engine.InsightContext` to a list of
:class:`~repro.insights.model.Insight` objects.  Rules declare which
context ingredients they need (``"profile"``, ``"trace"``, ``"sweep"``);
the engine skips — and reports as skipped — any rule whose requirements
the context cannot satisfy, so a profile-only analysis still runs every
rule that can work without a raw trace.

Registering a rule is one decorator::

    from repro.insights import registry

    @registry.rule(
        "my-rule",
        description="what it looks for",
        requires=("profile",),
    )
    def my_rule(ctx):
        return [Insight(rule="my-rule", ...)]

The built-in rules of :mod:`repro.insights.rules` register themselves on
import; third-party code can add/replace/remove rules at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.insights.engine import InsightContext
    from repro.insights.model import Insight

#: Context ingredients a rule may require.
REQUIREMENTS = ("profile", "trace", "sweep")

RuleFunc = Callable[["InsightContext"], List["Insight"]]


@dataclass(frozen=True)
class Rule:
    """One registered insight rule."""

    name: str
    description: str
    requires: tuple[str, ...]
    func: RuleFunc

    def __call__(self, context: "InsightContext") -> List["Insight"]:
        return self.func(context)


_REGISTRY: dict[str, Rule] = {}


def register(rule_obj: Rule, *, replace: bool = False) -> Rule:
    """Add ``rule_obj`` to the registry (``replace=True`` to override)."""
    for req in rule_obj.requires:
        if req not in REQUIREMENTS:
            raise ValueError(
                f"rule {rule_obj.name!r} requires unknown ingredient "
                f"{req!r}; valid: {REQUIREMENTS}"
            )
    if rule_obj.name in _REGISTRY and not replace:
        raise ValueError(f"rule {rule_obj.name!r} is already registered")
    _REGISTRY[rule_obj.name] = rule_obj
    return rule_obj


def rule(
    name: str,
    *,
    description: str,
    requires: Iterable[str] = ("profile",),
    replace: bool = False,
) -> Callable[[RuleFunc], RuleFunc]:
    """Decorator form of :func:`register`; returns the function unchanged."""

    def decorate(func: RuleFunc) -> RuleFunc:
        register(
            Rule(
                name=name,
                description=description,
                requires=tuple(requires),
                func=func,
            ),
            replace=replace,
        )
        return func

    return decorate


def unregister(name: str) -> Rule:
    """Remove and return a rule; KeyError if absent."""
    return _REGISTRY.pop(name)


def get_rule(name: str) -> Rule:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown insight rule {name!r}; registered: {rule_names()}"
        ) from None


def all_rules() -> list[Rule]:
    """Every registered rule, in stable (name) order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def rules_requiring(*ingredients: str) -> list[Rule]:
    """Registered rules declaring any of ``ingredients``, in name order.

    A registry query mirroring the incremental engine's selection rule
    (which intersects each rule's ``requires`` with the changed
    ingredients over *its own* rule list): when a context ingredient
    changes — e.g. the trace watermark advanced — these are exactly the
    registered rules that would be re-evaluated.  For tooling and
    plugin introspection.
    """
    wanted = set(ingredients)
    for ingredient in wanted:
        if ingredient not in REQUIREMENTS:
            raise ValueError(
                f"unknown ingredient {ingredient!r}; valid: {REQUIREMENTS}"
            )
    return [r for r in all_rules() if wanted.intersection(r.requires)]


def rule_names() -> list[str]:
    return sorted(_REGISTRY)
