"""The insight engine: run registered rules over one profiled configuration.

The engine is deliberately dumb — all domain knowledge lives in the rules
(:mod:`repro.insights.rules`); the engine assembles the context, skips
rules whose ingredients are missing, collects their findings and ranks
them by severity.  Its output, an :class:`InsightReport`, is both
human-renderable (CLI/EXPERIMENTS.md) and machine-checkable (``to_dict``
round-trips every piece of evidence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.pipeline import ModelProfile
from repro.insights import registry
from repro.insights.model import Insight
from repro.sim.hardware import GPUSpec
from repro.tracing.trace import Trace


@dataclass
class InsightContext:
    """Everything a rule may consult for one (model, system, batch) point.

    ``profile`` is mandatory; ``trace`` (a raw capture, for timeline rules
    like idle-bubble detection) and ``sweep`` (batch -> latency or batch
    -> :class:`ModelProfile`, for scaling rules) are optional — rules
    declare what they need and are skipped when it is missing.
    """

    profile: ModelProfile
    trace: Trace | None = None
    #: batch -> model latency in ms (normalized from ``sweep`` inputs).
    sweep_latencies_ms: dict[int, float] = field(default_factory=dict)
    #: High-water device memory of the run, when known (else rules fall
    #: back to the profile's allocation totals).
    peak_device_memory_bytes: int | None = None

    @classmethod
    def build(
        cls,
        profile: ModelProfile,
        *,
        trace: Trace | None = None,
        sweep: Mapping[int, "ModelProfile | float"] | None = None,
        peak_device_memory_bytes: int | None = None,
    ) -> "InsightContext":
        """Normalize raw ingredients (e.g. ``AnalysisPipeline.sweep()``
        output or plain latency mappings) into a context."""
        latencies: dict[int, float] = {}
        for batch, value in (sweep or {}).items():
            latencies[int(batch)] = float(
                value.model_latency_ms
                if isinstance(value, ModelProfile)
                else value
            )
        return cls(
            profile=profile,
            trace=trace,
            sweep_latencies_ms=latencies,
            peak_device_memory_bytes=peak_device_memory_bytes,
        )

    @property
    def gpu(self) -> GPUSpec:
        return self.profile.gpu

    def has(self, requirement: str) -> bool:
        if requirement == "profile":
            return self.profile is not None
        if requirement == "trace":
            return self.trace is not None and len(self.trace) > 0
        if requirement == "sweep":
            return len(self.sweep_latencies_ms) >= 2
        raise ValueError(f"unknown requirement {requirement!r}")


@dataclass
class InsightReport:
    """Ranked findings for one profiled configuration."""

    model_name: str
    system: str
    framework: str
    batch: int
    insights: list[Insight] = field(default_factory=list)
    #: Rules skipped because the context lacked an ingredient.
    skipped_rules: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.insights)

    def __iter__(self):
        return iter(self.insights)

    def by_rule(self, name: str) -> list[Insight]:
        return [i for i in self.insights if i.rule == name]

    @property
    def rules_fired(self) -> list[str]:
        return sorted({i.rule for i in self.insights})

    def above(self, min_severity: float) -> list[Insight]:
        return [i for i in self.insights if i.severity >= min_severity]

    def to_dict(self, *, min_severity: float = 0.0) -> dict[str, Any]:
        return {
            "model": self.model_name,
            "system": self.system,
            "framework": self.framework,
            "batch": self.batch,
            "insights": [i.to_dict() for i in self.above(min_severity)],
            "skipped_rules": dict(self.skipped_rules),
        }

    def render(self, *, min_severity: float = 0.0) -> str:
        header = (
            f"XSP insights: {self.model_name} | system {self.system} | "
            f"framework {self.framework} | batch {self.batch}"
        )
        lines = [header, "=" * len(header)]
        shown = self.above(min_severity)
        if not shown:
            lines.append("no insights at or above the requested severity")
        for insight in shown:
            lines.append(insight.render())
        hidden = len(self.insights) - len(shown)
        if hidden:
            lines.append(f"... ({hidden} below severity {min_severity:.2f})")
        if self.skipped_rules:
            skipped = ", ".join(
                f"{name} (needs {need})"
                for name, need in sorted(self.skipped_rules.items())
            )
            lines.append(f"skipped rules: {skipped}")
        return "\n".join(lines)


class InsightEngine:
    """Runs a rule set (default: the full registry) over contexts."""

    def __init__(self, rules: Iterable[registry.Rule] | None = None) -> None:
        self._explicit = list(rules) if rules is not None else None

    @property
    def rules(self) -> list[registry.Rule]:
        # Resolved per analyze() call so runtime (un)registration of
        # rules is honoured without rebuilding engines.
        return (
            self._explicit
            if self._explicit is not None
            else registry.all_rules()
        )

    def analyze(self, context: InsightContext) -> InsightReport:
        profile = context.profile
        report = InsightReport(
            model_name=profile.model_name,
            system=profile.system,
            framework=profile.framework,
            batch=profile.batch,
        )
        for rule_obj in self.rules:
            missing = [r for r in rule_obj.requires if not context.has(r)]
            if missing:
                report.skipped_rules[rule_obj.name] = "+".join(missing)
                continue
            report.insights.extend(rule_obj(context))
        # Severity-ranked, stable within equal severities (rule order).
        report.insights.sort(key=lambda i: -i.severity)
        return report


#: Distinguishes "ingredient never seen" from a legitimately-None
#: fingerprint (e.g. no trace attached) on the first analyze() call.
_UNSEEN = object()


class IncrementalInsightEngine(InsightEngine):
    """Watermark-aware engine for live / streaming analysis.

    Caches each rule's findings and re-evaluates a rule only when one of
    its declared ``requires`` ingredients actually changed since the
    previous :meth:`analyze` call: the trace's row watermark advanced,
    the profile object was replaced (or the device-memory high-water mark
    moved), or the sweep points changed.  An unchanged ingredient set
    reuses the cached findings verbatim, so re-analyzing a quiet capture
    runs zero rules, and a capture that only grew its trace re-runs only
    the trace rules.  Reports are identical to what a fresh
    :class:`InsightEngine` would produce on the same context.
    """

    def __init__(self, rules: Iterable[registry.Rule] | None = None) -> None:
        super().__init__(rules)
        self._fingerprints: dict[str, Any] = {}
        self._cache: dict[str, list[Insight]] = {}
        #: rule name -> number of times its function actually ran.
        self.evaluations: dict[str, int] = {}
        #: rules re-evaluated by the most recent analyze() call.
        self.last_refreshed: list[str] = []

    @staticmethod
    def _fingerprint(context: InsightContext, requirement: str) -> Any:
        """A value that changes iff the ingredient changed.

        The fingerprints hold the ingredient objects themselves (not
        ``id()``s — a dropped-and-reallocated object could reuse an id
        and silently serve stale findings): profiles compare by dataclass
        *content*, so a re-derived but identical profile correctly reads
        as unchanged; traces compare by identity plus the row watermark.
        Keeping the reference alive until the next analyze() is what
        makes the comparison sound.
        """
        if requirement == "profile":
            return (context.profile, context.peak_device_memory_bytes)
        if requirement == "trace":
            trace = context.trace
            return None if trace is None else (trace, trace.watermark)
        if requirement == "sweep":
            return tuple(sorted(context.sweep_latencies_ms.items()))
        raise ValueError(f"unknown requirement {requirement!r}")

    def analyze(self, context: InsightContext) -> InsightReport:
        fingerprints = {
            req: self._fingerprint(context, req)
            for req in registry.REQUIREMENTS
        }
        changed = {
            req
            for req, fp in fingerprints.items()
            if fp != self._fingerprints.get(req, _UNSEEN)
        }
        profile = context.profile
        report = InsightReport(
            model_name=profile.model_name,
            system=profile.system,
            framework=profile.framework,
            batch=profile.batch,
        )
        self.last_refreshed = []
        for rule_obj in self.rules:
            missing = [r for r in rule_obj.requires if not context.has(r)]
            if missing:
                report.skipped_rules[rule_obj.name] = "+".join(missing)
                self._cache.pop(rule_obj.name, None)
                continue
            cached = self._cache.get(rule_obj.name)
            if cached is None or changed.intersection(rule_obj.requires):
                cached = list(rule_obj(context))
                self._cache[rule_obj.name] = cached
                self.evaluations[rule_obj.name] = (
                    self.evaluations.get(rule_obj.name, 0) + 1
                )
                self.last_refreshed.append(rule_obj.name)
            report.insights.extend(cached)
        report.insights.sort(key=lambda i: -i.severity)
        self._fingerprints = fingerprints
        return report


def advise(
    profile: ModelProfile,
    *,
    trace: Trace | None = None,
    sweep: Mapping[int, "ModelProfile | float"] | None = None,
    peak_device_memory_bytes: int | None = None,
    rules: Iterable[registry.Rule] | None = None,
) -> InsightReport:
    """One-call convenience: build a context and run the engine."""
    context = InsightContext.build(
        profile,
        trace=trace,
        sweep=sweep,
        peak_device_memory_bytes=peak_device_memory_bytes,
    )
    return InsightEngine(rules).analyze(context)
