"""Insight data model: evidence-backed, severity-ranked findings.

XSP's across-stack correlation exists to surface optimization insights
"not possible at any single stack level" (paper Sec. I).  An
:class:`Insight` is one such finding in machine-checkable form: which
rule produced it, how severe it is, what to do about it, and — crucially
— :class:`Evidence` that resolves back to the source data (span ids into
the trace, layer indices into the profile, kernel names into the kernel
tables), so every claim can be verified against the capture it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Severity bands: scores are floats in [0, 1]; labels are coarse bands
#: used for display and filtering (see ROADMAP "Insights architecture").
SEVERITY_BANDS = (
    (0.65, "critical"),
    (0.30, "warning"),
    (0.0, "info"),
)


def severity_label(score: float) -> str:
    """Band name for a severity score ("info" / "warning" / "critical")."""
    for floor, label in SEVERITY_BANDS:
        if score >= floor:
            return label
    return "info"


def ramp(measured: float, lo: float, hi: float) -> float:
    """Linear severity ramp: 0 at/below ``lo``, 1 at/above ``hi``.

    The standard way rules turn a measured value against its threshold
    into a score — a measurement at the threshold is barely notable, one
    at the saturation point is as bad as the rule can express.
    """
    if hi <= lo:
        raise ValueError(f"ramp needs lo < hi, got [{lo}, {hi}]")
    return min(1.0, max(0.0, (measured - lo) / (hi - lo)))


@dataclass(frozen=True)
class Evidence:
    """One verifiable piece of support for an insight.

    All references are into the insight's source data: ``span_ids``
    resolve via ``trace.by_id()``, ``layer_indices`` via
    ``profile.layers[*].index``, ``kernel_names`` via the profile's
    kernel list.  ``measured`` holds the observed values the rule acted
    on; ``threshold`` the limits it compared them against.
    """

    kind: str  #: e.g. "gpu_gap", "kernel", "layer", "sweep", "memory"
    summary: str
    span_ids: tuple[int, ...] = ()
    layer_indices: tuple[int, ...] = ()
    kernel_names: tuple[str, ...] = ()
    measured: Mapping[str, float] = field(default_factory=dict)
    threshold: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "summary": self.summary,
            "span_ids": list(self.span_ids),
            "layer_indices": list(self.layer_indices),
            "kernel_names": list(self.kernel_names),
            "measured": dict(self.measured),
            "threshold": dict(self.threshold),
        }


@dataclass(frozen=True)
class Insight:
    """One ranked, evidence-backed finding from a rule."""

    rule: str
    title: str
    severity: float  #: in [0, 1]; see :func:`severity_label` for bands
    recommendation: str
    evidence: tuple[Evidence, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(
                f"severity must be in [0, 1], got {self.severity} "
                f"(rule {self.rule!r})"
            )

    @property
    def severity_band(self) -> str:
        return severity_label(self.severity)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "title": self.title,
            "severity": self.severity,
            "severity_band": self.severity_band,
            "recommendation": self.recommendation,
            "evidence": [e.to_dict() for e in self.evidence],
        }

    def render(self) -> str:
        """Multi-line text form used by the CLI and reports."""
        lines = [
            f"[{self.severity_band.upper():>8} {self.severity:.2f}] "
            f"{self.title}  ({self.rule})",
            f"    -> {self.recommendation}",
        ]
        for ev in self.evidence:
            lines.append(f"    * {ev.summary}")
        return "\n".join(lines)
