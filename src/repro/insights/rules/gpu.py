"""GPU-kernel-level rules: idle bubbles, hotspots, library mix, occupancy.

These rules consume the device side of the across-stack profile — the
merged kernel records and (for timeline rules) the raw trace — and map
directly onto the paper's kernel-level analyses (A8-A11).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.pipeline import KernelProfile
from repro.insights.engine import InsightContext
from repro.insights.model import Evidence, Insight, ramp
from repro.insights.registry import rule
from repro.tracing.span import Level, SpanKind

#: Device-idle fraction at which bubbles become worth reporting / saturate.
IDLE_WARN_FRACTION = 0.10
IDLE_SATURATION = 0.50
#: Largest individual gaps quoted as evidence.
TOP_GAPS = 5

#: Kernel-name latency share at which one kernel counts as a hotspot.
HOTSPOT_WARN_SHARE = 0.25
HOTSPOT_SATURATION = 0.70

#: Latency share in non-library kernels worth flagging.
CUSTOM_WARN_SHARE = 0.15
CUSTOM_SATURATION = 0.60
#: Substrings identifying vendor-library (cuDNN/cuBLAS) kernels.
LIBRARY_KERNEL_MARKERS = ("scudnn", "sgemm", "cgemm", "cudnn", "cublas")

#: Latency-weighted achieved occupancy below which the device is starved.
OCCUPANCY_WARN = 0.60
OCCUPANCY_FLOOR = 0.15
LOW_OCCUPANCY_KERNEL = 0.40
TOP_KERNELS = 5


def _kernel_layers(kernels: list[KernelProfile], limit: int = 10) -> tuple[int, ...]:
    """Distinct layer indices hosting ``kernels``, in first-seen order."""
    seen: dict[int, None] = {}
    for k in kernels:
        if k.layer_index not in seen:
            seen[k.layer_index] = None
            if len(seen) >= limit:
                break
    return tuple(seen)


@rule(
    "gpu-idle-bubbles",
    description="device-idle gaps between GPU kernel executions "
    "(served by the trace's gap index)",
    requires=("profile", "trace"),
)
def gpu_idle_bubbles(ctx: InsightContext) -> list[Insight]:
    trace = ctx.trace
    assert trace is not None  # guaranteed by requires
    # Column-level queries only: the device timeline's extent and its
    # bubbles come straight from the trace index — no span objects.
    index = trace.index
    kind: SpanKind | None = SpanKind.EXECUTION
    extent = index.level_extent_ns(Level.GPU_KERNEL, kind)
    if extent is None:
        # Traces captured without launch/execution splitting still have
        # a device timeline worth inspecting.
        kind = None
        extent = index.level_extent_ns(Level.GPU_KERNEL, kind)
    if extent is None:
        return []
    gaps = trace.gaps(Level.GPU_KERNEL, kind)
    extent_ns = extent[1] - extent[0]
    if extent_ns <= 0:
        return []
    idle_ns = sum(g.duration_ns for g in gaps)
    idle_fraction = idle_ns / extent_ns
    severity = ramp(idle_fraction, IDLE_WARN_FRACTION / 2, IDLE_SATURATION)

    evidence = [
        Evidence(
            kind="gpu_gap",
            summary=(
                f"{len(gaps)} idle gaps totalling {idle_ns / 1e6:.3f} ms "
                f"({100 * idle_fraction:.1f}% of the {extent_ns / 1e6:.3f} ms "
                "device timeline)"
            ),
            measured={
                "idle_ms": idle_ns / 1e6,
                "timeline_ms": extent_ns / 1e6,
                "idle_fraction": idle_fraction,
                "n_gaps": float(len(gaps)),
            },
            threshold={"idle_fraction": IDLE_WARN_FRACTION},
        )
    ]
    for gap in sorted(gaps, key=lambda g: -g.duration_ns)[:TOP_GAPS]:
        evidence.append(
            Evidence(
                kind="gpu_gap",
                summary=(
                    f"gap of {gap.duration_ns / 1e3:.1f} us between spans "
                    f"#{gap.before_id} and #{gap.after_id}"
                ),
                span_ids=(gap.before_id, gap.after_id),
                measured={"gap_us": gap.duration_ns / 1e3},
            )
        )
    return [
        Insight(
            rule="gpu-idle-bubbles",
            title=(
                f"GPU idle {100 * idle_fraction:.1f}% of the kernel timeline "
                f"across {len(gaps)} bubbles"
            ),
            severity=severity,
            recommendation=(
                "overlap host work with device execution (async launches, "
                "larger batches) or fuse the launches bounding the biggest "
                "gaps to keep the GPU fed"
            ),
            evidence=tuple(evidence),
        )
    ]


@rule(
    "kernel-hotspot",
    description="single kernel name dominating total GPU kernel latency",
)
def kernel_hotspot(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    kernels = profile.kernels
    total = profile.kernel_latency_ms
    if not kernels or total <= 0:
        return []
    groups: dict[str, list[KernelProfile]] = defaultdict(list)
    for k in kernels:
        groups[k.name].append(k)
    ranked = sorted(
        groups.items(), key=lambda kv: -sum(k.latency_ms for k in kv[1])
    )
    evidence = []
    for name, group in ranked[:3]:
        latency = sum(k.latency_ms for k in group)
        evidence.append(
            Evidence(
                kind="kernel",
                summary=(
                    f"{name}: {latency:.3f} ms over {len(group)} launches "
                    f"({100 * latency / total:.1f}% of kernel time)"
                ),
                kernel_names=(name,),
                layer_indices=_kernel_layers(group),
                measured={
                    "latency_ms": latency,
                    "share": latency / total,
                    "count": float(len(group)),
                },
                threshold={"share": HOTSPOT_WARN_SHARE},
            )
        )
    top_name, top_group = ranked[0]
    top_share = sum(k.latency_ms for k in top_group) / total
    return [
        Insight(
            rule="kernel-hotspot",
            title=(
                f"kernel {top_name} concentrates "
                f"{100 * top_share:.1f}% of GPU time"
            ),
            severity=ramp(top_share, HOTSPOT_WARN_SHARE / 2, HOTSPOT_SATURATION),
            recommendation=(
                "optimizing this one kernel (algorithm choice, tile size, "
                "tensor-core variant) bounds the achievable model speedup; "
                "check whether a faster library algorithm exists for the "
                "layers that invoke it"
            ),
            evidence=tuple(evidence),
        )
    ]


def _is_library_kernel(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in LIBRARY_KERNEL_MARKERS)


@rule(
    "library-kernel-mix",
    description="GPU time spent in non-library (custom/Eigen) kernels that "
    "cuDNN or cuBLAS could serve",
)
def library_kernel_mix(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    total = profile.kernel_latency_ms
    if not profile.kernels or total <= 0:
        return []
    custom: dict[str, float] = defaultdict(float)
    custom_layers: dict[str, list[KernelProfile]] = defaultdict(list)
    custom_ms = 0.0
    for k in profile.kernels:
        if not _is_library_kernel(k.name):
            custom[k.name] += k.latency_ms
            custom_layers[k.name].append(k)
            custom_ms += k.latency_ms
    share = custom_ms / total
    top = sorted(custom.items(), key=lambda kv: -kv[1])[:3]
    # Aggregate evidence leads so the insight is never evidence-free
    # (an all-library profile has no per-kernel entries to quote).
    evidence = [
        Evidence(
            kind="kernel",
            summary=(
                f"{custom_ms:.3f} ms of {total:.3f} ms kernel time "
                f"({100 * share:.1f}%) outside cuDNN/cuBLAS across "
                f"{len(custom)} kernel names"
            ),
            measured={"custom_ms": custom_ms, "custom_share": share},
            threshold={"custom_share": CUSTOM_WARN_SHARE},
        )
    ]
    evidence.extend(
        Evidence(
            kind="kernel",
            summary=(
                f"{name}: {latency:.3f} ms outside cuDNN/cuBLAS "
                f"({100 * latency / total:.1f}% of kernel time)"
            ),
            kernel_names=(name,),
            layer_indices=_kernel_layers(custom_layers[name]),
            measured={"latency_ms": latency, "share": latency / total},
            threshold={"custom_share": CUSTOM_WARN_SHARE},
        )
        for name, latency in top
    )
    return [
        Insight(
            rule="library-kernel-mix",
            title=(
                f"{100 * share:.1f}% of GPU time in custom/framework kernels "
                f"vs vendor libraries"
            ),
            severity=ramp(share, CUSTOM_WARN_SHARE / 2, CUSTOM_SATURATION),
            recommendation=(
                "element-wise and layout kernels outside cuDNN/cuBLAS are "
                "prime fusion targets; route them through library fused ops "
                "(e.g. cudnnConvolutionBiasActivationForward) or a fusing "
                "compiler"
            ),
            evidence=tuple(evidence),
        )
    ]


@rule(
    "low-occupancy-kernels",
    description="latency-weighted achieved occupancy leaving SMs starved",
)
def low_occupancy_kernels(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    if not profile.kernels or profile.kernel_latency_ms <= 0:
        return []
    weighted = profile.achieved_occupancy
    severity = ramp(OCCUPANCY_WARN - weighted, 0.0, OCCUPANCY_WARN - OCCUPANCY_FLOOR)
    worst = sorted(
        (k for k in profile.kernels if k.achieved_occupancy < LOW_OCCUPANCY_KERNEL),
        key=lambda k: -k.latency_ms,
    )[:TOP_KERNELS]
    evidence = [
        Evidence(
            kind="kernel",
            summary=(
                f"model-wide latency-weighted achieved occupancy "
                f"{100 * weighted:.1f}%"
            ),
            measured={"achieved_occupancy": weighted},
            threshold={"achieved_occupancy": OCCUPANCY_WARN},
        )
    ]
    for k in worst:
        evidence.append(
            Evidence(
                kind="kernel",
                summary=(
                    f"{k.name} (layer {k.layer_index}): occupancy "
                    f"{100 * k.achieved_occupancy:.1f}% over {k.latency_ms:.3f} ms"
                ),
                kernel_names=(k.name,),
                layer_indices=(k.layer_index,),
                measured={
                    "achieved_occupancy": k.achieved_occupancy,
                    "latency_ms": k.latency_ms,
                },
                threshold={"achieved_occupancy": LOW_OCCUPANCY_KERNEL},
            )
        )
    return [
        Insight(
            rule="low-occupancy-kernels",
            title=(
                f"latency-weighted achieved occupancy {100 * weighted:.1f}%"
            ),
            severity=severity,
            recommendation=(
                "increase parallel work per launch (bigger batch, wider "
                "tiles) or adjust launch geometry for the lowest-occupancy "
                "kernels below"
            ),
            evidence=tuple(evidence),
        )
    ]
