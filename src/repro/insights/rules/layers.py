"""Layer-level rules: roofline classification, fusion runs, host/GPU split.

These reuse the existing analysis machinery — the roofline module's
memory-bound classification (A14) and the GPU-vs-non-GPU decomposition
(A13) — and turn their tables into ranked findings.
"""

from __future__ import annotations

from repro.analysis.a13_gpu_vs_nongpu import model_non_gpu_latency_ms
from repro.analysis.a14_layer_roofline import bound_by_layer_type
from repro.core.pipeline import LayerProfile
from repro.insights.engine import InsightContext
from repro.insights.model import Evidence, Insight, ramp
from repro.insights.registry import rule

#: Share of GPU time in memory-bound layers that makes the model
#: bandwidth-limited in practice.
MEMORY_BOUND_WARN_SHARE = 0.40
MEMORY_BOUND_SATURATION = 0.90

#: Layer types cheap enough that adjacent runs should be fused.
ELEMENTWISE_TYPES = frozenset(
    {
        "Add",
        "BatchNorm",
        "BiasAdd",
        "Clip",
        "Elu",
        "LeakyRelu",
        "Mul",
        "Relu",
        "Relu6",
        "Scale",
        "Sigmoid",
        "Sub",
        "Tanh",
    }
)
FUSION_WARN_SHARE = 0.05
FUSION_SATURATION = 0.35
TOP_RUNS = 5

#: Model-latency share outside GPU kernels worth flagging (paper Fig. 8
#: attributes it to framework overhead, stalls and synchronization).
NON_GPU_WARN_SHARE = 0.20
NON_GPU_SATURATION = 0.70
TOP_LAYERS = 5


@rule(
    "memory-bound-layers",
    description="share of GPU time spent in memory-bound (roofline) layers",
)
def memory_bound_layers(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    gpu = ctx.gpu
    classified = [
        layer
        for layer in profile.layers
        if layer.kernels and layer.dram_bytes > 0
    ]
    total_ms = sum(layer.kernel_latency_ms for layer in classified)
    if not classified or total_ms <= 0:
        return []
    memory_bound = [l for l in classified if l.memory_bound(gpu)]
    mem_ms = sum(l.kernel_latency_ms for l in memory_bound)
    share = mem_ms / total_ms

    per_type = bound_by_layer_type(profile)
    mem_types = sorted(t for t, b in per_type.items() if b == "memory-bound")
    top_mem = sorted(memory_bound, key=lambda l: -l.kernel_latency_ms)[:TOP_LAYERS]
    evidence = [
        Evidence(
            kind="layer",
            summary=(
                f"{len(memory_bound)}/{len(classified)} classified layers are "
                f"memory-bound, {mem_ms:.3f} ms of {total_ms:.3f} ms GPU time "
                f"({100 * share:.1f}%); memory-bound types: "
                f"{', '.join(mem_types) if mem_types else 'none'}"
            ),
            layer_indices=tuple(l.index for l in top_mem),
            measured={
                "memory_bound_share": share,
                "memory_bound_ms": mem_ms,
                "n_memory_bound": float(len(memory_bound)),
                "n_classified": float(len(classified)),
            },
            threshold={"memory_bound_share": MEMORY_BOUND_WARN_SHARE},
        )
    ]
    for layer in top_mem:
        evidence.append(
            Evidence(
                kind="layer",
                summary=(
                    f"layer {layer.index} {layer.name} ({layer.layer_type}): "
                    f"AI {layer.arithmetic_intensity:.2f} flops/B vs ideal "
                    f"{gpu.ideal_arithmetic_intensity:.2f}, "
                    f"{layer.kernel_latency_ms:.3f} ms"
                ),
                layer_indices=(layer.index,),
                measured={
                    "arithmetic_intensity": layer.arithmetic_intensity,
                    "kernel_latency_ms": layer.kernel_latency_ms,
                },
                threshold={
                    "arithmetic_intensity": gpu.ideal_arithmetic_intensity
                },
            )
        )
    return [
        Insight(
            rule="memory-bound-layers",
            title=(
                f"{100 * share:.1f}% of GPU time in memory-bound layers "
                f"({'memory' if profile.memory_bound else 'compute'}-bound "
                "model overall)"
            ),
            severity=ramp(share, MEMORY_BOUND_WARN_SHARE / 2,
                          MEMORY_BOUND_SATURATION),
            recommendation=(
                "raise arithmetic intensity where the bandwidth ceiling "
                "binds: fuse element-wise chains into producers, use "
                "channels-last layouts, or move the hottest memory-bound "
                "types to tensor-core/library implementations"
            ),
            evidence=tuple(evidence),
        )
    ]


def _fusion_runs(layers: list[LayerProfile]) -> list[list[LayerProfile]]:
    """Maximal runs of >= 2 adjacent element-wise layers with kernels."""
    runs: list[list[LayerProfile]] = []
    current: list[LayerProfile] = []
    for layer in layers:
        if layer.layer_type in ELEMENTWISE_TYPES and layer.kernels:
            current.append(layer)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    return runs


@rule(
    "layer-fusion-candidates",
    description="adjacent element-wise layers each paying their own kernel "
    "launches — fusion candidates",
)
def layer_fusion_candidates(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    runs = _fusion_runs(profile.layers)
    if not runs or profile.model_latency_ms <= 0:
        return []
    run_ms = sum(sum(l.latency_ms for l in run) for run in runs)
    share = run_ms / profile.model_latency_ms
    n_layers = sum(len(run) for run in runs)
    n_launches = sum(len(l.kernels) for run in runs for l in run)

    top = sorted(
        runs, key=lambda run: -sum(l.latency_ms for l in run)
    )[:TOP_RUNS]
    evidence = []
    for run in top:
        chain = " -> ".join(f"{l.layer_type}[{l.index}]" for l in run)
        evidence.append(
            Evidence(
                kind="layer",
                summary=(
                    f"{chain}: {sum(l.latency_ms for l in run):.3f} ms, "
                    f"{sum(len(l.kernels) for l in run)} kernel launches"
                ),
                layer_indices=tuple(l.index for l in run),
                measured={
                    "run_latency_ms": sum(l.latency_ms for l in run),
                    "n_launches": float(sum(len(l.kernels) for l in run)),
                },
                threshold={"min_run_length": 2.0},
            )
        )
    return [
        Insight(
            rule="layer-fusion-candidates",
            title=(
                f"{len(runs)} fusable element-wise chains ({n_layers} layers, "
                f"{n_launches} launches, {100 * share:.1f}% of model latency)"
            ),
            severity=ramp(share, FUSION_WARN_SHARE / 2, FUSION_SATURATION),
            recommendation=(
                "each chain re-reads its tensor from DRAM per op; fusing the "
                "chain into one kernel (or its producer conv/GEMM epilogue) "
                "removes the intermediate traffic and launch overhead"
            ),
            evidence=tuple(evidence),
        )
    ]


@rule(
    "host-gpu-imbalance",
    description="model latency not covered by GPU kernel execution (A13)",
)
def host_gpu_imbalance(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    if profile.model_latency_ms <= 0:
        return []
    non_gpu_ms = model_non_gpu_latency_ms(profile)
    share = non_gpu_ms / profile.model_latency_ms
    worst = sorted(
        (l for l in profile.layers if l.latency_ms > 0),
        key=lambda l: -l.non_gpu_latency_ms,
    )[:TOP_LAYERS]
    evidence = [
        Evidence(
            kind="layer",
            summary=(
                f"{non_gpu_ms:.3f} ms of {profile.model_latency_ms:.3f} ms "
                f"model latency ({100 * share:.1f}%) outside GPU kernels"
            ),
            measured={
                "non_gpu_ms": non_gpu_ms,
                "model_latency_ms": profile.model_latency_ms,
                "non_gpu_share": share,
            },
            threshold={"non_gpu_share": NON_GPU_WARN_SHARE},
        )
    ]
    for layer in worst:
        layer_share = (
            layer.non_gpu_latency_ms / layer.latency_ms
            if layer.latency_ms
            else 0.0
        )
        evidence.append(
            Evidence(
                kind="layer",
                summary=(
                    f"layer {layer.index} {layer.name} ({layer.layer_type}): "
                    f"{layer.non_gpu_latency_ms:.3f} ms non-GPU "
                    f"({100 * layer_share:.1f}% of the layer)"
                ),
                layer_indices=(layer.index,),
                measured={
                    "non_gpu_ms": layer.non_gpu_latency_ms,
                    "non_gpu_share": layer_share,
                },
            )
        )
    return [
        Insight(
            rule="host-gpu-imbalance",
            title=(
                f"{100 * share:.1f}% of model latency spent outside GPU "
                "kernels"
            ),
            severity=ramp(share, NON_GPU_WARN_SHARE / 2, NON_GPU_SATURATION),
            recommendation=(
                "host-side framework overhead, launch latency and "
                "synchronization dominate the gap; batch more work per "
                "launch, pin the input pipeline, or amortize via larger "
                "batches"
            ),
            evidence=tuple(evidence),
        )
    ]
