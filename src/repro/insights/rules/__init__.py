"""Built-in insight rules, registered on import.

Nine rules spanning the stack levels the paper correlates:

===========================  =========================  =================
rule                         stack level(s)             needs
===========================  =========================  =================
gpu-idle-bubbles             GPU timeline               profile + trace
kernel-hotspot               GPU kernels (A10)          profile
library-kernel-mix           GPU kernels / libraries    profile
low-occupancy-kernels        GPU kernels (A8)           profile
memory-bound-layers          layers x roofline (A14)    profile
layer-fusion-candidates      layers                     profile
host-gpu-imbalance           model vs GPU (A13)         profile
batch-scaling-knee           model (A1)                 profile + sweep
memory-pressure              device memory (A4)         profile
===========================  =========================  =================

Importing this package (which :mod:`repro.insights` does) registers all
of them; see :mod:`repro.insights.registry` for adding your own.
"""

from repro.insights.rules import gpu, layers, scaling  # noqa: F401  (registration)

#: Names of the rules shipped with the engine.
BUILTIN_RULES = (
    "batch-scaling-knee",
    "gpu-idle-bubbles",
    "host-gpu-imbalance",
    "kernel-hotspot",
    "layer-fusion-candidates",
    "library-kernel-mix",
    "low-occupancy-kernels",
    "memory-bound-layers",
    "memory-pressure",
)
