"""Scaling rules: batch-size knee detection and device-memory pressure.

The knee rule consumes sweep results (batch -> latency), applying the
paper's optimal-batch-size criterion (Sec. III-D1): the smallest batch
whose doubling gains under 5% throughput.  The memory rule watches the
profiled configuration's distance from :class:`OutOfDeviceMemoryError`
territory.
"""

from __future__ import annotations

from repro.analysis.a01_model_info import optimal_batch_size, throughputs
from repro.insights.engine import InsightContext
from repro.insights.model import Evidence, Insight, ramp
from repro.insights.registry import rule

#: The paper's doubling-gain threshold for the optimal batch size.
KNEE_GAIN_THRESHOLD = 0.05
#: Throughput headroom (vs the knee) at which under-batching saturates.
HEADROOM_SATURATION = 1.0

#: Device-memory usage fractions for the pressure warning.
MEMORY_WARN_USAGE = 0.75
MEMORY_SATURATION = 1.0
TOP_ALLOC_LAYERS = 5


@rule(
    "batch-scaling-knee",
    description="position of the profiled batch size relative to the "
    "throughput knee of the batch sweep",
    requires=("profile", "sweep"),
)
def batch_scaling_knee(ctx: InsightContext) -> list[Insight]:
    latencies = ctx.sweep_latencies_ms
    tput = throughputs(latencies)
    if len(tput) < 2:
        return []
    knee = optimal_batch_size(latencies, threshold=KNEE_GAIN_THRESHOLD)
    batch = ctx.profile.batch
    # Throughput at the profiled batch: measured if swept, else the
    # profile's own numbers.
    batch_tput = tput.get(batch, ctx.profile.throughput)
    knee_tput = tput[knee]

    curve = ", ".join(
        f"bs{b}: {tput[b]:.0f}/s" for b in sorted(tput)
    )
    base_evidence = Evidence(
        kind="sweep",
        summary=f"throughput curve — {curve}; knee at batch {knee}",
        measured={str(b): tput[b] for b in sorted(tput)},
        threshold={"doubling_gain": KNEE_GAIN_THRESHOLD},
    )

    if batch < knee:
        # batch_tput may come from the merged profile (when the batch was
        # not swept), measured differently than the sweep curve — clamp so
        # measurement-skew can only lower the severity, not flip the
        # insight's direction.
        headroom = max(0.0, knee_tput / batch_tput - 1.0)
        return [
            Insight(
                rule="batch-scaling-knee",
                title=(
                    f"batch {batch} is below the throughput knee "
                    f"(batch {knee}): {100 * headroom:.0f}% headroom"
                ),
                severity=ramp(headroom, KNEE_GAIN_THRESHOLD,
                              HEADROOM_SATURATION),
                recommendation=(
                    f"serving at batch {knee} raises throughput from "
                    f"{batch_tput:.0f} to {knee_tput:.0f} inputs/s; "
                    "batch requests up to the knee unless latency targets "
                    "forbid it"
                ),
                evidence=(
                    base_evidence,
                    Evidence(
                        kind="sweep",
                        summary=(
                            f"batch {batch}: {batch_tput:.0f} inputs/s vs "
                            f"{knee_tput:.0f} at the knee"
                        ),
                        measured={
                            "batch_throughput": batch_tput,
                            "knee_throughput": knee_tput,
                            "headroom": headroom,
                        },
                        threshold={"headroom": KNEE_GAIN_THRESHOLD},
                    ),
                ),
            )
        ]
    # At or beyond the knee: doubling buys nothing but latency and memory.
    overshoot = batch / knee if knee else 1.0
    return [
        Insight(
            rule="batch-scaling-knee",
            title=(
                f"batch {batch} is at/above the throughput knee "
                f"(batch {knee})"
            ),
            severity=ramp(overshoot, 2.0, 8.0),
            recommendation=(
                "throughput has saturated; larger batches only add latency "
                "and memory pressure — scale out across replicas instead of "
                "up in batch size"
            ),
            evidence=(base_evidence,),
        )
    ]


@rule(
    "memory-pressure",
    description="device-memory high-water mark approaching the "
    "OutOfDeviceMemoryError threshold",
)
def memory_pressure(ctx: InsightContext) -> list[Insight]:
    profile = ctx.profile
    capacity = profile.gpu.dram_gb * 1e9
    if capacity <= 0:
        return []
    peak = ctx.peak_device_memory_bytes
    source = "measured high-water mark"
    if peak is None:
        # Upper bound from the layer-level profile: weights + activations
        # allocated across the run (liveness-based freeing makes the true
        # peak lower, so this only over-warns, never under-warns).
        peak = sum(layer.alloc_bytes for layer in profile.layers)
        source = "sum of per-layer allocations (upper bound)"
    usage = peak / capacity
    top = sorted(profile.layers, key=lambda l: -l.alloc_bytes)[:TOP_ALLOC_LAYERS]
    evidence = [
        Evidence(
            kind="memory",
            summary=(
                f"{peak / 1e9:.2f} GB of {capacity / 1e9:.1f} GB device "
                f"memory ({100 * usage:.1f}%) — {source}"
            ),
            measured={
                "peak_bytes": float(peak),
                "capacity_bytes": capacity,
                "usage": usage,
            },
            threshold={"usage": MEMORY_WARN_USAGE},
        )
    ]
    for layer in top:
        if layer.alloc_bytes <= 0:
            continue
        evidence.append(
            Evidence(
                kind="memory",
                summary=(
                    f"layer {layer.index} {layer.name} ({layer.layer_type}) "
                    f"allocates {layer.alloc_mb:.1f} MB"
                ),
                layer_indices=(layer.index,),
                measured={"alloc_bytes": float(layer.alloc_bytes)},
            )
        )
    if usage >= MEMORY_WARN_USAGE:
        title = (
            f"device memory {100 * usage:.1f}% full — near the "
            "out-of-memory threshold"
        )
        recommendation = (
            "the next batch-size doubling will likely raise "
            "OutOfDeviceMemoryError; cap the batch, shrink workspaces, or "
            "move to a larger-memory system"
        )
    else:
        title = f"device memory usage {100 * usage:.1f}% of capacity"
        recommendation = (
            "memory is not the binding constraint at this configuration; "
            "batch scaling headroom remains before the OOM threshold"
        )
    return [
        Insight(
            rule="memory-pressure",
            title=title,
            severity=ramp(usage, MEMORY_WARN_USAGE / 2, MEMORY_SATURATION),
            recommendation=recommendation,
            evidence=tuple(evidence),
        )
    ]
