"""Live monitoring: insights over an in-flight capture, refreshed as it grows.

SysOM-AI-style during-the-run diagnosis for this stack: a
:class:`LiveMonitor` attaches a :meth:`~repro.tracing.server.TracingServer.stream`
cursor to an open trace, consumes row batches as tracers publish them,
derives a single-run profile view of the partial capture
(:func:`~repro.analysis.diff.sources.profile_from_trace`), and re-runs the
:class:`~repro.insights.engine.IncrementalInsightEngine` — so only rules
whose ingredients changed since the last watermark are re-evaluated, and
a quiet capture costs nothing.

The monitor is the sanctioned cross-thread consumer of an open trace:
the stream cursor reads completed rows below the watermark, and the
trace's index advances (never rebuilds) from the monitor's thread while
the capture thread keeps appending under the server lock.

``AnalysisPipeline.advise_live`` / ``repro advise --live`` wire this to a
worker thread running ``profile_application``; the monitor works equally
on any open trace, including a raw single-run capture when
``correlate=True`` re-runs the incremental correlation pass per refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.insights.engine import (
    IncrementalInsightEngine,
    InsightContext,
    InsightReport,
)
from repro.tracing.correlation import (
    LaunchExecutionState,
    correlate_launch_execution,
    reconstruct_parents,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.insights import registry
    from repro.tracing.server import TracingServer
    from repro.tracing.trace import Trace


@dataclass
class LiveUpdate:
    """One refresh of the live report."""

    #: Rows visible (the trace watermark) at refresh time.
    n_spans: int
    #: Rows consumed since the previous update.
    new_rows: int
    report: InsightReport
    #: Rules the incremental engine actually re-evaluated this refresh.
    refreshed_rules: list[str] = field(default_factory=list)
    #: True for the update that observed end-of-capture.
    final: bool = False


class LiveMonitor:
    """Follow an open trace and keep an insight report current.

    ``correlate=True`` additionally runs the incremental correlation pass
    (``reconstruct_parents`` + ``correlate_launch_execution`` with a
    rising ``since_row``) before each refresh — needed for raw captures
    whose kernel spans arrive unparented; ``profile_application``
    re-publishes pre-correlated rows, so its monitors leave it off.
    """

    def __init__(
        self,
        server: "TracingServer",
        trace_id: int | None = None,
        *,
        rules: "Iterable[registry.Rule] | None" = None,
        correlate: bool = False,
    ) -> None:
        self._stream = server.stream(trace_id)
        self._engine = IncrementalInsightEngine(rules)
        self._correlate = correlate
        self._corr_state = LaunchExecutionState()
        self._corr_rows = 0
        self._finished = False
        self.report: InsightReport | None = None

    @property
    def trace(self) -> "Trace":
        return self._stream.trace

    @property
    def engine(self) -> IncrementalInsightEngine:
        return self._engine

    @property
    def done(self) -> bool:
        """True once end-of-capture was observed (and reported)."""
        return self._finished

    def poll(self, timeout: float | None = 0) -> LiveUpdate | None:
        """Consume available rows and refresh the report.

        Waits up to ``timeout`` seconds for new rows (``0`` polls,
        ``None`` blocks until rows arrive or the capture ends).  Returns
        ``None`` when nothing new happened within the wait; otherwise the
        refreshed :class:`LiveUpdate`, whose ``final`` flag marks the
        end-of-capture refresh.
        """
        if self._finished:
            return None
        batch = self._stream.read(timeout)
        at_end = self._stream.at_end
        if at_end:
            self._finished = True
        new_rows = len(batch) if batch is not None else 0
        if new_rows == 0:
            if at_end and self.report is not None:
                # Capture closed with no unseen rows: emit the closing
                # update without running a single rule.
                return LiveUpdate(
                    n_spans=self._stream.cursor,
                    new_rows=0,
                    report=self.report,
                    final=True,
                )
            return None
        return self._refresh(new_rows, at_end)

    def updates(self, timeout: float | None = None) -> Iterator[LiveUpdate]:
        """Yield refreshes until end-of-capture (blocking iteration)."""
        while not self._finished:
            update = self.poll(timeout)
            if update is not None:
                yield update

    def _refresh(self, new_rows: int, final: bool) -> LiveUpdate:
        # Imported here: diff.sources imports the pipeline's profile
        # model, which this package must not load at import time.
        from repro.analysis.diff.sources import profile_from_trace

        trace = self.trace
        if self._correlate:
            # Pin the window [corr_rows, watermark) for this refresh:
            # the capture may keep publishing mid-call, and rows beyond
            # the snapshot must be left for the next increment.
            watermark = trace.watermark
            reconstruct_parents(
                trace, strict=False, since_row=self._corr_rows
            )
            correlate_launch_execution(
                trace,
                since_row=self._corr_rows,
                to_row=watermark,
                state=self._corr_state,
            )
            self._corr_rows = watermark
        profile = profile_from_trace(trace)
        context = InsightContext.build(profile, trace=trace)
        self.report = self._engine.analyze(context)
        return LiveUpdate(
            n_spans=self._stream.cursor,
            new_rows=new_rows,
            report=self.report,
            refreshed_rules=list(self._engine.last_refreshed),
            final=final,
        )
