"""Campaign-wide insight aggregation: systemic patterns across a grid.

A single configuration's insights say "this kernel dominates here"; a
campaign's say "this kernel dominates in 12/20 configurations" — the
across-*configuration* analogue of the paper's across-stack claim.  This
module rolls per-point :class:`~repro.insights.engine.InsightReport`\\ s
up into :class:`SystemicInsight` records ranked by how widespread and how
severe a finding is.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.pipeline import ModelProfile
from repro.insights.engine import InsightContext, InsightEngine
from repro.insights.registry import Rule


def _label_of(key: Any) -> str:
    """Point label: CampaignPoint-like objects expose ``.label``."""
    return getattr(key, "label", None) or str(key)


@dataclass(frozen=True)
class SystemicInsight:
    """One finding aggregated across campaign points."""

    rule: str
    title: str
    count: int  #: points where the rule fired at/above the cutoff
    total: int  #: points analyzed
    mean_severity: float
    max_severity: float
    configs: tuple[str, ...]  #: labels of the affected points
    #: Most common evidence artifacts (kernel names, layer types, ...).
    details: tuple[str, ...] = ()

    @property
    def prevalence(self) -> float:
        return self.count / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "title": self.title,
            "count": self.count,
            "total": self.total,
            "prevalence": self.prevalence,
            "mean_severity": self.mean_severity,
            "max_severity": self.max_severity,
            "configs": list(self.configs),
            "details": list(self.details),
        }

    def render(self) -> str:
        return (
            f"[{self.count}/{self.total} configs, max sev "
            f"{self.max_severity:.2f}] {self.title}"
        )


@dataclass
class CampaignInsights:
    """Per-point reports plus the cross-point systemic rollup."""

    reports: dict[str, Any] = field(default_factory=dict)  #: label -> report
    systemic: list[SystemicInsight] = field(default_factory=list)
    out_of_memory: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.systemic)

    def to_dict(self) -> dict[str, Any]:
        return {
            "points": {
                label: report.to_dict()
                for label, report in self.reports.items()
            },
            "systemic": [s.to_dict() for s in self.systemic],
            "out_of_memory": list(self.out_of_memory),
            "rules_skipped_everywhere": self.rules_skipped_everywhere,
        }

    @property
    def rules_skipped_everywhere(self) -> list[str]:
        """Rules no point could satisfy (e.g. trace rules without traces)."""
        skipped_sets = [
            set(report.skipped_rules) for report in self.reports.values()
        ]
        if not skipped_sets:
            return []
        return sorted(set.intersection(*skipped_sets))

    def render(self) -> str:
        title = (
            f"Campaign insights: {len(self.reports)} configurations analyzed"
        )
        lines = [title, "=" * len(title)]
        for finding in self.systemic:
            lines.append(finding.render())
        if self.out_of_memory:
            lines.append(
                f"[{len(self.out_of_memory)} configs] exceeded device "
                f"memory: {', '.join(self.out_of_memory)}"
            )
        skipped = self.rules_skipped_everywhere
        if skipped:
            lines.append(
                f"rules skipped at every point (missing ingredient): "
                f"{', '.join(skipped)}"
            )
        return "\n".join(lines)


def aggregate_insights(
    profiles: Mapping[Any, ModelProfile],
    *,
    rules: Iterable[Rule] | None = None,
    severity_cutoff: float = 0.30,
    out_of_memory: Iterable[Any] = (),
) -> CampaignInsights:
    """Run the engine over every profile and roll the findings up.

    ``profiles`` is keyed by campaign point (anything with a ``.label``)
    or plain label strings — exactly the shape of
    ``CampaignResult.profiles``.  A rule contributes to a systemic finding
    for every point where it fired at/above ``severity_cutoff``.

    The grid itself supplies the sweep ingredient: points sharing a
    (model, system, framework) coordinate form a batch -> latency curve,
    so the batch-scaling rules run wherever the grid covers >= 2 batches.
    """
    engine = InsightEngine(rules)
    result = CampaignInsights(
        out_of_memory=tuple(_label_of(k) for k in out_of_memory)
    )
    sweeps: dict[tuple[str, str, str], dict[int, float]] = defaultdict(dict)
    for profile in profiles.values():
        sweeps[(profile.model_name, profile.system, profile.framework)][
            profile.batch
        ] = profile.model_latency_ms
    fired: dict[str, list[tuple[str, float]]] = defaultdict(list)
    artifacts: dict[str, Counter] = defaultdict(Counter)
    for key, profile in profiles.items():
        label = _label_of(key)
        report = engine.analyze(
            InsightContext.build(
                profile,
                sweep=sweeps[
                    (profile.model_name, profile.system, profile.framework)
                ],
            )
        )
        result.reports[label] = report
        for insight in report.insights:
            if insight.severity < severity_cutoff:
                continue
            fired[insight.rule].append((label, insight.severity))
            # Each insight's evidence is ranked: its first kernel name is
            # the primary artifact.  Counting only that (once per point)
            # makes "implicated in N/M configs" count configurations.
            primary = next(
                (
                    name
                    for ev in insight.evidence
                    for name in ev.kernel_names
                ),
                None,
            )
            if primary is not None:
                artifacts[insight.rule][primary] += 1

    total = len(result.reports)
    for rule_name, hits in fired.items():
        severities = [sev for _, sev in hits]
        top_artifacts = artifacts[rule_name].most_common(3)
        details = tuple(name for name, _ in top_artifacts)
        if top_artifacts:
            dominant, dom_count = top_artifacts[0]
            title = (
                f"{rule_name}: {dominant} implicated in {dom_count}/{total} "
                "configs"
            )
        else:
            title = (
                f"{rule_name} fires in {len(hits)}/{total} configs "
                f"(severity >= {severity_cutoff:.2f})"
            )
        result.systemic.append(
            SystemicInsight(
                rule=rule_name,
                title=title,
                count=len(hits),
                total=total,
                mean_severity=sum(severities) / len(severities),
                max_severity=max(severities),
                configs=tuple(label for label, _ in hits),
                details=details,
            )
        )
    # Widespread-and-severe first.
    result.systemic.sort(key=lambda s: (-s.prevalence, -s.max_severity))
    return result
