"""The three stack-level tracers (paper Sec. III-B).

1. **ModelTracer** — spans around user code regions (input pre-processing,
   model prediction, output post-processing).
2. **LayerTracer** — consumes the framework profiler's *native* output
   (TF step-stats or MXNet profile dump), converts each layer record to a
   span and parents it on the model-prediction span.  XSP "leverages the
   existing framework's profiling capabilities", so no framework
   modification happens here — only format parsing.
3. **GpuTracer** — consumes CUPTI records: each ``cudaLaunchKernel``
   callback becomes a *launch span*, each kernel activity an *execution
   span*; the two carry the CUPTI ``correlation_id``.  GPU metrics are
   attached to the execution span as ``metric.*`` tags.

Launch spans are published without parents; parent reconstruction happens
offline via the interval tree (:func:`repro.tracing.correlation.reconstruct_parents`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.frameworks.profiler_format import PARSERS
from repro.sim.cupti import ActivityRecord, ApiRecord
from repro.tracing.span import Level, Span, SpanKind
from repro.tracing.tracer import BufferingTracer

_Sink = Callable[[Span], None]
_BatchSink = Callable[[Iterable[Span]], None]


class ModelTracer(BufferingTracer):
    """Tracer for user-code (model-level) spans."""

    def __init__(
        self, sink: _Sink | None = None, batch_sink: _BatchSink | None = None
    ) -> None:
        super().__init__("model_tracer", Level.MODEL, sink, batch_sink)


class LayerTracer(BufferingTracer):
    """Tracer converting framework-native layer profiles into spans."""

    def __init__(
        self, sink: _Sink | None = None, batch_sink: _BatchSink | None = None
    ) -> None:
        super().__init__("layer_tracer", Level.LAYER, sink, batch_sink)

    def convert(
        self,
        native_profile: dict[str, Any],
        framework_name: str,
        parent_span_id: int | None,
    ) -> list[Span]:
        """Parse a native profile and publish one span per layer.

        Layer spans are set as children of the model-prediction span, so
        "each layer [is] directly correlated to the model prediction step".
        """
        try:
            parser = PARSERS[framework_name]
        except KeyError:
            raise ValueError(
                f"no profile parser registered for framework {framework_name!r}; "
                f"known: {sorted(PARSERS)}"
            ) from None
        return self.publish_many(
            Span(
                name=record.name,
                start_ns=record.start_ns,
                end_ns=record.end_ns,
                level=Level.LAYER,
                parent_id=parent_span_id,
                tags={
                    "layer_index": record.index,
                    "layer_type": record.layer_type,
                    "shape": record.shape,
                    "alloc_bytes": record.alloc_bytes,
                },
            )
            for record in parser(native_profile)
        )


class GpuTracer(BufferingTracer):
    """Tracer converting CUPTI callback/activity records into spans."""

    def __init__(
        self, sink: _Sink | None = None, batch_sink: _BatchSink | None = None
    ) -> None:
        super().__init__("gpu_tracer", Level.GPU_KERNEL, sink, batch_sink)

    def convert(
        self,
        api_records: list[ApiRecord],
        activity_records: list[ActivityRecord],
    ) -> list[Span]:
        """Publish a launch span per API record, an execution span per
        activity — the kernel-dominated bulk of a capture, delivered as
        one batch."""
        activity_names = {
            a.correlation_id: a.name
            for a in activity_records
            if a.kind == "kernel"
        }

        def spans():
            for api in api_records:
                yield Span(
                    # Label the launch with the launched kernel when known.
                    name=activity_names.get(api.correlation_id, api.name),
                    start_ns=api.start_ns,
                    end_ns=api.end_ns,
                    level=Level.GPU_KERNEL,
                    kind=SpanKind.LAUNCH,
                    correlation_id=api.correlation_id,
                    tags={"api": api.name},
                )
            for act in activity_records:
                tags: dict[str, Any] = {
                    "stream_id": act.stream_id,
                    "grid": act.grid,
                    "block": act.block,
                    "activity_kind": act.kind,
                }
                for metric, value in act.metrics.items():
                    tags[f"metric.{metric}"] = value
                yield Span(
                    name=act.name,
                    start_ns=act.start_ns,
                    end_ns=act.end_ns,
                    level=Level.GPU_KERNEL,
                    # Memory copies are synchronous host-visible activities;
                    # kernels are the async launch/execution pairs.
                    kind=(SpanKind.EXECUTION if act.kind == "kernel"
                          else SpanKind.INTERNAL),
                    correlation_id=(act.correlation_id if act.kind == "kernel"
                                    else None),
                    tags=tags,
                )

        return self.publish_many(spans())
