"""Profiling level sets.

XSP's tracers "can be enabled or disabled at runtime"; a profiling run is
characterized by the set of stack levels whose tracers are on.  Levels are
cumulative in practice (profiling GPU kernels without the layer level
loses the correlation the paper is about), so the canonical configurations
are M, M/L and M/L/G — exactly the three of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracing.span import Level


@dataclass(frozen=True)
class ProfilingLevelSet:
    """An enabled-levels configuration."""

    levels: frozenset[Level]

    def __contains__(self, level: Level) -> bool:
        return level in self.levels

    @property
    def deepest(self) -> Level:
        return max(self.levels)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. "M/L/G"."""
        return "/".join(
            lvl.short_name for lvl in sorted(self.levels)
        )

    def with_level(self, level: Level) -> "ProfilingLevelSet":
        return ProfilingLevelSet(self.levels | {level})

    @staticmethod
    def parse(label: str) -> "ProfilingLevelSet":
        """Parse a "M/L/G"-style label."""
        mapping = {lvl.short_name: lvl for lvl in Level}
        levels = set()
        for part in label.split("/"):
            if part not in mapping:
                raise ValueError(f"unknown level {part!r} in {label!r}")
            levels.add(mapping[part])
        return ProfilingLevelSet(frozenset(levels))


#: Model-level profiling only (baseline latency, Fig. 2 top).
M = ProfilingLevelSet(frozenset({Level.MODEL}))
#: Model- and layer-level profiling.
ML = ProfilingLevelSet(frozenset({Level.MODEL, Level.LAYER}))
#: Model-, layer- and GPU kernel-level profiling.
MLG = ProfilingLevelSet(frozenset({Level.MODEL, Level.LAYER, Level.GPU_KERNEL}))
#: Extensibility configuration (paper Sec. III-E): an ML-library level
#: between layer and GPU kernel, capturing cuDNN/cuBLAS API calls.
MLLibG = ProfilingLevelSet(
    frozenset({Level.MODEL, Level.LAYER, Level.LIBRARY, Level.GPU_KERNEL})
)

#: The canonical leveled-experimentation ladder (Fig. 2).
LADDER: tuple[ProfilingLevelSet, ...] = (M, ML, MLG)
