"""The automated analysis pipeline's data model.

The pipeline consumes traces from a user-defined number of evaluations at
each profiling level, correlates them, and summarizes repeated
measurements with a trimmed mean (paper Sec. III-D).  Its output is a
:class:`ModelProfile` — the accurate, merged, across-stack view of one
(model, system, framework, batch) combination — which all 15 analyses in
:mod:`repro.analysis` consume.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.leveled import LeveledExperiment, LeveledResult
from repro.core.session import ProfiledRun, ProfilingConfig, XSPSession
from repro.core.stats import Statistic, trimmed_mean
from repro.frameworks.graph import Graph
from repro.sim.hardware import GPUSpec, get_system
from repro.tracing.span import seed_span_ids

if TYPE_CHECKING:  # pragma: no cover - cache imports pipeline, not vice versa
    from repro.core.cache import ProfileStore
    from repro.insights.engine import InsightReport


@dataclass(frozen=True)
class KernelProfile:
    """One GPU kernel invocation, merged across runs and correlated to its layer."""

    name: str
    layer_index: int
    position: int  # ordinal within the layer
    latency_ms: float
    flops: float
    dram_read_bytes: float
    dram_write_bytes: float
    achieved_occupancy: float
    grid: tuple[int, int, int]
    block: tuple[int, int, int]

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        if self.dram_bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.dram_bytes

    @property
    def arithmetic_throughput_tflops(self) -> float:
        if self.latency_ms <= 0:
            return 0.0
        return self.flops / (self.latency_ms / 1e3) / 1e12

    def memory_bound(self, gpu: GPUSpec) -> bool:
        return self.arithmetic_intensity < gpu.ideal_arithmetic_intensity


@dataclass
class LayerProfile:
    """One executed layer with accurate latency and correlated kernels."""

    index: int
    name: str
    layer_type: str
    shape: tuple[int, ...]
    latency_ms: float
    alloc_bytes: int
    kernels: list[KernelProfile] = field(default_factory=list)

    @property
    def alloc_mb(self) -> float:
        return self.alloc_bytes / 1e6

    @property
    def kernel_latency_ms(self) -> float:
        return sum(k.latency_ms for k in self.kernels)

    @property
    def non_gpu_latency_ms(self) -> float:
        """A13: layer latency minus its kernels' device time."""
        return max(0.0, self.latency_ms - self.kernel_latency_ms)

    @property
    def flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def dram_read_bytes(self) -> float:
        return sum(k.dram_read_bytes for k in self.kernels)

    @property
    def dram_write_bytes(self) -> float:
        return sum(k.dram_write_bytes for k in self.kernels)

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def achieved_occupancy(self) -> float:
        """Latency-weighted occupancy of the layer's kernels (paper A11)."""
        total = self.kernel_latency_ms
        if total == 0:
            return 0.0
        return sum(k.achieved_occupancy * k.latency_ms for k in self.kernels) / total

    @property
    def arithmetic_intensity(self) -> float:
        if self.dram_bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.dram_bytes

    @property
    def arithmetic_throughput_tflops(self) -> float:
        if self.kernel_latency_ms <= 0:
            return 0.0
        return self.flops / (self.kernel_latency_ms / 1e3) / 1e12

    def memory_bound(self, gpu: GPUSpec) -> bool:
        return self.arithmetic_intensity < gpu.ideal_arithmetic_intensity


@dataclass
class ModelProfile:
    """Accurate across-stack profile of one (model, system, framework, batch)."""

    model_name: str
    system: str
    framework: str
    batch: int
    model_latency_ms: float
    layers: list[LayerProfile]
    #: Per-rung profiling overhead in ms, e.g. {"M/L": ..., "M/L/G": ...}.
    overheads: dict[str, float] = field(default_factory=dict)
    n_runs: int = 1
    metadata: dict[str, object] = field(default_factory=dict)

    # -- model-level -----------------------------------------------------------
    @property
    def throughput(self) -> float:
        return self.batch / (self.model_latency_ms / 1e3)

    @property
    def gpu(self) -> GPUSpec:
        return get_system(self.system)

    # -- aggregates over kernels (paper A15) ------------------------------------
    @property
    def kernels(self) -> list[KernelProfile]:
        return [k for layer in self.layers for k in layer.kernels]

    @property
    def kernel_latency_ms(self) -> float:
        return sum(layer.kernel_latency_ms for layer in self.layers)

    @property
    def gpu_latency_percentage(self) -> float:
        """Latency due to GPU kernel execution, relative to model latency."""
        if self.model_latency_ms == 0:
            return 0.0
        return 100.0 * self.kernel_latency_ms / self.model_latency_ms

    @property
    def flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def dram_read_bytes(self) -> float:
        return sum(layer.dram_read_bytes for layer in self.layers)

    @property
    def dram_write_bytes(self) -> float:
        return sum(layer.dram_write_bytes for layer in self.layers)

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def achieved_occupancy(self) -> float:
        total = self.kernel_latency_ms
        if total == 0:
            return 0.0
        return sum(
            k.achieved_occupancy * k.latency_ms for k in self.kernels
        ) / total

    @property
    def arithmetic_intensity(self) -> float:
        if self.dram_bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.dram_bytes

    @property
    def arithmetic_throughput_tflops(self) -> float:
        if self.kernel_latency_ms <= 0:
            return 0.0
        return self.flops / (self.kernel_latency_ms / 1e3) / 1e12

    @property
    def memory_bound(self) -> bool:
        """Paper's roofline rule applied to the whole model (A15)."""
        return self.arithmetic_intensity < self.gpu.ideal_arithmetic_intensity


def _statistic_name(statistic: Statistic) -> str:
    """Identity of the merge statistic for cache keying."""
    return getattr(statistic, "__qualname__", None) or repr(statistic)


def _seed_worker_span_ids() -> None:
    """ProcessPoolExecutor initializer: give this worker its own id range.

    Workers inherit a fresh module state, so every worker's span counter
    would restart at 1 and spans profiled by different workers would
    share ids.  Seeding from the worker's pid puts each worker in a
    disjoint range (see :func:`repro.tracing.span.seed_span_ids`).
    """
    seed_span_ids(os.getpid())


def _sweep_worker(
    args: tuple[GPUSpec, str, int, Statistic, Graph, int],
) -> tuple[int, ModelProfile]:
    """Profile one batch size in a worker process (module-level: picklable).

    The session is rebuilt from the full :class:`GPUSpec` (not its name)
    so sweeps over custom, unregistered hardware specs profile the same
    hardware the parent pipeline does.
    """
    system, framework, runs_per_level, statistic, graph, batch = args
    session = XSPSession(system=system, framework=framework)
    pipeline = AnalysisPipeline(
        session, runs_per_level=runs_per_level, statistic=statistic
    )
    return batch, pipeline.profile_model(graph, batch)


class AnalysisPipeline:
    """End-to-end: leveled experiments -> merged :class:`ModelProfile`.

    With a :class:`~repro.core.cache.ProfileStore` attached, merged
    profiles are persisted to disk and later ``profile_model`` calls with
    the same (model, system, framework, batch, runs-per-level)
    coordinates — in this process or any other — skip the leveled
    experiment ladder entirely.
    """

    def __init__(
        self,
        session: XSPSession,
        *,
        runs_per_level: int = 3,
        statistic: Statistic = trimmed_mean,
        store: "ProfileStore | None" = None,
    ) -> None:
        self.session = session
        self.experiment = LeveledExperiment(
            session, runs_per_level=runs_per_level, statistic=statistic
        )
        self.statistic = statistic
        self.store = store

    # -- profile construction ---------------------------------------------------
    def profile_model(self, graph: Graph, batch: int) -> ModelProfile:
        """Run the full ladder and merge into an accurate profile."""
        cached = self._cached(graph, batch)
        if cached is not None:
            return cached
        leveled = self.experiment.run(graph, batch)
        profile = self.merge(leveled)
        if self.store is not None:
            self.store.put(
                profile,
                runs_per_level=self.experiment.runs_per_level,
                statistic=_statistic_name(self.statistic),
            )
        return profile

    def sweep(
        self,
        graph: Graph,
        batches: Sequence[int],
        *,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> dict[int, ModelProfile]:
        """Profiles across batch sizes (A1 / Fig. 3 / Fig. 10 / Table VI).

        ``parallel=True`` fans the uncached batch sizes out over worker
        processes (the simulator is deterministic, so the profiles are
        identical to a serial sweep).  Falls back to the serial path when
        the workload cannot be shipped to workers (e.g. an unpicklable
        custom statistic).
        """
        if not parallel or len(batches) < 2:
            return {b: self.profile_model(graph, b) for b in batches}

        cached = {b: self._cached(graph, b) for b in batches}
        missing = [b for b in batches if cached[b] is None]
        spec = (
            self.session.gpu,
            self.session.framework_cls.name,
            self.experiment.runs_per_level,
            self.statistic,
            graph,
        )
        try:
            pickle.dumps(spec)
        except Exception:
            return {b: self.profile_model(graph, b) for b in batches}
        computed: dict[int, ModelProfile] = {}
        if missing:
            with ProcessPoolExecutor(
                max_workers=min(max_workers or len(missing), len(missing)),
                initializer=_seed_worker_span_ids,
            ) as executor:
                for batch, profile in executor.map(
                    _sweep_worker, [spec + (b,) for b in missing]
                ):
                    computed[batch] = profile
            if self.store is not None:
                for profile in computed.values():
                    self.store.put(
                        profile,
                        runs_per_level=self.experiment.runs_per_level,
                        statistic=_statistic_name(self.statistic),
                    )
        return {b: cached[b] or computed[b] for b in batches}

    # -- insights ---------------------------------------------------------------
    def advise(
        self,
        graph: Graph,
        batch: int,
        *,
        sweep_batches: Sequence[int] | None = None,
        rules=None,
    ) -> "InsightReport":
        """Profile ``graph`` and run the insight engine over the result.

        The merged profile comes through the normal (cache-aware)
        :meth:`profile_model` path; one extra M/L/G evaluation supplies
        the raw trace (for timeline rules like idle-bubble detection) and
        the device-memory high-water mark; ``sweep_batches`` adds a cheap
        model-level-only latency sweep so the batch-scaling rules can
        place ``batch`` against the throughput knee.
        """
        # Imported lazily: insights consumes this module's ModelProfile.
        from repro.insights import advise
        from repro.workloads import measure_latency

        profile = self.profile_model(graph, batch)
        # Metric collection replays kernels (Sec. III-C), stretching the
        # device timeline; the advisory trace is captured metric-free so
        # idle-gap analysis sees the real execution schedule.
        run = self.session.profile(graph, batch, ProfilingConfig(metrics=()))
        sweep: dict[int, float] = {}
        for b in sorted(set(sweep_batches or ())):
            try:
                sweep[b] = measure_latency(self.session, graph, b, runs=1)
            except MemoryError:
                break  # larger batches cannot fit either
        return advise(
            profile,
            trace=run.trace,
            sweep=sweep,
            peak_device_memory_bytes=run.prediction.peak_device_memory_bytes,
            rules=rules,
        )

    def advise_live(
        self,
        graph: Graph,
        batch: int,
        *,
        evaluations: int = 2,
        rules=None,
        config: ProfilingConfig | None = None,
        poll_interval: float = 0.2,
    ):
        """Stream insight updates while a capture of ``graph`` is in flight.

        Runs an application-level capture (``evaluations`` back-to-back
        evaluations of ``graph`` at ``batch``) in a worker thread and
        yields :class:`~repro.insights.live.LiveUpdate` objects as its
        spans land on the tracing server: each finished evaluation is
        re-published onto the open application timeline, the attached
        :class:`~repro.insights.live.LiveMonitor` consumes the new rows
        through a stream cursor, and only rules whose ingredients changed
        since the last watermark are re-evaluated.  The last yielded
        update (``final=True``) carries the completed capture's report.
        """
        import threading

        from repro.insights.live import LiveMonitor

        server = self.session.server
        # Full coordinates up front: the live profile view derives its
        # (model, system, framework, batch) identity from this metadata.
        trace_id = server.begin_trace(
            model=graph.name,
            system=self.session.gpu.name,
            framework=self.session.framework_cls.name,
            batch=batch,
        )
        monitor = LiveMonitor(server, trace_id, rules=rules)
        # Metric collection replays kernels and stretches the device
        # timeline (Sec. III-C); live monitoring wants the real schedule.
        config = config or ProfilingConfig(metrics=())
        errors: list[BaseException] = []

        def work() -> None:
            try:
                self.session.profile_application(
                    [(graph, batch)] * evaluations,
                    name=f"live:{graph.name}",
                    config=config,
                    trace_id=trace_id,
                )
            except BaseException as err:  # propagated to the consumer
                errors.append(err)

        worker = threading.Thread(
            target=work, name="advise-live-capture", daemon=True
        )
        worker.start()
        try:
            while not monitor.done:
                was_alive = worker.is_alive()
                update = monitor.poll(timeout=poll_interval)
                if update is not None:
                    yield update
                elif errors:
                    break  # capture died without closing the trace
                elif not was_alive:
                    # Worker observed finished *before* an empty poll:
                    # the trace is closed and drained, nothing left.
                    break
        finally:
            worker.join(timeout=30)
            if not monitor.done:
                try:
                    server.end_trace(trace_id)
                except KeyError:
                    pass
        if errors:
            raise errors[0]

    def _cached(self, graph: Graph, batch: int) -> ModelProfile | None:
        if self.store is None:
            return None
        return self.store.get(
            graph.name,
            self.session.gpu.name,
            self.session.framework_cls.name,
            batch,
            self.experiment.runs_per_level,
            _statistic_name(self.statistic),
        )

    # -- merging ------------------------------------------------------------------
    def merge(self, leveled: LeveledResult) -> ModelProfile:
        """Combine per-level runs into one accurate profile.

        Layer latencies come from the M/L runs (trimmed mean across
        repetitions); kernel-to-layer attribution and kernel data come
        from the M/L/G runs; the model latency comes from the M runs.
        """
        ml_runs = leveled.runs_at("M/L")
        # Kernel data comes from the dedicated metric-collection runs when
        # present (their CUPTI kernel durations are clean single-pass
        # times); otherwise from the plain M/L/G rung.
        try:
            mlg_runs = leveled.runs_at("M/L/G+metrics")
        except KeyError:
            mlg_runs = leveled.runs_at("M/L/G")
        layers = self._merge_layers(ml_runs)
        self._attach_kernels(layers, mlg_runs)
        return ModelProfile(
            model_name=leveled.model_name,
            system=leveled.system,
            framework=leveled.framework,
            batch=leveled.batch,
            model_latency_ms=leveled.model_latency_ms,
            layers=layers,
            overheads=leveled.overhead_ladder(),
            n_runs=len(ml_runs),
        )

    def _merge_layers(self, ml_runs: list[ProfiledRun]) -> list[LayerProfile]:
        # One layer_spans() call per run, hoisted out of the per-position
        # loop (the seed recomputed the level scan L times per run).
        spans_per_run = [run.layer_spans() for run in ml_runs]
        reference = spans_per_run[0]
        merged: list[LayerProfile] = []
        for pos, span in enumerate(reference):
            latencies = []
            for spans in spans_per_run:
                if pos < len(spans):
                    latencies.append(spans[pos].duration_ms)
            merged.append(
                LayerProfile(
                    index=span.tags["layer_index"],
                    name=span.name,
                    layer_type=span.tags["layer_type"],
                    shape=tuple(span.tags["shape"]),
                    latency_ms=self.statistic(latencies),
                    alloc_bytes=span.tags["alloc_bytes"],
                )
            )
        return merged

    def _attach_kernels(
        self, layers: list[LayerProfile], mlg_runs: list[ProfiledRun]
    ) -> None:
        by_index = {layer.index: layer for layer in layers}
        # Kernel latency statistics across the M/L/G repetitions, matched by
        # (layer_index, position-within-layer).
        latency_samples: dict[tuple[int, int], list[float]] = {}
        reference: dict[tuple[int, int], KernelProfile] = {}
        for run in mlg_runs:
            for layer_index, kernels in run.kernels_by_layer().items():
                for pos, mk in enumerate(kernels):
                    key = (layer_index, pos)
                    exec_span = mk.execution
                    latency_samples.setdefault(key, []).append(
                        exec_span.duration_ms
                    )
                    if key not in reference:
                        metrics = mk.metrics
                        reference[key] = KernelProfile(
                            name=mk.name,
                            layer_index=layer_index,
                            position=pos,
                            latency_ms=0.0,  # filled below
                            flops=float(metrics.get("metric.flop_count_sp", 0.0)),
                            dram_read_bytes=float(
                                metrics.get("metric.dram_read_bytes", 0.0)
                            ),
                            dram_write_bytes=float(
                                metrics.get("metric.dram_write_bytes", 0.0)
                            ),
                            achieved_occupancy=float(
                                metrics.get("metric.achieved_occupancy", 0.0)
                            ),
                            grid=tuple(exec_span.tags.get("grid", (1, 1, 1))),
                            block=tuple(exec_span.tags.get("block", (1, 1, 1))),
                        )
        for key, proto in sorted(reference.items()):
            layer = by_index.get(key[0])
            if layer is None:
                continue  # kernel outside any layer (should not happen)
            latency = self.statistic(latency_samples[key])
            layer.kernels.append(
                KernelProfile(
                    name=proto.name,
                    layer_index=proto.layer_index,
                    position=proto.position,
                    latency_ms=latency,
                    flops=proto.flops,
                    dram_read_bytes=proto.dram_read_bytes,
                    dram_write_bytes=proto.dram_write_bytes,
                    achieved_occupancy=proto.achieved_occupancy,
                    grid=proto.grid,
                    block=proto.block,
                )
            )
