"""XSPSession: one across-stack-profiled model evaluation.

A session binds a system (GPU), a framework, and a tracing server.  Each
:meth:`XSPSession.profile` call:

1. builds a fresh simulated runtime (clock, CUDA, CUPTI) for the chosen
   system, honouring ``CUDA_LAUNCH_BLOCKING`` when a serialized run is
   requested,
2. enables exactly the tracers the :class:`ProfilingConfig` asks for
   (model / layer / GPU-kernel levels, GPU metric list),
3. runs the model-level pipeline — input pre-processing, model
   prediction, output post-processing — with ``startSpan``/``finishSpan``
   around each step,
4. converts the framework profiler's native output and CUPTI's records
   into spans and publishes everything to the tracing server,
5. reconstructs the across-stack hierarchy offline (interval tree +
   launch/execution correlation) and, if parallel events made parentage
   ambiguous, automatically re-runs serialized — the paper's prescribed
   remedy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.api import start_span
from repro.core.levels import MLG, ProfilingLevelSet
from repro.core.library_level import LibraryTracer
from repro.core.profilers import GpuTracer, LayerTracer, ModelTracer
from repro.frameworks.base import Framework, PredictionResult, RunOptions
from repro.frameworks.graph import Graph
from repro.frameworks.mxnet_like import MXSim
from repro.frameworks.tensorflow_like import TFSim
from repro.sim.clock import VirtualClock
from repro.sim.cuda import CudaRuntime
from repro.sim.cupti import SUPPORTED_METRICS, Cupti
from repro.sim.hardware import GPUSpec, get_system
from repro.tracing.correlation import (
    CorrelationResult,
    MergedKernel,
    correlate_launch_execution,
    reconstruct_parents,
)
from repro.tracing.server import TracingServer
from repro.tracing.span import Level, Span, new_span_id
from repro.tracing.trace import Trace

FRAMEWORKS: dict[str, type[Framework]] = {
    "tensorflow_like": TFSim,
    "tensorflow": TFSim,
    "tf": TFSim,
    "mxnet_like": MXSim,
    "mxnet": MXSim,
    "mx": MXSim,
}

#: Host cost of the model-level pre/post-processing steps (fixed + per image).
_PREPROCESS_US = (55.0, 2.0)
_POSTPROCESS_US = (18.0, 0.5)


@dataclass(frozen=True)
class ProfilingConfig:
    """What to capture during one profiled evaluation."""

    levels: ProfilingLevelSet = MLG
    metrics: tuple[str, ...] = SUPPORTED_METRICS
    #: Serialize GPU work (CUDA_LAUNCH_BLOCKING=1).
    serialized: bool = False
    #: Automatically re-run serialized when parentage is ambiguous.
    auto_serialize: bool = True
    #: Run index; seeds the simulator's deterministic run-to-run jitter.
    run_index: int = 0

    @property
    def layer_profiling(self) -> bool:
        return Level.LAYER in self.levels

    @property
    def gpu_profiling(self) -> bool:
        return Level.GPU_KERNEL in self.levels


@dataclass
class ProfiledRun:
    """Everything captured for one evaluation."""

    trace: Trace
    config: ProfilingConfig
    batch: int
    system: str
    framework: str
    prediction: PredictionResult
    predict_span: Span
    correlation: CorrelationResult
    kernels: list[MergedKernel] = field(default_factory=list)
    #: True when this run is the serialized retry of an ambiguous run.
    was_serialized_retry: bool = False
    # Memoized derived views; a run's trace is complete and correlated by
    # the time the run is constructed, so these never need invalidation.
    _layer_spans: list[Span] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _kernels_by_layer: dict[int, list[MergedKernel]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def model_latency_ms(self) -> float:
        return self.predict_span.duration_ms

    @property
    def peak_device_memory_mb(self) -> float:
        """High-water device memory during the prediction (MB)."""
        return self.prediction.peak_device_memory_bytes / 1e6

    def layer_spans(self) -> list[Span]:
        if self._layer_spans is None:
            spans = self.trace.at_level(Level.LAYER)
            spans.sort(key=lambda s: s.tags.get("layer_index", 0))
            self._layer_spans = spans
        return list(self._layer_spans)

    def kernels_by_layer(self) -> dict[int, list[MergedKernel]]:
        """Merged kernels grouped by layer index (via reconstructed parents)."""
        if self._kernels_by_layer is None:
            by_row = self.trace.index.row_by_id()
            table = self.trace.table
            grouped: dict[int, list[MergedKernel]] = {}
            for mk in self.kernels:
                row = by_row.get(mk.parent_id) if mk.parent_id else None
                idx = (
                    table.peek_tags(row).get("layer_index", -1)
                    if row is not None
                    else -1
                )
                grouped.setdefault(idx, []).append(mk)
            self._kernels_by_layer = grouped
        # Copy the buckets too: callers may sort/extend them in place.
        return {k: list(v) for k, v in self._kernels_by_layer.items()}

    def summary(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "framework": self.framework,
            "batch": self.batch,
            "levels": self.config.levels.label,
            "model_latency_ms": self.model_latency_ms,
            "n_spans": len(self.trace),
            "n_kernels": len(self.kernels),
            "ambiguous": self.correlation.needs_serialized_rerun,
        }


class XSPSession:
    """Profiling sessions for one (system, framework) pair."""

    def __init__(
        self,
        system: str | GPUSpec = "Tesla_V100",
        framework: str = "tensorflow_like",
        server: TracingServer | None = None,
    ) -> None:
        self.gpu = system if isinstance(system, GPUSpec) else get_system(system)
        try:
            self.framework_cls = FRAMEWORKS[framework]
        except KeyError:
            raise KeyError(
                f"unknown framework {framework!r}; valid: {sorted(FRAMEWORKS)}"
            ) from None
        self.server = server if server is not None else TracingServer()
        self._model_cache: dict[tuple[str, int], Any] = {}

    # -- main entry -----------------------------------------------------------
    def profile(
        self,
        graph: Graph,
        batch: int,
        config: ProfilingConfig | None = None,
    ) -> ProfiledRun:
        """Run one across-stack-profiled evaluation of ``graph``."""
        config = config or ProfilingConfig()
        run = self._run_once(graph, batch, config)
        if (
            run.correlation.needs_serialized_rerun
            and config.auto_serialize
            and not config.serialized
        ):
            serialized = replace(config, serialized=True)
            retry = self._run_once(graph, batch, serialized)
            retry.was_serialized_retry = True
            return retry
        return run

    # -- internals ----------------------------------------------------------------
    def _run_once(
        self, graph: Graph, batch: int, config: ProfilingConfig
    ) -> ProfiledRun:
        clock = VirtualClock()
        environment = {"CUDA_LAUNCH_BLOCKING": "1"} if config.serialized else {}
        runtime = CudaRuntime(
            self.gpu, clock, environment=environment, run_index=config.run_index
        )
        cupti: Cupti | None = None
        if config.gpu_profiling:
            cupti = Cupti(runtime)
            cupti.enable_callbacks()
            cupti.enable_activities()
            if config.metrics:
                cupti.enable_metrics(config.metrics)

        framework = self.framework_cls(runtime)
        model = self._compiled(framework, graph)

        trace_id = self.server.begin_trace(
            system=self.gpu.name,
            framework=framework.name,
            model=graph.name,
            batch=batch,
            levels=config.levels.label,
        )
        publish_many = self.server.publish_many
        model_tracer = ModelTracer(self.server.publish)
        layer_tracer = LayerTracer(self.server.publish, publish_many)
        gpu_tracer = GpuTracer(self.server.publish, publish_many)

        # -- the model-level evaluation pipeline -------------------------------
        pre = start_span(model_tracer, clock.now, "input_preprocess", batch=batch)
        clock.advance_us(_PREPROCESS_US[0] + _PREPROCESS_US[1] * batch)
        pre.finish()

        scope = start_span(model_tracer, clock.now, "predict", batch=batch)
        prediction = self._predict(framework, model, batch, config)
        predict_span = scope.finish()

        post = start_span(model_tracer, clock.now, "output_postprocess", batch=batch)
        clock.advance_us(_POSTPROCESS_US[0] + _POSTPROCESS_US[1] * batch)
        post.finish()

        # -- offline conversion of the other profilers' outputs -----------------
        if config.layer_profiling and prediction.native_profile is not None:
            layer_tracer.convert(
                prediction.native_profile, framework.name, predict_span.span_id
            )
        if cupti is not None:
            api_records, activity_records = cupti.flush()
            gpu_tracer.convert(api_records, activity_records)
        if Level.LIBRARY in config.levels:
            # Sec. III-E extension: cuDNN/cuBLAS API-call spans between the
            # layer and GPU-kernel levels, synthesized from launch records.
            library_tracer = LibraryTracer(
                self.server.publish, self.server.publish_many
            )
            library_tracer.convert(runtime.launch_records)

        trace = self.server.end_trace(trace_id)
        correlation = reconstruct_parents(trace, strict=False)
        kernels = correlate_launch_execution(trace)

        return ProfiledRun(
            trace=trace,
            config=config,
            batch=batch,
            system=self.gpu.name,
            framework=framework.name,
            prediction=prediction,
            predict_span=predict_span,
            correlation=correlation,
            kernels=kernels,
        )

    def profile_application(
        self,
        workload: list[tuple[Graph, int]],
        *,
        name: str = "application",
        config: ProfilingConfig | None = None,
        trace_id: int | None = None,
    ) -> tuple[Trace, list[ProfiledRun]]:
        """Profile a whole application: several model evaluations in one trace.

        Sec. III-E: "Adding an application profiling level above the model
        level to measure whole applications (possibly ... using more than
        one ML model) is naturally supported by XSP as it uses distributed
        tracing."  Each evaluation runs normally (own runtime/clock); as
        soon as it finishes, its rows are re-published time-shifted onto
        the application timeline via the server's streaming row path —
        a live ``TracingServer.stream`` cursor (e.g. ``repro advise
        --live``) sees every evaluation land while later ones are still
        running.  The single APPLICATION-level span is published last,
        once the timeline's extent is known (its id is pre-allocated so
        model roots can reference it throughout).

        ``trace_id`` lets a caller pre-open the destination trace (and
        attach stream cursors to it) before this method runs; by default
        a fresh trace is begun here.
        """
        if not workload:
            raise ValueError("application workload is empty")
        config = config or ProfilingConfig()
        runs: list[ProfiledRun] = []
        if trace_id is None:
            trace_id = self.server.begin_trace(application=name)
        else:
            self.server.annotate_trace(trace_id, application=name)
        app_span_id = new_span_id()
        cursor = 0
        for graph, batch in workload:
            run = self.profile(graph, batch, config)
            runs.append(run)
            lo, hi = run.trace.span_extent_ns()
            offset = cursor - lo
            cursor += (hi - lo) + 1_000  # 1 us gap between evaluations
            self.server.publish_rows(
                trace_id,
                self._shifted_rows(
                    run.trace.table, offset, app_span_id, graph.name
                ),
            )
        app_span = Span(
            name=name,
            start_ns=0,
            end_ns=cursor,
            level=Level.APPLICATION,
            span_id=app_span_id,
            trace_id=trace_id,
            tags={"evaluations": len(workload)},
        )
        self.server.publish(app_span)
        app_trace = self.server.end_trace(trace_id)
        return app_trace, runs

    @staticmethod
    def _shifted_rows(
        table, offset: int, app_span_id: int, model_name: str
    ):
        """One finished evaluation's rows, time-shifted, as add_row fields.

        Streams straight from the run's columnar table — no intermediate
        span list; model-level roots are re-parented under the (pending)
        application span.
        """
        model_code = int(Level.MODEL)
        levels = table.level
        for row in range(len(table)):
            parent_id = table.parent_id_of(row)
            if parent_id is None and levels[row] == model_code:
                parent_id = app_span_id
            yield dict(
                name=table.name_of(row),
                start_ns=table.start_ns[row] + offset,
                end_ns=table.end_ns[row] + offset,
                level=levels[row],
                span_id=table.span_id[row],
                parent_id=parent_id,
                kind=table.kind[row],
                correlation_id=table.correlation_id_of(row),
                tags=dict(table.peek_tags(row), model=model_name),
            )

    def _predict(
        self,
        framework: Framework,
        model: Any,
        batch: int,
        config: ProfilingConfig,
    ) -> PredictionResult:
        """Invoke prediction with the framework's own profiler mechanism."""
        if isinstance(framework, MXSim):
            # MXNet-style: global toggle (MXSetProfilerState analog).
            framework.set_profiler_state(config.layer_profiling)
            return framework.predict(model, batch)
        # TensorFlow-style: per-call RunOptions.TraceLevel.
        options = RunOptions(
            trace_level="FULL" if config.layer_profiling else "NONE"
        )
        return framework.predict(model, batch, options)

    def _compiled(self, framework: Framework, graph: Graph) -> Any:
        key = (framework.name, id(graph))
        if key not in self._model_cache:
            self._model_cache[key] = framework.load(graph)
        return self._model_cache[key]
