"""User-facing tracing API: ``startSpan`` / ``finishSpan``.

The paper's model-level integration is deliberately minimal: "to measure
the time spent running the model prediction ... one places the tracing
APIs around the calls to TF_SessionRun ... This only requires adding two
extra lines in the user's inference code."  These helpers are those two
lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.tracing.span import Level, Span
from repro.tracing.tracer import Tracer


@dataclass
class SpanScope:
    """An open span awaiting :func:`finish_span`."""

    span: Span
    tracer: Tracer
    clock: Callable[[], int]

    def finish(self, **tags: Any) -> Span:
        self.span.end_ns = self.clock()
        self.span.tags.update(tags)
        self.tracer.publish(self.span)
        return self.span


def start_span(
    tracer: Tracer,
    clock: Callable[[], int],
    name: str,
    *,
    level: Level = Level.MODEL,
    parent_id: int | None = None,
    **tags: Any,
) -> SpanScope:
    """Open a span measuring a user code region; pair with :func:`finish_span`."""
    now = clock()
    span = Span(
        name=name,
        start_ns=now,
        end_ns=now,
        level=level,
        parent_id=parent_id,
        tags=dict(tags),
    )
    return SpanScope(span=span, tracer=tracer, clock=clock)


def finish_span(scope: SpanScope, **tags: Any) -> Span:
    """Close and publish a span opened by :func:`start_span`."""
    return scope.finish(**tags)
