"""Leveled experimentation (paper Sec. III-C).

Profilers at a level accurately capture events *within* that level, but
deeper profiling inflates what shallower levels measure.  XSP therefore
profiles once per rung of the ladder (M, M/L, M/L/G) and takes each
level's numbers from the run where that level is the deepest enabled one:

* model latency          <- the M runs,
* per-layer latencies    <- the M/L runs,
* per-kernel information <- the M/L/G runs.

The overhead introduced *at* level n+1 is quantified "by subtracting the
latency of the event when profilers up to level n are enabled from the
latency when profilers up to level n+1 are enabled".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.levels import LADDER, ProfilingLevelSet
from repro.core.session import ProfiledRun, ProfilingConfig, XSPSession
from repro.core.stats import Statistic, trimmed_mean
from repro.frameworks.graph import Graph
from repro.sim.cupti import SUPPORTED_METRICS


@dataclass
class LeveledResult:
    """Outcome of one leveled experiment (all rungs, all repetitions)."""

    model_name: str
    system: str
    framework: str
    batch: int
    #: Level-set label ("M", "M/L", "M/L/G") -> repeated profiled runs.
    runs: dict[str, list[ProfiledRun]] = field(default_factory=dict)
    statistic: Statistic = trimmed_mean

    def runs_at(self, label: str) -> list[ProfiledRun]:
        try:
            return self.runs[label]
        except KeyError:
            raise KeyError(
                f"no runs at level set {label!r}; have {sorted(self.runs)}"
            ) from None

    # -- accurate numbers per level (the point of leveled experimentation) --
    @property
    def model_latency_ms(self) -> float:
        """Accurate model-prediction latency (from the M-only runs)."""
        return self.statistic([r.model_latency_ms for r in self.runs_at("M")])

    @property
    def throughput(self) -> float:
        """Inputs/second at this batch size."""
        return self.batch / (self.model_latency_ms / 1e3)

    def predict_latency_at(self, label: str) -> float:
        """Model-prediction latency as observed at a given level set."""
        return self.statistic([r.model_latency_ms for r in self.runs_at(label)])

    def overhead_ms(self, deeper: str, shallower: str) -> float:
        """Profiling overhead introduced by ``deeper`` relative to ``shallower``."""
        return self.predict_latency_at(deeper) - self.predict_latency_at(shallower)

    def overhead_ladder(self) -> dict[str, float]:
        """Per-rung overhead, e.g. {"M/L": 157.0, "M/L/G": 58.2}."""
        labels = [ls.label for ls in LADDER if ls.label in self.runs]
        out: dict[str, float] = {}
        for prev, cur in zip(labels, labels[1:]):
            out[cur] = self.overhead_ms(cur, prev)
        return out


class LeveledExperiment:
    """Drives the M -> M/L -> M/L/G ladder with repetitions."""

    def __init__(
        self,
        session: XSPSession,
        *,
        runs_per_level: int = 3,
        statistic: Statistic = trimmed_mean,
        metrics: Sequence[str] = SUPPORTED_METRICS,
        ladder: Sequence[ProfilingLevelSet] = LADDER,
    ) -> None:
        if runs_per_level < 1:
            raise ValueError("runs_per_level must be >= 1")
        self.session = session
        self.runs_per_level = runs_per_level
        self.statistic = statistic
        self.metrics = tuple(metrics)
        self.ladder = tuple(ladder)

    def run(self, graph: Graph, batch: int) -> LeveledResult:
        result = LeveledResult(
            model_name=graph.name,
            system=self.session.gpu.name,
            framework=self.session.framework_cls.name,
            batch=batch,
            statistic=self.statistic,
        )
        # Ladder rungs run with timeline capture only: kernel metric
        # collection replays kernels (DRAM counters cost >20 passes) and
        # would swamp the overhead subtraction the ladder exists for.
        base = ProfilingConfig(metrics=())
        for level_set in self.ladder:
            config = replace(base, levels=level_set)
            runs = []
            for i in range(self.runs_per_level):
                runs.append(
                    self.session.profile(graph, batch, replace(config, run_index=i))
                )
            result.runs[level_set.label] = runs
        # Dedicated metric-collection runs (nvprof-style): wall time is
        # heavily inflated by replay, but CUPTI reports clean single-pass
        # kernel durations plus the requested counters.
        if self.metrics:
            deepest = self.ladder[-1]
            config = ProfilingConfig(levels=deepest, metrics=self.metrics)
            runs = []
            for i in range(self.runs_per_level):
                runs.append(
                    self.session.profile(graph, batch, replace(config, run_index=i))
                )
            result.runs[deepest.label + "+metrics"] = runs
        return result
