"""Persistent on-disk store for :class:`~repro.core.pipeline.ModelProfile`.

XSP's across-stack profiles are computed offline from captured traces
(paper Sec. III-B/D); the same profile feeds all 15 analyses and any
number of batch sweeps.  This module gives that reuse durability across
*processes*: a profile, once merged, is written to disk as JSON and every
later pipeline/CLI/benchmark invocation with the same coordinates —
(model, system, framework, batch, runs-per-level) — is served from the
store instead of re-running the leveled experiment ladder.

The schema is versioned: bump :data:`SCHEMA_VERSION` whenever the
serialized shape (or the semantics of any stored number) changes and
every stale entry silently misses, forcing a recompute.  Entries also
self-describe their key; a lookup whose stored key disagrees with the
requested one (e.g. after a filename collision) is treated as a miss.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile

#: Bump on any change to the serialized profile shape or semantics.
SCHEMA_VERSION = 1

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(value: object) -> str:
    return _SAFE.sub("_", str(value))


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


# -- (de)serialization ------------------------------------------------------


def kernel_to_dict(kernel: KernelProfile) -> dict[str, Any]:
    return {
        "name": kernel.name,
        "layer_index": kernel.layer_index,
        "position": kernel.position,
        "latency_ms": kernel.latency_ms,
        "flops": kernel.flops,
        "dram_read_bytes": kernel.dram_read_bytes,
        "dram_write_bytes": kernel.dram_write_bytes,
        "achieved_occupancy": kernel.achieved_occupancy,
        "grid": list(kernel.grid),
        "block": list(kernel.block),
    }


def kernel_from_dict(data: dict[str, Any]) -> KernelProfile:
    return KernelProfile(
        name=data["name"],
        layer_index=data["layer_index"],
        position=data["position"],
        latency_ms=data["latency_ms"],
        flops=data["flops"],
        dram_read_bytes=data["dram_read_bytes"],
        dram_write_bytes=data["dram_write_bytes"],
        achieved_occupancy=data["achieved_occupancy"],
        grid=tuple(data["grid"]),
        block=tuple(data["block"]),
    )


def layer_to_dict(layer: LayerProfile) -> dict[str, Any]:
    return {
        "index": layer.index,
        "name": layer.name,
        "layer_type": layer.layer_type,
        "shape": list(layer.shape),
        "latency_ms": layer.latency_ms,
        "alloc_bytes": layer.alloc_bytes,
        "kernels": [kernel_to_dict(k) for k in layer.kernels],
    }


def layer_from_dict(data: dict[str, Any]) -> LayerProfile:
    return LayerProfile(
        index=data["index"],
        name=data["name"],
        layer_type=data["layer_type"],
        shape=tuple(data["shape"]),
        latency_ms=data["latency_ms"],
        alloc_bytes=data["alloc_bytes"],
        kernels=[kernel_from_dict(k) for k in data["kernels"]],
    )


def profile_to_dict(profile: ModelProfile) -> dict[str, Any]:
    """Lossless JSON form of a merged profile (floats via repr round-trip)."""
    return {
        "model_name": profile.model_name,
        "system": profile.system,
        "framework": profile.framework,
        "batch": profile.batch,
        "model_latency_ms": profile.model_latency_ms,
        "layers": [layer_to_dict(layer) for layer in profile.layers],
        "overheads": dict(profile.overheads),
        "n_runs": profile.n_runs,
        "metadata": {k: _jsonable(v) for k, v in profile.metadata.items()},
    }


def profile_from_dict(data: dict[str, Any]) -> ModelProfile:
    return ModelProfile(
        model_name=data["model_name"],
        system=data["system"],
        framework=data["framework"],
        batch=data["batch"],
        model_latency_ms=data["model_latency_ms"],
        layers=[layer_from_dict(layer) for layer in data["layers"]],
        overheads=dict(data["overheads"]),
        n_runs=data["n_runs"],
        metadata=dict(data.get("metadata", {})),
    )


# -- the store --------------------------------------------------------------


class ProfileStore:
    """Directory of versioned, keyed :class:`ModelProfile` JSON documents.

    One file per (model, system, framework, batch, runs_per_level)
    combination.  Writes are atomic (temp file + rename), so a crashed or
    concurrent writer can never leave a half-written entry that a reader
    would trust; unreadable or mismatched entries degrade to cache misses.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keying -----------------------------------------------------------
    @staticmethod
    def key(
        model: str, system: str, framework: str, batch: int,
        runs_per_level: int, statistic: str = "trimmed_mean",
    ) -> dict[str, Any]:
        return {
            "model": model,
            "system": system,
            "framework": framework,
            "batch": batch,
            "runs_per_level": runs_per_level,
            "statistic": statistic,
        }

    def path_for(
        self, model: str, system: str, framework: str, batch: int,
        runs_per_level: int, statistic: str = "trimmed_mean",
    ) -> Path:
        name = (
            f"{_slug(model)}__{_slug(system)}__{_slug(framework)}"
            f"__b{batch}__r{runs_per_level}__{_slug(statistic)}.json"
        )
        return self.root / name

    # -- operations --------------------------------------------------------
    def get(
        self, model: str, system: str, framework: str, batch: int,
        runs_per_level: int, statistic: str = "trimmed_mean",
    ) -> ModelProfile | None:
        """The stored profile, or ``None`` on any kind of miss."""
        path = self.path_for(
            model, system, framework, batch, runs_per_level, statistic
        )
        try:
            with open(path) as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("schema_version") != SCHEMA_VERSION:
            return None  # stale schema: recompute rather than misread
        if document.get("key") != self.key(
            model, system, framework, batch, runs_per_level, statistic
        ):
            return None
        try:
            return profile_from_dict(document["profile"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self, profile: ModelProfile, *, runs_per_level: int,
        statistic: str = "trimmed_mean",
    ) -> Path:
        """Persist ``profile`` under its coordinates; returns the path."""
        path = self.path_for(
            profile.model_name, profile.system, profile.framework,
            profile.batch, runs_per_level, statistic,
        )
        document = {
            "schema_version": SCHEMA_VERSION,
            "key": self.key(
                profile.model_name, profile.system, profile.framework,
                profile.batch, runs_per_level, statistic,
            ),
            "profile": profile_to_dict(profile),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry — and any ``*.tmp`` orphan a crashed
        :meth:`put` left behind — returning the number removed."""
        removed = 0
        for pattern in ("*.json", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self) -> Iterator[Path]:
        """Committed entries only; in-flight/orphaned ``.tmp`` files are
        never visible (the explicit filter guards against a future key
        scheme whose names could make ``*.json`` match them)."""
        return iter(sorted(
            path for path in self.root.glob("*.json")
            if not path.name.endswith(".tmp")
        ))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
