"""Library-level profiling — the paper's Sec. III-E extension.

"One can also add a ML library profiling level between the layer- and GPU
kernel-level to measure the cuDNN API calls."  This module does exactly
that: it synthesizes LIBRARY-level spans from the runtime's launch
records, grouping consecutive kernels of one library invocation within a
layer into a single API-call span (``cudnnConvolutionForward``,
``cublasSgemm``, ...).  The spans slot between the layer and GPU-kernel
levels, and the standard interval-tree reconstruction then parents
kernels on API calls and API calls on layers — no changes to the
framework or to the correlation machinery, demonstrating the design's
extensibility.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.cuda import KernelLaunchRecord
from repro.sim.kernels import KernelClass
from repro.tracing.span import Level, Span
from repro.tracing.tracer import BufferingTracer

#: Library tag (KernelSpec.tags["library"]) + kernel class -> API name.
_API_NAMES: dict[tuple[str, KernelClass], str] = {
    ("cudnn", KernelClass.CONV_IMPLICIT_GEMM): "cudnnConvolutionForward",
    ("cudnn", KernelClass.CONV_PRECOMP_GEMM): "cudnnConvolutionForward",
    ("cudnn", KernelClass.CONV_CGEMM): "cudnnConvolutionForward",
    ("cudnn", KernelClass.CONV_DEPTHWISE): "cudnnConvolutionForward",
    ("cudnn", KernelClass.MEMORY_MOVEMENT): "cudnnConvolutionForward",
    ("cudnn", KernelClass.POOL): "cudnnPoolingForward",
    ("cudnn", KernelClass.REDUCTION): "cudnnSoftmaxForward",
    ("cublas", KernelClass.GEMM): "cublasSgemm",
}


def api_name_for(record: KernelLaunchRecord) -> str:
    """The library API call a kernel launch belongs to."""
    library = str(record.spec.tags.get("library", ""))
    klass = record.spec.klass
    if (library, klass) in _API_NAMES:
        return _API_NAMES[(library, klass)]
    if library == "eigen" or record.spec.name.startswith("Eigen::"):
        return "Eigen::TensorDevice::run"
    if library in ("mshadow", "mxnet") or record.spec.name.startswith("mxnet::"):
        return "mxnet::op::Kernel::Launch"
    if library == "tensorflow":
        return "tensorflow::LaunchDepthwiseConvOp"
    return "launchGenericOp"


class LibraryTracer(BufferingTracer):
    """Tracer synthesizing library-API spans from kernel launch records."""

    def __init__(
        self,
        sink: Callable[[Span], None] | None = None,
        batch_sink: Callable[[Iterable[Span]], None] | None = None,
    ) -> None:
        super().__init__("library_tracer", Level.LIBRARY, sink, batch_sink)

    def convert(self, launch_records: list[KernelLaunchRecord]) -> list[Span]:
        """One span per maximal run of launches belonging to the same API
        call within the same layer.

        A library API call (e.g. cudnnConvolutionForward) may launch
        several kernels back-to-back (ShuffleTensor + OffsetComp + the
        GEMM); its host interval covers all their launch API calls.
        """
        spans: list[Span] = []
        group: list[KernelLaunchRecord] = []
        group_key: tuple[str, object] | None = None

        def flush() -> None:
            if not group:
                return
            api = api_name_for(group[0])
            spans.append(
                Span(
                    name=api,
                    start_ns=group[0].api_start_ns,
                    end_ns=group[-1].api_end_ns,
                    level=Level.LIBRARY,
                    tags={
                        "library": str(group[0].spec.tags.get("library", "")),
                        "n_kernels": len(group),
                        "layer_index": group[0].spec.tags.get("layer_index"),
                    },
                )
            )

        for record in launch_records:
            key = (
                api_name_for(record),
                record.spec.tags.get("layer_index"),
            )
            if key != group_key:
                flush()
                group = []
                group_key = key
            group.append(record)
        flush()
        return self.publish_many(spans)
