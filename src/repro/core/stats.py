"""Statistical summaries for multi-run profiles.

The analysis pipeline "takes traces from a user-defined number of
evaluations, correlates the information, and computes the trimmed mean
value (or other user-defined statistical summaries) for the same
performance value across runs" (paper Sec. III-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

Statistic = Callable[[Sequence[float]], float]


def trimmed_mean(values: Sequence[float], proportion: float = 0.2) -> float:
    """Symmetric trimmed mean: drop ``proportion`` of each tail.

    Falls back to the plain mean when trimming would discard everything.
    """
    if not values:
        raise ValueError("trimmed_mean of empty sequence")
    if not 0.0 <= proportion < 0.5:
        raise ValueError(f"trim proportion must be in [0, 0.5), got {proportion}")
    ordered = sorted(values)
    k = int(math.floor(len(ordered) * proportion))
    trimmed = ordered[k : len(ordered) - k] if k else ordered
    if not trimmed:
        trimmed = ordered
    return sum(trimmed) / len(trimmed)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one performance value across runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("Summary.of empty sequence")
        m = sum(values) / len(values)
        var = sum((v - m) ** 2 for v in values) / len(values)
        return Summary(
            mean=m, std=math.sqrt(var), minimum=min(values), maximum=max(values),
            n=len(values),
        )
