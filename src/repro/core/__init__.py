"""XSP core: across-stack profiling sessions and leveled experimentation.

This package is the paper's primary contribution:

* :mod:`repro.core.levels`    — profiling level-set algebra (M, M/L, M/L/G)
* :mod:`repro.core.api`       — startSpan/finishSpan user tracing API
* :mod:`repro.core.profilers` — the three tracers (model, layer, GPU)
* :mod:`repro.core.session`   — XSPSession: wires tracers into one run and
                                aggregates spans into a timeline trace
* :mod:`repro.core.leveled`   — leveled experimentation (Sec. III-C)
* :mod:`repro.core.pipeline`  — multi-run pipeline + trimmed-mean profiles
* :mod:`repro.core.cache`     — persistent on-disk profile store
* :mod:`repro.core.stats`     — statistical summaries
"""

from repro.core.levels import ProfilingLevelSet, M, ML, MLG, MLLibG
from repro.core.api import SpanScope, start_span, finish_span
from repro.core.library_level import LibraryTracer
from repro.core.session import ProfiledRun, ProfilingConfig, XSPSession
from repro.core.leveled import LeveledExperiment, LeveledResult
from repro.core.pipeline import (
    AnalysisPipeline,
    KernelProfile,
    LayerProfile,
    ModelProfile,
)
from repro.core.cache import ProfileStore
from repro.core.stats import trimmed_mean

__all__ = [
    "AnalysisPipeline",
    "KernelProfile",
    "LayerProfile",
    "LeveledExperiment",
    "LeveledResult",
    "LibraryTracer",
    "M",
    "ML",
    "MLG",
    "MLLibG",
    "ModelProfile",
    "ProfileStore",
    "ProfiledRun",
    "ProfilingConfig",
    "ProfilingLevelSet",
    "SpanScope",
    "XSPSession",
    "finish_span",
    "start_span",
    "trimmed_mean",
]
