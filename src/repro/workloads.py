"""Workload helpers: batch sweeps and quick model-level measurements.

Characterizing 55 models across batch sizes (Table VIII) does not need
the full profiling ladder at every point — A1 only needs model-level
profiling.  These helpers run cheap M-only evaluations for latency and
throughput curves, and full across-stack profiles only where an analysis
requires them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.a01_model_info import optimal_batch_size, throughputs
from repro.core.levels import M
from repro.core.session import ProfilingConfig, XSPSession
from repro.core.stats import Statistic, trimmed_mean
from repro.frameworks.graph import Graph
from repro.sim.memory import OutOfDeviceMemoryError


@dataclass
class ThroughputCurve:
    """Latency/throughput across batch sizes for one model."""

    model_name: str
    system: str
    framework: str
    latencies_ms: dict[int, float]

    @property
    def throughputs(self) -> dict[int, float]:
        return throughputs(self.latencies_ms)

    @property
    def optimal_batch(self) -> int:
        return optimal_batch_size(self.latencies_ms)

    @property
    def max_throughput(self) -> float:
        return max(self.throughputs.values())

    @property
    def online_latency_ms(self) -> float:
        """Latency at batch size 1 (the paper's "online latency")."""
        if 1 not in self.latencies_ms:
            raise KeyError("curve was not measured at batch size 1")
        return self.latencies_ms[1]


def measure_latency(
    session: XSPSession,
    graph: Graph,
    batch: int,
    *,
    runs: int = 3,
    statistic: Statistic = trimmed_mean,
) -> float:
    """Model-level-only latency measurement (ms), repeated + summarized."""
    config = ProfilingConfig(levels=M, metrics=())
    samples = []
    for i in range(runs):
        run = session.profile(graph, batch, replace(config, run_index=i))
        samples.append(run.model_latency_ms)
    return statistic(samples)


def throughput_curve(
    session: XSPSession,
    graph: Graph,
    batches: Sequence[int],
    *,
    runs: int = 3,
    statistic: Statistic = trimmed_mean,
) -> ThroughputCurve:
    """Measure the A1 curve over ``batches`` (Fig. 3).

    Batch sizes that exhaust device memory end the sweep — exactly what
    caps the optimal batch size of large-input models (the paper's
    1200x1200 detectors and DeepLab report optimal batch 1-4).
    """
    latencies: dict[int, float] = {}
    for batch in sorted(batches):
        try:
            latencies[batch] = measure_latency(
                session, graph, batch, runs=runs, statistic=statistic
            )
        except OutOfDeviceMemoryError:
            break
    if not latencies:
        raise OutOfDeviceMemoryError(
            f"{graph.name} does not fit on {session.gpu.name} even at the "
            f"smallest requested batch size"
        )
    return ThroughputCurve(
        model_name=graph.name,
        system=session.gpu.name,
        framework=session.framework_cls.name,
        latencies_ms=latencies,
    )


def extend_curve_to_optimum(
    session: XSPSession,
    graph: Graph,
    curve: ThroughputCurve,
    *,
    max_batch: int = 512,
    runs: int = 3,
) -> ThroughputCurve:
    """Keep doubling the largest batch until the optimal-batch rule fires.

    Guarantees the reported optimum is interior to the measured range
    (or capped at ``max_batch``).
    """
    while True:
        batches = sorted(curve.latencies_ms)
        top = batches[-1]
        if curve.optimal_batch < top or top >= max_batch:
            return curve
        nxt = top * 2
        curve.latencies_ms[nxt] = measure_latency(session, graph, nxt, runs=runs)
