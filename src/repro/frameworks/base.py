"""Framework ABC and the shared layer-execution engine.

A framework compiles a model graph into a layer plan (framework-specific
rewrites, see :mod:`repro.frameworks.optimizer`) and executes it against
the simulated CUDA runtime: per layer, it pays host-side scheduling cost,
allocates the output tensor, launches the layer's kernels, and waits for
the stream.  The difference between a layer's latency and its kernels'
device time is the paper's "non-GPU latency" (Fig. 8).

The built-in layer profiler mirrors the real frameworks': enabling it adds
per-layer overhead to the prediction latency while the recorded per-layer
latencies stay accurate (the basis of leveled experimentation, Fig. 2);
output is produced in each framework's *native* format
(:mod:`repro.frameworks.profiler_format`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.frameworks.graph import Graph
from repro.frameworks.optimizer import PlanLayer, RewriteRules, build_plan
from repro.frameworks.profiler_format import LayerRecord
from repro.frameworks.shapes import (
    TensorShape,
    infer_shapes,
    model_weight_bytes,
)
from repro.sim.calibration import (
    HOST_CALIBRATION,
    PROFILING_CALIBRATION,
    HostCalibration,
    ProfilingCalibration,
)
from repro.sim.cuda import CudaRuntime
from repro.sim.memory import Allocation


@dataclass
class RunOptions:
    """TensorFlow-style per-call options (RunOptions.TraceLevel analog)."""

    trace_level: str = "NONE"  # "NONE" | "FULL"

    @property
    def layer_profiling(self) -> bool:
        return self.trace_level == "FULL"


@dataclass
class PredictionResult:
    """Outcome of one model-prediction call."""

    batch: int
    start_ns: int
    end_ns: int
    output_shapes: dict[str, tuple[int, ...]]
    #: Framework-native profile dump (None unless layer profiling was on).
    native_profile: dict[str, Any] | None = None
    #: High-water device memory during the prediction (weights + live
    #: activations under liveness-based freeing).
    peak_device_memory_bytes: int = 0

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6


@dataclass
class CompiledModel:
    """A graph compiled for one framework."""

    graph: Graph
    plan: list[PlanLayer]
    framework: str
    weight_bytes: int
    _shape_cache: dict[int, dict[str, TensorShape]] = field(default_factory=dict)

    def shapes(self, batch: int) -> dict[str, TensorShape]:
        if batch not in self._shape_cache:
            self._shape_cache[batch] = infer_shapes(self.graph, batch)
        return self._shape_cache[batch]

    @property
    def n_layers(self) -> int:
        return len(self.plan)

    def layer_types(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for layer in self.plan:
            hist[layer.layer_type] = hist.get(layer.layer_type, 0) + 1
        return hist


class Framework(abc.ABC):
    """Base class for the TensorFlow-like and MXNet-like simulators."""

    #: Registry key; must match a HOST_CALIBRATION / profiler-format entry.
    name: str = ""
    display_name: str = ""
    #: Extra host cost per layer for host-interactive ops, as
    #: (fixed_us, per_output_MB_us, per_image_us).  `Where` dominates
    #: object-detection model latency through host round-trips whose work
    #: scales with the number of images' boxes (paper Sec. IV-A).
    HOST_EXTRA_US: dict[str, tuple[float, float, float]] = {
        "Where": (40.0, 80.0, 95.0),
        "Transpose": (8.0, 0.0, 0.0),
        "Concat": (6.0, 0.0, 0.0),
        "Reshape": (-2.0, 0.0, 0.0),  # pure metadata update
    }

    def __init__(
        self,
        runtime: CudaRuntime,
        *,
        profiling_calibration: ProfilingCalibration = PROFILING_CALIBRATION,
    ) -> None:
        if not self.name:
            raise TypeError("Framework subclasses must set a registry name")
        self.runtime = runtime
        self.host: HostCalibration = HOST_CALIBRATION[self.name]
        self.profiling_calibration = profiling_calibration
        self._profiler_state = False  # MXNet-style toggle

    # -- framework-specific hooks ------------------------------------------
    @property
    @abc.abstractmethod
    def rewrite_rules(self) -> RewriteRules:
        """Compilation rules (BN decomposition, type labels, naming)."""

    @abc.abstractmethod
    def emit_kernels(
        self, layer: PlanLayer, shapes: dict[str, TensorShape]
    ) -> list[Any]:
        """GPU kernels launched by one layer (list of KernelSpec)."""

    @abc.abstractmethod
    def serialize_profile(self, records: list[LayerRecord]) -> dict[str, Any]:
        """Dump layer records in the framework's native profiler format."""

    # -- profiler control -----------------------------------------------------
    def set_profiler_state(self, active: bool) -> None:
        """MXNet-style global profiler toggle (MXSetProfilerState analog)."""
        self._profiler_state = active

    def _profiling_active(self, options: RunOptions | None) -> bool:
        if options is not None and options.layer_profiling:
            return True
        return self._profiler_state

    # -- compilation -------------------------------------------------------------
    def load(self, graph: Graph) -> CompiledModel:
        """Compile a model graph for execution on this framework."""
        return CompiledModel(
            graph=graph,
            plan=build_plan(graph, self.rewrite_rules),
            framework=self.name,
            weight_bytes=model_weight_bytes(graph),
        )

    # -- prediction ----------------------------------------------------------------
    def predict(
        self,
        model: CompiledModel,
        batch: int,
        options: RunOptions | None = None,
    ) -> PredictionResult:
        """Run one inference; all time accounting is virtual nanoseconds."""
        if model.framework != self.name:
            raise ValueError(
                f"model compiled for {model.framework!r} cannot run on {self.name!r}"
            )
        rt = self.runtime
        clock = rt.clock
        profiling = self._profiling_active(options)
        shapes = model.shapes(batch)

        start_ns = clock.now()
        clock.advance_us(self.host.run_fixed_us + self.host.per_image_us * batch)
        weights: Allocation | None = None
        if model.weight_bytes:
            weights = rt.memory.alloc(
                model.weight_bytes, tag="__weights__", timestamp_ns=clock.now()
            )

        refcounts = self._consumer_counts(model.plan)
        live: dict[str, Allocation] = {}
        records: list[LayerRecord] = []

        for layer in model.plan:
            out_shape = shapes[layer.source]
            self._execute_layer(layer, out_shape, shapes, live, records, profiling)
            self._release_dead_inputs(layer, refcounts, live)

        # Copy the model output(s) back to the host.
        for out in model.graph.outputs():
            rt.memcpy(shapes[out.name].nbytes, kind="d2h")
        for alloc in live.values():
            rt.memory.free(alloc, timestamp_ns=clock.now())
        if weights is not None:
            rt.memory.free(weights, timestamp_ns=clock.now())

        end_ns = clock.now()
        return PredictionResult(
            batch=batch,
            start_ns=start_ns,
            end_ns=end_ns,
            output_shapes={
                out.name: shapes[out.name].dims for out in model.graph.outputs()
            },
            native_profile=self.serialize_profile(records) if profiling else None,
            peak_device_memory_bytes=rt.memory.peak_bytes,
        )

    # -- internals ---------------------------------------------------------------------
    def _execute_layer(
        self,
        layer: PlanLayer,
        out_shape: TensorShape,
        shapes: dict[str, TensorShape],
        live: dict[str, Allocation],
        records: list[LayerRecord],
        profiling: bool,
    ) -> None:
        rt = self.runtime
        clock = rt.clock
        layer_start = clock.now()

        out_bytes = 0 if layer.op in ("Reshape",) else out_shape.nbytes
        extra_fixed, extra_per_mb, extra_per_image = self.HOST_EXTRA_US.get(
            layer.op, (0.0, 0.0, 0.0)
        )
        out_mb = out_bytes / 1e6
        host_us = (
            self.host.layer_fixed_us
            + self.host.layer_per_mb_us * out_mb
            + extra_fixed
            + extra_per_mb * out_mb
            + extra_per_image * out_shape.batch
        )
        clock.advance_us(max(0.5, host_us))

        if out_bytes:
            live[layer.name] = rt.memory.alloc(
                out_bytes, tag=layer.name, timestamp_ns=clock.now()
            )

        if layer.op == "Data":
            # Feeding the input: host-to-device copy of the input tensor.
            rt.memcpy(out_shape.nbytes, kind="h2d")
        else:
            for spec in self.emit_kernels(layer, shapes):
                rt.launch_kernel(
                    spec.with_tags(layer_index=layer.index, layer_name=layer.name)
                )
            rt.stream_synchronize()

        layer_end = clock.now()
        if profiling:
            records.append(
                LayerRecord(
                    index=layer.index,
                    name=layer.name,
                    layer_type=layer.layer_type,
                    shape=out_shape.dims,
                    start_ns=layer_start,
                    end_ns=layer_end,
                    alloc_bytes=out_bytes,
                )
            )
            # The profiler's own record-keeping cost lands *after* the
            # measured region: layer latencies stay accurate while the
            # prediction latency inflates (Fig. 2).
            clock.advance_us(self.profiling_calibration.framework_layer_us)

    @staticmethod
    def _consumer_counts(plan: list[PlanLayer]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for layer in plan:
            for inp in layer.inputs:
                counts[inp] = counts.get(inp, 0) + 1
        return counts

    def _release_dead_inputs(
        self,
        layer: PlanLayer,
        refcounts: dict[str, int],
        live: dict[str, Allocation],
    ) -> None:
        for inp in layer.inputs:
            if inp not in refcounts:
                continue
            refcounts[inp] -= 1
            if refcounts[inp] == 0 and inp in live:
                self.runtime.memory.free(
                    live.pop(inp), timestamp_ns=self.runtime.clock.now()
                )
