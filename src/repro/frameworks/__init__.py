"""ML framework simulators.

Two frameworks are modeled, mirroring the paper's evaluation:

* :class:`repro.frameworks.tensorflow_like.TFSim` — TensorFlow-like:
  decomposes batch norm into Mul/Add executed by Eigen kernels (the paper:
  "ResNet modules get executed by TensorFlow as a Conv2D -> Mul -> Add ->
  Relu layer sequence"), dispatches element-wise work to the
  memory-hungry Eigen library, and exposes a ``RunOptions``-style profiler.
* :class:`repro.frameworks.mxnet_like.MXSim` — MXNet-like: keeps batch
  norm fused, uses leaner mshadow element-wise kernels, has a larger fixed
  per-prediction host overhead (the paper's small-batch latency gap), and
  exposes an ``MXSetProfilerState``-style profiler.

Both execute the same :mod:`repro.frameworks.graph` IR against the
simulated CUDA runtime, so models from :mod:`repro.models` run unmodified
on either framework.
"""

from repro.frameworks.graph import Graph, Node
from repro.frameworks.shapes import TensorShape, infer_shapes
from repro.frameworks.base import Framework, PredictionResult, RunOptions
from repro.frameworks.tensorflow_like import TFSim
from repro.frameworks.mxnet_like import MXSim

__all__ = [
    "Framework",
    "Graph",
    "MXSim",
    "Node",
    "PredictionResult",
    "RunOptions",
    "TFSim",
    "TensorShape",
    "infer_shapes",
]
