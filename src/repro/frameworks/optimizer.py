"""Graph-to-plan compilation with framework-specific rewrite passes.

A framework does not execute the model graph verbatim — "the measured
layers may be different from the ones statically defined in the model
graph, since a framework may perform model optimization at runtime"
(paper Sec. III-D2).  The TensorFlow-like framework decomposes BatchNorm
into Mul + Add element-wise layers (so ResNet's Conv->BN->Relu modules
execute as Conv2D -> Mul -> Add -> Relu), drops Identity ops, and splits
Dense into MatMul + BiasAdd.  The MXNet-like framework keeps BatchNorm and
Dense fused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.frameworks.graph import Graph, Node


@dataclass
class PlanLayer:
    """One executable layer in a compiled plan."""

    index: int
    name: str
    layer_type: str  # framework-native type label ("Conv2D", "Mul", ...)
    op: str  # neutral execution op driving kernel emission
    inputs: list[str]  # names of producer plan layers
    source: str  # original graph node whose output shape this layer has
    #: Graph node names whose shapes are this layer's input shapes.
    source_inputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RewriteRules:
    """Per-framework compilation behaviour."""

    #: Decompose BatchNorm into Mul + Add element-wise layers (TF path).
    decompose_batchnorm: bool
    #: Split Dense into MatMul + BiasAdd layers (TF path).
    split_dense: bool
    #: Native type label per neutral op.
    type_map: dict[str, str]
    #: Name layers "<node>/<Type>" (TF style) instead of bare node names.
    slash_names: bool


def _layer_name(node_name: str, native_type: str, *, slash: bool) -> str:
    return f"{node_name}/{native_type}" if slash else node_name


def build_plan(graph: Graph, rules: RewriteRules) -> list[PlanLayer]:
    """Compile a graph into an ordered layer plan under ``rules``.

    Returns layers in execution order with 1-based indices (matching the
    paper's layer-index convention in Tables II/V).
    """
    graph.validate()
    plan: list[PlanLayer] = []
    # Graph node name -> plan layer name producing that node's value.
    produced_by: dict[str, str] = {}

    def emit(
        name: str,
        layer_type: str,
        op: str,
        inputs: list[str],
        source: str,
        source_inputs: list[str],
        attrs: dict[str, Any] | None = None,
    ) -> PlanLayer:
        layer = PlanLayer(
            index=len(plan) + 1,
            name=name,
            layer_type=layer_type,
            op=op,
            inputs=inputs,
            source=source,
            source_inputs=source_inputs,
            attrs=dict(attrs or {}),
        )
        plan.append(layer)
        return layer

    def resolve_inputs(node: Node) -> list[str]:
        return [produced_by[i] for i in node.inputs]

    for node in graph.topological_order():
        op = node.op
        if op == "Identity":
            # Folded away at compile time; consumers read through it.
            produced_by[node.name] = produced_by[node.inputs[0]]
            continue

        if op == "BatchNorm" and rules.decompose_batchnorm:
            mul_name = _layer_name(node.name, "mul", slash=rules.slash_names)
            add_name = _layer_name(node.name, "add", slash=rules.slash_names)
            emit(mul_name, rules.type_map["EltMul"], "EltMul",
                 resolve_inputs(node), node.name, list(node.inputs), node.attrs)
            emit(add_name, rules.type_map["EltAdd"], "EltAdd",
                 [mul_name], node.name, [node.name], node.attrs)
            produced_by[node.name] = add_name
            continue

        if op == "Dense" and rules.split_dense:
            mm_name = _layer_name(node.name, rules.type_map["MatMul"],
                                  slash=rules.slash_names)
            ba_name = _layer_name(node.name, rules.type_map["BiasAdd"],
                                  slash=rules.slash_names)
            emit(mm_name, rules.type_map["MatMul"], "MatMul",
                 resolve_inputs(node), node.name, list(node.inputs), node.attrs)
            emit(ba_name, rules.type_map["BiasAdd"], "BiasAdd",
                 [mm_name], node.name, [node.name], node.attrs)
            produced_by[node.name] = ba_name
            continue

        neutral = _neutral_op(node)
        native = rules.type_map[neutral]
        name = _layer_name(node.name, native, slash=rules.slash_names)
        emit(name, native, neutral, resolve_inputs(node), node.name,
             list(node.inputs), node.attrs)
        produced_by[node.name] = name

    return plan


def _neutral_op(node: Node) -> str:
    """Map a graph op to the neutral execution-op vocabulary."""
    op = node.op
    if op == "Input":
        return "Data"
    if op == "Add":
        # Multi-tensor adds (residual connections) are N-ary sums; TF
        # reports them as AddN, distinct from BN's broadcast Add.
        return "EltAddN"
    if op == "Mul":
        return "EltMul"
    if op == "Dense":
        return "Dense"
    if op == "BatchNorm":
        return "BatchNormFused"
    if op == "GlobalAvgPool":
        return "Mean"
    if op == "Flatten":
        return "Reshape"
    if op == "ResizeBilinear":
        return "Resize"
    return op  # Conv2D, DepthwiseConv2D, Relu, MaxPool, Softmax, Where, ...


#: Neutral-op -> TensorFlow-native layer-type labels (paper's vocabulary:
#: Conv2D, DepthwiseConv2dNative, Mul, Add, AddN, Relu, Mean, MatMul...).
TF_TYPE_MAP: dict[str, str] = {
    "Data": "Data",
    "Conv2D": "Conv2D",
    "DepthwiseConv2D": "DepthwiseConv2dNative",
    "EltMul": "Mul",
    "EltAdd": "Add",
    "EltAddN": "AddN",
    "Relu": "Relu",
    "Relu6": "Relu6",
    "Sigmoid": "Sigmoid",
    "Tanh": "Tanh",
    "LRN": "LRN",
    "MaxPool": "MaxPool",
    "AvgPool": "AvgPool",
    "Mean": "Mean",
    "MatMul": "MatMul",
    "BiasAdd": "BiasAdd",
    "Softmax": "Softmax",
    "Concat": "ConcatV2",
    "Reshape": "Reshape",
    "Pad": "Pad",
    "Where": "Where",
    "Transpose": "Transpose",
    "Resize": "ResizeBilinear",
}

#: Neutral-op -> MXNet-native layer-type labels.
MX_TYPE_MAP: dict[str, str] = {
    "Data": "Data",
    "Conv2D": "Convolution",
    "DepthwiseConv2D": "Convolution",
    "BatchNormFused": "BatchNorm",
    "EltMul": "broadcast_mul",
    "EltAdd": "broadcast_add",
    "EltAddN": "elemwise_add",
    "Relu": "Activation",
    "Relu6": "clip",
    "Sigmoid": "Activation",
    "Tanh": "Activation",
    "LRN": "LRN",
    "MaxPool": "Pooling",
    "AvgPool": "Pooling",
    "Mean": "Pooling",
    "Dense": "FullyConnected",
    "Softmax": "softmax",
    "Concat": "Concat",
    "Reshape": "Flatten",
    "Pad": "Pad",
    "Where": "where",
    "Transpose": "transpose",
    "Resize": "UpSampling",
}

TF_REWRITE_RULES = RewriteRules(
    decompose_batchnorm=True,
    split_dense=True,
    type_map=TF_TYPE_MAP,
    slash_names=True,
)

MX_REWRITE_RULES = RewriteRules(
    decompose_batchnorm=False,
    split_dense=False,
    type_map=MX_TYPE_MAP,
    slash_names=False,
)
