"""TFSim — the TensorFlow-like framework simulator.

Behaviours reproduced from the paper:

* Runtime graph rewriting: BatchNorm decomposes into Mul + Add layers, so
  ResNet's Conv->BN->Relu modules execute as Conv2D -> Mul -> Add -> Relu
  (Sec. III-D2); Dense splits into MatMul + BiasAdd.
* Element-wise layers dispatch to Eigen kernels, whose excessive DRAM
  traffic limits memory-bound models (Sec. IV-B).
* Layer profiling is requested per prediction call via
  ``RunOptions(trace_level="FULL")`` — the ``RunOptions.TraceLevel``
  mechanism the paper describes for TF_SessionRun — and the profile is
  returned in a TF step-stats-like native format.
"""

from __future__ import annotations

from typing import Any

from repro.frameworks.base import Framework
from repro.frameworks.lowering import conv_geometry, depthwise_geometry, pool_window
from repro.frameworks.optimizer import TF_REWRITE_RULES, PlanLayer, RewriteRules
from repro.frameworks.profiler_format import LayerRecord, tf_step_stats
from repro.frameworks.shapes import TensorShape
from repro.sim import cublas, cudnn, eigen, tensorops
from repro.sim.kernels import KernelSpec


class TFSim(Framework):
    """TensorFlow-like framework running on the simulated CUDA runtime."""

    name = "tensorflow_like"
    display_name = "TensorFlow (simulated)"

    @property
    def rewrite_rules(self) -> RewriteRules:
        return TF_REWRITE_RULES

    def serialize_profile(self, records: list[LayerRecord]) -> dict[str, Any]:
        return tf_step_stats(records)

    def emit_kernels(
        self, layer: PlanLayer, shapes: dict[str, TensorShape]
    ) -> list[KernelSpec]:
        op = layer.op
        gpu = self.runtime.gpu
        out = shapes[layer.source]

        if op == "Conv2D":
            return cudnn.convolution_forward_kernels(
                conv_geometry(layer, shapes), gpu, fused_relu=True
            )
        if op == "DepthwiseConv2D":
            # TF's own depthwise kernel: im2col-style staging moves ~3x the
            # tensor bytes (Sec. IV-B framework comparison).
            return [
                cudnn.depthwise_forward_kernel(
                    depthwise_geometry(layer, shapes),
                    name="tensorflow::DepthwiseConv2dGPUKernelNCHW",
                    traffic_scale=3.2,
                    library="tensorflow",
                )
            ]
        if op == "EltMul":
            return [eigen.multiply_kernel(out.elems)]
        if op in ("EltAdd", "BiasAdd"):
            return [eigen.add_kernel(out.elems)]
        if op == "EltAddN":
            return [eigen.addn_kernel(out.elems, n_inputs=max(2, len(layer.inputs)))]
        if op == "Relu":
            return [eigen.max_kernel(out.elems)]
        if op == "Relu6":
            return [eigen.relu6_kernel(out.elems)]
        if op == "Sigmoid":
            return [eigen.sigmoid_kernel(out.elems)]
        if op == "Tanh":
            return [eigen.tanh_kernel(out.elems)]
        if op in ("MaxPool", "AvgPool"):
            x = shapes[layer.source_inputs[0]]
            kh, _ = pool_window(layer)
            return [
                cudnn.pooling_forward_kernel(
                    out.batch, out.channels, out.height, out.width, kh,
                    in_h=x.height, in_w=x.width,
                )
            ]
        if op == "Mean":
            x = shapes[layer.source_inputs[0]]
            return [tensorops.mean_reduce_kernel(x.elems, out.elems)]
        if op == "MatMul":
            x = shapes[layer.source_inputs[0]]
            return cublas.dense_layer_kernels(
                x.batch, x.per_image_elems, layer.attrs["units"], gpu
            )
        if op == "Softmax":
            return [cudnn.softmax_forward_kernel(out.batch, out.per_image_elems)]
        if op == "Concat":
            return [tensorops.concat_kernel(out.elems, n_inputs=len(layer.inputs))]
        if op == "Reshape":
            return []
        if op == "Pad":
            return [tensorops.pad_kernel(out.elems)]
        if op == "Where":
            return tensorops.where_kernels(out.elems)
        if op == "Transpose":
            return [tensorops.transpose_kernel(out.elems)]
        if op == "Resize":
            x = shapes[layer.source_inputs[0]]
            return [tensorops.resize_bilinear_kernel(out.elems, x.elems)]
        if op == "LRN":
            return [tensorops.lrn_kernel(out.elems)]
        raise ValueError(f"TFSim cannot lower op {op!r} (layer {layer.name!r})")
