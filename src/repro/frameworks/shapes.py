"""Shape inference over the graph IR.

Tensors use NCHW layout (as the paper's Table II layer shapes do, e.g.
<256, 512, 7, 7>) or a flat (N, F) layout after Flatten/Dense.  Shape
inference is the ground truth for flop counts, DRAM traffic, and per-layer
memory allocation throughout the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.frameworks.graph import Graph, Node

_F32 = 4


@dataclass(frozen=True)
class TensorShape:
    """An N-dimensional tensor shape (batch first)."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError(f"invalid tensor shape {self.dims}")

    @property
    def batch(self) -> int:
        return self.dims[0]

    @property
    def channels(self) -> int:
        if len(self.dims) < 2:
            raise ValueError(f"shape {self.dims} has no channel dim")
        return self.dims[1]

    @property
    def height(self) -> int:
        if len(self.dims) != 4:
            raise ValueError(f"shape {self.dims} is not NCHW")
        return self.dims[2]

    @property
    def width(self) -> int:
        if len(self.dims) != 4:
            raise ValueError(f"shape {self.dims} is not NCHW")
        return self.dims[3]

    @property
    def elems(self) -> int:
        return math.prod(self.dims)

    @property
    def nbytes(self) -> int:
        return self.elems * _F32

    @property
    def per_image_elems(self) -> int:
        return self.elems // self.batch

    def with_batch(self, batch: int) -> "TensorShape":
        return TensorShape((batch, *self.dims[1:]))

    def __str__(self) -> str:
        return "⟨" + ", ".join(str(d) for d in self.dims) + "⟩"


def _same_pad(in_size: int, kernel: int, stride: int) -> int:
    """Total padding for SAME semantics; returns per-side padding (floor)."""
    out = math.ceil(in_size / stride)
    total = max(0, (out - 1) * stride + kernel - in_size)
    return total // 2


def _conv_out(in_size: int, kernel: int, stride: int, padding: str) -> int:
    if padding == "same":
        return math.ceil(in_size / stride)
    if padding == "valid":
        return (in_size - kernel) // stride + 1
    raise ValueError(f"unknown padding {padding!r}")


def conv_padding_amount(in_size: int, kernel: int, stride: int, padding: str) -> int:
    """Per-side padding used when lowering to the cuDNN geometry.

    TF SAME padding can be asymmetric (e.g. (0, 1) for even inputs at
    stride 2); cuDNN geometries are symmetric, so round the per-side
    padding *up* to keep the lowered output size equal to the inferred
    SAME output size.
    """
    if padding == "same":
        out = math.ceil(in_size / stride)
        total = max(0, (out - 1) * stride + kernel - in_size)
        return (total + 1) // 2
    return 0


def infer_shapes(graph: Graph, batch: int) -> dict[str, TensorShape]:
    """Return output shape for every node at the given batch size."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    shapes: dict[str, TensorShape] = {}
    for node in graph.topological_order():
        shapes[node.name] = _infer_node(node, shapes, batch)
    return shapes


def _in(node: Node, shapes: dict[str, TensorShape], idx: int = 0) -> TensorShape:
    try:
        return shapes[node.inputs[idx]]
    except IndexError:
        raise ValueError(f"node {node.name!r} ({node.op}) missing input {idx}") from None


def _infer_node(node: Node, shapes: dict[str, TensorShape], batch: int) -> TensorShape:
    op = node.op
    a = node.attrs
    if op == "Input":
        c, h, w = a["shape"]
        return TensorShape((batch, c, h, w))
    if op == "Conv2D":
        x = _in(node, shapes)
        kh, kw = _pair(a["kernel"])
        sh, sw = _pair(a.get("strides", 1))
        padding = a.get("padding", "same")
        out_h = _conv_out(x.height, kh, sh, padding)
        out_w = _conv_out(x.width, kw, sw, padding)
        return TensorShape((x.batch, a["filters"], out_h, out_w))
    if op == "DepthwiseConv2D":
        x = _in(node, shapes)
        kh, kw = _pair(a["kernel"])
        sh, sw = _pair(a.get("strides", 1))
        padding = a.get("padding", "same")
        mult = a.get("depth_multiplier", 1)
        out_h = _conv_out(x.height, kh, sh, padding)
        out_w = _conv_out(x.width, kw, sw, padding)
        return TensorShape((x.batch, x.channels * mult, out_h, out_w))
    if op in ("BatchNorm", "Relu", "Relu6", "Sigmoid", "Tanh", "LRN", "Softmax",
              "Where", "Identity"):
        return _in(node, shapes)
    if op in ("MaxPool", "AvgPool"):
        x = _in(node, shapes)
        kh, kw = _pair(a["kernel"])
        sh, sw = _pair(a.get("strides", a["kernel"]))
        padding = a.get("padding", "valid")
        out_h = _conv_out(x.height, kh, sh, padding)
        out_w = _conv_out(x.width, kw, sw, padding)
        return TensorShape((x.batch, x.channels, out_h, out_w))
    if op == "GlobalAvgPool":
        x = _in(node, shapes)
        return TensorShape((x.batch, x.channels, 1, 1))
    if op == "Dense":
        x = _in(node, shapes)
        return TensorShape((x.batch, a["units"]))
    if op == "BiasAdd":
        return _in(node, shapes)
    if op in ("Add", "Mul"):
        x = _in(node, shapes)
        for i in range(1, len(node.inputs)):
            other = _in(node, shapes, i)
            if other.dims != x.dims:
                raise ValueError(
                    f"node {node.name!r}: mismatched {op} shapes {x} vs {other}"
                )
        return x
    if op == "Concat":
        x = _in(node, shapes)
        channels = sum(_in(node, shapes, i).channels for i in range(len(node.inputs)))
        if len(x.dims) == 4:
            return TensorShape((x.batch, channels, x.height, x.width))
        return TensorShape((x.batch, channels))
    if op == "Flatten":
        x = _in(node, shapes)
        return TensorShape((x.batch, x.per_image_elems))
    if op == "Pad":
        x = _in(node, shapes)
        ph, pw = _pair(a.get("pad", 1))
        return TensorShape((x.batch, x.channels, x.height + 2 * ph, x.width + 2 * pw))
    if op == "Transpose":
        return _in(node, shapes)
    if op == "ResizeBilinear":
        x = _in(node, shapes)
        scale = a.get("scale", 2)
        return TensorShape((x.batch, x.channels, x.height * scale, x.width * scale))
    raise ValueError(f"shape inference not implemented for op {op!r}")


def _pair(value: object) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return (int(value[0]), int(value[1]))
    raise ValueError(f"expected int or pair, got {value!r}")


def model_weight_bytes(graph: Graph) -> int:
    """Total parameter bytes (proxy for the paper's frozen-graph size)."""
    total = 0
    shapes = infer_shapes(graph, batch=1)
    for node in graph.topological_order():
        a = node.attrs
        if node.op == "Conv2D":
            x = shapes[node.inputs[0]]
            kh, kw = _pair(a["kernel"])
            total += a["filters"] * x.channels * kh * kw * _F32
            if a.get("use_bias", False):
                total += a["filters"] * _F32
        elif node.op == "DepthwiseConv2D":
            x = shapes[node.inputs[0]]
            kh, kw = _pair(a["kernel"])
            total += x.channels * a.get("depth_multiplier", 1) * kh * kw * _F32
        elif node.op == "BatchNorm":
            x = shapes[node.inputs[0]]
            total += 4 * x.channels * _F32  # scale, shift, mean, variance
        elif node.op == "Dense":
            x = shapes[node.inputs[0]]
            total += a["units"] * x.per_image_elems * _F32 + a["units"] * _F32
    return total
