"""Framework-native profiler output formats.

The paper stresses that "the output format of a framework profiler is
framework-dependent": TensorFlow emits step-stats-style node records while
MXNet emits its own profile dump.  To stay faithful, each framework
simulator returns its profile in a *native* format, and XSP's layer tracer
parses whichever format the framework produced (the ``parse_*`` functions
below) before converting records to spans — no framework modification, no
shared in-memory shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class LayerRecord:
    """Normalized layer-level profile record (XSP's internal view)."""

    index: int
    name: str
    layer_type: str
    shape: tuple[int, ...]
    start_ns: int
    end_ns: int
    alloc_bytes: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


# -- TensorFlow-like step stats ----------------------------------------------------


def tf_step_stats(records: list[LayerRecord]) -> dict[str, Any]:
    """Serialize to a TF RunMetadata/step-stats-like structure."""
    return {
        "step_stats": {
            "dev_stats": [
                {
                    "device": "/job:localhost/replica:0/task:0/device:GPU:0",
                    "node_stats": [
                        {
                            "node_name": r.name,
                            "op": r.layer_type,
                            "all_start_micros": r.start_ns / 1e3,
                            "op_end_rel_micros": r.duration_ns / 1e3,
                            "output_shape": list(r.shape),
                            "memory": [{"allocated_bytes": r.alloc_bytes}],
                            "exec_index": r.index,
                        }
                        for r in records
                    ],
                }
            ]
        }
    }


def parse_tf_step_stats(profile: dict[str, Any]) -> list[LayerRecord]:
    """Parse a TF-style step-stats dict back into normalized records."""
    records: list[LayerRecord] = []
    for dev in profile["step_stats"]["dev_stats"]:
        for node in dev["node_stats"]:
            start_ns = int(round(node["all_start_micros"] * 1e3))
            records.append(
                LayerRecord(
                    index=int(node["exec_index"]),
                    name=str(node["node_name"]),
                    layer_type=str(node["op"]),
                    shape=tuple(node.get("output_shape", ())),
                    start_ns=start_ns,
                    end_ns=start_ns + int(round(node["op_end_rel_micros"] * 1e3)),
                    alloc_bytes=int(
                        sum(m.get("allocated_bytes", 0) for m in node.get("memory", []))
                    ),
                )
            )
    records.sort(key=lambda r: r.index)
    return records


# -- MXNet-like profiler dump --------------------------------------------------------


def mx_profile(records: list[LayerRecord]) -> dict[str, Any]:
    """Serialize to an MXNet-profiler-like event list (microsecond units)."""
    return {
        "profile_version": "mxsim-1",
        "events": [
            {
                "name": r.name,
                "operator": r.layer_type,
                "ts_us": r.start_ns / 1e3,
                "dur_us": r.duration_ns / 1e3,
                "shape": "x".join(str(d) for d in r.shape),
                "memory_bytes": r.alloc_bytes,
                "seq": r.index,
            }
            for r in records
        ],
    }


def parse_mx_profile(profile: dict[str, Any]) -> list[LayerRecord]:
    """Parse an MXNet-style profile dump back into normalized records."""
    records: list[LayerRecord] = []
    for ev in profile["events"]:
        start_ns = int(round(ev["ts_us"] * 1e3))
        shape = tuple(int(d) for d in ev["shape"].split("x")) if ev["shape"] else ()
        records.append(
            LayerRecord(
                index=int(ev["seq"]),
                name=str(ev["name"]),
                layer_type=str(ev["operator"]),
                shape=shape,
                start_ns=start_ns,
                end_ns=start_ns + int(round(ev["dur_us"] * 1e3)),
                alloc_bytes=int(ev["memory_bytes"]),
            )
        )
    records.sort(key=lambda r: r.index)
    return records


#: Registry mapping framework name -> native-format parser; the XSP layer
#: tracer looks up the parser for whatever framework produced the profile.
PARSERS = {
    "tensorflow_like": parse_tf_step_stats,
    "mxnet_like": parse_mx_profile,
}
