"""MXSim — the MXNet-like framework simulator.

Behaviours reproduced from the paper (Sec. IV-B):

* BatchNorm stays a single fused inference kernel (no Mul/Add split).
* Element-wise layers dispatch to mshadow kernels with fewer DRAM accesses
  than TF's Eigen ones — this is what gives MXNet MobileNets their 35-74%
  throughput edge at optimal batch sizes.
* A larger fixed per-prediction host cost (HOST_CALIBRATION) reproduces
  MXNet ResNets' higher online (batch-1) latency despite equal GPU time.
* Layer profiling is toggled globally via :meth:`Framework.set_profiler_state`
  (the ``MXSetProfilerState`` analog); output uses an MXNet-like format.
"""

from __future__ import annotations

from typing import Any

from repro.frameworks.base import Framework
from repro.frameworks.lowering import conv_geometry, depthwise_geometry, pool_window
from repro.frameworks.optimizer import MX_REWRITE_RULES, PlanLayer, RewriteRules
from repro.frameworks.profiler_format import LayerRecord, mx_profile
from repro.frameworks.shapes import TensorShape
from repro.sim import cublas, cudnn, mshadow, tensorops
from repro.sim.kernels import KernelSpec


class MXSim(Framework):
    """MXNet-like framework running on the simulated CUDA runtime."""

    name = "mxnet_like"
    display_name = "MXNet (simulated)"

    @property
    def rewrite_rules(self) -> RewriteRules:
        return MX_REWRITE_RULES

    def serialize_profile(self, records: list[LayerRecord]) -> dict[str, Any]:
        return mx_profile(records)

    def emit_kernels(
        self, layer: PlanLayer, shapes: dict[str, TensorShape]
    ) -> list[KernelSpec]:
        op = layer.op
        gpu = self.runtime.gpu
        out = shapes[layer.source]

        if op == "Conv2D":
            return cudnn.convolution_forward_kernels(
                conv_geometry(layer, shapes), gpu, fused_relu=True
            )
        if op == "DepthwiseConv2D":
            # MXNet ships an efficient dedicated depthwise kernel.
            return [
                cudnn.depthwise_forward_kernel(
                    depthwise_geometry(layer, shapes),
                    name="mxnet::op::DepthwiseConv2dForwardKernel",
                    traffic_scale=1.0,
                    library="mxnet",
                )
            ]
        if op == "BatchNormFused":
            return [mshadow.batchnorm_inference_kernel(out.elems)]
        if op == "EltMul":
            return [mshadow.multiply_kernel(out.elems)]
        if op in ("EltAdd", "BiasAdd"):
            return [mshadow.bias_add_kernel(out.elems)]
        if op == "EltAddN":
            return [mshadow.add_kernel(out.elems, n_inputs=max(2, len(layer.inputs)))]
        if op in ("Relu", "Relu6"):
            return [mshadow.relu_kernel(out.elems)]
        if op in ("Sigmoid", "Tanh"):
            return [mshadow.sigmoid_kernel(out.elems)]
        if op in ("MaxPool", "AvgPool"):
            x = shapes[layer.source_inputs[0]]
            kh, _ = pool_window(layer)
            return [
                cudnn.pooling_forward_kernel(
                    out.batch, out.channels, out.height, out.width, kh,
                    in_h=x.height, in_w=x.width,
                )
            ]
        if op == "Mean":
            x = shapes[layer.source_inputs[0]]
            return [tensorops.mean_reduce_kernel(x.elems, out.elems)]
        if op == "Dense":
            # FullyConnected stays fused: GEMM plus an in-layer bias add.
            x = shapes[layer.source_inputs[0]]
            kernels = cublas.dense_layer_kernels(
                x.batch, x.per_image_elems, layer.attrs["units"], gpu
            )
            kernels.append(mshadow.bias_add_kernel(out.elems))
            return kernels
        if op == "Softmax":
            return [cudnn.softmax_forward_kernel(out.batch, out.per_image_elems)]
        if op == "Concat":
            return [tensorops.concat_kernel(out.elems, n_inputs=len(layer.inputs))]
        if op == "Reshape":
            return []
        if op == "Pad":
            return [tensorops.pad_kernel(out.elems)]
        if op == "Where":
            return tensorops.where_kernels(out.elems)
        if op == "Transpose":
            return [tensorops.transpose_kernel(out.elems)]
        if op == "Resize":
            x = shapes[layer.source_inputs[0]]
            return [tensorops.resize_bilinear_kernel(out.elems, x.elems)]
        if op == "LRN":
            return [tensorops.lrn_kernel(out.elems)]
        raise ValueError(f"MXSim cannot lower op {op!r} (layer {layer.name!r})")
