"""Lowering plan layers to library-call geometries.

Shared between frameworks: both dispatch convolutions to the cuDNN-like
library, so the ConvGeometry construction (shape + padding resolution)
lives here.
"""

from __future__ import annotations

from repro.frameworks.optimizer import PlanLayer
from repro.frameworks.shapes import TensorShape, conv_padding_amount
from repro.sim.cudnn import ConvGeometry


def _pair(value: object) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return (int(value[0]), int(value[1]))
    raise ValueError(f"expected int or pair, got {value!r}")


def conv_geometry(
    layer: PlanLayer, shapes: dict[str, TensorShape]
) -> ConvGeometry:
    """Build the cuDNN geometry for a Conv2D plan layer."""
    x = shapes[layer.source_inputs[0]]
    kh, kw = _pair(layer.attrs["kernel"])
    sh, sw = _pair(layer.attrs.get("strides", 1))
    padding = layer.attrs.get("padding", "same")
    return ConvGeometry(
        batch=x.batch,
        in_channels=x.channels,
        in_h=x.height,
        in_w=x.width,
        out_channels=layer.attrs["filters"],
        kernel_h=kh,
        kernel_w=kw,
        stride_h=sh,
        stride_w=sw,
        pad_h=conv_padding_amount(x.height, kh, sh, padding),
        pad_w=conv_padding_amount(x.width, kw, sw, padding),
    )


def depthwise_geometry(
    layer: PlanLayer, shapes: dict[str, TensorShape]
) -> ConvGeometry:
    """Build the cuDNN geometry for a DepthwiseConv2D plan layer."""
    x = shapes[layer.source_inputs[0]]
    kh, kw = _pair(layer.attrs["kernel"])
    sh, sw = _pair(layer.attrs.get("strides", 1))
    padding = layer.attrs.get("padding", "same")
    mult = layer.attrs.get("depth_multiplier", 1)
    return ConvGeometry(
        batch=x.batch,
        in_channels=x.channels,
        in_h=x.height,
        in_w=x.width,
        out_channels=x.channels * mult,
        kernel_h=kh,
        kernel_w=kw,
        stride_h=sh,
        stride_w=sw,
        pad_h=conv_padding_amount(x.height, kh, sh, padding),
        pad_w=conv_padding_amount(x.width, kw, sw, padding),
        groups=x.channels,
    )


def pool_window(layer: PlanLayer) -> tuple[int, int]:
    return _pair(layer.attrs["kernel"])
