"""Framework-neutral model graph IR.

Models in :mod:`repro.models` are defined once as a :class:`Graph` of
:class:`Node` ops; each framework simulator compiles the graph with its own
rewrite passes (e.g. TFSim decomposes BatchNorm) before execution.  Ops use
framework-neutral names ("Conv2D", "BatchNorm", ...); frameworks map them
to their native layer-type vocabulary at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: Op types understood by the shape-inference and execution engines.
SUPPORTED_OPS = frozenset(
    {
        "Input",
        "Conv2D",
        "DepthwiseConv2D",
        "BatchNorm",
        "Relu",
        "Relu6",
        "Sigmoid",
        "Tanh",
        "LRN",
        "MaxPool",
        "AvgPool",
        "GlobalAvgPool",
        "Dense",
        "BiasAdd",
        "Add",
        "Mul",
        "Concat",
        "Flatten",
        "Softmax",
        "Pad",
        "Where",
        "Transpose",
        "ResizeBilinear",
        "Identity",
    }
)


@dataclass
class Node:
    """One operator in the model graph."""

    name: str
    op: str
    inputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in SUPPORTED_OPS:
            raise ValueError(f"unsupported op {self.op!r} (node {self.name!r})")


class GraphError(ValueError):
    """Raised for malformed graphs (cycles, missing inputs, duplicates)."""


class Graph:
    """A directed acyclic graph of named ops with one Input node."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._order: list[str] | None = None
        #: Free-form metadata (reported accuracy, graph size MB, task, ...).
        self.metadata: dict[str, Any] = {}

    # -- construction -------------------------------------------------------
    def add(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        for inp in node.inputs:
            if inp not in self._nodes:
                raise GraphError(
                    f"node {node.name!r} references unknown input {inp!r} "
                    "(nodes must be added in definition order)"
                )
        self._nodes[node.name] = node
        self._order = None
        return node

    def add_op(self, name: str, op: str, inputs: Iterable[str] = (), **attrs: Any) -> Node:
        return self.add(Node(name=name, op=op, inputs=list(inputs), attrs=attrs))

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def input_node(self) -> Node:
        for node in self._nodes.values():
            if node.op == "Input":
                return node
        raise GraphError(f"graph {self.name!r} has no Input node")

    def consumers(self, name: str) -> list[Node]:
        return [n for n in self._nodes.values() if name in n.inputs]

    def outputs(self) -> list[Node]:
        """Nodes no other node consumes (the model outputs)."""
        consumed = {inp for n in self._nodes.values() for inp in n.inputs}
        return [n for n in self._nodes.values() if n.name not in consumed]

    # -- ordering ----------------------------------------------------------------
    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; insertion order breaks ties (stable layer indices)."""
        if self._order is not None:
            return [self._nodes[n] for n in self._order]
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for _ in node.inputs:
                indegree[node.name] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        # Process in insertion order among ready nodes for determinism.
        insertion_rank = {name: i for i, name in enumerate(self._nodes)}
        while ready:
            ready.sort(key=insertion_rank.__getitem__)
            current = ready.pop(0)
            order.append(current)
            for consumer in self.consumers(current):
                # A node may consume the same producer more than once
                # (e.g. Add(x, x)); decrement per edge, not per producer.
                indegree[consumer.name] -= consumer.inputs.count(current)
                if indegree[consumer.name] == 0:
                    ready.append(consumer.name)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        self._order = order
        return [self._nodes[n] for n in order]

    # -- statistics -----------------------------------------------------------------
    def op_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for node in self._nodes.values():
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    def validate(self) -> None:
        """Raise GraphError if the graph is not a well-formed model."""
        self.topological_order()
        _ = self.input_node
        if not self.outputs():
            raise GraphError(f"graph {self.name!r} has no outputs")
