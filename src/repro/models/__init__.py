"""Model zoo: generators for the 65 models of Tables VIII and X.

Every model is defined once as a framework-neutral :class:`repro.frameworks.graph.Graph`
with real layer shapes, so flop counts and tensor sizes are exact.  Models
are registered in :mod:`repro.models.zoo` keyed by the paper's model IDs,
together with the paper-reported metadata (accuracy, graph size, online
latency, optimal batch size, convolution latency percentage) used by
EXPERIMENTS.md for paper-vs-measured comparisons.
"""

from repro.models.builder import ModelBuilder
from repro.models.zoo import (
    MODEL_ZOO,
    MXNET_ZOO,
    ModelEntry,
    get_model,
    image_classification_ids,
    list_models,
)

__all__ = [
    "MODEL_ZOO",
    "MXNET_ZOO",
    "ModelBuilder",
    "ModelEntry",
    "get_model",
    "image_classification_ids",
    "list_models",
]
