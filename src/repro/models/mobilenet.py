"""MobileNet v1 grid and MobileNet v2 — Table VIII models 15, 18-37.

MobileNet v1 is parameterized by a width multiplier (alpha in
{1.0, 0.75, 0.5, 0.25}) and input resolution ({224, 192, 160, 128}),
covering the 16 zoo variants plus the MLPerf entry.  Depthwise-separable
blocks make these models memory-bound at their optimal batch sizes —
20 of the paper's 37 image-classification models are memory-bound and
the MobileNet grid accounts for most of them (Fig. 12).

MobileNet v2 (inverted residuals) is the DeepLab backbone (Table VIII
ids 53-54).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder

#: (filters, stride) for the 13 separable blocks of MobileNet v1.
_V1_BLOCKS = [
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]


def _scale(filters: int, alpha: float) -> int:
    """Width-multiplier scaling, floored to 8 like the reference impl."""
    return max(8, int(filters * alpha + 0.5) // 8 * 8)


def mobilenet_v1(alpha: float = 1.0, resolution: int = 224) -> Graph:
    """MobileNet_v1_<alpha>_<resolution> (TF-Slim naming)."""
    tag = f"MobileNet_v1_{alpha:g}_{resolution}"
    b = ModelBuilder(tag)
    x = b.input(3, resolution, resolution)
    x = b.conv(x, _scale(32, alpha), 3, strides=2)
    x = b.batch_norm(x)
    x = b.relu6(x)
    for filters, stride in _V1_BLOCKS:
        x = b.separable_block(x, _scale(filters, alpha), strides=stride)
    x = b.classifier(x, 1001)
    return b.build()


def mlperf_mobilenet_v1() -> Graph:
    """MLPerf_MobileNet_v1 (Table VIII id 15): alpha 1.0 at 224x224."""
    g = mobilenet_v1(1.0, 224)
    g.name = "MLPerf_MobileNet_v1"
    return g


#: (expansion, filters, repeats, stride) for MobileNet v2 stages.
_V2_BLOCKS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _inverted_residual(
    b: ModelBuilder, x: str, in_ch: int, expansion: int, filters: int, stride: int
) -> tuple[str, int]:
    """MobileNet v2 inverted-residual block; returns (node, out_channels)."""
    y = x
    hidden = in_ch * expansion
    if expansion != 1:
        y = b.conv(y, hidden, 1)
        y = b.batch_norm(y)
        y = b.relu6(y)
    y = b.depthwise_conv(y, kernel=3, strides=stride)
    y = b.batch_norm(y)
    y = b.relu6(y)
    y = b.conv(y, filters, 1)
    y = b.batch_norm(y)
    if stride == 1 and in_ch == filters:
        y = b.add([x, y])
    return y, filters


def mobilenet_v2(
    alpha: float = 1.0, resolution: int = 224, *, include_top: bool = True,
    name: str | None = None,
) -> Graph:
    """MobileNet v2 (inverted residuals); backbone for DeepLab variants."""
    tag = name or f"MobileNet_v2_{alpha:g}_{resolution}"
    b = ModelBuilder(tag)
    x = b.input(3, resolution, resolution)
    ch = _scale(32, alpha)
    x = b.conv(x, ch, 3, strides=2)
    x = b.batch_norm(x)
    x = b.relu6(x)
    for expansion, filters, repeats, stride in _V2_BLOCKS:
        out_ch = _scale(filters, alpha)
        for i in range(repeats):
            x, ch = _inverted_residual(
                b, x, ch, expansion, out_ch, stride if i == 0 else 1
            )
    x = b.conv(x, max(1280, _scale(1280, alpha)), 1)
    x = b.batch_norm(x)
    x = b.relu6(x)
    if include_top:
        x = b.classifier(x, 1001)
    return b.build()
