"""Instance/semantic segmentation models — Table VIII ids 48-54.

* **Mask R-CNN** variants (instance segmentation): detection meta-arch
  plus a convolutional mask head; conv latency share 29-42% except the
  Inception-v2 flavour, which is Where-dominated like the OD models
  (paper Sec. IV-A).
* **DeepLabv3** variants (semantic segmentation): dilated backbone at
  513x513 + ASPP + bilinear decoder; latency split between convolutions
  and memory-bound element-wise/resize layers; optimal batch size is 1
  (the large spatial extent already saturates the GPU).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder
from repro.models.detection import (
    _inception_v2_features,
    _postprocess,
    _resnet_features,
)
from repro.models.mobilenet import _V2_BLOCKS, _inverted_residual, _scale


def _mask_head(b: ModelBuilder, features: str, *, convs: int = 4) -> str:
    """Mask head: conv stack + upsample + per-class mask conv."""
    x = features
    for _ in range(convs):
        x = b.conv_bn_relu(x, 256, 3)
    x = b.resize(x, scale=2)
    return b.conv(x, 91, 1)


def _mask_rcnn(name: str, feature_fn, resolution: int, *, n_where: int,
               head_convs: int) -> Graph:
    b = ModelBuilder(name)
    x = b.input(3, resolution, resolution)
    features = feature_fn(b, x)
    rpn = b.conv_bn_relu(features, 512, 3)
    boxes = b.conv(rpn, 24, 1)
    scores = b.conv(rpn, 12, 1)
    out = _postprocess(b, [boxes, scores], n_where=n_where)
    mask = _mask_head(b, features, convs=head_convs)
    b.graph.metadata["task"] = "instance segmentation"
    b.graph.add_op("detections", "Identity", [out])
    b.graph.add_op("masks", "Identity", [mask])
    return b.build()


def mask_rcnn_inception_resnet_v2() -> Graph:
    """Mask_RCNN_Inception_ResNet_v2 (id 48)."""

    def features(b: ModelBuilder, x: str) -> str:
        from repro.models.inception import _ir_block, _v3_stem

        f = _v3_stem(b, x)
        f = b.conv_bn_relu(f, 320, 1)
        for _ in range(5):
            f = _ir_block(
                b, f,
                [[(32, 1)], [(32, 1), (32, 3)], [(32, 1), (48, 3), (64, 3)]],
                project=320,
            )
        f = b.conv_bn_relu(f, 1088, 1)
        for _ in range(8):
            f = _ir_block(
                b, f,
                [[(192, 1)], [(128, 1), (160, (1, 7)), (192, (7, 1))]],
                project=1088,
            )
        return f

    return _mask_rcnn("Mask_RCNN_Inception_ResNet_v2", features, 1024,
                      n_where=300, head_convs=8)


def mask_rcnn_resnet101_v2() -> Graph:
    return _mask_rcnn(
        "Mask_RCNN_ResNet101_v2",
        lambda b, x: _resnet_features(b, x, 101, stages=3),
        1024, n_where=280, head_convs=6,
    )


def mask_rcnn_resnet50_v2() -> Graph:
    return _mask_rcnn(
        "Mask_RCNN_ResNet50_v2",
        lambda b, x: _resnet_features(b, x, 50, stages=3),
        1024, n_where=280, head_convs=6,
    )


def mask_rcnn_inception_v2() -> Graph:
    """Mask_RCNN_Inception_v2 (id 51): Where-dominated like the OD models."""
    return _mask_rcnn("Mask_RCNN_Inception_v2", _inception_v2_features,
                      800, n_where=340, head_convs=2)


# -- DeepLab ----------------------------------------------------------------------


def _aspp(b: ModelBuilder, x: str, channels: int = 256, *,
          pool_scale: int) -> str:
    """Atrous spatial pyramid pooling: parallel convs + image pooling.

    ``pool_scale`` restores the image-pooling branch (1x1 after global
    average pooling) to the backbone's feature resolution.
    """
    branches = [b.conv_bn_relu(x, channels, 1)]
    for _ in range(3):  # three atrous 3x3 branches (rates 6/12/18)
        branches.append(b.conv_bn_relu(x, channels, 3))
    pooled = b.global_avg_pool(x)
    pooled = b.conv_bn_relu(pooled, channels, 1)
    pooled = b.resize(pooled, scale=pool_scale)
    branches.append(pooled)
    merged = b.concat(branches)
    return b.conv_bn_relu(merged, channels, 1)


def _xception_block(b: ModelBuilder, x: str, filters: int, *, stride: int = 1,
                    residual: bool = True, project: bool = False) -> str:
    """Xception block: 3 separable convs (+ projected shortcut when the
    stride or the channel count changes)."""
    shortcut = x
    y = x
    for i in range(3):
        y = b.depthwise_conv(y, kernel=3, strides=stride if i == 2 else 1)
        y = b.batch_norm(y)
        y = b.conv(y, filters, 1)
        y = b.batch_norm(y)
        y = b.relu(y)
    if residual:
        if stride != 1 or project:
            shortcut = b.conv_bn(x, filters, 1, strides=stride)
        y = b.add([shortcut, y])
    return y


def deeplabv3_xception65() -> Graph:
    """DeepLabv3_Xception_65 (id 52) at 513x513."""
    b = ModelBuilder("DeepLabv3_Xception_65")
    x = b.input(3, 513, 513)
    x = b.conv_bn_relu(x, 32, 3, strides=2)
    x = b.conv_bn_relu(x, 64, 3)
    for filters, stride in ((128, 2), (256, 2), (728, 2)):
        x = _xception_block(b, x, filters, stride=stride)
    for _ in range(16):  # middle flow
        x = _xception_block(b, x, 728)
    x = _xception_block(b, x, 1024, stride=1, project=True)
    x = _aspp(b, x, pool_scale=33)
    x = b.conv(x, 21, 1)  # class logits
    x = b.resize(x, scale=16)
    b.graph.metadata["task"] = "semantic segmentation"
    return b.build()


def _deeplab_mobilenet(name: str, alpha: float) -> Graph:
    b = ModelBuilder(name)
    x = b.input(3, 513, 513)
    ch = _scale(32, alpha)
    x = b.conv(x, ch, 3, strides=2)
    x = b.batch_norm(x)
    x = b.relu6(x)
    for expansion, filters, repeats, stride in _V2_BLOCKS:
        out_ch = _scale(filters, alpha)
        for i in range(repeats):
            x, ch = _inverted_residual(
                b, x, ch, expansion, out_ch, stride if i == 0 else 1
            )
    x = _aspp(b, x, channels=256, pool_scale=17)
    x = b.conv(x, 21, 1)
    x = b.resize(x, scale=32)
    b.graph.metadata["task"] = "semantic segmentation"
    return b.build()


def deeplabv3_mobilenet_v2() -> Graph:
    """DeepLabv3_MobileNet_v2 (id 53)."""
    return _deeplab_mobilenet("DeepLabv3_MobileNet_v2", 1.0)


def deeplabv3_mobilenet_v2_dm05() -> Graph:
    """DeepLabv3_MobileNet_v2_DM0.5 (id 54): depth multiplier 0.5."""
    return _deeplab_mobilenet("DeepLabv3_MobileNet_v2_DM0.5", 0.5)
