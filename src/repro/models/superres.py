"""SRGAN — Table VIII id 55 (super resolution).

Generator network only (inference): 9x9 head conv, 16 residual blocks at
the low-resolution grid, two upsample stages (resize + conv, standing in
for pixel-shuffle), and a 9x9 tail conv, run at a 224x224 low-resolution
input (4x upscale to 896x896).  Small parameter count (the paper's
smallest graph at 5.9 MB) but convolution-dominated latency (62.3% per
Table VIII).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder


def srgan(lr_size: int = 224) -> Graph:
    """SRGAN generator for a ``lr_size`` x ``lr_size`` input (4x upscale)."""
    b = ModelBuilder("SRGAN")
    x = b.input(3, lr_size, lr_size)
    x = b.conv(x, 64, 9)
    head = x = b.relu(x)
    for _ in range(16):
        y = b.conv_bn_relu(x, 64, 3)
        y = b.conv_bn(y, 64, 3)
        x = b.add([x, y])
    x = b.conv_bn(x, 64, 3)
    x = b.add([head, x])
    for _ in range(2):  # two 2x upsample stages
        x = b.resize(x, scale=2)
        x = b.relu(b.conv(x, 64, 3))
    x = b.conv(x, 3, 9)
    x = b.tanh(x)
    b.graph.metadata["task"] = "super resolution"
    return b.build()
