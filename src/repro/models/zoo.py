"""The model zoo registry — Tables VIII (55 TF models) and X (10 MXNet models).

Every entry couples a model factory with the paper-reported reference
values (accuracy, frozen-graph size, online latency, maximum throughput,
optimal batch size, convolution latency percentage) so the benchmark
harness can emit paper-vs-measured comparisons for EXPERIMENTS.md.

Tasks follow the paper's abbreviations: IC (image classification),
OD (object detection), IS (instance segmentation), SS (semantic
segmentation), SR (super resolution).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

from repro.frameworks.graph import Graph
from repro.models import detection, densenet, inception, mobilenet, resnet
from repro.models import segmentation, superres, vgg


@dataclass(frozen=True)
class PaperReference:
    """Values the paper reports for a model (Table VIII / Table X)."""

    accuracy: float | None
    graph_mb: float
    online_latency_ms: float
    max_throughput: float
    optimal_batch: int
    conv_pct: float


@dataclass(frozen=True)
class ModelEntry:
    """One zoo model."""

    model_id: int
    name: str
    task: str  # IC | OD | IS | SS | SR
    factory: Callable[[], Graph]
    paper: PaperReference
    #: Batch sizes worth sweeping for this model class.
    sweep_batches: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    @functools.cached_property
    def graph(self) -> Graph:
        g = self.factory()
        g.metadata.setdefault("model_id", self.model_id)
        g.metadata.setdefault("task", self.task)
        g.metadata.setdefault("accuracy", self.paper.accuracy)
        g.metadata.setdefault("graph_mb", self.paper.graph_mb)
        return g


_SMALL_SWEEP = (1, 2, 4, 8, 16, 32)


def _e(
    model_id: int,
    name: str,
    task: str,
    factory: Callable[[], Graph],
    accuracy: float | None,
    graph_mb: float,
    online_ms: float,
    max_tput: float,
    opt_batch: int,
    conv_pct: float,
    sweep: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> ModelEntry:
    return ModelEntry(
        model_id=model_id,
        name=name,
        task=task,
        factory=factory,
        paper=PaperReference(
            accuracy=accuracy,
            graph_mb=graph_mb,
            online_latency_ms=online_ms,
            max_throughput=max_tput,
            optimal_batch=opt_batch,
            conv_pct=conv_pct,
        ),
        sweep_batches=sweep,
    )


#: Table VIII, all 55 TensorFlow models keyed by the paper's ID column.
MODEL_ZOO: dict[int, ModelEntry] = {
    e.model_id: e
    for e in [
        _e(1, "Inception_ResNet_v2", "IC", inception.inception_resnet_v2,
           80.40, 214, 23.24, 346.6, 128, 68.8),
        _e(2, "Inception_v4", "IC", inception.inception_v4,
           80.20, 163, 17.29, 436.7, 128, 75.7),
        _e(3, "Inception_v3", "IC", inception.inception_v3,
           78.00, 91, 9.85, 811.0, 64, 72.8),
        _e(4, "ResNet_v2_152", "IC", lambda: resnet.resnet_v2(152),
           77.80, 231, 14.05, 466.8, 256, 60.5),
        _e(5, "ResNet_v2_101", "IC", lambda: resnet.resnet_v2(101),
           77.00, 170, 10.39, 671.7, 256, 60.9),
        _e(6, "ResNet_v1_152", "IC", lambda: resnet.resnet_v1(152),
           76.80, 230, 13.70, 541.3, 256, 69.6),
        _e(7, "MLPerf_ResNet50_v1.5", "IC", resnet.mlperf_resnet50_v15,
           76.46, 103, 6.22, 930.7, 256, 58.7),
        _e(8, "ResNet_v1_101", "IC", lambda: resnet.resnet_v1(101),
           76.40, 170, 10.01, 774.7, 256, 69.9),
        _e(9, "AI_Matrix_ResNet152", "IC", lambda: resnet.ai_matrix_resnet(152),
           75.93, 230, 14.61, 468.0, 256, 61.8),
        _e(10, "ResNet_v2_50", "IC", lambda: resnet.resnet_v2(50),
           75.60, 98, 6.23, 1119.7, 256, 58.1),
        _e(11, "ResNet_v1_50", "IC", lambda: resnet.resnet_v1(50),
           75.20, 98, 6.19, 1284.6, 256, 67.5),
        _e(12, "AI_Matrix_ResNet50", "IC", lambda: resnet.ai_matrix_resnet(50),
           74.38, 98, 5.99, 1060.3, 256, 57.9),
        _e(13, "Inception_v2", "IC", inception.inception_v2,
           73.90, 43, 6.45, 2032.0, 128, 68.2),
        _e(14, "AI_Matrix_DenseNet121", "IC", densenet.densenet121,
           73.29, 31, 12.80, 846.4, 32, 49.3),
        _e(15, "MLPerf_MobileNet_v1", "IC", mobilenet.mlperf_mobilenet_v1,
           71.68, 17, 3.15, 2576.4, 128, 52.0),
        _e(16, "VGG16", "IC", vgg.vgg16,
           71.50, 528, 21.33, 687.5, 256, 74.7),
        _e(17, "VGG19", "IC", vgg.vgg19,
           71.10, 548, 22.10, 593.4, 256, 76.7),
        _e(18, "MobileNet_v1_1.0_224", "IC", lambda: mobilenet.mobilenet_v1(1.0, 224),
           70.90, 16, 3.19, 2580.6, 128, 51.9),
        _e(19, "AI_Matrix_GoogleNet", "IC", inception.ai_matrix_googlenet,
           70.01, 27, 5.35, 2464.5, 128, 62.9),
        _e(20, "MobileNet_v1_1.0_192", "IC", lambda: mobilenet.mobilenet_v1(1.0, 192),
           70.00, 16, 3.11, 3460.8, 128, 52.5),
        _e(21, "Inception_v1", "IC", inception.inception_v1,
           69.80, 26, 5.30, 2576.6, 128, 63.7),
        _e(22, "BVLC_GoogLeNet_Caffe", "IC", inception.bvlc_googlenet_caffe,
           68.70, 27, 6.53, 951.7, 8, 55.1),
        _e(23, "MobileNet_v1_0.75_224", "IC", lambda: mobilenet.mobilenet_v1(0.75, 224),
           68.40, 10, 3.18, 3183.7, 64, 51.1),
        _e(24, "MobileNet_v1_1.0_160", "IC", lambda: mobilenet.mobilenet_v1(1.0, 160),
           68.00, 16, 3.01, 4240.5, 64, 55.4),
        _e(25, "MobileNet_v1_0.75_192", "IC", lambda: mobilenet.mobilenet_v1(0.75, 192),
           67.20, 10, 3.05, 4187.8, 64, 51.8),
        _e(26, "MobileNet_v1_0.75_160", "IC", lambda: mobilenet.mobilenet_v1(0.75, 160),
           65.30, 10, 2.81, 5569.6, 64, 53.1),
        _e(27, "MobileNet_v1_1.0_128", "IC", lambda: mobilenet.mobilenet_v1(1.0, 128),
           65.20, 16, 2.91, 6743.2, 64, 55.9),
        _e(28, "MobileNet_v1_0.5_224", "IC", lambda: mobilenet.mobilenet_v1(0.5, 224),
           63.30, 5.2, 3.55, 3346.5, 64, 63.0),
        _e(29, "MobileNet_v1_0.75_128", "IC", lambda: mobilenet.mobilenet_v1(0.75, 128),
           62.10, 10, 2.96, 8378.4, 64, 55.7),
        _e(30, "MobileNet_v1_0.5_192", "IC", lambda: mobilenet.mobilenet_v1(0.5, 192),
           61.70, 5.2, 3.28, 4453.2, 64, 63.3),
        _e(31, "MobileNet_v1_0.5_160", "IC", lambda: mobilenet.mobilenet_v1(0.5, 160),
           59.10, 5.2, 3.22, 6148.7, 64, 63.7),
        _e(32, "BVLC_AlexNet_Caffe", "IC", vgg.bvlc_alexnet_caffe,
           57.10, 233, 2.33, 2495.8, 16, 36.3),
        _e(33, "MobileNet_v1_0.5_128", "IC", lambda: mobilenet.mobilenet_v1(0.5, 128),
           56.30, 5.2, 3.20, 8924.0, 64, 64.1),
        _e(34, "MobileNet_v1_0.25_224", "IC", lambda: mobilenet.mobilenet_v1(0.25, 224),
           49.80, 1.9, 3.40, 5257.9, 64, 60.6),
        _e(35, "MobileNet_v1_0.25_192", "IC", lambda: mobilenet.mobilenet_v1(0.25, 192),
           47.70, 1.9, 3.26, 7135.7, 64, 61.2),
        _e(36, "MobileNet_v1_0.25_160", "IC", lambda: mobilenet.mobilenet_v1(0.25, 160),
           45.50, 1.9, 3.15, 10081.5, 256, 68.4),
        _e(37, "MobileNet_v1_0.25_128", "IC", lambda: mobilenet.mobilenet_v1(0.25, 128),
           41.50, 1.9, 3.15, 10707.6, 256, 80.2),
        _e(38, "Faster_RCNN_NAS", "OD", detection.faster_rcnn_nas,
           43, 405, 5079.32, 0.6, 4, 85.2, (1, 2, 4, 8)),
        _e(39, "Faster_RCNN_ResNet101", "OD", detection.faster_rcnn_resnet101,
           32, 187, 91.15, 14.67, 4, 13.0, _SMALL_SWEEP),
        _e(40, "SSD_MobileNet_v1_FPN", "OD", detection.ssd_mobilenet_v1_fpn,
           32, 49, 47.44, 33.46, 8, 4.8, _SMALL_SWEEP),
        _e(41, "Faster_RCNN_ResNet50", "OD", detection.faster_rcnn_resnet50,
           30, 115, 81.19, 16.49, 4, 10.8, _SMALL_SWEEP),
        _e(42, "Faster_RCNN_Inception_v2", "OD", detection.faster_rcnn_inception_v2,
           28, 54, 61.88, 22.17, 4, 4.7, _SMALL_SWEEP),
        _e(43, "SSD_Inception_v2", "OD", detection.ssd_inception_v2,
           24, 97, 50.34, 32.26, 8, 2.5, _SMALL_SWEEP),
        _e(44, "MLPerf_SSD_MobileNet_v1_300x300", "OD", detection.ssd_mobilenet_v1,
           23, 28, 47.49, 33.51, 8, 0.8, _SMALL_SWEEP),
        _e(45, "SSD_MobileNet_v2", "OD", detection.ssd_mobilenet_v2,
           22, 66, 48.72, 32.4, 8, 1.3, _SMALL_SWEEP),
        _e(46, "MLPerf_SSD_ResNet34_1200x1200", "OD", detection.mlperf_ssd_resnet34,
           20, 81, 87.4, 11.44, 1, 14.9, (1, 2, 4, 8)),
        _e(47, "SSD_MobileNet_v1_PPN", "OD", detection.ssd_mobilenet_v1_ppn,
           20, 10, 47.07, 33.1, 16, 0.6, _SMALL_SWEEP),
        _e(48, "Mask_RCNN_Inception_ResNet_v2", "IS",
           segmentation.mask_rcnn_inception_resnet_v2,
           36, 254, 382.52, 2.92, 4, 29.2, (1, 2, 4, 8)),
        _e(49, "Mask_RCNN_ResNet101_v2", "IS", segmentation.mask_rcnn_resnet101_v2,
           33, 212, 295.18, 3.6, 2, 42.4, (1, 2, 4, 8)),
        _e(50, "Mask_RCNN_ResNet50_v2", "IS", segmentation.mask_rcnn_resnet50_v2,
           29, 138, 231.22, 4.64, 2, 40.3, (1, 2, 4, 8)),
        _e(51, "Mask_RCNN_Inception_v2", "IS", segmentation.mask_rcnn_inception_v2,
           25, 64, 86.86, 17.25, 4, 5.7, _SMALL_SWEEP),
        _e(52, "DeepLabv3_Xception_65", "SS", segmentation.deeplabv3_xception65,
           87.8, 439, 72.55, 13.78, 1, 49.2, (1, 2, 4)),
        _e(53, "DeepLabv3_MobileNet_v2", "SS", segmentation.deeplabv3_mobilenet_v2,
           80.25, 8.8, 10.96, 91.27, 1, 42.1, (1, 2, 4, 8)),
        _e(54, "DeepLabv3_MobileNet_v2_DM0.5", "SS",
           segmentation.deeplabv3_mobilenet_v2_dm05,
           71.83, 7.6, 9.5, 105.21, 1, 41.5, (1, 2, 4, 8)),
        _e(55, "SRGAN", "SR", superres.srgan,
           None, 5.9, 70.29, 14.23, 1, 62.3, (1, 2, 4, 8)),
    ]
}


@dataclass(frozen=True)
class MXNetReference:
    """Table X values (normalized to the TensorFlow counterparts)."""

    normalized_online_latency: float
    optimal_batch: int
    normalized_max_throughput: float


@dataclass(frozen=True)
class MXNetEntry:
    """One of the 10 MXNet Gluon models, sharing its TF counterpart's ID."""

    model_id: int
    name: str
    factory: Callable[[], Graph]
    paper: MXNetReference

    @functools.cached_property
    def graph(self) -> Graph:
        return self.factory()


#: Table X: the 10 comparable MXNet models keyed by the shared paper ID.
MXNET_ZOO: dict[int, MXNetEntry] = {
    e.model_id: e
    for e in [
        MXNetEntry(4, "ResNet_v2_152", lambda: resnet.resnet_v2(152),
                   MXNetReference(1.76, 256, 1.03)),
        MXNetEntry(5, "ResNet_v2_101", lambda: resnet.resnet_v2(101),
                   MXNetReference(1.59, 256, 1.02)),
        MXNetEntry(6, "ResNet_v1_152", lambda: resnet.resnet_v1(152),
                   MXNetReference(1.68, 256, 0.90)),
        MXNetEntry(8, "ResNet_v1_101", lambda: resnet.resnet_v1(101),
                   MXNetReference(1.60, 256, 0.91)),
        MXNetEntry(10, "ResNet_v2_50", lambda: resnet.resnet_v2(50),
                   MXNetReference(1.41, 256, 1.03)),
        MXNetEntry(11, "ResNet_v1_50", lambda: resnet.resnet_v1(50),
                   MXNetReference(1.32, 256, 0.96)),
        MXNetEntry(18, "MobileNet_v1_1.0_224",
                   lambda: mobilenet.mobilenet_v1(1.0, 224),
                   MXNetReference(1.00, 256, 1.54)),
        MXNetEntry(23, "MobileNet_v1_0.75_224",
                   lambda: mobilenet.mobilenet_v1(0.75, 224),
                   MXNetReference(0.95, 64, 1.76)),
        MXNetEntry(28, "MobileNet_v1_0.5_224",
                   lambda: mobilenet.mobilenet_v1(0.5, 224),
                   MXNetReference(0.87, 64, 1.35)),
        MXNetEntry(34, "MobileNet_v1_0.25_224",
                   lambda: mobilenet.mobilenet_v1(0.25, 224),
                   MXNetReference(0.93, 64, 1.64)),
    ]
}

_BY_NAME = {e.name: e for e in MODEL_ZOO.values()}


def get_model(key: int | str) -> ModelEntry:
    """Look up a Table VIII model by paper ID or name."""
    if isinstance(key, int):
        if key not in MODEL_ZOO:
            raise KeyError(f"no model with paper ID {key} (valid: 1..55)")
        return MODEL_ZOO[key]
    if key in _BY_NAME:
        return _BY_NAME[key]
    raise KeyError(
        f"unknown model {key!r}; valid names include "
        f"{sorted(_BY_NAME)[:5]} ..."
    )


def list_models(task: str | None = None) -> list[ModelEntry]:
    """All zoo entries, optionally filtered by task abbreviation."""
    entries = sorted(MODEL_ZOO.values(), key=lambda e: e.model_id)
    if task is None:
        return entries
    return [e for e in entries if e.task == task]


def image_classification_ids() -> list[int]:
    """The 37 image-classification model IDs characterized in Table IX."""
    return [e.model_id for e in list_models("IC")]
