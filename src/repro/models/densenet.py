"""DenseNet121 — Table VIII model 14 (AI_Matrix_DenseNet121).

Dense connectivity: every layer concatenates all previous feature maps.
The many small concat + BN + conv layers give DenseNet one of the zoo's
highest layer counts relative to flops, a small optimal batch size (32),
and memory-bound behaviour at the optimum (Table IX id 14).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder

_BLOCKS = (6, 12, 24, 16)
_GROWTH = 32


def _dense_layer(b: ModelBuilder, x: str) -> str:
    """BN -> Relu -> 1x1 (4k bottleneck) -> BN -> Relu -> 3x3 (k filters)."""
    y = b.relu(b.batch_norm(x))
    y = b.conv(y, 4 * _GROWTH, 1)
    y = b.relu(b.batch_norm(y))
    y = b.conv(y, _GROWTH, 3)
    return b.concat([x, y])


def _transition(b: ModelBuilder, x: str, out_channels: int) -> str:
    y = b.relu(b.batch_norm(x))
    y = b.conv(y, out_channels, 1)
    return b.avg_pool(y, kernel=2, strides=2)


def densenet121() -> Graph:
    """AI_Matrix_DenseNet121 at 224x224."""
    b = ModelBuilder("AI_Matrix_DenseNet121")
    x = b.input(3, 224, 224)
    x = b.conv_bn_relu(x, 64, 7, strides=2)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    channels = 64
    for i, layers in enumerate(_BLOCKS):
        for _ in range(layers):
            x = _dense_layer(b, x)
            channels += _GROWTH
        if i < len(_BLOCKS) - 1:
            channels //= 2
            x = _transition(b, x, channels)
    x = b.relu(b.batch_norm(x))
    x = b.classifier(x, 1001)
    return b.build()
