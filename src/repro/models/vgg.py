"""VGG16/VGG19 and AlexNet — Table VIII models 16, 17, 32.

Plain convolutional stacks without batch norm.  VGG's huge dense layers
give it the largest graph sizes in the zoo (528/548 MB); AlexNet
(BVLC Caffe flavour with LRN) is the smallest/oldest architecture and the
only model whose optimal batch size is 16 with beginning-stage dominance
(Table IX id 32).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder

#: Conv filters per stage; repeats differ between VGG16 and VGG19.
_VGG_STAGES = {
    16: ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)),
    19: ((64, 2), (128, 2), (256, 4), (512, 4), (512, 4)),
}


def vgg(depth: int) -> Graph:
    """VGG16 (id 16) or VGG19 (id 17) at 224x224."""
    if depth not in _VGG_STAGES:
        raise ValueError(f"VGG depth must be 16 or 19, got {depth}")
    b = ModelBuilder(f"VGG{depth}")
    x = b.input(3, 224, 224)
    for filters, repeats in _VGG_STAGES[depth]:
        for _ in range(repeats):
            x = b.relu(b.bias_add(b.conv(x, filters, 3)))
        x = b.max_pool(x, kernel=2, strides=2)
    x = b.flatten(x)
    x = b.relu(b.dense(x, 4096))
    x = b.relu(b.dense(x, 4096))
    x = b.dense(x, 1001)
    x = b.softmax(x)
    return b.build()


def vgg16() -> Graph:
    return vgg(16)


def vgg19() -> Graph:
    return vgg(19)


def bvlc_alexnet_caffe() -> Graph:
    """BVLC_AlexNet_Caffe (Table VIII id 32) at 227x227 with LRN."""
    b = ModelBuilder("BVLC_AlexNet_Caffe")
    x = b.input(3, 227, 227)
    x = b.relu(b.bias_add(b.conv(x, 96, 11, strides=4, padding="valid")))
    x = b.lrn(x)
    x = b.max_pool(x, kernel=3, strides=2)
    x = b.relu(b.bias_add(b.conv(x, 256, 5)))
    x = b.lrn(x)
    x = b.max_pool(x, kernel=3, strides=2)
    x = b.relu(b.bias_add(b.conv(x, 384, 3)))
    x = b.relu(b.bias_add(b.conv(x, 384, 3)))
    x = b.relu(b.bias_add(b.conv(x, 256, 3)))
    x = b.max_pool(x, kernel=3, strides=2)
    x = b.flatten(x)
    x = b.relu(b.dense(x, 4096))
    x = b.relu(b.dense(x, 4096))
    x = b.dense(x, 1000)
    x = b.softmax(x)
    return b.build()
