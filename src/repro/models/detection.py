"""Object-detection models — Table VIII ids 38-47.

Detection graphs pair a convolutional backbone/feature extractor with
box/class predictor heads and a *post-processing stage dominated by
``Where`` layers* — the paper finds OD models (except Faster_RCNN_NAS)
attribute only 0.6-14.9% of latency to convolutions, with `Where` (tensor
reshaping with a user-defined operator) the dominating layer type
(Sec. IV-A).  The post-processing block reproduces that structure: chains
of Where/Transpose/Concat ops over small box tensors whose cost is mostly
host-side.

The meta-architectures are faithful at the block level (feature extractor,
extra SSD feature maps or RPN + second stage, per-scale predictors); the
proposal stage is approximated at a fixed proposal count.
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder
from repro.models.mobilenet import _V1_BLOCKS, _scale  # shared block tables
from repro.models.resnet import _STAGE_FILTERS, _STAGES, _bottleneck_v1


# -- shared pieces ------------------------------------------------------------------


def _mobilenet_features(b: ModelBuilder, x: str, alpha: float = 1.0,
                        *, v2_blocks: bool = False) -> str:
    """MobileNet v1 feature extractor (through conv13)."""
    x = b.conv(x, _scale(32, alpha), 3, strides=2)
    x = b.batch_norm(x)
    x = b.relu6(x)
    for filters, stride in _V1_BLOCKS:
        x = b.separable_block(x, _scale(filters, alpha), strides=stride)
    return x


def _resnet_features(b: ModelBuilder, x: str, depth: int, *, stages: int = 4) -> str:
    """ResNet v1 feature extractor (first ``stages`` stages)."""
    x = b.conv_bn_relu(x, 64, 7, strides=2)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    for stage, blocks in enumerate(_STAGES[depth][:stages]):
        filters = _STAGE_FILTERS[stage]
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _bottleneck_v1(b, x, filters, stride, v15=False, project=block == 0)
    return x


def _inception_v2_features(b: ModelBuilder, x: str) -> str:
    """Inception-v2-style feature extractor (stem + 6 modules)."""
    from repro.models.inception import _V1_MODULES, _v1_module

    x = b.conv_bn_relu(x, 64, 7, strides=2)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    x = b.conv_bn_relu(x, 64, 1)
    x = b.conv_bn_relu(x, 192, 3)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    for i, cfg in enumerate(_V1_MODULES[:6]):
        x = _v1_module(b, x, cfg, bn=True)
        if i == 1:
            x = b.max_pool(x, kernel=3, strides=2, padding="same")
    return x


def _box_predictors(b: ModelBuilder, feature: str, *, scales: int,
                    channels: int = 256) -> list[str]:
    """Per-scale box/class heads: a 3x3 conv pair per feature scale."""
    heads = []
    x = feature
    for scale in range(scales):
        if scale > 0:
            # Extra feature layer: 1x1 reduce + 3x3 stride-2 conv.
            x = b.conv_bn_relu(x, channels // 2, 1)
            x = b.conv_bn_relu(x, channels, 3, strides=2)
        boxes = b.conv(x, 24, 3)  # 6 anchors x 4 coords
        classes = b.conv(x, 546, 3)  # 6 anchors x 91 classes
        heads.extend([boxes, classes])
    return heads


def _postprocess(b: ModelBuilder, heads: list[str], *, n_where: int) -> str:
    """NMS-style post-processing: Where-dominated op chains (Sec. IV-A).

    Only the (small) box-coordinate heads feed the selection chain — the
    class heads are consumed by one transpose each, approximating the
    top-k score gather — so each Where operates on a boxes-sized tensor
    whose cost is dominated by per-image host work.
    """
    box_heads = [h for i, h in enumerate(heads) if i % 2 == 0]
    class_heads = [h for i, h in enumerate(heads) if i % 2 == 1]
    for h in class_heads:
        b.flatten(b.transpose(h))
    staged = [b.flatten(b.transpose(h)) for h in box_heads]
    x = b.concat(staged) if len(staged) > 1 else staged[0]
    for i in range(n_where):
        x = b.where(x)
        if i % 3 == 2:
            x = b.transpose(x)
    return x


def _second_stage(b: ModelBuilder, proposals: str, *, convs: int,
                  channels: int = 256, n_where: int = 60) -> str:
    """Faster-RCNN second stage over cropped proposals (fixed count)."""
    x = proposals
    for _ in range(convs):
        x = b.conv_bn_relu(x, channels, 3)
    for i in range(n_where):
        x = b.where(x)
        if i % 4 == 3:
            x = b.transpose(x)
    return x


# -- SSD family ------------------------------------------------------------------------


def _ssd(name: str, feature_fn, resolution: int, *, scales: int,
         n_where: int) -> Graph:
    b = ModelBuilder(name)
    x = b.input(3, resolution, resolution)
    features = feature_fn(b, x)
    heads = _box_predictors(b, features, scales=scales)
    out = _postprocess(b, heads, n_where=n_where)
    b.graph.metadata["task"] = "object detection"
    # Mark the output explicitly (post-processing chain tail).
    b.graph.add_op("detections", "Identity", [out])
    return b.build()


def ssd_mobilenet_v1() -> Graph:
    """SSD_MobileNet_v1 (id 44-ish family; MLPerf 300x300 flavour)."""
    return _ssd("MLPerf_SSD_MobileNet_v1_300x300", _mobilenet_features, 300,
                scales=6, n_where=240)


def ssd_mobilenet_v2() -> Graph:
    from repro.models.mobilenet import mobilenet_v2  # noqa: F401  (doc link)

    def features(b: ModelBuilder, x: str) -> str:
        return _mobilenet_features(b, x)  # v2 trunk approximated by v1 trunk

    return _ssd("SSD_MobileNet_v2", features, 300, scales=6, n_where=250)


def ssd_mobilenet_v1_fpn() -> Graph:
    def features(b: ModelBuilder, x: str) -> str:
        f = _mobilenet_features(b, x)
        # FPN top-down pathway: lateral 1x1s + merge convs.
        for _ in range(3):
            f = b.conv_bn_relu(f, 256, 3)
        return f

    return _ssd("SSD_MobileNet_v1_FPN", features, 640, scales=5, n_where=230)


def ssd_mobilenet_v1_ppn() -> Graph:
    def features(b: ModelBuilder, x: str) -> str:
        return _mobilenet_features(b, x)

    return _ssd("SSD_MobileNet_v1_PPN", features, 300, scales=6, n_where=220)


def ssd_inception_v2() -> Graph:
    return _ssd("SSD_Inception_v2", _inception_v2_features, 300,
                scales=6, n_where=230)


def mlperf_ssd_resnet34() -> Graph:
    """MLPerf_SSD_ResNet34_1200x1200 (id 46): large-input single-shot."""

    def features(b: ModelBuilder, x: str) -> str:
        # ResNet34-ish basic-block trunk (2-conv blocks, 3 stages).
        x = b.conv_bn_relu(x, 64, 7, strides=2)
        x = b.max_pool(x, kernel=3, strides=2, padding="same")
        for filters, blocks, stride in ((64, 3, 1), (128, 4, 2), (256, 6, 2)):
            for i in range(blocks):
                s = stride if i == 0 else 1
                shortcut = x
                if i == 0:
                    shortcut = b.conv_bn(x, filters, 1, strides=s)
                y = b.conv_bn_relu(x, filters, 3, strides=s)
                y = b.conv_bn(y, filters, 3)
                x = b.relu(b.add([shortcut, y]))
        return x

    return _ssd("MLPerf_SSD_ResNet34_1200x1200", features, 1200,
                scales=5, n_where=430)


# -- Faster R-CNN family -------------------------------------------------------------------


def _faster_rcnn(name: str, feature_fn, resolution: int, *,
                 second_stage_convs: int, n_where: int) -> Graph:
    b = ModelBuilder(name)
    x = b.input(3, resolution, resolution)
    features = feature_fn(b, x)
    # RPN: 3x3 conv + objectness/box 1x1 heads.
    rpn = b.conv_bn_relu(features, 512, 3)
    b.conv(rpn, 24, 1)  # box deltas head
    scores = b.conv(rpn, 12, 1)  # objectness head
    proposals = b.where(scores)
    proposals = b.where(proposals)
    # Second stage operates on the cropped feature map (approximated on the
    # shared feature tensor at proposal-pooled cost).
    out = _second_stage(b, features, convs=second_stage_convs,
                        n_where=n_where)
    b.graph.metadata["task"] = "object detection"
    b.graph.add_op("detections", "Identity", [out])
    b.graph.add_op("proposals_out", "Identity", [proposals])
    return b.build()


def faster_rcnn_resnet50() -> Graph:
    return _faster_rcnn(
        "Faster_RCNN_ResNet50", lambda b, x: _resnet_features(b, x, 50, stages=3),
        600, second_stage_convs=3, n_where=230,
    )


def faster_rcnn_resnet101() -> Graph:
    return _faster_rcnn(
        "Faster_RCNN_ResNet101", lambda b, x: _resnet_features(b, x, 101, stages=3),
        600, second_stage_convs=3, n_where=230,
    )


def faster_rcnn_inception_v2() -> Graph:
    return _faster_rcnn(
        "Faster_RCNN_Inception_v2", _inception_v2_features,
        600, second_stage_convs=2, n_where=240,
    )


def faster_rcnn_nas() -> Graph:
    """Faster_RCNN_NAS (id 38): NASNet-A-large backbone at 1200x1200.

    The zoo's extreme outlier: ~5 s online latency with 85% of it in
    convolutions.  NAS cells are stacks of separable convolutions with
    modest channel counts — lots of flops at poor per-kernel efficiency.
    """

    def nas_features(b: ModelBuilder, x: str) -> str:
        x = b.conv_bn_relu(x, 96, 3, strides=2)
        channels = (336, 672, 1344, 2016)
        for stage, ch in enumerate(channels):
            reps = 6 if stage > 0 else 3
            for rep in range(reps):
                stride = 2 if rep == 0 and stage > 0 else 1
                # One NAS cell: 5x5 + two 3x3 separable branches with
                # pointwise merges (NASNet-A-large geometry).
                y = b.depthwise_conv(x, kernel=5, strides=stride)
                y = b.batch_norm(y)
                y = b.relu(y)
                y = b.conv_bn_relu(y, ch, 1)
                for _ in range(4):
                    z = b.depthwise_conv(y, kernel=3)
                    z = b.batch_norm(z)
                    z = b.relu(z)
                    z = b.conv_bn_relu(z, ch, 1)
                    y = b.add([y, z])
                x = y
        return x

    return _faster_rcnn("Faster_RCNN_NAS", nas_features, 1200,
                        second_stage_convs=8, n_where=200)
