"""Graph-building helper with TensorFlow-style auto-naming.

Layer names follow the TF convention the paper shows ("conv2d_48",
"batch_normalization_12"): the first instance of a type is bare, later
instances get ``_<n>`` suffixes.  Builders return node names so model code
reads like a functional model definition.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.frameworks.graph import Graph


class ModelBuilder:
    """Thin stateful wrapper over :class:`Graph` for model definitions."""

    def __init__(self, name: str, **metadata: Any) -> None:
        self.graph = Graph(name)
        self.graph.metadata.update(metadata)
        self._counters: dict[str, int] = defaultdict(int)

    # -- naming --------------------------------------------------------------
    def unique(self, prefix: str) -> str:
        """TF-style unique name: conv2d, conv2d_1, conv2d_2, ..."""
        count = self._counters[prefix]
        self._counters[prefix] += 1
        return prefix if count == 0 else f"{prefix}_{count}"

    # -- primitive ops ---------------------------------------------------------
    def input(self, channels: int, height: int, width: int) -> str:
        name = self.unique("input")
        self.graph.add_op(name, "Input", shape=(channels, height, width))
        return name

    def conv(
        self,
        x: str,
        filters: int,
        kernel: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
        name: str | None = None,
    ) -> str:
        name = name or self.unique("conv2d")
        self.graph.add_op(
            name, "Conv2D", [x],
            filters=filters, kernel=kernel, strides=strides, padding=padding,
        )
        return name

    def depthwise_conv(
        self,
        x: str,
        kernel: int | tuple[int, int] = 3,
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
        depth_multiplier: int = 1,
        name: str | None = None,
    ) -> str:
        name = name or self.unique("depthwise_conv2d")
        self.graph.add_op(
            name, "DepthwiseConv2D", [x],
            kernel=kernel, strides=strides, padding=padding,
            depth_multiplier=depth_multiplier,
        )
        return name

    def batch_norm(self, x: str, name: str | None = None) -> str:
        name = name or self.unique("batch_normalization")
        self.graph.add_op(name, "BatchNorm", [x])
        return name

    def relu(self, x: str, name: str | None = None) -> str:
        name = name or self.unique("relu")
        self.graph.add_op(name, "Relu", [x])
        return name

    def relu6(self, x: str, name: str | None = None) -> str:
        name = name or self.unique("relu6")
        self.graph.add_op(name, "Relu6", [x])
        return name

    def sigmoid(self, x: str) -> str:
        name = self.unique("sigmoid")
        self.graph.add_op(name, "Sigmoid", [x])
        return name

    def tanh(self, x: str) -> str:
        name = self.unique("tanh")
        self.graph.add_op(name, "Tanh", [x])
        return name

    def bias_add(self, x: str) -> str:
        name = self.unique("bias_add")
        self.graph.add_op(name, "BiasAdd", [x])
        return name

    def lrn(self, x: str) -> str:
        name = self.unique("lrn")
        self.graph.add_op(name, "LRN", [x])
        return name

    def max_pool(
        self, x: str, kernel: int = 2, strides: int | None = None,
        padding: str = "valid", name: str | None = None,
    ) -> str:
        name = name or self.unique("max_pooling2d")
        self.graph.add_op(
            name, "MaxPool", [x],
            kernel=kernel, strides=strides if strides is not None else kernel,
            padding=padding,
        )
        return name

    def avg_pool(
        self, x: str, kernel: int = 2, strides: int | None = None,
        padding: str = "valid",
    ) -> str:
        name = self.unique("average_pooling2d")
        self.graph.add_op(
            name, "AvgPool", [x],
            kernel=kernel, strides=strides if strides is not None else kernel,
            padding=padding,
        )
        return name

    def global_avg_pool(self, x: str) -> str:
        name = self.unique("global_average_pooling2d")
        self.graph.add_op(name, "GlobalAvgPool", [x])
        return name

    def dense(self, x: str, units: int, name: str | None = None) -> str:
        name = name or self.unique("dense")
        self.graph.add_op(name, "Dense", [x], units=units)
        return name

    def add(self, inputs: Sequence[str], name: str | None = None) -> str:
        name = name or self.unique("add")
        self.graph.add_op(name, "Add", list(inputs))
        return name

    def mul(self, a: str, b: str) -> str:
        name = self.unique("mul")
        self.graph.add_op(name, "Mul", [a, b])
        return name

    def concat(self, inputs: Sequence[str], name: str | None = None) -> str:
        name = name or self.unique("concat")
        self.graph.add_op(name, "Concat", list(inputs))
        return name

    def flatten(self, x: str) -> str:
        name = self.unique("flatten")
        self.graph.add_op(name, "Flatten", [x])
        return name

    def softmax(self, x: str) -> str:
        name = self.unique("softmax")
        self.graph.add_op(name, "Softmax", [x])
        return name

    def pad(self, x: str, pad: int = 1) -> str:
        name = self.unique("pad")
        self.graph.add_op(name, "Pad", [x], pad=pad)
        return name

    def where(self, x: str) -> str:
        name = self.unique("where")
        self.graph.add_op(name, "Where", [x])
        return name

    def transpose(self, x: str) -> str:
        name = self.unique("transpose")
        self.graph.add_op(name, "Transpose", [x])
        return name

    def resize(self, x: str, scale: int = 2) -> str:
        name = self.unique("resize_bilinear")
        self.graph.add_op(name, "ResizeBilinear", [x], scale=scale)
        return name

    # -- composite blocks ---------------------------------------------------------
    def conv_bn_relu(
        self,
        x: str,
        filters: int,
        kernel: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
    ) -> str:
        """The Conv -> BN -> Relu module the paper's Sec. III-D2 discusses."""
        x = self.conv(x, filters, kernel, strides, padding)
        x = self.batch_norm(x)
        return self.relu(x)

    def conv_bn(
        self,
        x: str,
        filters: int,
        kernel: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
    ) -> str:
        x = self.conv(x, filters, kernel, strides, padding)
        return self.batch_norm(x)

    def separable_block(
        self, x: str, filters: int, strides: int = 1, *, six: bool = True
    ) -> str:
        """MobileNet depthwise-separable block: DW conv + pointwise conv."""
        x = self.depthwise_conv(x, kernel=3, strides=strides)
        x = self.batch_norm(x)
        x = self.relu6(x) if six else self.relu(x)
        x = self.conv(x, filters, 1)
        x = self.batch_norm(x)
        return self.relu6(x) if six else self.relu(x)

    def classifier(self, x: str, classes: int = 1001) -> str:
        """Standard GAP -> Dense -> Softmax head."""
        x = self.global_avg_pool(x)
        x = self.dense(x, classes)
        return self.softmax(x)

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph
