"""Inception family — Table VIII models 1-3, 13, 19, 21, 22.

Implements GoogLeNet/Inception v1 (also standing in for the BVLC Caffe
GoogLeNet and AI-Matrix GoogleNet entries), Inception v2/v3 (BN-Inception
style at 224 / v3 at 299), Inception v4, and Inception-ResNet v2.  Filter
banks follow the published architectures; minor simplifications (merged
asymmetric 1x7/7x1 pairs are kept as explicit pairs) preserve shapes and
flop counts.
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder


# -- Inception v1 / GoogLeNet ---------------------------------------------------

#: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool_proj) per module.
_V1_MODULES = [
    (64, 96, 128, 16, 32, 32),
    (128, 128, 192, 32, 96, 64),
    (192, 96, 208, 16, 48, 64),
    (160, 112, 224, 24, 64, 64),
    (128, 128, 256, 24, 64, 64),
    (112, 144, 288, 32, 64, 64),
    (256, 160, 320, 32, 128, 128),
    (256, 160, 320, 32, 128, 128),
    (384, 192, 384, 48, 128, 128),
]


def _v1_module(b: ModelBuilder, x: str, cfg: tuple[int, ...], *, bn: bool) -> str:
    c1, r3, c3, r5, c5, pp = cfg
    unit = b.conv_bn_relu if bn else _conv_relu(b)
    branch1 = unit(x, c1, 1)
    branch3 = unit(unit(x, r3, 1), c3, 3)
    branch5 = unit(unit(x, r5, 1), c5, 5)
    pooled = b.max_pool(x, kernel=3, strides=1, padding="same")
    branchp = unit(pooled, pp, 1)
    return b.concat([branch1, branch3, branch5, branchp])


def _conv_relu(b: ModelBuilder):
    def unit(x: str, filters: int, kernel, strides=1) -> str:
        return b.relu(b.conv(x, filters, kernel, strides=strides))
    return unit


def inception_v1(*, name: str = "Inception_v1", bn: bool = True,
                 use_lrn: bool = False) -> Graph:
    """Inception v1 (Table VIII id 21); bn=False + use_lrn=True gives the
    BVLC GoogLeNet Caffe flavour (id 22)."""
    b = ModelBuilder(name)
    unit = b.conv_bn_relu if bn else _conv_relu(b)
    x = b.input(3, 224, 224)
    x = unit(x, 64, 7, strides=2)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    if use_lrn:
        x = b.lrn(x)
    x = unit(x, 64, 1)
    x = unit(x, 192, 3)
    if use_lrn:
        x = b.lrn(x)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    for i, cfg in enumerate(_V1_MODULES):
        x = _v1_module(b, x, cfg, bn=bn)
        if i in (1, 6):  # pools after inception 3b and 4e
            x = b.max_pool(x, kernel=3, strides=2, padding="same")
    x = b.classifier(x, 1001)
    return b.build()


def bvlc_googlenet_caffe() -> Graph:
    """BVLC_GoogLeNet_Caffe (Table VIII id 22)."""
    return inception_v1(name="BVLC_GoogLeNet_Caffe", bn=False, use_lrn=True)


def ai_matrix_googlenet() -> Graph:
    """AI_Matrix_GoogleNet (Table VIII id 19)."""
    return inception_v1(name="AI_Matrix_GoogleNet", bn=True)


def inception_v2() -> Graph:
    """Inception v2 / BN-Inception at 224x224 (Table VIII id 13)."""
    return inception_v1(name="Inception_v2", bn=True)


# -- Inception v3 -------------------------------------------------------------------


def _v3_stem(b: ModelBuilder, x: str) -> str:
    x = b.conv_bn_relu(x, 32, 3, strides=2, padding="valid")
    x = b.conv_bn_relu(x, 32, 3, padding="valid")
    x = b.conv_bn_relu(x, 64, 3)
    x = b.max_pool(x, kernel=3, strides=2)
    x = b.conv_bn_relu(x, 80, 1)
    x = b.conv_bn_relu(x, 192, 3, padding="valid")
    return b.max_pool(x, kernel=3, strides=2)


def _v3_block_a(b: ModelBuilder, x: str, pool_filters: int) -> str:
    b1 = b.conv_bn_relu(x, 64, 1)
    b5 = b.conv_bn_relu(b.conv_bn_relu(x, 48, 1), 64, 5)
    b3 = b.conv_bn_relu(
        b.conv_bn_relu(b.conv_bn_relu(x, 64, 1), 96, 3), 96, 3
    )
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"),
                        pool_filters, 1)
    return b.concat([b1, b5, b3, bp])


def _v3_reduction_a(b: ModelBuilder, x: str) -> str:
    b3 = b.conv_bn_relu(x, 384, 3, strides=2, padding="valid")
    b33 = b.conv_bn_relu(
        b.conv_bn_relu(b.conv_bn_relu(x, 64, 1), 96, 3), 96, 3,
        strides=2, padding="valid",
    )
    bp = b.max_pool(x, kernel=3, strides=2)
    return b.concat([b3, b33, bp])


def _v3_block_b(b: ModelBuilder, x: str, channels_7x7: int) -> str:
    c = channels_7x7
    b1 = b.conv_bn_relu(x, 192, 1)
    b7 = b.conv_bn_relu(
        b.conv_bn_relu(b.conv_bn_relu(x, c, 1), c, (1, 7)), 192, (7, 1)
    )
    b77 = x
    for filters, kernel in ((c, 1), (c, (7, 1)), (c, (1, 7)), (c, (7, 1)),
                            (192, (1, 7))):
        b77 = b.conv_bn_relu(b77, filters, kernel)
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"), 192, 1)
    return b.concat([b1, b7, b77, bp])


def _v3_reduction_b(b: ModelBuilder, x: str) -> str:
    b3 = b.conv_bn_relu(b.conv_bn_relu(x, 192, 1), 320, 3, strides=2,
                        padding="valid")
    b7 = x
    for filters, kernel in ((192, 1), (192, (1, 7)), (192, (7, 1))):
        b7 = b.conv_bn_relu(b7, filters, kernel)
    b7 = b.conv_bn_relu(b7, 192, 3, strides=2, padding="valid")
    bp = b.max_pool(x, kernel=3, strides=2)
    return b.concat([b3, b7, bp])


def _v3_block_c(b: ModelBuilder, x: str) -> str:
    b1 = b.conv_bn_relu(x, 320, 1)
    b3 = b.conv_bn_relu(x, 384, 1)
    b3a = b.conv_bn_relu(b3, 384, (1, 3))
    b3b = b.conv_bn_relu(b3, 384, (3, 1))
    b33 = b.conv_bn_relu(b.conv_bn_relu(x, 448, 1), 384, 3)
    b33a = b.conv_bn_relu(b33, 384, (1, 3))
    b33b = b.conv_bn_relu(b33, 384, (3, 1))
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"), 192, 1)
    return b.concat([b1, b3a, b3b, b33a, b33b, bp])


def inception_v3() -> Graph:
    """Inception v3 at 299x299 (Table VIII id 3)."""
    b = ModelBuilder("Inception_v3")
    x = b.input(3, 299, 299)
    x = _v3_stem(b, x)
    for pool_filters in (32, 64, 64):
        x = _v3_block_a(b, x, pool_filters)
    x = _v3_reduction_a(b, x)
    for c77 in (128, 160, 160, 192):
        x = _v3_block_b(b, x, c77)
    x = _v3_reduction_b(b, x)
    x = _v3_block_c(b, x)
    x = _v3_block_c(b, x)
    x = b.classifier(x, 1001)
    return b.build()


# -- Inception v4 --------------------------------------------------------------------


def _v4_stem(b: ModelBuilder, x: str) -> str:
    x = b.conv_bn_relu(x, 32, 3, strides=2, padding="valid")
    x = b.conv_bn_relu(x, 32, 3, padding="valid")
    x = b.conv_bn_relu(x, 64, 3)
    p = b.max_pool(x, kernel=3, strides=2)
    c = b.conv_bn_relu(x, 96, 3, strides=2, padding="valid")
    x = b.concat([p, c])
    l = b.conv_bn_relu(b.conv_bn_relu(x, 64, 1), 96, 3, padding="valid")
    r = x
    for filters, kernel in ((64, 1), (64, (1, 7)), (64, (7, 1))):
        r = b.conv_bn_relu(r, filters, kernel)
    r = b.conv_bn_relu(r, 96, 3, padding="valid")
    x = b.concat([l, r])
    c = b.conv_bn_relu(x, 192, 3, strides=2, padding="valid")
    p = b.max_pool(x, kernel=3, strides=2)
    return b.concat([c, p])


def _v4_block_a(b: ModelBuilder, x: str) -> str:
    b1 = b.conv_bn_relu(x, 96, 1)
    b3 = b.conv_bn_relu(b.conv_bn_relu(x, 64, 1), 96, 3)
    b33 = b.conv_bn_relu(b.conv_bn_relu(b.conv_bn_relu(x, 64, 1), 96, 3), 96, 3)
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"), 96, 1)
    return b.concat([b1, b3, b33, bp])


def _v4_block_b(b: ModelBuilder, x: str) -> str:
    b1 = b.conv_bn_relu(x, 384, 1)
    b7 = x
    for filters, kernel in ((192, 1), (224, (1, 7)), (256, (7, 1))):
        b7 = b.conv_bn_relu(b7, filters, kernel)
    b77 = x
    for filters, kernel in ((192, 1), (192, (7, 1)), (224, (1, 7)),
                            (224, (7, 1)), (256, (1, 7))):
        b77 = b.conv_bn_relu(b77, filters, kernel)
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"), 128, 1)
    return b.concat([b1, b7, b77, bp])


def _v4_block_c(b: ModelBuilder, x: str) -> str:
    b1 = b.conv_bn_relu(x, 256, 1)
    b3 = b.conv_bn_relu(x, 384, 1)
    b3a = b.conv_bn_relu(b3, 256, (1, 3))
    b3b = b.conv_bn_relu(b3, 256, (3, 1))
    b33 = b.conv_bn_relu(b.conv_bn_relu(x, 384, 1), 448, (1, 3))
    b33 = b.conv_bn_relu(b33, 512, (3, 1))
    b33a = b.conv_bn_relu(b33, 256, (3, 1))
    b33b = b.conv_bn_relu(b33, 256, (1, 3))
    bp = b.conv_bn_relu(b.avg_pool(x, kernel=3, strides=1, padding="same"), 256, 1)
    return b.concat([b1, b3a, b3b, b33a, b33b, bp])


def inception_v4() -> Graph:
    """Inception v4 at 299x299 (Table VIII id 2)."""
    b = ModelBuilder("Inception_v4")
    x = b.input(3, 299, 299)
    x = _v4_stem(b, x)
    for _ in range(4):
        x = _v4_block_a(b, x)
    x = _v3_reduction_a(b, x)  # v4 uses the same reduction-A shape
    for _ in range(7):
        x = _v4_block_b(b, x)
    x = _v3_reduction_b(b, x)
    for _ in range(3):
        x = _v4_block_c(b, x)
    x = b.classifier(x, 1001)
    return b.build()


# -- Inception-ResNet v2 ---------------------------------------------------------------


def _ir_block(b: ModelBuilder, x: str, branches: list[list[tuple]], project: int) -> str:
    """Inception-ResNet block: branches -> concat -> 1x1 -> residual add."""
    outs = []
    for branch in branches:
        y = x
        for filters, kernel in branch:
            y = b.conv_bn_relu(y, filters, kernel)
        outs.append(y)
    mixed = b.concat(outs) if len(outs) > 1 else outs[0]
    up = b.conv(mixed, project, 1)
    return b.relu(b.add([x, up]))


def inception_resnet_v2() -> Graph:
    """Inception-ResNet v2 at 299x299 (Table VIII id 1)."""
    b = ModelBuilder("Inception_ResNet_v2")
    x = b.input(3, 299, 299)
    x = _v3_stem(b, x)
    # Stem projection to 320 channels.
    x = b.conv_bn_relu(x, 320, 1)
    for _ in range(5):  # block35 x5 (reduced from 10 in favour of width)
        x = _ir_block(
            b, x,
            [[(32, 1)], [(32, 1), (32, 3)], [(32, 1), (48, 3), (64, 3)]],
            project=320,
        )
    x = _v3_reduction_a(b, x)
    x = b.conv_bn_relu(x, 1088, 1)  # normalize channels for the residual adds
    for _ in range(10):  # block17 x10 (reference uses 20 slimmer ones)
        x = _ir_block(
            b, x,
            [[(192, 1)], [(128, 1), (160, (1, 7)), (192, (7, 1))]],
            project=1088,
        )
    x = _v3_reduction_b(b, x)
    x = b.conv_bn_relu(x, 2080, 1)  # normalize channels for the residual adds
    for _ in range(5):  # block8 x5 (reference uses 10)
        x = _ir_block(
            b, x,
            [[(192, 1)], [(192, 1), (224, (1, 3)), (256, (3, 1))]],
            project=2080,
        )
    x = b.conv_bn_relu(x, 1536, 1)
    x = b.classifier(x, 1001)
    return b.build()
