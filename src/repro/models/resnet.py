"""ResNet family (v1, v1.5, v2) — Table VIII models 4-12, Table X models 4-11.

Bottleneck residual networks at 224x224.  Variants:

* **v1**: post-activation (Conv->BN->Relu, relu after the residual add);
  downsampling convolution carries stride on the 1x1 reduce.
* **v1.5** (MLPerf ResNet50): stride moved to the 3x3 convolution —
  slightly more flops, higher accuracy.
* **v2**: pre-activation (BN->Relu before each conv).

Layer counts under the TF-like framework's BN decomposition land at the
paper's scale (MLPerf_ResNet50_v1.5 -> 234 executed layers, 53 Conv2D).
"""

from __future__ import annotations

from repro.frameworks.graph import Graph
from repro.models.builder import ModelBuilder

#: Blocks per stage for each depth.
_STAGES = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}
_STAGE_FILTERS = (64, 128, 256, 512)


def _bottleneck_v1(
    b: ModelBuilder, x: str, filters: int, stride: int, *, v15: bool, project: bool
) -> str:
    """v1/v1.5 bottleneck: 1x1 reduce -> 3x3 -> 1x1 expand (+shortcut)."""
    shortcut = x
    if project:
        shortcut = b.conv_bn(x, filters * 4, 1, strides=stride)
    # v1 puts the stride on the 1x1 reduce; v1.5 on the 3x3 (MLPerf variant).
    s1, s3 = (1, stride) if v15 else (stride, 1)
    y = b.conv_bn_relu(x, filters, 1, strides=s1)
    y = b.conv_bn_relu(y, filters, 3, strides=s3)
    y = b.conv_bn(y, filters * 4, 1)
    out = b.add([shortcut, y])
    return b.relu(out)


def _bottleneck_v2(
    b: ModelBuilder, x: str, filters: int, stride: int, *, project: bool
) -> str:
    """v2 pre-activation bottleneck."""
    pre = b.relu(b.batch_norm(x))
    shortcut = b.conv(pre, filters * 4, 1, strides=stride) if project else x
    y = b.conv_bn_relu(pre, filters, 1)
    y = b.conv_bn_relu(y, filters, 3, strides=stride)
    y = b.conv(y, filters * 4, 1)
    return b.add([shortcut, y])


def _resnet(
    name: str, depth: int, *, version: int, v15: bool = False, classes: int = 1001
) -> Graph:
    b = ModelBuilder(name)
    x = b.input(3, 224, 224)
    x = b.conv_bn_relu(x, 64, 7, strides=2)
    x = b.max_pool(x, kernel=3, strides=2, padding="same")
    for stage, blocks in enumerate(_STAGES[depth]):
        filters = _STAGE_FILTERS[stage]
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            project = block == 0
            if version == 1:
                x = _bottleneck_v1(b, x, filters, stride, v15=v15, project=project)
            else:
                x = _bottleneck_v2(b, x, filters, stride, project=project)
    if version == 2:
        x = b.relu(b.batch_norm(x))
    x = b.classifier(x, classes)
    return b.build()


def resnet_v1(depth: int) -> Graph:
    """ResNet v1 (50/101/152) as in the TF-Slim zoo."""
    return _resnet(f"ResNet_v1_{depth}", depth, version=1)


def resnet_v2(depth: int) -> Graph:
    """ResNet v2 pre-activation (50/101/152)."""
    return _resnet(f"ResNet_v2_{depth}", depth, version=2)


def mlperf_resnet50_v15() -> Graph:
    """MLPerf_ResNet50_v1.5 — the paper's running example (Table VIII id 7)."""
    return _resnet("MLPerf_ResNet50_v1.5", 50, version=1, v15=True)


def ai_matrix_resnet(depth: int) -> Graph:
    """AI-Matrix ResNet variants (Table VIII ids 9 and 12) — v1-style."""
    return _resnet(f"AI_Matrix_ResNet{depth}", depth, version=1)
