"""Tracer interface.

Each profiler in the stack owns a :class:`Tracer` — "some code to create and
publish spans" (paper Sec. III-A).  Tracers can be enabled or disabled at
runtime, which is how XSP's leveled experimentation selects which stack
levels are profiled in a given run.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Any, Callable, Iterable, Iterator

from repro.tracing.span import Level, Span, SpanKind


class Tracer(abc.ABC):
    """Creates spans and publishes finished spans to a sink.

    The sink is a callable (usually :meth:`repro.tracing.server.TracingServer.publish`)
    so that tracers do not depend on the server implementation — spans may
    equally be buffered and converted offline, as the paper allows.  An
    optional ``batch_sink`` (usually
    :meth:`~repro.tracing.server.TracingServer.publish_many`) lets
    offline-conversion tracers deliver a whole profiler dump in one
    call — one server lock round per batch instead of one per span.
    """

    def __init__(
        self,
        name: str,
        level: Level,
        sink: Callable[[Span], None] | None = None,
        batch_sink: Callable[[Iterable[Span]], None] | None = None,
    ) -> None:
        self.name = name
        self.level = level
        self._sink = sink
        self._batch_sink = batch_sink
        self._enabled = True

    # -- enable/disable -------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- span publication ------------------------------------------------
    def publish(self, span: Span) -> None:
        """Publish a finished span if this tracer is enabled."""
        if not self._enabled:
            return
        span.tags.setdefault("tracer", self.name)
        self.emit(span)

    def publish_many(
        self, spans: Iterable[Span], *, chunk_size: int | None = None
    ) -> list[Span]:
        """Publish a batch of finished spans; returns the published list.

        Tags each span like :meth:`publish` and delivers the batch
        through :meth:`emit_many` (one ``batch_sink`` call when the
        tracer has one).  ``chunk_size`` splits delivery into bounded
        chunks — one server lock round each — so live stream cursors see
        a long offline conversion land progressively instead of as one
        giant burst.  A disabled tracer suppresses publication only: the
        spans are still materialized and returned (untagged), exactly as
        per-span :meth:`publish` loops behaved.
        """
        if not self._enabled:
            return list(spans)
        batch = []
        pending = 0
        for span in spans:
            span.tags.setdefault("tracer", self.name)
            batch.append(span)
            pending += 1
            if chunk_size is not None and pending >= chunk_size:
                self.emit_many(batch[-pending:])
                pending = 0
        if pending:
            self.emit_many(batch[-pending:] if chunk_size is not None else batch)
        return batch

    @abc.abstractmethod
    def emit(self, span: Span) -> None:
        """Deliver a span to the sink. Subclasses decide buffering policy."""

    def emit_many(self, batch: list[Span]) -> None:
        """Deliver a batch; defaults to per-span :meth:`emit`."""
        for span in batch:
            self.emit(span)

    # -- convenience -----------------------------------------------------
    def span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        kind: SpanKind = SpanKind.INTERNAL,
        parent_id: int | None = None,
        correlation_id: int | None = None,
        trace_id: int = 0,
        **tags: Any,
    ) -> Span:
        """Create and publish a span in one call; returns the span."""
        s = Span(
            name=name,
            start_ns=start_ns,
            end_ns=end_ns,
            level=self.level,
            kind=kind,
            parent_id=parent_id,
            correlation_id=correlation_id,
            trace_id=trace_id,
            tags=dict(tags),
        )
        self.publish(s)
        return s

    @contextlib.contextmanager
    def timed_span(
        self,
        name: str,
        clock: Callable[[], int],
        *,
        parent_id: int | None = None,
        **tags: Any,
    ) -> Iterator[Span]:
        """Context manager measuring a code region with ``clock`` (ns)."""
        start = clock()
        s = Span(
            name=name,
            start_ns=start,
            end_ns=start,
            level=self.level,
            parent_id=parent_id,
            tags=dict(tags),
        )
        try:
            yield s
        finally:
            s.end_ns = clock()
            self.publish(s)


class BufferingTracer(Tracer):
    """Tracer that forwards spans to the sink and keeps a local buffer.

    The buffer supports the paper's offline-conversion mode: a profiler can
    run to completion and have its buffered output converted to spans after
    the fact with zero in-run overhead.
    """

    def __init__(
        self,
        name: str,
        level: Level,
        sink: Callable[[Span], None] | None = None,
        batch_sink: Callable[[Iterable[Span]], None] | None = None,
    ) -> None:
        super().__init__(name, level, sink, batch_sink)
        self.buffer: list[Span] = []

    def emit(self, span: Span) -> None:
        self.buffer.append(span)
        if self._sink is not None:
            self._sink(span)

    def emit_many(self, batch: list[Span]) -> None:
        self.buffer.extend(batch)
        if self._batch_sink is not None:
            self._batch_sink(batch)
        elif self._sink is not None:
            for span in batch:
                self._sink(span)

    def drain(self) -> list[Span]:
        """Return and clear the local buffer."""
        out, self.buffer = self.buffer, []
        return out


class NoopTracer(Tracer):
    """Tracer that drops all spans; used when a stack level is disabled."""

    def emit(self, span: Span) -> None:  # noqa: D102 - interface impl
        pass
