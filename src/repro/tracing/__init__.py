"""Distributed-tracing substrate used by XSP to aggregate across-stack profiles.

The design follows Section III-A of the paper: every profiler in the HW/SW
stack is turned into a *tracer*, every profiled event becomes a *span*
tagged with its stack level, and a *tracing server* aggregates the spans
published by all tracers into a single timeline trace.  Parent/child links
that the profilers themselves cannot provide (GPU kernels -> layers) are
reconstructed offline with an interval tree (:mod:`repro.tracing.correlation`).
"""

from repro.tracing.span import (
    Level,
    LogEntry,
    Span,
    SpanKind,
    new_span_id,
    new_trace_id,
    seed_span_ids,
)
from repro.tracing.index import Gap, TraceIndex
from repro.tracing.table import SpanTable, SpanView
from repro.tracing.tracer import BufferingTracer, NoopTracer, Tracer
from repro.tracing.server import RowBatch, TraceStream, TracingServer
from repro.tracing.trace import Trace
from repro.tracing.interval_tree import Interval, IntervalTree
from repro.tracing.correlation import (
    AmbiguousParentError,
    CorrelationResult,
    LaunchExecutionState,
    correlate_launch_execution,
    reconstruct_parents,
)

__all__ = [
    "AmbiguousParentError",
    "BufferingTracer",
    "CorrelationResult",
    "Gap",
    "Interval",
    "IntervalTree",
    "LaunchExecutionState",
    "Level",
    "LogEntry",
    "NoopTracer",
    "RowBatch",
    "Span",
    "SpanKind",
    "SpanTable",
    "SpanView",
    "Trace",
    "TraceIndex",
    "TraceStream",
    "Tracer",
    "TracingServer",
    "correlate_launch_execution",
    "new_span_id",
    "new_trace_id",
    "reconstruct_parents",
    "seed_span_ids",
]
