"""Timeline trace: the aggregation of all spans published for one evaluation.

A :class:`Trace` is what the tracing server hands to the analysis pipeline.
It provides level-based queries, child lookup, and export to the Chrome
``chrome://tracing`` JSON format for visual inspection.

Storage is columnar: every published span is appended to the trace's
:class:`~repro.tracing.table.SpanTable` (structure-of-arrays — see that
module for the storage contract) and no per-span objects are retained.
``trace.spans`` remains a list-like sequence for source compatibility; it
yields lightweight :class:`~repro.tracing.table.SpanView` flyweights bound
to the table's rows.

Queries are served by a lazily-built :class:`~repro.tracing.index.TraceIndex`
(index once, query many): the first query pays one O(n log n) build,
every later query is a lookup.  Appending spans does **not** invalidate
the index — the next query *advances* it, merge-sorting the pending tail
of new rows into the built structures (the no-rebuild-on-append rule;
see the index module's maintenance model).  The advance target is the
table's :attr:`~repro.tracing.table.SpanTable.watermark` of completed
rows, which is what makes an open, still-growing capture queryable
mid-flight.  Code that assigns ``span.parent_id`` by hand after querying
must still call :meth:`Trace.touch_parents`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.tracing.index import Gap, TraceIndex
from repro.tracing.span import Level, Span, SpanKind
from repro.tracing.table import SpanTable, SpanView


class SpanSequence:
    """List-like, append-able view of a trace's span table.

    Kept source-compatible with the former ``list[Span]`` field:
    iteration, indexing, ``len``, and ``append``/``extend`` all work (the
    latter two ingest into the columns; the index's length check picks
    the change up, exactly as a direct list append did).
    """

    __slots__ = ("_table",)

    def __init__(self, table: SpanTable) -> None:
        self._table = table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[SpanView]:
        return self._table.views()

    def __getitem__(self, item: int | slice):
        n = len(self._table)
        if isinstance(item, slice):
            return [SpanView(self._table, row) for row in range(n)[item]]
        row = item if item >= 0 else n + item
        if not 0 <= row < n:
            raise IndexError("span index out of range")
        return SpanView(self._table, row)

    def __bool__(self) -> bool:
        return len(self._table) > 0

    def append(self, span: Span) -> None:
        self._table.append(span)

    def extend(self, spans: Iterable[Span]) -> None:
        for span in spans:
            self._table.append(span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanSequence(<{len(self._table)} spans>)"


class Trace:
    """An ordered collection of spans sharing a ``trace_id``."""

    __slots__ = ("trace_id", "table", "metadata", "closed", "_index")

    def __init__(
        self,
        trace_id: int,
        spans: Iterable[Span] | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.table = SpanTable()
        self.metadata: dict[str, Any] = metadata if metadata is not None else {}
        #: Set by the tracing server when the capture ends; stream
        #: cursors use it to know no further rows will arrive.
        self.closed = False
        self._index: TraceIndex | None = None
        if spans is not None:
            self.extend(spans)

    # -- mutation ---------------------------------------------------------
    def add(self, span: Span) -> None:
        span.trace_id = self.trace_id
        self.table.append(span)

    def extend(self, spans: Iterable[Span]) -> None:
        for s in spans:
            self.add(s)

    def add_row(self, **fields: Any) -> int:
        """Columnar ingest of one span's fields (no ``Span`` constructed).

        Accepts :meth:`SpanTable.append_row` keywords; the row is stamped
        with this trace's id.  Returns the new row index.
        """
        fields["trace_id"] = self.trace_id
        return self.table.append_row(**fields)

    # -- index lifecycle --------------------------------------------------
    @property
    def watermark(self) -> int:
        """Rows visible to queries: the table's completed-append mark."""
        return self.table.watermark

    @property
    def index(self) -> TraceIndex:
        """The current index, advanced (never rebuilt) over new appends."""
        idx = self._index
        if idx is None or idx.table is not self.table:
            idx = TraceIndex(self.table, n=self.table.watermark)
            self._index = idx
        elif idx.covered < self.table.watermark:
            idx.advance(self.table.watermark)
        return idx

    def invalidate_index(self) -> None:
        """Force a full cold index rebuild on the next query.

        Not needed for appends (the index advances itself); kept as the
        escape hatch for out-of-band table surgery and as the reference
        path the incremental-maintenance fuzz tests compare against.
        """
        self._index = None

    def touch_parents(self) -> None:
        """Signal that ``parent_id`` fields changed (children/roots stale)."""
        if self._index is not None:
            self._index.invalidate_parents()

    # -- queries ------------------------------------------------------------
    @property
    def spans(self) -> SpanSequence:
        return SpanSequence(self.table)

    def __len__(self) -> int:
        # The completed-append mark, not the raw column length: equal in
        # every single-threaded flow, and the safe count mid-capture.
        return self.table.watermark

    def __iter__(self) -> Iterator[SpanView]:
        return self.table.views()

    def sorted_spans(self) -> list[SpanView]:
        """Spans sorted by (start, -duration) — parents before children."""
        return list(self.index.sorted_spans())

    def at_level(self, level: Level) -> list[SpanView]:
        return list(self.index.by_level().get(level, ()))

    def of_kind(self, kind: SpanKind) -> list[SpanView]:
        return list(self.index.by_kind().get(kind, ()))

    def find(self, predicate: Callable[[SpanView], bool]) -> list[SpanView]:
        return [s for s in self.table.views() if predicate(s)]

    def first_named(self, name: str) -> SpanView | None:
        # Interning makes this a column scan for one small int, not a
        # per-span string comparison.
        name_id = self.table.name_code(name)
        if name_id is None:
            return None
        for row, nid in enumerate(self.table.name_id):
            if nid == name_id:
                return SpanView(self.table, row)
        return None

    def by_id(self) -> dict[int, SpanView]:
        return dict(self.index.by_id())

    def children_of(self, span) -> list[SpanView]:
        return list(self.index.children_of(span.span_id))

    def children_index(self) -> dict[int | None, list[SpanView]]:
        """Map parent span id -> children, in start order."""
        return {k: list(v) for k, v in self.index.children_index().items()}

    def roots(self) -> list[SpanView]:
        return list(self.index.roots())

    def levels_present(self) -> list[Level]:
        return list(self.index.levels_present())

    def span_extent_ns(self) -> tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        return self.index.extent_ns()

    def gaps(self, level: Level, kind: SpanKind | None = None) -> list[Gap]:
        """Idle intervals between spans at ``level`` (optionally one kind).

        Served by the gap index: computed once per (level, kind) per
        trace snapshot, O(1) on every later query.  GPU-kernel execution
        gaps are the device-idle "bubbles" the insight engine flags.
        """
        return list(self.index.gaps(level, kind))

    # -- export ---------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome ``trace_event`` JSON format.

        Delegates to :func:`repro.tracing.export.trace_to_chrome`
        (imported lazily; export depends on this module).
        """
        from repro.tracing.export import trace_to_chrome

        return trace_to_chrome(self)

    def summary(self) -> dict[str, Any]:
        """Compact description used in test assertions and reports."""
        per_level = {
            level.name: len(rows)
            for level, rows in self.index.level_rows().items()
        }
        lo, hi = self.span_extent_ns()
        return {
            "trace_id": self.trace_id,
            "n_spans": len(self.table),
            "per_level": per_level,
            "extent_ms": (hi - lo) / 1e6,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(trace_id={self.trace_id}, n_spans={len(self.table)}, "
            f"metadata={self.metadata!r})"
        )
