"""Timeline trace: the aggregation of all spans published for one evaluation.

A :class:`Trace` is what the tracing server hands to the analysis pipeline.
It provides level-based queries, child lookup, and export to the Chrome
``chrome://tracing`` JSON format for visual inspection.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.tracing.span import Level, Span, SpanKind


@dataclass
class Trace:
    """An ordered collection of spans sharing a ``trace_id``."""

    trace_id: int
    spans: list[Span] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- mutation ---------------------------------------------------------
    def add(self, span: Span) -> None:
        span.trace_id = self.trace_id
        self.spans.append(span)

    def extend(self, spans: Iterable[Span]) -> None:
        for s in spans:
            self.add(s)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def sorted_spans(self) -> list[Span]:
        """Spans sorted by (start, -duration) — parents before children."""
        return sorted(self.spans, key=lambda s: (s.start_ns, -s.duration_ns))

    def at_level(self, level: Level) -> list[Span]:
        return [s for s in self.spans if s.level == level]

    def of_kind(self, kind: SpanKind) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def find(self, predicate: Callable[[Span], bool]) -> list[Span]:
        return [s for s in self.spans if predicate(s)]

    def first_named(self, name: str) -> Span | None:
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def by_id(self) -> dict[int, Span]:
        return {s.span_id: s for s in self.spans}

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def children_index(self) -> dict[int | None, list[Span]]:
        """Map parent span id -> children, in start order."""
        index: dict[int | None, list[Span]] = defaultdict(list)
        for s in self.spans:
            index[s.parent_id].append(s)
        for kids in index.values():
            kids.sort(key=lambda s: s.start_ns)
        return dict(index)

    def roots(self) -> list[Span]:
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent_id is None or s.parent_id not in ids]

    def levels_present(self) -> list[Level]:
        return sorted({s.level for s in self.spans})

    def span_extent_ns(self) -> tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        if not self.spans:
            return (0, 0)
        return (
            min(s.start_ns for s in self.spans),
            max(s.end_ns for s in self.spans),
        )

    # -- export ---------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome tracing JSON format (one complete event per span)."""
        events = []
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.level.name,
                    "ph": "X",
                    "ts": s.start_ns / 1e3,  # chrome uses microseconds
                    "dur": s.duration_ns / 1e3,
                    "pid": self.trace_id,
                    "tid": int(s.level),
                    "args": {
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        "kind": s.kind.value,
                        "correlation_id": s.correlation_id,
                        **{k: _jsonable(v) for k, v in s.tags.items()},
                    },
                }
            )
        return json.dumps({"traceEvents": events}, indent=None)

    def summary(self) -> dict[str, Any]:
        """Compact description used in test assertions and reports."""
        per_level = defaultdict(int)
        for s in self.spans:
            per_level[s.level.name] += 1
        lo, hi = self.span_extent_ns()
        return {
            "trace_id": self.trace_id,
            "n_spans": len(self.spans),
            "per_level": dict(per_level),
            "extent_ms": (hi - lo) / 1e6,
        }


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)
