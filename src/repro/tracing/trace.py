"""Timeline trace: the aggregation of all spans published for one evaluation.

A :class:`Trace` is what the tracing server hands to the analysis pipeline.
It provides level-based queries, child lookup, and export to the Chrome
``chrome://tracing`` JSON format for visual inspection.

Queries are served by a lazily-built :class:`~repro.tracing.index.TraceIndex`
(index once, query many): the first query after a mutation pays one
O(n log n) build, every later query is a lookup.  Mutating methods
invalidate the index; code that assigns ``span.parent_id`` by hand after
querying must call :meth:`Trace.touch_parents`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.tracing.index import Gap, TraceIndex
from repro.tracing.span import Level, Span, SpanKind


@dataclass
class Trace:
    """An ordered collection of spans sharing a ``trace_id``."""

    trace_id: int
    spans: list[Span] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    _index: TraceIndex | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- mutation ---------------------------------------------------------
    def add(self, span: Span) -> None:
        span.trace_id = self.trace_id
        self.spans.append(span)
        self._index = None

    def extend(self, spans: Iterable[Span]) -> None:
        for s in spans:
            self.add(s)

    # -- index lifecycle --------------------------------------------------
    @property
    def index(self) -> TraceIndex:
        """The current (lazily rebuilt) index over this trace's spans."""
        idx = self._index
        if idx is None or not idx.fresh_for(self.spans):
            idx = TraceIndex(self.spans)
            self._index = idx
        return idx

    def invalidate_index(self) -> None:
        """Force a full index rebuild on the next query."""
        self._index = None

    def touch_parents(self) -> None:
        """Signal that ``parent_id`` fields changed (children/roots stale)."""
        if self._index is not None:
            self._index.invalidate_parents()

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def sorted_spans(self) -> list[Span]:
        """Spans sorted by (start, -duration) — parents before children."""
        return list(self.index.sorted_spans())

    def at_level(self, level: Level) -> list[Span]:
        return list(self.index.by_level().get(level, ()))

    def of_kind(self, kind: SpanKind) -> list[Span]:
        return list(self.index.by_kind().get(kind, ()))

    def find(self, predicate: Callable[[Span], bool]) -> list[Span]:
        return [s for s in self.spans if predicate(s)]

    def first_named(self, name: str) -> Span | None:
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def by_id(self) -> dict[int, Span]:
        return dict(self.index.by_id())

    def children_of(self, span: Span) -> list[Span]:
        return list(self.index.children_of(span.span_id))

    def children_index(self) -> dict[int | None, list[Span]]:
        """Map parent span id -> children, in start order."""
        return {k: list(v) for k, v in self.index.children_index().items()}

    def roots(self) -> list[Span]:
        return list(self.index.roots())

    def levels_present(self) -> list[Level]:
        return list(self.index.levels_present())

    def span_extent_ns(self) -> tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        return self.index.extent_ns()

    def gaps(self, level: Level, kind: SpanKind | None = None) -> list[Gap]:
        """Idle intervals between spans at ``level`` (optionally one kind).

        Served by the gap index: computed once per (level, kind) per
        trace snapshot, O(1) on every later query.  GPU-kernel execution
        gaps are the device-idle "bubbles" the insight engine flags.
        """
        return list(self.index.gaps(level, kind))

    # -- export ---------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome ``trace_event`` JSON format.

        Delegates to :func:`repro.tracing.export.trace_to_chrome`
        (imported lazily; export depends on this module).
        """
        from repro.tracing.export import trace_to_chrome

        return trace_to_chrome(self)

    def summary(self) -> dict[str, Any]:
        """Compact description used in test assertions and reports."""
        per_level = defaultdict(int)
        for level, spans in self.index.by_level().items():
            per_level[level.name] += len(spans)
        lo, hi = self.span_extent_ns()
        return {
            "trace_id": self.trace_id,
            "n_spans": len(self.spans),
            "per_level": dict(per_level),
            "extent_ms": (hi - lo) / 1e6,
        }
