"""Offline correlation of across-stack spans.

Two reconstruction problems are solved here, following paper Sec. III-A/B:

1. **Parent-child reconstruction.**  Disjoint profilers cannot annotate
   children with their parents (e.g. GPU kernel spans with layer spans).
   XSP builds an interval tree over candidate parent spans and assigns each
   orphan span the *tightest* span at the next-higher stack level whose
   interval contains it.  If several mutually-overlapping candidates
   contain a span (parallel events), its parentage is *ambiguous* and a
   serialized re-run (``CUDA_LAUNCH_BLOCKING=1``) is required.

2. **Launch/execution correlation.**  Asynchronous GPU kernels appear as a
   host-side *launch span* and a device-side *execution span* carrying the
   same ``correlation_id``.  The merged kernel view takes its parent from
   the launch span (the launch happens inside the layer; the execution may
   complete after the layer returns) and its performance information from
   the execution span.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any

from repro.tracing.interval_tree import Interval, IntervalTree
from repro.tracing.span import Level, Span, SpanKind
from repro.tracing.trace import Trace


class AmbiguousParentError(RuntimeError):
    """Raised when parallel events make parent assignment ambiguous.

    The remedy, per the paper, is another profiling run with parallel
    events serialized (e.g. ``CUDA_LAUNCH_BLOCKING=1`` for CUDA or
    ``OMP_NUM_THREADS=1`` for OpenMP).
    """

    def __init__(self, span: Span, candidates: list[Span]) -> None:
        self.span = span
        self.candidates = candidates
        names = ", ".join(c.name for c in candidates[:4])
        super().__init__(
            f"span {span.name!r} [{span.start_ns}, {span.end_ns}] has "
            f"{len(candidates)} overlapping candidate parents ({names}); "
            "re-run with serialized execution (CUDA_LAUNCH_BLOCKING=1) to "
            "disambiguate"
        )


@dataclass
class MergedKernel:
    """Launch + execution span pair merged into one logical kernel record."""

    name: str
    correlation_id: int
    launch: Span
    execution: Span
    parent_id: int | None

    @property
    def duration_ns(self) -> int:
        """Effective kernel duration comes from the execution span."""
        return self.execution.duration_ns

    @property
    def metrics(self) -> dict[str, Any]:
        """GPU metrics are attached as metadata on the execution span."""
        return {
            k: v
            for k, v in self.execution.tags.items()
            if k.startswith("metric.")
        }


@dataclass
class CorrelationResult:
    """Output of :func:`reconstruct_parents`."""

    trace: Trace
    #: span_id -> assigned parent span_id (only for spans assigned here)
    assigned: dict[int, int] = field(default_factory=dict)
    #: spans whose parentage was ambiguous (when ``strict=False``)
    ambiguous: list[Span] = field(default_factory=list)

    @property
    def needs_serialized_rerun(self) -> bool:
        return bool(self.ambiguous)


def correlate_launch_execution(trace: Trace) -> list[MergedKernel]:
    """Pair launch/execution spans by ``correlation_id``.

    Execution spans inherit the launch span's parent, mirroring how XSP
    "uses the launch span's parent as the parent of the asynchronous
    function and uses the execution span to get the performance
    information".
    """
    launches: dict[int, Span] = {}
    executions: dict[int, Span] = {}
    for s in trace.spans:
        if s.correlation_id is None:
            continue
        if s.kind == SpanKind.LAUNCH:
            if s.correlation_id in launches:
                raise ValueError(
                    f"duplicate launch span for correlation_id={s.correlation_id}"
                )
            launches[s.correlation_id] = s
        elif s.kind == SpanKind.EXECUTION:
            if s.correlation_id in executions:
                raise ValueError(
                    f"duplicate execution span for correlation_id={s.correlation_id}"
                )
            executions[s.correlation_id] = s

    merged: list[MergedKernel] = []
    for cid, launch in sorted(launches.items()):
        execution = executions.get(cid)
        if execution is None:
            # Launch captured but activity record lost: skip (CUPTI permits this).
            continue
        merged.append(
            MergedKernel(
                name=execution.name,
                correlation_id=cid,
                launch=launch,
                execution=execution,
                parent_id=launch.parent_id,
            )
        )
        # Propagate parent onto the execution span for downstream queries.
        if execution.parent_id is None and launch.parent_id is not None:
            execution.parent_id = launch.parent_id
    trace.touch_parents()
    return merged


def _parent_level_map(levels: list[Level]) -> dict[Level, Level | None]:
    """For each present level, the closest present level above it."""
    ordered = sorted(levels)
    out: dict[Level, Level | None] = {}
    for i, lvl in enumerate(ordered):
        out[lvl] = ordered[i - 1] if i > 0 else None
    return out


def reconstruct_parents(
    trace: Trace, *, strict: bool = True, engine: str = "sweep"
) -> CorrelationResult:
    """Assign parents to orphan spans via interval containment.

    Only spans on the *host* timeline participate as children directly:
    device-side execution spans receive their parent through
    :func:`correlate_launch_execution` (which must run afterwards or the
    execution spans stay parentless until merged).  For each orphan span,
    candidate parents are spans one present-level higher whose interval
    contains the orphan's interval; the tightest nested candidate wins.

    ``strict=True`` raises :class:`AmbiguousParentError` on parallel-event
    ambiguity; ``strict=False`` records ambiguous spans in the result so a
    caller can trigger the serialized re-run.

    ``engine`` selects the containment strategy:

    * ``"sweep"`` (default) — one O(n log n) sweep over start-sorted spans
      with a per-level active-parent stack; the hot path.
    * ``"tree"`` — the original per-orphan interval-tree queries; kept as
      the reference implementation the ablation benchmark checks the
      sweep against.

    Both engines see identical candidate sets for every orphan (candidates
    depend only on static interval data, not on assignment order), so
    their parent assignments — including which span first trips
    :class:`AmbiguousParentError` in strict mode — are identical.
    """
    if engine not in ("sweep", "tree"):
        raise ValueError(f"unknown correlation engine {engine!r}")
    result = CorrelationResult(trace=trace)
    try:
        if engine == "tree":
            _reconstruct_tree(trace, strict=strict, result=result)
        else:
            _reconstruct_sweep(trace, strict=strict, result=result)
    finally:
        # parent_id fields changed (possibly partially, when strict mode
        # raised); drop the trace's parent-derived indexes either way.
        trace.touch_parents()
    return result


def _reconstruct_tree(
    trace: Trace, *, strict: bool, result: CorrelationResult
) -> None:
    """Reference engine: per-orphan containment queries on interval trees."""
    levels = trace.levels_present()
    parent_of_level = _parent_level_map(levels)

    trees: dict[Level, IntervalTree[Span]] = {}
    for lvl in levels:
        trees[lvl] = IntervalTree(
            Interval(s.start_ns, s.end_ns, s) for s in trace.at_level(lvl)
        )

    for span in trace.sorted_spans():
        if span.parent_id is not None:
            continue
        if span.kind == SpanKind.EXECUTION:
            continue  # handled by launch/execution correlation
        target_level = parent_of_level.get(span.level)
        if target_level is None:
            continue  # top-of-stack spans legitimately have no parent
        candidates = [
            iv.data
            for iv in trees[target_level].containing(
                Interval(span.start_ns, span.end_ns)
            )
            if iv.data.span_id != span.span_id
        ]
        if not candidates:
            continue
        chosen = _choose_parent(span, candidates, strict=strict, result=result)
        if chosen is not None:
            span.parent_id = chosen.span_id
            result.assigned[span.span_id] = chosen.span_id


def _reconstruct_sweep(
    trace: Trace, *, strict: bool, result: CorrelationResult
) -> None:
    """Hot-path engine: one sweep over start-sorted spans.

    For each present level the sweep keeps an *active-parent stack*: the
    spans at that level whose interval is still open at the sweep
    position, pushed in start order.  When an orphan at level ``c`` is
    processed, every level-``parent_of[c]`` span starting at or before the
    orphan has been admitted to that level's stack, expired entries
    (ending before the orphan starts) have been popped, and the orphan's
    candidate parents are exactly the stack entries whose end reaches the
    orphan's end — the same containment set the interval tree computes,
    without per-orphan tree queries or list churn.

    The stack is a deque expired from both ends: sequential same-level
    spans (the dominant layer pattern — ends increasing in push order)
    expire from the front, nested spans (ends decreasing) from the back.
    Non-monotonic overlap patterns can strand dead entries in the
    interior; the candidate scan counts them and compacts the deque the
    moment it sees one, so each span is swept out at most once and the
    stack never holds more than the true concurrent-overlap depth for
    long.  Stranded entries are harmless for correctness meanwhile — a
    candidate needs ``end >= orphan.end`` while expiry means
    ``end < orphan.start``.
    """
    index = trace.index
    levels = index.levels_present()
    parent_of_level = _parent_level_map(levels)

    # Per-level admission cursor into the level's start-sorted span array.
    # Only levels that can actually parent something are materialized (the
    # deepest level's bucket — usually the kernel-dominated bulk of the
    # trace — never needs sorting).
    parent_levels = {lvl for lvl in parent_of_level.values() if lvl is not None}
    cursors: dict[Level, int] = {lvl: 0 for lvl in parent_levels}
    actives: dict[Level, deque[Span]] = {lvl: deque() for lvl in parent_levels}
    arrays: dict[Level, list[Span]] = {
        lvl: index.level_sorted(lvl) for lvl in parent_levels
    }

    for span in index.sorted_spans():
        if span.parent_id is not None:
            continue
        if span.kind == SpanKind.EXECUTION:
            continue  # handled by launch/execution correlation
        target_level = parent_of_level.get(span.level)
        if target_level is None:
            continue  # top-of-stack spans legitimately have no parent
        start = span.start_ns
        end = span.end_ns
        # Admit parents whose interval can reach back to this orphan.  The
        # cursor is independent of the global sweep position so that a
        # parent sharing the orphan's (start, -duration) sort key is
        # admitted regardless of tie-break order.
        arr = arrays[target_level]
        cur = cursors[target_level]
        active = actives[target_level]
        n = len(arr)
        while cur < n and arr[cur].start_ns <= start:
            active.append(arr[cur])
            cur += 1
        cursors[target_level] = cur
        # Expire parents that ended before this orphan started.
        while active and active[0].end_ns < start:
            active.popleft()
        while active and active[-1].end_ns < start:
            active.pop()
        if not active:
            continue
        span_id = span.span_id
        candidates = []
        stranded = 0
        for p in active:
            p_end = p.end_ns
            if p_end < start:
                stranded += 1
            elif p_end >= end and p.span_id != span_id:
                candidates.append(p)
        if stranded:
            actives[target_level] = deque(
                p for p in active if p.end_ns >= start
            )
        if not candidates:
            continue
        chosen = _choose_parent(span, candidates, strict=strict, result=result)
        if chosen is not None:
            span.parent_id = chosen.span_id
            result.assigned[span.span_id] = chosen.span_id


def _choose_parent(
    span: Span,
    candidates: list[Span],
    *,
    strict: bool,
    result: CorrelationResult,
) -> Span | None:
    if len(candidates) == 1:
        return candidates[0]
    # Multiple containing candidates: fine if they are strictly nested
    # (pick the tightest); ambiguous if any two merely overlap — including
    # the identical-interval case (two parallel layers spanning the same
    # window), which only a serialized re-run can resolve.
    ordered = sorted(candidates, key=lambda s: (s.duration_ns, s.start_ns))
    for i, outer in enumerate(ordered):
        for inner in ordered[:i]:
            strictly_nested = outer.contains(inner) and (
                (outer.start_ns, outer.end_ns)
                != (inner.start_ns, inner.end_ns)
            )
            if not strictly_nested:
                if strict:
                    raise AmbiguousParentError(span, candidates)
                result.ambiguous.append(span)
                return None
    return ordered[0]


def build_hierarchy(trace: Trace, *, strict: bool = True) -> CorrelationResult:
    """Full correlation pass: parents first, then launch/execution merging."""
    result = reconstruct_parents(trace, strict=strict)
    correlate_launch_execution(trace)
    return result


def kernels_by_parent(trace: Trace) -> dict[int | None, list[MergedKernel]]:
    """Group merged kernels by their (layer) parent span id."""
    grouped: dict[int | None, list[MergedKernel]] = defaultdict(list)
    for mk in correlate_launch_execution(trace):
        grouped[mk.parent_id].append(mk)
    return dict(grouped)
