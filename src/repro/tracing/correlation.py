"""Offline correlation of across-stack spans.

Two reconstruction problems are solved here, following paper Sec. III-A/B:

1. **Parent-child reconstruction.**  Disjoint profilers cannot annotate
   children with their parents (e.g. GPU kernel spans with layer spans).
   XSP builds an interval tree over candidate parent spans and assigns each
   orphan span the *tightest* span at the next-higher stack level whose
   interval contains it.  If several mutually-overlapping candidates
   contain a span (parallel events), its parentage is *ambiguous* and a
   serialized re-run (``CUDA_LAUNCH_BLOCKING=1``) is required.

2. **Launch/execution correlation.**  Asynchronous GPU kernels appear as a
   host-side *launch span* and a device-side *execution span* carrying the
   same ``correlation_id``.  The merged kernel view takes its parent from
   the launch span (the launch happens inside the layer; the execution may
   complete after the layer returns) and its performance information from
   the execution span.

Both engines consume the trace's columnar storage directly — row indices
over ``(start_ns, end_ns, level, kind, parent_id)`` columns snapshotted
as plain lists — and write assignments back into the ``parent_id``
column.  Span objects are materialized only at the error/reporting
boundary (:class:`AmbiguousParentError`, ``CorrelationResult.ambiguous``).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, List

from repro.tracing.interval_tree import Interval, IntervalTree
from repro.tracing.span import Level, Span, SpanKind
from repro.tracing.table import _KIND_CODE, NONE_ID, SpanTable, SpanView
from repro.tracing.trace import Trace

_EXECUTION_CODE = _KIND_CODE[SpanKind.EXECUTION]
_LAUNCH_CODE = _KIND_CODE[SpanKind.LAUNCH]


class AmbiguousParentError(RuntimeError):
    """Raised when parallel events make parent assignment ambiguous.

    The remedy, per the paper, is another profiling run with parallel
    events serialized (e.g. ``CUDA_LAUNCH_BLOCKING=1`` for CUDA or
    ``OMP_NUM_THREADS=1`` for OpenMP).
    """

    def __init__(self, span, candidates: list) -> None:
        self.span = span
        self.candidates = candidates
        names = ", ".join(c.name for c in candidates[:4])
        super().__init__(
            f"span {span.name!r} [{span.start_ns}, {span.end_ns}] has "
            f"{len(candidates)} overlapping candidate parents ({names}); "
            "re-run with serialized execution (CUDA_LAUNCH_BLOCKING=1) to "
            "disambiguate"
        )


@dataclass
class MergedKernel:
    """Launch + execution span pair merged into one logical kernel record."""

    name: str
    correlation_id: int
    launch: SpanView
    execution: SpanView
    parent_id: int | None

    @property
    def duration_ns(self) -> int:
        """Effective kernel duration comes from the execution span."""
        return self.execution.duration_ns

    @property
    def metrics(self) -> dict[str, Any]:
        """GPU metrics are attached as metadata on the execution span."""
        return {
            k: v
            for k, v in self.execution.iter_tags()
            if k.startswith("metric.")
        }


@dataclass
class CorrelationResult:
    """Output of :func:`reconstruct_parents`."""

    trace: Trace
    #: span_id -> assigned parent span_id (only for spans assigned here)
    assigned: dict[int, int] = field(default_factory=dict)
    #: spans whose parentage was ambiguous (when ``strict=False``)
    ambiguous: list[SpanView] = field(default_factory=list)

    @property
    def needs_serialized_rerun(self) -> bool:
        return bool(self.ambiguous)


@dataclass
class LaunchExecutionState:
    """Carry-over pairing state for incremental launch/execution merging.

    Holding one of these across :func:`correlate_launch_execution` calls
    (with a rising ``since_row``) lets a growing capture be correlated in
    amortized O(new rows): half-pairs seen in earlier increments wait
    here for their counterparts, and cids already merged are never
    re-emitted.
    """

    #: correlation_id -> row of a launch span still awaiting its pair.
    launches: dict[int, int] = field(default_factory=dict)
    #: correlation_id -> row of an execution span still awaiting its pair.
    executions: dict[int, int] = field(default_factory=dict)
    #: correlation ids already merged (evicted from the dicts above, so
    #: the half-pair state stays bounded by the in-flight window, not
    #: the capture length; also the duplicate check for merged cids).
    merged: set[int] = field(default_factory=set)


def correlate_launch_execution(
    trace: Trace,
    *,
    since_row: int = 0,
    to_row: int | None = None,
    state: LaunchExecutionState | None = None,
) -> list[MergedKernel]:
    """Pair launch/execution spans by ``correlation_id``.

    Execution spans inherit the launch span's parent, mirroring how XSP
    "uses the launch span's parent as the parent of the asynchronous
    function and uses the execution span to get the performance
    information".  One pass over the correlation-id/kind columns; no
    intermediate span lists.

    ``since_row`` starts the scan at a row watermark and ``state``
    carries the pairing dictionaries between calls, so correlating a
    growing capture costs one pass over the *new* rows only.  The full
    call (``since_row=0``, no state) returns every merged kernel sorted
    by correlation id, exactly as before; an incremental call returns
    only the pairs completed by the new rows.  ``to_row`` pins the
    scan's upper bound: an incremental caller on a *live* trace must
    pass the watermark snapshot it will record as the next
    ``since_row``, or rows published mid-call would be scanned twice
    (and trip the duplicate check) on the next increment.
    """
    table = trace.table
    corr = table.correlation_id
    kinds = table.kind
    if state is None:
        state = LaunchExecutionState()
    launches = state.launches
    executions = state.executions
    new_cids: set[int] = set()
    stop = table.watermark if to_row is None else to_row
    for row in range(since_row, stop):
        cid = corr[row]
        if cid == NONE_ID:
            continue
        code = kinds[row]
        if code == _LAUNCH_CODE:
            if cid in launches or cid in state.merged:
                raise ValueError(
                    f"duplicate launch span for correlation_id={cid}"
                )
            launches[cid] = row
            new_cids.add(cid)
        elif code == _EXECUTION_CODE:
            if cid in executions or cid in state.merged:
                raise ValueError(
                    f"duplicate execution span for correlation_id={cid}"
                )
            executions[cid] = row
            new_cids.add(cid)

    parents = table.parent_id
    merged: list[MergedKernel] = []
    for cid in sorted(new_cids):
        launch_row = launches.get(cid)
        execution_row = executions.get(cid)
        if launch_row is None or execution_row is None:
            # Half-pair so far: a lost activity record (CUPTI permits
            # this) or a counterpart still to arrive in a later increment.
            continue
        del launches[cid]
        del executions[cid]
        state.merged.add(cid)
        launch_parent = parents[launch_row]
        merged.append(
            MergedKernel(
                name=table.name_of(execution_row),
                correlation_id=cid,
                launch=SpanView(table, launch_row),
                execution=SpanView(table, execution_row),
                parent_id=None if launch_parent == NONE_ID else launch_parent,
            )
        )
        # Propagate parent onto the execution span for downstream queries.
        if parents[execution_row] == NONE_ID and launch_parent != NONE_ID:
            parents[execution_row] = launch_parent
    trace.touch_parents()
    return merged


def _parent_level_map(levels: list[Level]) -> dict[Level, Level | None]:
    """For each present level, the closest present level above it."""
    ordered = sorted(levels)
    out: dict[Level, Level | None] = {}
    for i, lvl in enumerate(ordered):
        out[lvl] = ordered[i - 1] if i > 0 else None
    return out


def reconstruct_parents(
    trace: Trace,
    *,
    strict: bool = True,
    engine: str = "sweep",
    since_row: int = 0,
) -> CorrelationResult:
    """Assign parents to orphan spans via interval containment.

    Only spans on the *host* timeline participate as children directly:
    device-side execution spans receive their parent through
    :func:`correlate_launch_execution` (which must run afterwards or the
    execution spans stay parentless until merged).  For each orphan span,
    candidate parents are spans one present-level higher whose interval
    contains the orphan's interval; the tightest nested candidate wins.

    ``strict=True`` raises :class:`AmbiguousParentError` on parallel-event
    ambiguity; ``strict=False`` records ambiguous spans in the result so a
    caller can trigger the serialized re-run.

    ``engine`` selects the containment strategy:

    * ``"sweep"`` (default) — one O(n log n) sweep over start-sorted spans
      with a per-level active-parent stack; the hot path.
    * ``"tree"`` — the original per-orphan interval-tree queries; kept as
      the reference implementation the ablation benchmark checks the
      sweep against.

    Both engines see identical candidate sets for every orphan (candidates
    depend only on static interval data, not on assignment order), so
    their parent assignments — including which span first trips
    :class:`AmbiguousParentError` in strict mode — are identical.

    ``since_row`` is the incremental watermark for a growing capture:
    rows below it are treated as already correlated (their assignments —
    or their legitimate rootlessness — are final and are not revisited),
    while rows at/above it are the orphans of this increment.  All rows,
    old and new, still serve as candidate parents.  Incremental calls
    match a single cold correlation of the final capture whenever each
    increment's parents arrive no later than the increment containing
    their children — the publication order every batch-per-evaluation
    converter in this codebase produces.  The underlying timeline
    orderings come from the trace's incrementally-maintained index, so an
    increment never pays a re-sort.
    """
    if engine not in ("sweep", "tree"):
        raise ValueError(f"unknown correlation engine {engine!r}")
    result = CorrelationResult(trace=trace)
    try:
        if engine == "tree":
            _reconstruct_tree(
                trace, strict=strict, result=result, since_row=since_row
            )
        else:
            _reconstruct_sweep(
                trace, strict=strict, result=result, since_row=since_row
            )
    finally:
        # parent_id fields changed (possibly partially, when strict mode
        # raised); drop the trace's parent-derived indexes either way.
        trace.touch_parents()
    return result


def _reconstruct_tree(
    trace: Trace,
    *,
    strict: bool,
    result: CorrelationResult,
    since_row: int = 0,
) -> None:
    """Reference engine: per-orphan containment queries on interval trees."""
    index = trace.index
    table = trace.table
    levels = index.levels_present()
    parent_of_level = _parent_level_map(levels)
    starts = table.start_ns
    ends = table.end_ns
    kinds = table.kind
    parents = table.parent_id
    level_codes = table.level
    span_ids = table.span_id

    trees: dict[Level, IntervalTree[int]] = {}
    for lvl in levels:
        trees[lvl] = IntervalTree(
            Interval(starts[row], ends[row], row)
            for row in index.level_rows().get(lvl, ())
        )
    parent_code_of: dict[int, int | None] = {
        int(lvl): (None if up is None else int(up))
        for lvl, up in parent_of_level.items()
    }
    level_by_code = {int(lvl): lvl for lvl in levels}

    for row in index.rows_sorted():
        if row < since_row:
            continue  # settled in an earlier increment
        if parents[row] != NONE_ID:
            continue
        if kinds[row] == _EXECUTION_CODE:
            continue  # handled by launch/execution correlation
        target_code = parent_code_of.get(level_codes[row])
        if target_code is None:
            continue  # top-of-stack spans legitimately have no parent
        candidates = [
            iv.data
            for iv in trees[level_by_code[target_code]].containing(
                Interval(starts[row], ends[row])
            )
            if iv.data != row
        ]
        if not candidates:
            continue
        chosen = _choose_parent(
            table, row, candidates, strict=strict, result=result
        )
        if chosen is not None:
            chosen_id = span_ids[chosen]
            parents[row] = chosen_id
            result.assigned[span_ids[row]] = chosen_id


def _reconstruct_sweep(
    trace: Trace,
    *,
    strict: bool,
    result: CorrelationResult,
    since_row: int = 0,
) -> None:
    """Hot-path engine: one sweep over start-sorted rows.

    For each present level the sweep keeps an *active-parent stack*: the
    rows at that level whose interval is still open at the sweep
    position, pushed in start order.  When an orphan at level ``c`` is
    processed, every level-``parent_of[c]`` row starting at or before the
    orphan has been admitted to that level's stack, expired entries
    (ending before the orphan starts) have been popped, and the orphan's
    candidate parents are exactly the stack entries whose end reaches the
    orphan's end — the same containment set the interval tree computes,
    without per-orphan tree queries or list churn.

    The stack is a deque expired from both ends: sequential same-level
    spans (the dominant layer pattern — ends increasing in push order)
    expire from the front, nested spans (ends decreasing) from the back.
    Non-monotonic overlap patterns can strand dead entries in the
    interior; the candidate scan counts them and compacts the deque the
    moment it sees one, so each row is swept out at most once and the
    stack never holds more than the true concurrent-overlap depth for
    long.  Stranded entries are harmless for correctness meanwhile — a
    candidate needs ``end >= orphan.end`` while expiry means
    ``end < orphan.start``.

    All interval data is snapshotted into plain lists up front (boxed
    once, O(n)); the sweep itself is pure list indexing.
    """
    index = trace.index
    table = trace.table
    levels = index.levels_present()
    parent_of_level = _parent_level_map(levels)

    # Columns snapshotted as lists: each value boxed exactly once.  The
    # parent column is written through `parents_col` as rows are
    # assigned; the snapshot stays valid because each orphan row is
    # visited once and only ever assigns to itself.
    starts = table.start_ns.tolist()
    ends = table.end_ns.tolist()
    kinds = table.kind.tolist()
    level_codes = table.level.tolist()
    span_ids = table.span_id.tolist()
    parents = table.parent_id.tolist()
    parents_col = table.parent_id

    # Per-level admission cursor into the level's start-sorted row array.
    # Only levels that can actually parent something are materialized (the
    # deepest level's bucket — usually the kernel-dominated bulk of the
    # trace — never needs sorting).
    parent_levels = {lvl for lvl in parent_of_level.values() if lvl is not None}
    cursors: dict[int, int] = {int(lvl): 0 for lvl in parent_levels}
    actives: dict[int, deque[int]] = {int(lvl): deque() for lvl in parent_levels}
    arrays: dict[int, list[int]] = {
        int(lvl): index.level_rows_sorted(lvl) for lvl in parent_levels
    }
    parent_code_of: dict[int, int | None] = {
        int(lvl): (None if up is None else int(up))
        for lvl, up in parent_of_level.items()
    }

    for row in index.rows_sorted():
        if row < since_row:
            continue  # settled in an earlier increment
        if parents[row] != NONE_ID:
            continue
        if kinds[row] == _EXECUTION_CODE:
            continue  # handled by launch/execution correlation
        target = parent_code_of.get(level_codes[row])
        if target is None:
            continue  # top-of-stack spans legitimately have no parent
        start = starts[row]
        end = ends[row]
        # Admit parents whose interval can reach back to this orphan.  The
        # cursor is independent of the global sweep position so that a
        # parent sharing the orphan's (start, -duration) sort key is
        # admitted regardless of tie-break order.
        arr = arrays[target]
        cur = cursors[target]
        active = actives[target]
        n = len(arr)
        while cur < n and starts[arr[cur]] <= start:
            active.append(arr[cur])
            cur += 1
        cursors[target] = cur
        # Expire parents that ended before this orphan started.
        while active and ends[active[0]] < start:
            active.popleft()
        while active and ends[active[-1]] < start:
            active.pop()
        if not active:
            continue
        candidates = []
        stranded = 0
        for p in active:
            p_end = ends[p]
            if p_end < start:
                stranded += 1
            elif p_end >= end and p != row:
                candidates.append(p)
        if stranded:
            actives[target] = deque(p for p in active if ends[p] >= start)
        if not candidates:
            continue
        chosen = _choose_parent(
            table, row, candidates, strict=strict, result=result
        )
        if chosen is not None:
            chosen_id = span_ids[chosen]
            parents[row] = chosen_id
            parents_col[row] = chosen_id
            result.assigned[span_ids[row]] = chosen_id


def _choose_parent(
    table: SpanTable,
    row: int,
    candidates: List[int],
    *,
    strict: bool,
    result: CorrelationResult,
) -> int | None:
    """Pick the tightest strictly-nested candidate row, or flag ambiguity."""
    if len(candidates) == 1:
        return candidates[0]
    # Multiple containing candidates: fine if they are strictly nested
    # (pick the tightest); ambiguous if any two merely overlap — including
    # the identical-interval case (two parallel layers spanning the same
    # window), which only a serialized re-run can resolve.
    starts = table.start_ns
    ends = table.end_ns
    ordered = sorted(
        candidates, key=lambda r: (ends[r] - starts[r], starts[r])
    )
    for i, outer in enumerate(ordered):
        outer_bounds = (starts[outer], ends[outer])
        for inner in ordered[:i]:
            strictly_nested = (
                outer_bounds[0] <= starts[inner]
                and ends[inner] <= outer_bounds[1]
                and outer_bounds != (starts[inner], ends[inner])
            )
            if not strictly_nested:
                span = SpanView(table, row)
                if strict:
                    raise AmbiguousParentError(
                        span, [SpanView(table, c) for c in candidates]
                    )
                result.ambiguous.append(span)
                return None
    return ordered[0]


def build_hierarchy(trace: Trace, *, strict: bool = True) -> CorrelationResult:
    """Full correlation pass: parents first, then launch/execution merging."""
    result = reconstruct_parents(trace, strict=strict)
    correlate_launch_execution(trace)
    return result


def kernels_by_parent(trace: Trace) -> dict[int | None, list[MergedKernel]]:
    """Group merged kernels by their (layer) parent span id."""
    grouped: dict[int | None, list[MergedKernel]] = defaultdict(list)
    for mk in correlate_launch_execution(trace):
        grouped[mk.parent_id].append(mk)
    return dict(grouped)
