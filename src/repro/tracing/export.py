"""Trace persistence: JSON serialization and deserialization.

The paper's tracing server can run remotely; spans are published over the
wire and traces outlive the profiled process.  This module provides the
equivalent durability: a lossless JSON round-trip for traces so profiles
can be archived and re-analyzed offline (the analysis pipeline consumes
traces, not live runs).

Both serializers stream straight from the trace's columnar
:class:`~repro.tracing.table.SpanTable` — rows are read with the
non-promoting tag/log accessors and no :class:`Span` objects (or view
flyweights) are materialized.  Deserialization is the mirror image: span
dicts are ingested with :meth:`SpanTable.append_row`, never constructing
intermediate spans.
"""

from __future__ import annotations

import json
from typing import Any

from repro.tracing.span import Level, LogEntry, Span, SpanKind
from repro.tracing.table import NONE_ID, SpanTable
from repro.tracing.trace import Trace

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def span_to_dict(span: Span) -> dict[str, Any]:
    """Serialize one span-like object (a ``Span`` or a table view)."""
    return {
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "level": span.level.name,
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "kind": span.kind.value,
        "correlation_id": span.correlation_id,
        "tags": {k: _jsonable(v) for k, v in span.iter_tags()},
        # Log fields take the same JSON-coercion path as tags: exotic
        # values degrade to repr() instead of failing the whole export.
        "logs": _logs_to_list(span.logs),
    }


def _row_to_dict(table: SpanTable, row: int) -> dict[str, Any]:
    """One span dict straight from the columns (no view materialized)."""
    parent_id = table.parent_id[row]
    correlation_id = table.correlation_id[row]
    return {
        "name": table.name_of(row),
        "start_ns": table.start_ns[row],
        "end_ns": table.end_ns[row],
        "level": table.level_of(row).name,
        "span_id": table.span_id[row],
        "trace_id": table.trace_id[row],
        "parent_id": None if parent_id == NONE_ID else parent_id,
        "kind": table.kind_of(row).value,
        "correlation_id": None if correlation_id == NONE_ID else correlation_id,
        "tags": {k: _jsonable(v) for k, v in table.iter_tags(row)},
        "logs": _logs_to_list(table.peek_logs(row)),
    }


def _logs_to_list(logs: list[LogEntry]) -> list[dict[str, Any]]:
    return [
        {
            "timestamp_ns": entry.timestamp_ns,
            "fields": {str(k): _jsonable(v) for k, v in entry.fields.items()},
        }
        for entry in logs
    ]


def span_from_dict(data: dict[str, Any]) -> Span:
    return Span(
        name=data["name"],
        start_ns=data["start_ns"],
        end_ns=data["end_ns"],
        level=Level[data["level"]],
        span_id=data["span_id"],
        trace_id=data.get("trace_id", 0),
        parent_id=data.get("parent_id"),
        kind=SpanKind(data.get("kind", "internal")),
        correlation_id=data.get("correlation_id"),
        tags=dict(data.get("tags", {})),
        logs=[
            LogEntry(timestamp_ns=e["timestamp_ns"], fields=dict(e["fields"]))
            for e in data.get("logs", [])
        ],
    )


def trace_to_json(trace: Trace) -> str:
    """Serialize a trace (spans + metadata) to a JSON document."""
    table = trace.table
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "trace_id": trace.trace_id,
            "metadata": {k: _jsonable(v) for k, v in trace.metadata.items()},
            "spans": [_row_to_dict(table, row) for row in range(len(table))],
        }
    )


def trace_from_json(document: str) -> Trace:
    """Reconstruct a trace from :func:`trace_to_json` output."""
    return trace_from_dict(json.loads(document))


def trace_from_dict(data: dict[str, Any]) -> Trace:
    """Reconstruct a trace from an already-parsed JSON document."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = Trace(trace_id=data["trace_id"], metadata=dict(data["metadata"]))
    # Columnar bulk ingest (not Trace.add) keeps each span's original
    # trace_id; the trace's lazy index is built on first query after
    # loading.
    table = trace.table
    for s in data["spans"]:
        table.append_row(
            name=s["name"],
            start_ns=s["start_ns"],
            end_ns=s["end_ns"],
            level=Level[s["level"]],
            span_id=s["span_id"],
            trace_id=s.get("trace_id", 0),
            parent_id=s.get("parent_id"),
            kind=SpanKind(s.get("kind", "internal")),
            correlation_id=s.get("correlation_id"),
            tags=s.get("tags") or None,
            logs=[
                LogEntry(timestamp_ns=e["timestamp_ns"], fields=dict(e["fields"]))
                for e in s.get("logs", [])
            ]
            or None,
        )
    return trace


def trace_to_chrome(trace: Trace) -> str:
    """Serialize to the Chrome ``trace_event`` format (Perfetto-openable).

    Each span becomes one complete ("X") event on a per-level thread
    lane; metadata ("M") events name the process and lanes so Perfetto /
    ``chrome://tracing`` renders the stack levels in order; launch /
    execution span pairs are joined by flow ("s"/"f") arrows keyed on
    their ``correlation_id`` — the across-stack picture, visually.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": trace.trace_id,
            "args": {
                "name": str(
                    trace.metadata.get("model")
                    or trace.metadata.get("application")
                    or f"trace {trace.trace_id}"
                )
            },
        }
    ]
    for level in trace.levels_present():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": trace.trace_id,
                "tid": int(level),
                "args": {"name": f"L{int(level)} {level.name}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": trace.trace_id,
                "tid": int(level),
                "args": {"sort_index": int(level)},
            }
        )
    table = trace.table
    for row in range(len(table)):
        start_ns = table.start_ns[row]
        ts_us = start_ns / 1e3  # chrome uses microseconds
        level = table.level_of(row)
        kind = table.kind_of(row)
        parent_id = table.parent_id[row]
        correlation_id = table.correlation_id[row]
        events.append(
            {
                "name": table.name_of(row),
                "cat": level.name,
                "ph": "X",
                "ts": ts_us,
                "dur": (table.end_ns[row] - start_ns) / 1e3,
                "pid": trace.trace_id,
                "tid": int(level),
                "args": {
                    "span_id": table.span_id[row],
                    "parent_id": None if parent_id == NONE_ID else parent_id,
                    "kind": kind.value,
                    "correlation_id": (
                        None if correlation_id == NONE_ID else correlation_id
                    ),
                    **{k: _jsonable(v) for k, v in table.iter_tags(row)},
                },
            }
        )
        if correlation_id != NONE_ID and kind in (
            SpanKind.LAUNCH,
            SpanKind.EXECUTION,
        ):
            flow = {
                "name": "launch->execution",
                "cat": "correlation",
                "id": correlation_id,
                "pid": trace.trace_id,
                "tid": int(level),
                "ts": ts_us,
            }
            if kind == SpanKind.LAUNCH:
                events.append({**flow, "ph": "s"})
            else:
                events.append({**flow, "ph": "f", "bp": "e"})
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, indent=None
    )


def save_trace(trace: Trace, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(trace_to_json(trace))


def load_trace(path: str) -> Trace:
    with open(path) as fh:
        return trace_from_json(fh.read())


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)
