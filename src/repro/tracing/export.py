"""Trace persistence: JSON serialization and deserialization.

The paper's tracing server can run remotely; spans are published over the
wire and traces outlive the profiled process.  This module provides the
equivalent durability: a lossless JSON round-trip for traces so profiles
can be archived and re-analyzed offline (the analysis pipeline consumes
traces, not live runs).
"""

from __future__ import annotations

import json
from typing import Any

from repro.tracing.span import Level, LogEntry, Span, SpanKind
from repro.tracing.trace import Trace

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "level": span.level.name,
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "kind": span.kind.value,
        "correlation_id": span.correlation_id,
        "tags": {k: _jsonable(v) for k, v in span.tags.items()},
        # Log fields take the same JSON-coercion path as tags: exotic
        # values degrade to repr() instead of failing the whole export.
        "logs": [
            {
                "timestamp_ns": entry.timestamp_ns,
                "fields": {
                    str(k): _jsonable(v) for k, v in entry.fields.items()
                },
            }
            for entry in span.logs
        ],
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    return Span(
        name=data["name"],
        start_ns=data["start_ns"],
        end_ns=data["end_ns"],
        level=Level[data["level"]],
        span_id=data["span_id"],
        trace_id=data.get("trace_id", 0),
        parent_id=data.get("parent_id"),
        kind=SpanKind(data.get("kind", "internal")),
        correlation_id=data.get("correlation_id"),
        tags=dict(data.get("tags", {})),
        logs=[
            LogEntry(timestamp_ns=e["timestamp_ns"], fields=dict(e["fields"]))
            for e in data.get("logs", [])
        ],
    )


def trace_to_json(trace: Trace) -> str:
    """Serialize a trace (spans + metadata) to a JSON document."""
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "trace_id": trace.trace_id,
            "metadata": {k: _jsonable(v) for k, v in trace.metadata.items()},
            "spans": [span_to_dict(s) for s in trace.spans],
        }
    )


def trace_from_json(document: str) -> Trace:
    """Reconstruct a trace from :func:`trace_to_json` output."""
    return trace_from_dict(json.loads(document))


def trace_from_dict(data: dict[str, Any]) -> Trace:
    """Reconstruct a trace from an already-parsed JSON document."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = Trace(trace_id=data["trace_id"], metadata=dict(data["metadata"]))
    # Bulk list extend (not Trace.add) keeps each span's original trace_id;
    # the trace's lazy index is built on first query after loading.
    trace.spans.extend(span_from_dict(s) for s in data["spans"])
    return trace


def trace_to_chrome(trace: Trace) -> str:
    """Serialize to the Chrome ``trace_event`` format (Perfetto-openable).

    Each span becomes one complete ("X") event on a per-level thread
    lane; metadata ("M") events name the process and lanes so Perfetto /
    ``chrome://tracing`` renders the stack levels in order; launch /
    execution span pairs are joined by flow ("s"/"f") arrows keyed on
    their ``correlation_id`` — the across-stack picture, visually.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": trace.trace_id,
            "args": {
                "name": str(
                    trace.metadata.get("model")
                    or trace.metadata.get("application")
                    or f"trace {trace.trace_id}"
                )
            },
        }
    ]
    for level in trace.levels_present():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": trace.trace_id,
                "tid": int(level),
                "args": {"name": f"L{int(level)} {level.name}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": trace.trace_id,
                "tid": int(level),
                "args": {"sort_index": int(level)},
            }
        )
    for s in trace.spans:
        ts_us = s.start_ns / 1e3  # chrome uses microseconds
        events.append(
            {
                "name": s.name,
                "cat": s.level.name,
                "ph": "X",
                "ts": ts_us,
                "dur": s.duration_ns / 1e3,
                "pid": trace.trace_id,
                "tid": int(s.level),
                "args": {
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "kind": s.kind.value,
                    "correlation_id": s.correlation_id,
                    **{k: _jsonable(v) for k, v in s.tags.items()},
                },
            }
        )
        if s.correlation_id is not None and s.kind in (
            SpanKind.LAUNCH,
            SpanKind.EXECUTION,
        ):
            flow = {
                "name": "launch->execution",
                "cat": "correlation",
                "id": s.correlation_id,
                "pid": trace.trace_id,
                "tid": int(s.level),
                "ts": ts_us,
            }
            if s.kind == SpanKind.LAUNCH:
                events.append({**flow, "ph": "s"})
            else:
                events.append({**flow, "ph": "f", "bp": "e"})
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, indent=None
    )


def save_trace(trace: Trace, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(trace_to_json(trace))


def load_trace(path: str) -> Trace:
    with open(path) as fh:
        return trace_from_json(fh.read())


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)
