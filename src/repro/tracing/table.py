"""Columnar (structure-of-arrays) storage for a trace.

A captured trace is written once and read many times — by the correlation
pass, the merge step, all 15 analyses, the insight rules, and every
export.  Holding it as a Python list of per-span :class:`~repro.tracing.span.Span`
objects makes every one of those readers pay object-graph overhead and
makes a million-span capture cost hundreds of megabytes.  :class:`SpanTable`
stores the same data as parallel typed columns:

* ``span_id`` / ``start_ns`` / ``end_ns`` / ``parent_id`` /
  ``correlation_id`` / ``trace_id`` — ``array('q')`` (signed 64-bit),
* ``level`` / ``kind`` — ``array('b')`` (the enum's integer code),
* ``name_id`` — ``array('I')`` indices into an interned name table
  (kernel names repeat thousands of times per capture),
* tags — scalar-only tag dicts are *packed*: interned as a shared
  ``(key, value)`` tuple in a pool (most spans carry one of a handful of
  tag shapes, e.g. ``{"tracer": "gpu"}``) referenced by a 4-byte
  ``tag_set_id`` column; anything unpackable (mutable or unhashable
  values) lives in a sparse per-row side-store,
* logs — a sparse per-row side-store of :class:`LogEntry` lists.

``None`` parent/correlation ids are encoded as the sentinel ``-1``
(span ids are positive: they come from a process counter or a capture's
own positive ids).

Spans are still *created* as :class:`Span` objects by the tracers — the
table is the storage they are ingested into.  Reading back out happens
through :class:`SpanView`, a two-slot flyweight bound to (table, row)
that exposes the full ``Span`` attribute surface.  Views compare equal
to each other and to equivalent ``Span`` objects, and ``parent_id``
assignment on a view writes through to the column — the offline
correlation contract (`trace.touch_parents()`) is unchanged.

Materialization rule: reading ``view.tags`` (or ``view.logs``)
*promotes* the row — the packed tuple is expanded into a real dict that
then lives in the side-store, so later reads see the same (mutable)
mapping.  Read-only consumers (export, stats, the diff source) use
:meth:`SpanTable.peek_tags`, which never promotes.  New consumers of
trace data should follow the same no-object-churn rule: iterate rows and
columns, and materialize views only at the API boundary.
"""

from __future__ import annotations

import sys
from array import array
from typing import Any, Iterator, Mapping

from repro.tracing.span import Level, LogEntry, Span, SpanKind

#: Stable codes for SpanKind columns (the enum's values are strings).
KINDS: tuple[SpanKind, ...] = (
    SpanKind.INTERNAL,
    SpanKind.LAUNCH,
    SpanKind.EXECUTION,
)
_KIND_CODE: dict[SpanKind, int] = {k: i for i, k in enumerate(KINDS)}
_LEVEL_BY_CODE: dict[int, Level] = {int(lv): lv for lv in Level}

#: Column sentinel for "no parent" / "no correlation id".
NONE_ID = -1

#: Tag values that may participate in a packed (interned) tag-set.
_PACKABLE = (str, int, float, bool, type(None))


def _packable(tags: Mapping[str, Any]) -> bool:
    """True when every key is a str and every value an immutable scalar."""
    for key, value in tags.items():
        if type(key) is not str or not isinstance(value, _PACKABLE):
            return False
    return True


class SpanTable:
    """Structure-of-arrays storage for one trace's spans."""

    __slots__ = (
        "span_id",
        "start_ns",
        "end_ns",
        "parent_id",
        "correlation_id",
        "trace_id",
        "level",
        "kind",
        "name_id",
        "tag_set_id",
        "_names",
        "_name_ids",
        "_tag_pool",
        "_tag_pool_ids",
        "_tags",
        "_logs",
        "_complete",
    )

    def __init__(self) -> None:
        self.span_id = array("q")
        self.start_ns = array("q")
        self.end_ns = array("q")
        self.parent_id = array("q")
        self.correlation_id = array("q")
        self.trace_id = array("q")
        self.level = array("b")
        self.kind = array("b")
        self.name_id = array("I")
        # Packed-tag-set reference per row (NONE_ID when unset/promoted).
        self.tag_set_id = array("i")
        # Interned names: name_id column -> _names[name_id].
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        # Interned scalar tag-sets: tag_set_id column -> tuple of items
        # (the id map keys on (key, type, value) triples — see _store_tags).
        self._tag_pool: list[tuple[tuple[str, Any], ...]] = []
        self._tag_pool_ids: dict[tuple, int] = {}
        # Sparse side-stores (materialized tags / structured logs).
        self._tags: dict[int, dict[str, Any]] = {}
        self._logs: dict[int, list[LogEntry]] = {}
        # High-water mark of fully-appended rows (see `watermark`).
        self._complete = 0

    # -- ingest -----------------------------------------------------------
    def append(self, span: Span) -> int:
        """Ingest one finished :class:`Span`; returns its row index."""
        return self.append_row(
            name=span.name,
            start_ns=span.start_ns,
            end_ns=span.end_ns,
            level=span.level,
            span_id=span.span_id,
            trace_id=span.trace_id,
            parent_id=span.parent_id,
            kind=span.kind,
            correlation_id=span.correlation_id,
            tags=span.tags,
            logs=span.logs,
        )

    def append_row(
        self,
        *,
        name: str,
        start_ns: int,
        end_ns: int,
        level: Level | int,
        span_id: int,
        trace_id: int = 0,
        parent_id: int | None = None,
        kind: SpanKind | int = SpanKind.INTERNAL,
        correlation_id: int | None = None,
        tags: Mapping[str, Any] | None = None,
        logs: list[LogEntry] | None = None,
    ) -> int:
        """Raw columnar ingest — the path that never builds a ``Span``."""
        if end_ns < start_ns:
            raise ValueError(
                f"span {name!r}: end_ns ({end_ns}) precedes "
                f"start_ns ({start_ns})"
            )
        row = len(self.span_id)
        self.span_id.append(span_id)
        self.start_ns.append(start_ns)
        self.end_ns.append(end_ns)
        self.parent_id.append(NONE_ID if parent_id is None else parent_id)
        self.correlation_id.append(
            NONE_ID if correlation_id is None else correlation_id
        )
        self.trace_id.append(trace_id)
        self.level.append(int(level))
        self.kind.append(
            kind if isinstance(kind, int) else _KIND_CODE[kind]
        )
        name_id = self._name_ids.get(name)
        if name_id is None:
            name_id = len(self._names)
            self._name_ids[name] = name_id
            self._names.append(name)
        self.name_id.append(name_id)
        self.tag_set_id.append(NONE_ID)
        if tags:
            self._store_tags(row, tags)
        if logs:
            self._logs[row] = list(logs)
        # Published last: a concurrent reader that observes the new
        # watermark is guaranteed every column (and side-store) of the
        # row is in place.
        self._complete = row + 1
        return row

    def _store_tags(self, row: int, tags: Mapping[str, Any]) -> None:
        if _packable(tags):
            # The interning key carries each value's type: equal-but-
            # differently-typed values (True/1/1.0) must not share a
            # pooled tag-set or they would read back with the first
            # value's type.
            key = tuple((k, type(v), v) for k, v in tags.items())
            pool_id = self._tag_pool_ids.get(key)
            if pool_id is None:
                pool_id = len(self._tag_pool)
                self._tag_pool_ids[key] = pool_id
                self._tag_pool.append(tuple(tags.items()))
            self.tag_set_id[row] = pool_id
        else:
            self._tags[row] = dict(tags)

    # -- size -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.span_id)

    @property
    def watermark(self) -> int:
        """Count of fully-appended rows — the streaming-read bound.

        Bumped as the last step of every ``append_row``, so rows below
        the watermark are complete across all columns and side-stores
        even while another thread is mid-append (appends themselves are
        serialized by the tracing server's lock).  Index maintenance and
        stream cursors advance to this mark, never to a raw column
        length, which may momentarily include a half-written row.
        """
        return self._complete

    @property
    def nbytes(self) -> int:
        """Estimated resident bytes of this table (columns + side-stores).

        A ``sys.getsizeof``-based estimate: typed column buffers, the
        interned name and tag-set pools, and the sparse side-stores.
        Promoted (materialized) tag dicts are counted — the number grows
        as views materialize, exactly as resident memory does.
        """
        total = 0
        for column in (
            self.span_id,
            self.start_ns,
            self.end_ns,
            self.parent_id,
            self.correlation_id,
            self.trace_id,
            self.level,
            self.kind,
            self.name_id,
            self.tag_set_id,
        ):
            total += sys.getsizeof(column)
        total += sys.getsizeof(self._names)
        total += sum(sys.getsizeof(n) for n in self._names)
        total += sys.getsizeof(self._name_ids)
        total += sys.getsizeof(self._tag_pool)
        for items in self._tag_pool:
            total += sys.getsizeof(items)
            for key, value in items:
                total += sys.getsizeof(key) + sys.getsizeof(value)
        total += sys.getsizeof(self._tag_pool_ids)
        total += self._sidestore_nbytes(self._tags)
        total += self._sidestore_nbytes(self._logs)
        return total

    @staticmethod
    def _sidestore_nbytes(store: dict) -> int:
        total = sys.getsizeof(store)
        for value in store.values():
            total += sys.getsizeof(value)
            if isinstance(value, dict):
                for k, v in value.items():
                    total += sys.getsizeof(k) + sys.getsizeof(v)
            else:  # log lists
                for entry in value:
                    total += sys.getsizeof(entry)
        return total

    # -- row accessors ----------------------------------------------------
    def name_of(self, row: int) -> str:
        return self._names[self.name_id[row]]

    def name_code(self, name: str) -> int | None:
        """The interned code for ``name``, or ``None`` if never ingested.

        Lets consumers turn a by-name scan into a column scan for one
        small int (compare against the ``name_id`` column).
        """
        return self._name_ids.get(name)

    def level_of(self, row: int) -> Level:
        return _LEVEL_BY_CODE[self.level[row]]

    def kind_of(self, row: int) -> SpanKind:
        return KINDS[self.kind[row]]

    def parent_id_of(self, row: int) -> int | None:
        pid = self.parent_id[row]
        return None if pid == NONE_ID else pid

    def set_parent_id(self, row: int, parent_id: int | None) -> None:
        self.parent_id[row] = NONE_ID if parent_id is None else parent_id

    def correlation_id_of(self, row: int) -> int | None:
        cid = self.correlation_id[row]
        return None if cid == NONE_ID else cid

    # -- tags / logs ------------------------------------------------------
    def has_tags(self, row: int) -> bool:
        return row in self._tags or self.tag_set_id[row] != NONE_ID

    def peek_tags(self, row: int) -> Mapping[str, Any]:
        """Read-only view of a row's tags; never promotes packed tags.

        Callers must not mutate the returned mapping (packed rows get a
        fresh dict, materialized rows the live one) — mutation goes
        through :meth:`tags_of` / ``SpanView.tags``.
        """
        tags = self._tags.get(row)
        if tags is not None:
            return tags
        pool_id = self.tag_set_id[row]
        if pool_id != NONE_ID:
            return dict(self._tag_pool[pool_id])
        return {}

    def iter_tags(self, row: int) -> Iterator[tuple[str, Any]]:
        """Iterate a row's tag items without promoting packed tags."""
        tags = self._tags.get(row)
        if tags is not None:
            return iter(tags.items())
        pool_id = self.tag_set_id[row]
        if pool_id != NONE_ID:
            return iter(self._tag_pool[pool_id])
        return iter(())

    def tags_of(self, row: int) -> dict[str, Any]:
        """The row's mutable tags dict (materializes packed tags)."""
        tags = self._tags.get(row)
        if tags is None:
            pool_id = self.tag_set_id[row]
            self.tag_set_id[row] = NONE_ID
            tags = dict(self._tag_pool[pool_id]) if pool_id != NONE_ID else {}
            self._tags[row] = tags
        return tags

    def logs_of(self, row: int) -> list[LogEntry]:
        """The row's mutable log list (materializes an empty one)."""
        logs = self._logs.get(row)
        if logs is None:
            logs = []
            self._logs[row] = logs
        return logs

    def peek_logs(self, row: int) -> list[LogEntry]:
        """The row's logs without materializing an empty side-store entry."""
        return self._logs.get(row, [])

    # -- views ------------------------------------------------------------
    def view(self, row: int) -> "SpanView":
        return SpanView(self, row)

    def views(self) -> Iterator["SpanView"]:
        for row in range(len(self.span_id)):
            yield SpanView(self, row)

    def to_span(self, row: int) -> Span:
        """Materialize one row as a standalone (detached) :class:`Span`."""
        return Span(
            name=self.name_of(row),
            start_ns=self.start_ns[row],
            end_ns=self.end_ns[row],
            level=self.level_of(row),
            span_id=self.span_id[row],
            trace_id=self.trace_id[row],
            parent_id=self.parent_id_of(row),
            kind=self.kind_of(row),
            tags=dict(self.peek_tags(row)),
            logs=list(self.peek_logs(row)),
            correlation_id=self.correlation_id_of(row),
        )


class SpanView:
    """Flyweight ``Span``-compatible view of one :class:`SpanTable` row.

    Reads go straight to the columns; assigning ``parent_id`` writes
    through (callers still owe the trace a ``touch_parents()``, as with
    plain spans).  All other fields are read-only — a published span is
    frozen, per the storage contract.
    """

    __slots__ = ("_table", "_row")

    def __init__(self, table: SpanTable, row: int) -> None:
        self._table = table
        self._row = row

    # -- core fields ------------------------------------------------------
    @property
    def name(self) -> str:
        return self._table.name_of(self._row)

    @property
    def start_ns(self) -> int:
        return self._table.start_ns[self._row]

    @property
    def end_ns(self) -> int:
        return self._table.end_ns[self._row]

    @property
    def level(self) -> Level:
        return self._table.level_of(self._row)

    @property
    def kind(self) -> SpanKind:
        return self._table.kind_of(self._row)

    @property
    def span_id(self) -> int:
        return self._table.span_id[self._row]

    @property
    def trace_id(self) -> int:
        return self._table.trace_id[self._row]

    @property
    def correlation_id(self) -> int | None:
        return self._table.correlation_id_of(self._row)

    @property
    def parent_id(self) -> int | None:
        return self._table.parent_id_of(self._row)

    @parent_id.setter
    def parent_id(self, value: int | None) -> None:
        self._table.set_parent_id(self._row, value)

    @property
    def tags(self) -> dict[str, Any]:
        return self._table.tags_of(self._row)

    @property
    def logs(self) -> list[LogEntry]:
        return self._table.logs_of(self._row)

    # -- Span API parity --------------------------------------------------
    @property
    def duration_ns(self) -> int:
        table, row = self._table, self._row
        return table.end_ns[row] - table.start_ns[row]

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    def contains(self, other) -> bool:
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns

    def overlaps(self, other) -> bool:
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    def tag(self, key: str, value: Any) -> "SpanView":
        self.tags[key] = value
        return self

    def log(self, timestamp_ns: int, **fields: Any) -> "SpanView":
        self.logs.append(LogEntry(timestamp_ns=timestamp_ns, fields=dict(fields)))
        return self

    def iter_tags(self) -> Iterator[tuple[str, Any]]:
        return self._table.iter_tags(self._row)

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpanView):
            if self._table is other._table:
                return self._row == other._row
            other_logs = other._table.peek_logs(other._row)
        elif isinstance(other, Span):
            other_logs = other.logs
        else:
            return NotImplemented
        return (
            self.name == other.name
            and self.start_ns == other.start_ns
            and self.end_ns == other.end_ns
            and self.level == other.level
            and self.span_id == other.span_id
            and self.trace_id == other.trace_id
            and self.parent_id == other.parent_id
            and self.kind == other.kind
            and dict(self.iter_tags()) == dict(other.iter_tags())
            and self._table.peek_logs(self._row) == other_logs
            and self.correlation_id == other.correlation_id
        )

    # Mutable-record semantics, like the (unhashable) Span dataclass.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, level={self.level.name}, "
            f"kind={self.kind.value}, [{self.start_ns}, {self.end_ns}] ns, "
            f"id={self.span_id}, parent={self.parent_id})"
        )
