"""Span data model.

A span is a timed operation representing a piece of work (paper Sec. III-A).
Each span carries a unique identifier, start/end timestamps (virtual
nanoseconds in this reproduction), user-defined annotations (name, key-value
tags, structured logs), a stack-level tag, and an optional parent reference.

Asynchronous operations (GPU kernels) are represented by *two* spans — a
launch span (the ``cudaLaunchKernel`` API call on the host timeline) and an
execution span (the kernel's effective duration on the device timeline) —
joined by a ``correlation_id`` tag, exactly as the paper describes for
CUPTI-captured kernels.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

_span_counter = itertools.count(1)
_trace_counter = itertools.count(1)

#: Bits reserved for the per-namespace span-id counter (see
#: :func:`seed_span_ids`): each namespace owns 2**40 ids, far beyond any
#: single process's span production.
_NAMESPACE_SHIFT = 40
_NAMESPACE_MASK = 0x3FFFFF  # 22 bits of namespace -> ids stay under 2**63


def new_span_id() -> int:
    """Return a process-unique span identifier."""
    return next(_span_counter)


def seed_span_ids(namespace: int) -> int:
    """Restart the span-id counter in a namespace-disjoint range.

    Worker processes (e.g. a parallel sweep's ``ProcessPoolExecutor``
    workers) inherit a fresh module state, so without seeding every
    worker's counter restarts at 1 and spans produced by different
    workers collide.  Seeding with a per-process namespace (the pid)
    gives each worker a disjoint ``2**40``-wide id range — disjoint from
    every concurrently-live worker and from the parent process's small
    counter-based ids.  Returns the first id of the range.
    """
    # Slot 0 is the parent process's unseeded range; a namespace hashing
    # to it (e.g. a pid that is an exact multiple of 2**22) wraps to the
    # top slot instead of colliding with the parent's counter.
    slot = (namespace & _NAMESPACE_MASK) or _NAMESPACE_MASK
    base = (slot << _NAMESPACE_SHIFT) | 1
    global _span_counter
    _span_counter = itertools.count(base)
    return base


def new_trace_id() -> int:
    """Return a process-unique trace identifier."""
    return next(_trace_counter)


class Level(enum.IntEnum):
    """Stack level of a profiled event.

    Numbering follows the paper ("level 1 is the model level").  The
    ``LIBRARY`` level sits between layer and GPU kernel, reserved for the
    extensibility scenario of Sec. III-E (profiling cuDNN API calls);
    ``APPLICATION`` sits above the model level for whole-application spans.
    """

    APPLICATION = 0
    MODEL = 1
    LAYER = 2
    LIBRARY = 3
    GPU_KERNEL = 4

    @property
    def short_name(self) -> str:
        return {
            Level.APPLICATION: "A",
            Level.MODEL: "M",
            Level.LAYER: "L",
            Level.LIBRARY: "Lib",
            Level.GPU_KERNEL: "G",
        }[self]


class SpanKind(enum.Enum):
    """How a span relates to the work it measures."""

    #: An ordinary synchronous operation.
    INTERNAL = "internal"
    #: Host-side launch of an asynchronous operation (e.g. cudaLaunchKernel).
    LAUNCH = "launch"
    #: Device-side execution of an asynchronous operation.
    EXECUTION = "execution"


@dataclass(frozen=True)
class LogEntry:
    """A timestamped structured log attached to a span."""

    timestamp_ns: int
    fields: Mapping[str, Any]


@dataclass
class Span:
    """A single timed operation in the across-stack timeline."""

    name: str
    start_ns: int
    end_ns: int
    level: Level
    span_id: int = field(default_factory=new_span_id)
    trace_id: int = 0
    parent_id: int | None = None
    kind: SpanKind = SpanKind.INTERNAL
    tags: dict[str, Any] = field(default_factory=dict)
    logs: list[LogEntry] = field(default_factory=list)
    correlation_id: int | None = None

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(
                f"span {self.name!r}: end_ns ({self.end_ns}) precedes "
                f"start_ns ({self.start_ns})"
            )

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    def contains(self, other: "Span") -> bool:
        """Interval set inclusion: does this span's interval contain *other*'s?"""
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns

    def overlaps(self, other: "Span") -> bool:
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    def tag(self, key: str, value: Any) -> "Span":
        """Attach a key-value tag; returns self for chaining."""
        self.tags[key] = value
        return self

    def log(self, timestamp_ns: int, **fields: Any) -> "Span":
        """Attach a timestamped structured log entry; returns self."""
        self.logs.append(LogEntry(timestamp_ns=timestamp_ns, fields=dict(fields)))
        return self

    def iter_tags(self) -> Iterator[tuple[str, Any]]:
        return iter(self.tags.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, level={self.level.name}, kind={self.kind.value}, "
            f"[{self.start_ns}, {self.end_ns}] ns, id={self.span_id}, "
            f"parent={self.parent_id})"
        )
