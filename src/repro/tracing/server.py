"""In-process tracing server.

The paper publishes spans from each tracer to a tracing server (local or
remote) which aggregates them into one application timeline trace.  This
reproduction runs everything in one process, so the server is a thread-safe
in-memory collector keyed by ``trace_id``.

Streaming consumption (live monitoring) rides on the same lock: every
publication advances the destination trace's completed-row watermark and
wakes a condition variable, and :meth:`TracingServer.stream` hands out
:class:`TraceStream` cursors that yield contiguous :class:`RowBatch`
windows of new rows — row indices into the trace's columnar table, no
span objects or views materialized — until the trace is ended.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.tracing.span import Span, new_trace_id
from repro.tracing.table import SpanTable, SpanView
from repro.tracing.trace import Trace


class RowBatch:
    """A contiguous window of freshly published rows of one trace.

    Holds only (trace, start, stop): consumers iterate the row indices
    against the trace's columnar table, per the no-object-churn rule.
    ``views()`` materializes flyweights for callers at the API boundary.
    """

    __slots__ = ("trace", "start", "stop")

    def __init__(self, trace: Trace, start: int, stop: int) -> None:
        self.trace = trace
        self.start = start
        self.stop = stop

    @property
    def table(self) -> SpanTable:
        return self.trace.table

    def __len__(self) -> int:
        return self.stop - self.start

    def rows(self) -> range:
        return range(self.start, self.stop)

    def __iter__(self) -> Iterator[int]:
        return iter(self.rows())

    def views(self) -> list[SpanView]:
        """The batch's rows as span views (API-boundary materialization)."""
        table = self.trace.table
        return [SpanView(table, row) for row in self.rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RowBatch(trace_id={self.trace.trace_id}, "
            f"rows=[{self.start}, {self.stop}))"
        )


class TraceStream:
    """Cursor over a (possibly still open) trace's published rows.

    ``poll()`` is non-blocking; ``read()`` waits on the server's
    condition variable until rows arrive or the trace is ended.  Iterating
    the stream yields row batches until end-of-capture.  Cursors never
    touch the trace's index — they are safe to drain from another thread
    while the capture is in flight.
    """

    __slots__ = ("_server", "_trace", "_cursor")

    def __init__(self, server: "TracingServer", trace: Trace) -> None:
        self._server = server
        self._trace = trace
        self._cursor = 0

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def cursor(self) -> int:
        """Rows consumed so far."""
        return self._cursor

    @property
    def at_end(self) -> bool:
        """True once the trace is closed and every row was consumed."""
        # Order matters: observing `closed` first guarantees the
        # watermark read afterwards is final.
        return self._trace.closed and self._cursor >= self._trace.watermark

    def poll(self, max_rows: int | None = None) -> RowBatch | None:
        """New rows since the cursor, or ``None``; never blocks."""
        watermark = self._trace.watermark
        if watermark <= self._cursor:
            return None
        stop = (
            watermark
            if max_rows is None
            else min(watermark, self._cursor + max_rows)
        )
        batch = RowBatch(self._trace, self._cursor, stop)
        self._cursor = stop
        return batch

    def read(
        self, timeout: float | None = None, max_rows: int | None = None
    ) -> RowBatch | None:
        """Block until new rows arrive; ``None`` at end-of-stream.

        A ``timeout`` (seconds) bounds the *total* wait — the server's
        condition is shared by every trace, so wakeups for other traces'
        publications must not restart the clock.  On timeout ``None`` is
        returned with :attr:`at_end` still False, so callers can
        distinguish a quiet capture from a finished one.
        """
        batch = self.poll(max_rows)
        if batch is not None:
            return batch
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        cond = self._server._cond
        with cond:
            while True:
                batch = self.poll(max_rows)
                if batch is not None:
                    return batch
                if self._trace.closed:
                    return None
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None  # timed out
                cond.wait(remaining)

    def __iter__(self) -> Iterator[RowBatch]:
        while True:
            batch = self.read()
            if batch is None:
                return
            yield batch


class TracingServer:
    """Aggregates spans published by tracers into per-trace timelines."""

    def __init__(self) -> None:
        # Reentrant: publish() may open a trace on demand while holding it.
        self._lock = threading.RLock()
        # Wakes stream cursors after every publication / trace end.
        self._cond = threading.Condition(self._lock)
        self._traces: dict[int, Trace] = {}
        #: Highest trace id ever ended.  Trace ids are a monotonic
        #: process counter, so any id at/below this watermark that is no
        #: longer live has been ended — late publishes to it are dropped
        #: rather than resurrecting an orphan timeline, and the server
        #: keeps O(1) state per lifecycle instead of a growing id set.
        self._ended_watermark = 0
        self._active_trace_id: int | None = None
        self._subscribers: list[Callable[[Span], None]] = []

    # -- trace lifecycle ----------------------------------------------------
    def begin_trace(self, **metadata: object) -> int:
        """Open a new trace and make it the active destination for spans."""
        trace_id = new_trace_id()
        with self._lock:
            self._traces[trace_id] = Trace(trace_id=trace_id, metadata=dict(metadata))
            self._active_trace_id = trace_id
        return trace_id

    def end_trace(self, trace_id: int) -> Trace:
        """Close a trace and return the aggregated timeline.

        The trace is evicted from the server — callers own the returned
        timeline, and a long-lived server no longer accumulates every
        trace it ever aggregated.  Ending an unknown (or already-ended)
        trace raises ``KeyError``.
        """
        with self._lock:
            if self._active_trace_id == trace_id:
                self._active_trace_id = None
            trace = self._traces.pop(trace_id)
            self._ended_watermark = max(self._ended_watermark, trace_id)
            trace.closed = True
            self._cond.notify_all()
            return trace

    @property
    def active_trace_id(self) -> int | None:
        return self._active_trace_id

    # -- publication ----------------------------------------------------------
    def publish(self, span: Span) -> None:
        """Publish one span into the active trace (or its own ``trace_id``).

        Spans addressed to an already-ended trace are dropped: the caller
        owns that timeline now, and re-creating it here would leak an
        orphan trace no one can retrieve.
        """
        with self._lock:
            tid = span.trace_id or self._active_trace_id
            if (
                tid is not None
                and tid <= self._ended_watermark
                and tid not in self._traces
            ):
                return  # addressed to an ended trace
            if tid is None:
                tid = self.begin_trace()
            trace = self._traces.setdefault(tid, Trace(trace_id=tid))
            trace.add(span)
            self._cond.notify_all()
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(span)

    def publish_many(self, spans: Iterable[Span]) -> None:
        """Publish a batch of spans under one lock acquisition.

        The batch path exists for offline-converted profiler output
        (hundreds of thousands of spans at once): each span is appended
        straight into its trace's columnar table — no intermediate span
        list is built or retained, and the lock is taken once per batch
        instead of once per span.
        """
        subscribers: list[Callable[[Span], None]] = []
        published: list[Span] = []
        with self._lock:
            for span in spans:
                tid = span.trace_id or self._active_trace_id
                if (
                    tid is not None
                    and tid <= self._ended_watermark
                    and tid not in self._traces
                ):
                    continue  # addressed to an ended trace
                if tid is None:
                    tid = self.begin_trace()
                trace = self._traces.setdefault(tid, Trace(trace_id=tid))
                trace.add(span)
                if self._subscribers:
                    published.append(span)
            self._cond.notify_all()
            if self._subscribers and published:
                subscribers = list(self._subscribers)
        for fn in subscribers:
            for span in published:
                fn(span)

    def publish_rows(
        self, trace_id: int, rows: Iterable[Mapping[str, Any]]
    ) -> int:
        """Columnar batch publication into one *open* trace.

        Each mapping is a set of :meth:`Trace.add_row` keywords; the
        whole batch lands under a single lock acquisition and no ``Span``
        object is ever constructed — the span-free streaming-ingest path
        (``profile_application`` re-publishes each finished evaluation
        through it).  Row-level publication is visible to
        :meth:`stream` cursors but not to span-object subscribers.
        Raises ``KeyError`` for an unknown or already-ended trace.
        """
        count = 0
        with self._lock:
            trace = self._traces[trace_id]
            for fields in rows:
                trace.add_row(**fields)
                count += 1
            self._cond.notify_all()
        return count

    def annotate_trace(self, trace_id: int, **metadata: object) -> None:
        """Merge metadata into an open trace, under the server lock."""
        with self._lock:
            self._traces[trace_id].metadata.update(metadata)

    def subscribe(self, fn: Callable[[Span], None]) -> None:
        """Register a callback invoked for every published span (for tooling)."""
        with self._lock:
            self._subscribers.append(fn)

    # -- streaming --------------------------------------------------------------
    def stream(self, trace_id: int | None = None) -> TraceStream:
        """A cursor over an open trace's rows as they are published.

        ``trace_id`` defaults to the active trace.  The cursor stays
        valid after the trace ends (it drains the remaining rows, then
        reports end-of-stream); opening a stream on an already-ended
        trace raises ``KeyError`` — the server no longer holds it.
        """
        with self._lock:
            tid = trace_id if trace_id is not None else self._active_trace_id
            if tid is None:
                raise ValueError("no active trace to stream")
            return TraceStream(self, self._traces[tid])

    # -- retrieval --------------------------------------------------------------
    def get_trace(self, trace_id: int) -> Trace:
        with self._lock:
            return self._traces[trace_id]

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._traces.values())

    def clear(self) -> None:
        with self._lock:
            # Raise the watermark over every trace dropped here: ids are
            # process-global, so spans addressed to pre-clear traces stay
            # dropped, not revived as orphans.
            self._ended_watermark = max(
                [self._ended_watermark, *self._traces]
            )
            for trace in self._traces.values():
                trace.closed = True
            self._traces.clear()
            self._active_trace_id = None
            self._cond.notify_all()
