"""In-process tracing server.

The paper publishes spans from each tracer to a tracing server (local or
remote) which aggregates them into one application timeline trace.  This
reproduction runs everything in one process, so the server is a thread-safe
in-memory collector keyed by ``trace_id``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.tracing.span import Span, new_trace_id
from repro.tracing.trace import Trace


class TracingServer:
    """Aggregates spans published by tracers into per-trace timelines."""

    def __init__(self) -> None:
        # Reentrant: publish() may open a trace on demand while holding it.
        self._lock = threading.RLock()
        self._traces: dict[int, Trace] = {}
        #: Highest trace id ever ended.  Trace ids are a monotonic
        #: process counter, so any id at/below this watermark that is no
        #: longer live has been ended — late publishes to it are dropped
        #: rather than resurrecting an orphan timeline, and the server
        #: keeps O(1) state per lifecycle instead of a growing id set.
        self._ended_watermark = 0
        self._active_trace_id: int | None = None
        self._subscribers: list[Callable[[Span], None]] = []

    # -- trace lifecycle ----------------------------------------------------
    def begin_trace(self, **metadata: object) -> int:
        """Open a new trace and make it the active destination for spans."""
        trace_id = new_trace_id()
        with self._lock:
            self._traces[trace_id] = Trace(trace_id=trace_id, metadata=dict(metadata))
            self._active_trace_id = trace_id
        return trace_id

    def end_trace(self, trace_id: int) -> Trace:
        """Close a trace and return the aggregated timeline.

        The trace is evicted from the server — callers own the returned
        timeline, and a long-lived server no longer accumulates every
        trace it ever aggregated.  Ending an unknown (or already-ended)
        trace raises ``KeyError``.
        """
        with self._lock:
            if self._active_trace_id == trace_id:
                self._active_trace_id = None
            trace = self._traces.pop(trace_id)
            self._ended_watermark = max(self._ended_watermark, trace_id)
            return trace

    @property
    def active_trace_id(self) -> int | None:
        return self._active_trace_id

    # -- publication ----------------------------------------------------------
    def publish(self, span: Span) -> None:
        """Publish one span into the active trace (or its own ``trace_id``).

        Spans addressed to an already-ended trace are dropped: the caller
        owns that timeline now, and re-creating it here would leak an
        orphan trace no one can retrieve.
        """
        with self._lock:
            tid = span.trace_id or self._active_trace_id
            if (
                tid is not None
                and tid <= self._ended_watermark
                and tid not in self._traces
            ):
                return  # addressed to an ended trace
            if tid is None:
                tid = self.begin_trace()
            trace = self._traces.setdefault(tid, Trace(trace_id=tid))
            trace.add(span)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(span)

    def publish_many(self, spans: Iterable[Span]) -> None:
        """Publish a batch of spans under one lock acquisition.

        The batch path exists for offline-converted profiler output
        (hundreds of thousands of spans at once): each span is appended
        straight into its trace's columnar table — no intermediate span
        list is built or retained, and the lock is taken once per batch
        instead of once per span.
        """
        subscribers: list[Callable[[Span], None]] = []
        published: list[Span] = []
        with self._lock:
            for span in spans:
                tid = span.trace_id or self._active_trace_id
                if (
                    tid is not None
                    and tid <= self._ended_watermark
                    and tid not in self._traces
                ):
                    continue  # addressed to an ended trace
                if tid is None:
                    tid = self.begin_trace()
                trace = self._traces.setdefault(tid, Trace(trace_id=tid))
                trace.add(span)
                if self._subscribers:
                    published.append(span)
            if self._subscribers and published:
                subscribers = list(self._subscribers)
        for fn in subscribers:
            for span in published:
                fn(span)

    def subscribe(self, fn: Callable[[Span], None]) -> None:
        """Register a callback invoked for every published span (for tooling)."""
        with self._lock:
            self._subscribers.append(fn)

    # -- retrieval --------------------------------------------------------------
    def get_trace(self, trace_id: int) -> Trace:
        with self._lock:
            return self._traces[trace_id]

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._traces.values())

    def clear(self) -> None:
        with self._lock:
            # Raise the watermark over every trace dropped here: ids are
            # process-global, so spans addressed to pre-clear traces stay
            # dropped, not revived as orphans.
            self._ended_watermark = max(
                [self._ended_watermark, *self._traces]
            )
            self._traces.clear()
            self._active_trace_id = None
