"""Lazily-built query indexes over a :class:`~repro.tracing.trace.Trace`.

The analysis pipeline's defining access pattern is *index once, query
many*: a trace is captured (or loaded) once and then interrogated by the
correlation pass, the merge step, and all 15 analyses.  The seed
implementation answered every query with a fresh O(n) scan of the span
list; :class:`TraceIndex` builds each index a single time and serves all
subsequent queries from it.

Invalidation model
------------------
Indexes are keyed on span *membership* (the identity and length of the
trace's span list): :meth:`Trace.add`/:meth:`Trace.extend` drop the index,
and a direct ``trace.spans.append(...)`` is caught by the length check the
next time the index is consulted.  Spans themselves are immutable for
indexing purposes with one exception — ``parent_id``, which the offline
correlation pass assigns after capture.  The parent-derived indexes
(children, roots) therefore live behind a separate epoch that
:func:`repro.tracing.correlation.reconstruct_parents` and
:func:`~repro.tracing.correlation.correlate_launch_execution` bump via
:meth:`Trace.touch_parents`.  Code that mutates ``span.parent_id`` by hand
after querying a trace must do the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, List, Optional, Tuple

from repro.tracing.span import Level, Span, SpanKind

_START = attrgetter("start_ns")
_END = attrgetter("end_ns")


@dataclass(frozen=True)
class Gap:
    """An idle interval between two spans on one level's timeline.

    ``before_id``/``after_id`` are the span ids bounding the gap: the span
    whose end opens the gap and the span whose start closes it.  Both
    always resolve against the trace the gap was computed from.
    """

    start_ns: int
    end_ns: int
    before_id: int
    after_id: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


def _compute_gaps(spans: List[Span]) -> List[Gap]:
    """Idle intervals of a timeline-sorted span list, one merged pass.

    Overlapping spans are coalesced on the fly (track the running max end
    and the span that achieves it), so a "gap" is an interval covered by
    *no* span at all — exactly the device-idle bubbles of a GPU timeline.
    """
    gaps: List[Gap] = []
    if not spans:
        return gaps
    frontier = spans[0]
    frontier_end = frontier.end_ns
    for span in spans[1:]:
        if span.start_ns > frontier_end:
            gaps.append(
                Gap(
                    start_ns=frontier_end,
                    end_ns=span.start_ns,
                    before_id=frontier.span_id,
                    after_id=span.span_id,
                )
            )
        if span.end_ns > frontier_end:
            frontier = span
            frontier_end = span.end_ns
    return gaps


def _timeline_sorted(spans: List[Span]) -> List[Span]:
    """Spans by (start, -duration) — parents before children.

    Two stable C-keyed passes (end desc, then start asc) beat one pass
    with a Python tuple key: equal starts keep the end-descending order,
    which is exactly duration-descending.
    """
    out = sorted(spans, key=_END, reverse=True)
    out.sort(key=_START)
    return out


class TraceIndex:
    """Indexes over one snapshot of a trace's span list.

    All builders are lazy: the first query of each family pays the build
    cost, subsequent queries are dictionary/list lookups.  The containers
    returned by accessors are the internal ones — :class:`Trace` copies
    them before handing them to callers so the cached state can never be
    corrupted from outside.
    """

    __slots__ = (
        "_spans",
        "_n",
        "_sorted",
        "_by_level",
        "_by_level_sorted",
        "_by_kind",
        "_by_id",
        "_extent",
        "_levels",
        "_children",
        "_roots",
        "_gaps",
    )

    def __init__(self, spans: List[Span]) -> None:
        self._spans = spans
        self._n = len(spans)
        self._sorted: Optional[List[Span]] = None
        self._by_level: Optional[Dict[Level, List[Span]]] = None
        self._by_level_sorted: Dict[Level, List[Span]] = {}
        self._by_kind: Optional[Dict[SpanKind, List[Span]]] = None
        self._by_id: Optional[Dict[int, Span]] = None
        self._extent: Optional[Tuple[int, int]] = None
        self._levels: Optional[List[Level]] = None
        self._children: Optional[Dict[Optional[int], List[Span]]] = None
        self._roots: Optional[List[Span]] = None
        self._gaps: Dict[Tuple[Level, Optional[SpanKind]], List[Gap]] = {}

    # -- cache validity ---------------------------------------------------
    def fresh_for(self, spans: List[Span]) -> bool:
        """True while this index still describes ``spans``' membership."""
        return self._spans is spans and self._n == len(spans)

    def invalidate_parents(self) -> None:
        """Drop the parent-derived indexes (children, roots)."""
        self._children = None
        self._roots = None

    # -- structural indexes (immutable span attributes) -------------------
    def sorted_spans(self) -> List[Span]:
        """Spans in timeline order (start asc, duration desc; stable)."""
        if self._sorted is None:
            self._sorted = _timeline_sorted(self._spans)
        return self._sorted

    def by_level(self) -> Dict[Level, List[Span]]:
        """Level -> spans at that level, in publication order."""
        if self._by_level is None:
            buckets: Dict[Level, List[Span]] = {}
            for s in self._spans:
                try:
                    buckets[s.level].append(s)
                except KeyError:
                    buckets[s.level] = [s]
            self._by_level = buckets
        return self._by_level

    def level_sorted(self, level: Level) -> List[Span]:
        """Spans at ``level`` in timeline order (the sweep-line's view)."""
        cached = self._by_level_sorted.get(level)
        if cached is None:
            cached = _timeline_sorted(self.by_level().get(level, []))
            self._by_level_sorted[level] = cached
        return cached

    def by_kind(self) -> Dict[SpanKind, List[Span]]:
        if self._by_kind is None:
            buckets: Dict[SpanKind, List[Span]] = {}
            for s in self._spans:
                try:
                    buckets[s.kind].append(s)
                except KeyError:
                    buckets[s.kind] = [s]
            self._by_kind = buckets
        return self._by_kind

    def by_id(self) -> Dict[int, Span]:
        if self._by_id is None:
            self._by_id = {s.span_id: s for s in self._spans}
        return self._by_id

    def levels_present(self) -> List[Level]:
        if self._levels is None:
            self._levels = sorted(self.by_level())
        return self._levels

    def extent_ns(self) -> Tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        if self._extent is None:
            if not self._spans:
                self._extent = (0, 0)
            else:
                lo = min(s.start_ns for s in self._spans)
                hi = max(s.end_ns for s in self._spans)
                self._extent = (lo, hi)
        return self._extent

    def gaps(self, level: Level, kind: Optional[SpanKind] = None) -> List[Gap]:
        """Idle intervals between ``level``'s spans (optionally one kind).

        Built once per (level, kind) from the already-cached timeline
        ordering; every later query is a dictionary lookup, so insight
        rules iterating a trace's bubbles add no O(n) rescans.
        """
        key = (level, kind)
        cached = self._gaps.get(key)
        if cached is None:
            spans = self.level_sorted(level)
            if kind is not None:
                spans = [s for s in spans if s.kind == kind]
            cached = _compute_gaps(spans)
            self._gaps[key] = cached
        return cached

    # -- parent-derived indexes (see the invalidation model above) --------
    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """Parent span id -> children, each bucket in start order."""
        if self._children is None:
            buckets: Dict[Optional[int], List[Span]] = {}
            for s in self._spans:
                try:
                    buckets[s.parent_id].append(s)
                except KeyError:
                    buckets[s.parent_id] = [s]
            for kids in buckets.values():
                kids.sort(key=lambda s: s.start_ns)
            self._children = buckets
        return self._children

    def children_of(self, span_id: int) -> List[Span]:
        return self.children_index().get(span_id, [])

    def roots(self) -> List[Span]:
        """Spans with no (known) parent, in publication order."""
        if self._roots is None:
            ids = self.by_id()
            self._roots = [
                s
                for s in self._spans
                if s.parent_id is None or s.parent_id not in ids
            ]
        return self._roots
