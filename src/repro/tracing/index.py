"""Lazily-built query indexes over a :class:`~repro.tracing.trace.Trace`.

The analysis pipeline's defining access pattern is *index once, query
many*: a trace is captured (or loaded) once and then interrogated by the
correlation pass, the merge step, and all 15 analyses.  :class:`TraceIndex`
builds each index a single time over the trace's columnar
:class:`~repro.tracing.table.SpanTable` and serves all subsequent queries
from it.

Two layers of indexes exist:

* **row-level** (the hot path): timeline orderings, level/kind
  partitions, the id map, extents, and the gap index are all built from —
  and answered as — row indices into the table's columns.  The sweep-line
  correlator, the gap rules, and the exporters consume these directly and
  never materialize span objects.  When numpy is importable the orderings
  and partitions are computed with zero-copy ``frombuffer`` views over
  the columns (``lexsort``/``nonzero``); the pure-Python fallback is
  identical in output.
* **view-level** (the compatible public surface): ``sorted_spans()``,
  ``by_level()``, ``by_id()``, ... materialize
  :class:`~repro.tracing.table.SpanView` flyweights from the row indexes,
  lazily and cached per family.

Maintenance model (high-water mark, not invalidation)
-----------------------------------------------------
An index covers one *prefix* of its table — ``covered`` rows, the
high-water mark it was last synchronized to.  Appending spans does **not**
drop the index: the next query calls :meth:`TraceIndex.advance`, which
merge-sorts the pending tail of new rows into every structure already
built (orderings, partitions, id map, extent, gap folds) instead of
rebuilding the world.  The merged state is, structure for structure,
identical to a cold rebuild over the grown table (fuzzed by
``tests/tracing/test_span_table.py``); structures not yet built simply
build lazily over the full covered prefix later.  Rows remain immutable
for indexing purposes with one exception — ``parent_id``, which the
offline correlation pass assigns after capture.  The parent-derived
indexes (children, roots) live behind the narrower epoch that
:func:`repro.tracing.correlation.reconstruct_parents` and
:func:`~repro.tracing.correlation.correlate_launch_execution` bump via
:meth:`Trace.touch_parents`; an append also drops them (a new span id can
resolve a previously dangling parent).  Code that mutates
``span.parent_id`` by hand after querying a trace must call
``touch_parents`` as before.

Cold builders read bounded snapshot copies of the columns (``col[:n]``)
rather than zero-copy buffer exports: a live (still-growing) table may be
appended to by the capture thread while a monitor advances the index, and
holding a buffer export across that append would raise ``BufferError`` in
the writer.  The copies are single C-level ``memcpy`` calls — atomic
under the GIL and noise next to the sort they feed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.tracing.span import Level, SpanKind
from repro.tracing.table import KINDS, NONE_ID, SpanTable, SpanView, _KIND_CODE

try:  # optional acceleration; storage stays stdlib-array either way
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None


@dataclass(frozen=True)
class Gap:
    """An idle interval between two spans on one level's timeline.

    ``before_id``/``after_id`` are the span ids bounding the gap: the span
    whose end opens the gap and the span whose start closes it.  Both
    always resolve against the trace the gap was computed from.
    """

    start_ns: int
    end_ns: int
    before_id: int
    after_id: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


def _fold_gaps(
    table: SpanTable,
    rows: List[int],
    gaps: List[Gap],
    frontier: Optional[int],
) -> Optional[int]:
    """Fold timeline-sorted ``rows`` into ``gaps``; returns the frontier row.

    Overlapping spans are coalesced on the fly (track the running max end
    and the row that achieves it), so a "gap" is an interval covered by
    *no* span at all — exactly the device-idle bubbles of a GPU timeline.
    Passing the frontier row returned by a previous fold continues that
    fold — the incremental gap-maintenance path — and is only valid when
    every new row sorts at/after the rows already folded.
    """
    starts = table.start_ns
    ends = table.end_ns
    ids = table.span_id
    it = iter(rows)
    if frontier is None:
        frontier = next(it, None)
        if frontier is None:
            return None
    frontier_end = ends[frontier]
    for row in it:
        start = starts[row]
        if start > frontier_end:
            gaps.append(
                Gap(
                    start_ns=frontier_end,
                    end_ns=start,
                    before_id=ids[frontier],
                    after_id=ids[row],
                )
            )
        end = ends[row]
        if end > frontier_end:
            frontier = row
            frontier_end = end
    return frontier


def _timeline_rows(
    table: SpanTable,
    rows: List[int] | None = None,
    *,
    n: int | None = None,
) -> List[int]:
    """Row indices by (start, -duration) — parents before children.

    Two stable passes (end desc, then start asc) over C-level keys: equal
    starts keep the end-descending order, which is exactly
    duration-descending; full ties keep row (publication) order.  ``n``
    bounds the build to the table's first ``n`` rows (the covered prefix
    of a still-growing capture).
    """
    if rows is None:
        count = len(table) if n is None else n
        if _np is not None and count > 64:
            # Bounded snapshot copies, not zero-copy exports: see the
            # module docstring's live-table note.
            starts = _np.frombuffer(table.start_ns[:count], dtype=_np.int64)
            ends = _np.frombuffer(table.end_ns[:count], dtype=_np.int64)
            # lexsort is stable and sorts by the *last* key first.
            return _np.lexsort((-ends, starts)).tolist()
        rows = list(range(count))
        out = rows
    else:
        out = list(rows)
    out.sort(key=table.end_ns.__getitem__, reverse=True)
    out.sort(key=table.start_ns.__getitem__)
    return out


def _merge_timeline(
    table: SpanTable, base: List[int], tail: List[int]
) -> None:
    """Merge timeline-sorted ``tail`` rows into sorted ``base``, in place.

    Stable with ``base`` winning ties: tail rows are always newer
    (higher row indices), so the result is element-for-element identical
    to a cold stable sort of the union.  Three regimes: pure append when
    the tail starts at/after the base's last key (the streaming common
    case, O(k)); per-row bisect insertion for small tails (O(k log n)
    compares + C-level memmoves); otherwise one stable timsort over the
    concatenation, which gallop-merges the two pre-sorted runs.
    """
    starts = table.start_ns
    ends = table.end_ns
    if not tail:
        return
    if not base:
        base.extend(tail)
        return
    last, first = base[-1], tail[0]
    if (starts[last], -ends[last]) <= (starts[first], -ends[first]):
        base.extend(tail)
        return
    key = lambda r: (starts[r], -ends[r])  # noqa: E731 - local sort key
    if len(tail) * 16 < len(base):
        for row in tail:
            base.insert(bisect_right(base, key(row), key=key), row)
        return
    base.extend(tail)
    base.sort(key=key)


class TraceIndex:
    """Indexes over the covered prefix of a trace's span table.

    All builders are lazy: the first query of each family pays the build
    cost, subsequent queries are dictionary/list lookups.  When the table
    grows, :meth:`advance` merges the new tail into every structure
    already built instead of discarding anything (see the module
    docstring).  The containers returned by accessors are the internal
    ones — :class:`Trace` copies them before handing them to callers so
    the cached state can never be corrupted from outside.
    """

    __slots__ = (
        "table",
        "_n",
        "_rows_sorted",
        "_level_rows",
        "_level_rows_sorted",
        "_kind_rows",
        "_row_by_id",
        "_extent",
        "_levels",
        "_gaps",
        "_gap_state",
        "_children_rows",
        "_root_rows",
        "_sorted_views",
        "_by_level_views",
        "_by_level_sorted_views",
        "_by_kind_views",
        "_by_id_views",
        "_children_views",
        "_roots_views",
    )

    def __init__(self, table: SpanTable, n: int | None = None) -> None:
        self.table = table
        self._n = len(table) if n is None else n
        # row-level caches
        self._rows_sorted: Optional[List[int]] = None
        self._level_rows: Optional[Dict[Level, List[int]]] = None
        self._level_rows_sorted: Dict[Level, List[int]] = {}
        self._kind_rows: Optional[Dict[SpanKind, List[int]]] = None
        self._row_by_id: Optional[Dict[int, int]] = None
        self._extent: Optional[Tuple[int, int]] = None
        self._levels: Optional[List[Level]] = None
        self._gaps: Dict[Tuple[Level, Optional[SpanKind]], List[Gap]] = {}
        # Per-(level, kind) fold continuation: (last sort key, frontier
        # row) of the rows already folded into the cached gap list.
        self._gap_state: Dict[
            Tuple[Level, Optional[SpanKind]], Tuple[Tuple[int, int], int]
        ] = {}
        self._children_rows: Optional[Dict[Optional[int], List[int]]] = None
        self._root_rows: Optional[List[int]] = None
        # view-level caches (materialized lazily from the row level)
        self._sorted_views: Optional[List[SpanView]] = None
        self._by_level_views: Optional[Dict[Level, List[SpanView]]] = None
        self._by_level_sorted_views: Dict[Level, List[SpanView]] = {}
        self._by_kind_views: Optional[Dict[SpanKind, List[SpanView]]] = None
        self._by_id_views: Optional[Dict[int, SpanView]] = None
        self._children_views: Optional[Dict[Optional[int], List[SpanView]]] = None
        self._roots_views: Optional[List[SpanView]] = None

    # -- cache validity ---------------------------------------------------
    @property
    def covered(self) -> int:
        """Number of table rows this index currently describes."""
        return self._n

    def fresh_for(self, table: SpanTable) -> bool:
        """True while this index fully covers ``table``'s membership."""
        return self.table is table and self._n == len(table)

    def invalidate_parents(self) -> None:
        """Drop the parent-derived indexes (children, roots)."""
        self._children_rows = None
        self._root_rows = None
        self._children_views = None
        self._roots_views = None

    def advance(self, to_n: int | None = None) -> int:
        """Merge rows ``[covered, to_n)`` into every built structure.

        The incremental-maintenance hot path: instead of rebuilding, the
        pending tail is appended to the membership partitions, written
        into the id map, merge-sorted into the timeline orderings, and
        folded into the gap caches — each result identical to a cold
        rebuild over the grown prefix.  Structures that were never built
        stay unbuilt (they build lazily over the full prefix later).
        Parent-derived indexes and the materialized view caches are
        dropped: a new span id can resolve a dangling parent, and view
        lists re-materialize cheaply from the maintained row lists.
        Returns the number of rows absorbed.
        """
        table = self.table
        new_n = len(table) if to_n is None else to_n
        old_n = self._n
        if new_n <= old_n:
            return 0
        tail = range(old_n, new_n)
        starts = table.start_ns
        ends = table.end_ns
        levels_col = table.level

        if self._level_rows is not None:
            buckets = self._level_rows
            for row in tail:
                level = Level(levels_col[row])
                try:
                    buckets[level].append(row)
                except KeyError:
                    buckets[level] = [row]
        if self._kind_rows is not None:
            buckets_k = self._kind_rows
            kinds_col = table.kind
            for row in tail:
                kind = KINDS[kinds_col[row]]
                try:
                    buckets_k[kind].append(row)
                except KeyError:
                    buckets_k[kind] = [row]
        if self._row_by_id is not None:
            ids = table.span_id
            by_id = self._row_by_id
            for row in tail:
                by_id[ids[row]] = row
        if self._extent is not None:
            lo = min(starts[r] for r in tail)
            hi = max(ends[r] for r in tail)
            if old_n == 0:
                self._extent = (lo, hi)
            else:
                cur_lo, cur_hi = self._extent
                self._extent = (min(cur_lo, lo), max(cur_hi, hi))
        if self._levels is not None:
            fresh = {Level(levels_col[r]) for r in tail}
            if not fresh.issubset(self._levels):
                self._levels = sorted(fresh.union(self._levels))

        # Timeline orderings and gap folds share one sorted tail.
        if (
            self._rows_sorted is not None
            or self._level_rows_sorted
            or self._gaps
        ):
            tail_sorted = _timeline_rows(table, list(tail))
            if self._rows_sorted is not None:
                _merge_timeline(table, self._rows_sorted, tail_sorted)
            level_tails: Dict[Level, List[int]] = {}
            for row in tail_sorted:
                level = Level(levels_col[row])
                try:
                    level_tails[level].append(row)
                except KeyError:
                    level_tails[level] = [row]
            for level, cached in self._level_rows_sorted.items():
                lt = level_tails.get(level)
                if lt:
                    _merge_timeline(table, cached, lt)
            self._advance_gaps(level_tails)

        # A new span id can turn an existing "root" into a child, so the
        # parent-derived indexes (and all view materializations) reset.
        self.invalidate_parents()
        self._sorted_views = None
        self._by_level_views = None
        self._by_level_sorted_views.clear()
        self._by_kind_views = None
        self._by_id_views = None
        self._n = new_n
        return new_n - old_n

    def _advance_gaps(self, level_tails: Dict[Level, List[int]]) -> None:
        """Fold new rows into the cached gap lists, key by key.

        Rows arriving in timeline order continue the stored fold in
        O(tail); an out-of-order arrival (a span sorting before rows
        already folded) drops that key's cache, which then rebuilds
        lazily — and only as O(m) over the already-merged ordering, never
        a re-sort.
        """
        if not self._gaps:
            return
        table = self.table
        starts = table.start_ns
        ends = table.end_ns
        kinds_col = table.kind
        for gap_key in list(self._gaps):
            level, kind = gap_key
            lk_tail = level_tails.get(level, [])
            if kind is not None:
                code = _KIND_CODE[kind]
                lk_tail = [r for r in lk_tail if kinds_col[r] == code]
            if not lk_tail:
                continue
            state = self._gap_state.get(gap_key)
            frontier: Optional[int] = None
            if state is not None:
                last_key, frontier = state
                first = lk_tail[0]
                if (starts[first], -ends[first]) < last_key:
                    del self._gaps[gap_key]
                    del self._gap_state[gap_key]
                    continue
            frontier = _fold_gaps(
                table, lk_tail, self._gaps[gap_key], frontier
            )
            tail_last = lk_tail[-1]
            self._gap_state[gap_key] = (
                (starts[tail_last], -ends[tail_last]),
                frontier,
            )

    # -- row-level indexes (the hot path) ---------------------------------
    def rows_sorted(self) -> List[int]:
        """Row indices in timeline order (start asc, duration desc)."""
        if self._rows_sorted is None:
            self._rows_sorted = _timeline_rows(self.table, n=self._n)
        return self._rows_sorted

    def level_rows(self) -> Dict[Level, List[int]]:
        """Level -> row indices at that level, in publication order."""
        if self._level_rows is None:
            table = self.table
            buckets: Dict[Level, List[int]] = {}
            if _np is not None and self._n > 64:
                codes = _np.frombuffer(
                    table.level[: self._n], dtype=_np.int8
                )
                for code in _np.unique(codes).tolist():
                    buckets[Level(code)] = _np.nonzero(codes == code)[
                        0
                    ].tolist()
            else:
                for row, code in enumerate(table.level[: self._n]):
                    level = Level(code)
                    try:
                        buckets[level].append(row)
                    except KeyError:
                        buckets[level] = [row]
            self._level_rows = buckets
        return self._level_rows

    def level_rows_sorted(self, level: Level) -> List[int]:
        """Rows at ``level`` in timeline order (the sweep-line's view)."""
        cached = self._level_rows_sorted.get(level)
        if cached is None:
            cached = _timeline_rows(self.table, self.level_rows().get(level, []))
            self._level_rows_sorted[level] = cached
        return cached

    def kind_rows(self) -> Dict[SpanKind, List[int]]:
        if self._kind_rows is None:
            table = self.table
            buckets: Dict[SpanKind, List[int]] = {}
            if _np is not None and self._n > 64:
                codes = _np.frombuffer(table.kind[: self._n], dtype=_np.int8)
                for code in _np.unique(codes).tolist():
                    buckets[KINDS[code]] = _np.nonzero(codes == code)[
                        0
                    ].tolist()
            else:
                for row in range(self._n):
                    kind = table.kind_of(row)
                    try:
                        buckets[kind].append(row)
                    except KeyError:
                        buckets[kind] = [row]
            self._kind_rows = buckets
        return self._kind_rows

    def row_by_id(self) -> Dict[int, int]:
        """span_id -> row index (last write wins, as the dict did)."""
        if self._row_by_id is None:
            self._row_by_id = dict(
                zip(self.table.span_id.tolist(), range(self._n))
            )
        return self._row_by_id

    def levels_present(self) -> List[Level]:
        if self._levels is None:
            self._levels = sorted(self.level_rows())
        return self._levels

    def extent_ns(self) -> Tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        if self._extent is None:
            if self._n == 0:
                self._extent = (0, 0)
            elif _np is not None and self._n > 64:
                starts = _np.frombuffer(
                    self.table.start_ns[: self._n], dtype=_np.int64
                )
                ends = _np.frombuffer(
                    self.table.end_ns[: self._n], dtype=_np.int64
                )
                self._extent = (int(starts.min()), int(ends.max()))
            else:
                self._extent = (
                    min(self.table.start_ns[: self._n]),
                    max(self.table.end_ns[: self._n]),
                )
        return self._extent

    def level_extent_ns(
        self, level: Level, kind: Optional[SpanKind] = None
    ) -> Optional[Tuple[int, int]]:
        """(min start, max end) of one level's (optionally one kind's)
        timeline; ``None`` when no such spans exist."""
        rows = self._level_kind_rows(level, kind)
        if not rows:
            return None
        starts = self.table.start_ns
        ends = self.table.end_ns
        # Rows are timeline-sorted: the first start is the minimum.
        return starts[rows[0]], max(ends[r] for r in rows)

    def level_kind_count(self, level: Level, kind: Optional[SpanKind] = None) -> int:
        return len(self._level_kind_rows(level, kind))

    def _level_kind_rows(
        self, level: Level, kind: Optional[SpanKind]
    ) -> List[int]:
        rows = self.level_rows_sorted(level)
        if kind is None:
            return rows
        table_kind = self.table.kind
        code = _KIND_CODE[kind]
        return [r for r in rows if table_kind[r] == code]

    def gaps(self, level: Level, kind: Optional[SpanKind] = None) -> List[Gap]:
        """Idle intervals between ``level``'s spans (optionally one kind).

        Built once per (level, kind) from the already-cached timeline
        ordering; every later query is a dictionary lookup, so insight
        rules iterating a trace's bubbles add no O(n) rescans.
        """
        key = (level, kind)
        cached = self._gaps.get(key)
        if cached is None:
            rows = self._level_kind_rows(level, kind)
            cached = []
            frontier = _fold_gaps(self.table, rows, cached, None)
            self._gaps[key] = cached
            if rows:
                last = rows[-1]
                table = self.table
                self._gap_state[key] = (
                    (table.start_ns[last], -table.end_ns[last]),
                    frontier,
                )
        return cached

    # -- parent-derived row indexes (see the invalidation model above) ----
    def children_rows(self) -> Dict[Optional[int], List[int]]:
        """Parent span id -> child rows, each bucket in start order."""
        if self._children_rows is None:
            table = self.table
            buckets: Dict[Optional[int], List[int]] = {}
            parents = table.parent_id
            for row in range(self._n):
                pid = parents[row]
                key = None if pid == NONE_ID else pid
                try:
                    buckets[key].append(row)
                except KeyError:
                    buckets[key] = [row]
            starts = table.start_ns
            for kids in buckets.values():
                kids.sort(key=starts.__getitem__)
            self._children_rows = buckets
        return self._children_rows

    def root_rows(self) -> List[int]:
        """Rows with no (known) parent, in publication order."""
        if self._root_rows is None:
            ids = self.row_by_id()
            parents = self.table.parent_id
            self._root_rows = [
                row
                for row in range(self._n)
                if parents[row] == NONE_ID or parents[row] not in ids
            ]
        return self._root_rows

    # -- view-level indexes (compatible public surface) -------------------
    def _views(self, rows: List[int]) -> List[SpanView]:
        table = self.table
        return [SpanView(table, row) for row in rows]

    def sorted_spans(self) -> List[SpanView]:
        """Spans in timeline order (start asc, duration desc; stable)."""
        if self._sorted_views is None:
            self._sorted_views = self._views(self.rows_sorted())
        return self._sorted_views

    def by_level(self) -> Dict[Level, List[SpanView]]:
        """Level -> spans at that level, in publication order."""
        if self._by_level_views is None:
            self._by_level_views = {
                level: self._views(rows)
                for level, rows in self.level_rows().items()
            }
        return self._by_level_views

    def level_sorted(self, level: Level) -> List[SpanView]:
        """Spans at ``level`` in timeline order."""
        cached = self._by_level_sorted_views.get(level)
        if cached is None:
            cached = self._views(self.level_rows_sorted(level))
            self._by_level_sorted_views[level] = cached
        return cached

    def by_kind(self) -> Dict[SpanKind, List[SpanView]]:
        if self._by_kind_views is None:
            self._by_kind_views = {
                kind: self._views(rows)
                for kind, rows in self.kind_rows().items()
            }
        return self._by_kind_views

    def by_id(self) -> Dict[int, SpanView]:
        if self._by_id_views is None:
            table = self.table
            self._by_id_views = {
                span_id: SpanView(table, row)
                for span_id, row in self.row_by_id().items()
            }
        return self._by_id_views

    def children_index(self) -> Dict[Optional[int], List[SpanView]]:
        """Parent span id -> children, each bucket in start order."""
        if self._children_views is None:
            self._children_views = {
                parent: self._views(rows)
                for parent, rows in self.children_rows().items()
            }
        return self._children_views

    def children_of(self, span_id: int) -> List[SpanView]:
        return self.children_index().get(span_id, [])

    def roots(self) -> List[SpanView]:
        """Spans with no (known) parent, in publication order."""
        if self._roots_views is None:
            self._roots_views = self._views(self.root_rows())
        return self._roots_views
