"""Lazily-built query indexes over a :class:`~repro.tracing.trace.Trace`.

The analysis pipeline's defining access pattern is *index once, query
many*: a trace is captured (or loaded) once and then interrogated by the
correlation pass, the merge step, and all 15 analyses.  :class:`TraceIndex`
builds each index a single time over the trace's columnar
:class:`~repro.tracing.table.SpanTable` and serves all subsequent queries
from it.

Two layers of indexes exist:

* **row-level** (the hot path): timeline orderings, level/kind
  partitions, the id map, extents, and the gap index are all built from —
  and answered as — row indices into the table's columns.  The sweep-line
  correlator, the gap rules, and the exporters consume these directly and
  never materialize span objects.  When numpy is importable the orderings
  and partitions are computed with zero-copy ``frombuffer`` views over
  the columns (``lexsort``/``nonzero``); the pure-Python fallback is
  identical in output.
* **view-level** (the compatible public surface): ``sorted_spans()``,
  ``by_level()``, ``by_id()``, ... materialize
  :class:`~repro.tracing.table.SpanView` flyweights from the row indexes,
  lazily and cached per family.

Invalidation model
------------------
Indexes are keyed on span *membership* (the identity and length of the
trace's table): :meth:`Trace.add`/:meth:`Trace.extend` drop the index,
and a direct ``trace.spans.append(...)`` is caught by the length check the
next time the index is consulted.  Rows are immutable for indexing
purposes with one exception — ``parent_id``, which the offline
correlation pass assigns after capture.  The parent-derived indexes
(children, roots) therefore live behind a separate epoch that
:func:`repro.tracing.correlation.reconstruct_parents` and
:func:`~repro.tracing.correlation.correlate_launch_execution` bump via
:meth:`Trace.touch_parents`.  Code that mutates ``span.parent_id`` by hand
after querying a trace must do the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.tracing.span import Level, SpanKind
from repro.tracing.table import KINDS, NONE_ID, SpanTable, SpanView, _KIND_CODE

try:  # optional acceleration; storage stays stdlib-array either way
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None


@dataclass(frozen=True)
class Gap:
    """An idle interval between two spans on one level's timeline.

    ``before_id``/``after_id`` are the span ids bounding the gap: the span
    whose end opens the gap and the span whose start closes it.  Both
    always resolve against the trace the gap was computed from.
    """

    start_ns: int
    end_ns: int
    before_id: int
    after_id: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


def _compute_gaps(table: SpanTable, rows: List[int]) -> List[Gap]:
    """Idle intervals of a timeline-sorted row list, one merged pass.

    Overlapping spans are coalesced on the fly (track the running max end
    and the row that achieves it), so a "gap" is an interval covered by
    *no* span at all — exactly the device-idle bubbles of a GPU timeline.
    """
    gaps: List[Gap] = []
    if not rows:
        return gaps
    starts = table.start_ns
    ends = table.end_ns
    ids = table.span_id
    frontier = rows[0]
    frontier_end = ends[frontier]
    for row in rows[1:]:
        start = starts[row]
        if start > frontier_end:
            gaps.append(
                Gap(
                    start_ns=frontier_end,
                    end_ns=start,
                    before_id=ids[frontier],
                    after_id=ids[row],
                )
            )
        end = ends[row]
        if end > frontier_end:
            frontier = row
            frontier_end = end
    return gaps


def _timeline_rows(table: SpanTable, rows: List[int] | None = None) -> List[int]:
    """Row indices by (start, -duration) — parents before children.

    Two stable passes (end desc, then start asc) over C-level keys: equal
    starts keep the end-descending order, which is exactly
    duration-descending; full ties keep row (publication) order.
    """
    if rows is None:
        if _np is not None and len(table) > 64:
            starts = _np.frombuffer(table.start_ns, dtype=_np.int64)
            ends = _np.frombuffer(table.end_ns, dtype=_np.int64)
            # lexsort is stable and sorts by the *last* key first.
            return _np.lexsort((-ends, starts)).tolist()
        rows = list(range(len(table)))
        out = rows
    else:
        out = list(rows)
    out.sort(key=table.end_ns.__getitem__, reverse=True)
    out.sort(key=table.start_ns.__getitem__)
    return out


class TraceIndex:
    """Indexes over one snapshot of a trace's span table.

    All builders are lazy: the first query of each family pays the build
    cost, subsequent queries are dictionary/list lookups.  The containers
    returned by accessors are the internal ones — :class:`Trace` copies
    them before handing them to callers so the cached state can never be
    corrupted from outside.
    """

    __slots__ = (
        "table",
        "_n",
        "_rows_sorted",
        "_level_rows",
        "_level_rows_sorted",
        "_kind_rows",
        "_row_by_id",
        "_extent",
        "_levels",
        "_gaps",
        "_children_rows",
        "_root_rows",
        "_sorted_views",
        "_by_level_views",
        "_by_level_sorted_views",
        "_by_kind_views",
        "_by_id_views",
        "_children_views",
        "_roots_views",
    )

    def __init__(self, table: SpanTable) -> None:
        self.table = table
        self._n = len(table)
        # row-level caches
        self._rows_sorted: Optional[List[int]] = None
        self._level_rows: Optional[Dict[Level, List[int]]] = None
        self._level_rows_sorted: Dict[Level, List[int]] = {}
        self._kind_rows: Optional[Dict[SpanKind, List[int]]] = None
        self._row_by_id: Optional[Dict[int, int]] = None
        self._extent: Optional[Tuple[int, int]] = None
        self._levels: Optional[List[Level]] = None
        self._gaps: Dict[Tuple[Level, Optional[SpanKind]], List[Gap]] = {}
        self._children_rows: Optional[Dict[Optional[int], List[int]]] = None
        self._root_rows: Optional[List[int]] = None
        # view-level caches (materialized lazily from the row level)
        self._sorted_views: Optional[List[SpanView]] = None
        self._by_level_views: Optional[Dict[Level, List[SpanView]]] = None
        self._by_level_sorted_views: Dict[Level, List[SpanView]] = {}
        self._by_kind_views: Optional[Dict[SpanKind, List[SpanView]]] = None
        self._by_id_views: Optional[Dict[int, SpanView]] = None
        self._children_views: Optional[Dict[Optional[int], List[SpanView]]] = None
        self._roots_views: Optional[List[SpanView]] = None

    # -- cache validity ---------------------------------------------------
    def fresh_for(self, table: SpanTable) -> bool:
        """True while this index still describes ``table``'s membership."""
        return self.table is table and self._n == len(table)

    def invalidate_parents(self) -> None:
        """Drop the parent-derived indexes (children, roots)."""
        self._children_rows = None
        self._root_rows = None
        self._children_views = None
        self._roots_views = None

    # -- row-level indexes (the hot path) ---------------------------------
    def rows_sorted(self) -> List[int]:
        """Row indices in timeline order (start asc, duration desc)."""
        if self._rows_sorted is None:
            self._rows_sorted = _timeline_rows(self.table)
        return self._rows_sorted

    def level_rows(self) -> Dict[Level, List[int]]:
        """Level -> row indices at that level, in publication order."""
        if self._level_rows is None:
            table = self.table
            buckets: Dict[Level, List[int]] = {}
            if _np is not None and self._n > 64:
                codes = _np.frombuffer(table.level, dtype=_np.int8)
                for code in _np.unique(codes).tolist():
                    buckets[Level(code)] = _np.nonzero(codes == code)[
                        0
                    ].tolist()
            else:
                for row, code in enumerate(table.level):
                    level = Level(code)
                    try:
                        buckets[level].append(row)
                    except KeyError:
                        buckets[level] = [row]
            self._level_rows = buckets
        return self._level_rows

    def level_rows_sorted(self, level: Level) -> List[int]:
        """Rows at ``level`` in timeline order (the sweep-line's view)."""
        cached = self._level_rows_sorted.get(level)
        if cached is None:
            cached = _timeline_rows(self.table, self.level_rows().get(level, []))
            self._level_rows_sorted[level] = cached
        return cached

    def kind_rows(self) -> Dict[SpanKind, List[int]]:
        if self._kind_rows is None:
            table = self.table
            buckets: Dict[SpanKind, List[int]] = {}
            if _np is not None and self._n > 64:
                codes = _np.frombuffer(table.kind, dtype=_np.int8)
                for code in _np.unique(codes).tolist():
                    buckets[KINDS[code]] = _np.nonzero(codes == code)[
                        0
                    ].tolist()
            else:
                for row in range(self._n):
                    kind = table.kind_of(row)
                    try:
                        buckets[kind].append(row)
                    except KeyError:
                        buckets[kind] = [row]
            self._kind_rows = buckets
        return self._kind_rows

    def row_by_id(self) -> Dict[int, int]:
        """span_id -> row index (last write wins, as the dict did)."""
        if self._row_by_id is None:
            self._row_by_id = dict(
                zip(self.table.span_id.tolist(), range(self._n))
            )
        return self._row_by_id

    def levels_present(self) -> List[Level]:
        if self._levels is None:
            self._levels = sorted(self.level_rows())
        return self._levels

    def extent_ns(self) -> Tuple[int, int]:
        """(min start, max end) across all spans; (0, 0) when empty."""
        if self._extent is None:
            if self._n == 0:
                self._extent = (0, 0)
            elif _np is not None and self._n > 64:
                starts = _np.frombuffer(self.table.start_ns, dtype=_np.int64)
                ends = _np.frombuffer(self.table.end_ns, dtype=_np.int64)
                self._extent = (int(starts.min()), int(ends.max()))
            else:
                self._extent = (min(self.table.start_ns), max(self.table.end_ns))
        return self._extent

    def level_extent_ns(
        self, level: Level, kind: Optional[SpanKind] = None
    ) -> Optional[Tuple[int, int]]:
        """(min start, max end) of one level's (optionally one kind's)
        timeline; ``None`` when no such spans exist."""
        rows = self._level_kind_rows(level, kind)
        if not rows:
            return None
        starts = self.table.start_ns
        ends = self.table.end_ns
        # Rows are timeline-sorted: the first start is the minimum.
        return starts[rows[0]], max(ends[r] for r in rows)

    def level_kind_count(self, level: Level, kind: Optional[SpanKind] = None) -> int:
        return len(self._level_kind_rows(level, kind))

    def _level_kind_rows(
        self, level: Level, kind: Optional[SpanKind]
    ) -> List[int]:
        rows = self.level_rows_sorted(level)
        if kind is None:
            return rows
        table_kind = self.table.kind
        code = _KIND_CODE[kind]
        return [r for r in rows if table_kind[r] == code]

    def gaps(self, level: Level, kind: Optional[SpanKind] = None) -> List[Gap]:
        """Idle intervals between ``level``'s spans (optionally one kind).

        Built once per (level, kind) from the already-cached timeline
        ordering; every later query is a dictionary lookup, so insight
        rules iterating a trace's bubbles add no O(n) rescans.
        """
        key = (level, kind)
        cached = self._gaps.get(key)
        if cached is None:
            cached = _compute_gaps(self.table, self._level_kind_rows(level, kind))
            self._gaps[key] = cached
        return cached

    # -- parent-derived row indexes (see the invalidation model above) ----
    def children_rows(self) -> Dict[Optional[int], List[int]]:
        """Parent span id -> child rows, each bucket in start order."""
        if self._children_rows is None:
            table = self.table
            buckets: Dict[Optional[int], List[int]] = {}
            parents = table.parent_id
            for row in range(self._n):
                pid = parents[row]
                key = None if pid == NONE_ID else pid
                try:
                    buckets[key].append(row)
                except KeyError:
                    buckets[key] = [row]
            starts = table.start_ns
            for kids in buckets.values():
                kids.sort(key=starts.__getitem__)
            self._children_rows = buckets
        return self._children_rows

    def root_rows(self) -> List[int]:
        """Rows with no (known) parent, in publication order."""
        if self._root_rows is None:
            ids = self.row_by_id()
            parents = self.table.parent_id
            self._root_rows = [
                row
                for row in range(self._n)
                if parents[row] == NONE_ID or parents[row] not in ids
            ]
        return self._root_rows

    # -- view-level indexes (compatible public surface) -------------------
    def _views(self, rows: List[int]) -> List[SpanView]:
        table = self.table
        return [SpanView(table, row) for row in rows]

    def sorted_spans(self) -> List[SpanView]:
        """Spans in timeline order (start asc, duration desc; stable)."""
        if self._sorted_views is None:
            self._sorted_views = self._views(self.rows_sorted())
        return self._sorted_views

    def by_level(self) -> Dict[Level, List[SpanView]]:
        """Level -> spans at that level, in publication order."""
        if self._by_level_views is None:
            self._by_level_views = {
                level: self._views(rows)
                for level, rows in self.level_rows().items()
            }
        return self._by_level_views

    def level_sorted(self, level: Level) -> List[SpanView]:
        """Spans at ``level`` in timeline order."""
        cached = self._by_level_sorted_views.get(level)
        if cached is None:
            cached = self._views(self.level_rows_sorted(level))
            self._by_level_sorted_views[level] = cached
        return cached

    def by_kind(self) -> Dict[SpanKind, List[SpanView]]:
        if self._by_kind_views is None:
            self._by_kind_views = {
                kind: self._views(rows)
                for kind, rows in self.kind_rows().items()
            }
        return self._by_kind_views

    def by_id(self) -> Dict[int, SpanView]:
        if self._by_id_views is None:
            table = self.table
            self._by_id_views = {
                span_id: SpanView(table, row)
                for span_id, row in self.row_by_id().items()
            }
        return self._by_id_views

    def children_index(self) -> Dict[Optional[int], List[SpanView]]:
        """Parent span id -> children, each bucket in start order."""
        if self._children_views is None:
            self._children_views = {
                parent: self._views(rows)
                for parent, rows in self.children_rows().items()
            }
        return self._children_views

    def children_of(self, span_id: int) -> List[SpanView]:
        return self.children_index().get(span_id, [])

    def roots(self) -> List[SpanView]:
        """Spans with no (known) parent, in publication order."""
        if self._roots_views is None:
            self._roots_views = self._views(self.root_rows())
        return self._roots_views
