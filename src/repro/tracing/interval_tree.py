"""Centered interval tree used for parent-child reconstruction.

The paper (Sec. III-A) reconstructs missing parent-child relationships by
building an interval tree over span start/end timestamps and checking
interval set inclusion.  This module provides a classic centered interval
tree supporting stabbing queries (all intervals containing a point) and
containment queries (all intervals containing a query interval), both in
O(log n + k).

The implementation is self-contained (no third-party interval library).
It remains the *reference* engine for parent reconstruction — the hot
path uses the sweep-line correlator in :mod:`repro.tracing.correlation` —
but it is tuned all the same: construction is iterative (no recursion
depth limit on adversarial traces) and every node precomputes the
endpoint arrays its queries bisect over, so queries allocate nothing
beyond their result lists.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Interval(Generic[T]):
    """A half-open-agnostic interval ``[start, end]`` carrying a payload.

    Containment checks treat both endpoints as inclusive, matching the
    paper's span-inclusion rule (a kernel launched at exactly the layer's
    start timestamp belongs to that layer).
    """

    start: int
    end: int
    data: T = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains_point(self, point: int) -> bool:
        return self.start <= point <= self.end

    def contains_interval(self, other: "Interval[Any]") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval[Any]") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass
class _Node(Generic[T]):
    center: int
    # Intervals crossing `center`, sorted by start ascending / end descending,
    # with their endpoint arrays precomputed for bisection.
    by_start: List[Interval[T]] = field(default_factory=list)
    by_end: List[Interval[T]] = field(default_factory=list)
    starts: List[int] = field(default_factory=list)  # by_start[i].start
    neg_ends: List[int] = field(default_factory=list)  # -by_end[i].end (asc)
    left: Optional["_Node[T]"] = None
    right: Optional["_Node[T]"] = None


class IntervalTree(Generic[T]):
    """Static centered interval tree.

    Built once from an iterable of :class:`Interval`; supports:

    * :meth:`stab` — all intervals containing a point,
    * :meth:`containing` — all intervals containing a query interval,
    * :meth:`overlapping` — all intervals overlapping a query interval.
    """

    def __init__(self, intervals: Iterable[Interval[T]] = ()) -> None:
        self._intervals: list[Interval[T]] = list(intervals)
        self._root = self._build(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval[T]]:
        return iter(self._intervals)

    # -- construction ----------------------------------------------------
    @staticmethod
    def _build(intervals: list[Interval[T]]) -> Optional[_Node[T]]:
        """Iterative centered-tree construction (explicit work stack)."""
        if not intervals:
            return None
        root = _Node(center=0)  # placeholder; filled by the first work item
        work: list[tuple[list[Interval[T]], _Node[T]]] = [(intervals, root)]
        while work:
            ivs, node = work.pop()
            endpoints = sorted({iv.start for iv in ivs} | {iv.end for iv in ivs})
            center = endpoints[len(endpoints) // 2]
            crossing: list[Interval[T]] = []
            lefts: list[Interval[T]] = []
            rights: list[Interval[T]] = []
            for iv in ivs:
                if iv.end < center:
                    lefts.append(iv)
                elif iv.start > center:
                    rights.append(iv)
                else:
                    crossing.append(iv)
            node.center = center
            node.by_start = sorted(crossing, key=lambda iv: iv.start)
            node.by_end = sorted(crossing, key=lambda iv: -iv.end)
            node.starts = [iv.start for iv in node.by_start]
            node.neg_ends = [-iv.end for iv in node.by_end]
            if lefts:
                node.left = _Node(center=0)
                work.append((lefts, node.left))
            if rights:
                node.right = _Node(center=0)
                work.append((rights, node.right))
        return root

    # -- queries ----------------------------------------------------------
    def stab(self, point: int) -> list[Interval[T]]:
        """All intervals containing ``point`` (inclusive endpoints)."""
        out: list[Interval[T]] = []
        node = self._root
        while node is not None:
            if point < node.center:
                # Crossing intervals sorted by start: those starting <= point
                # necessarily contain the point (they all end >= center > point).
                idx = bisect.bisect_right(node.starts, point)
                out.extend(node.by_start[:idx])
                node = node.left
            elif point > node.center:
                # Sorted by end descending: those ending >= point contain it.
                idx = bisect.bisect_right(node.neg_ends, -point)
                out.extend(node.by_end[:idx])
                node = node.right
            else:
                out.extend(node.by_start)
                node = None
        return out

    def containing(self, query: Interval[Any]) -> list[Interval[T]]:
        """All intervals that fully contain ``query``."""
        qs, qe = query.start, query.end
        out: list[Interval[T]] = []
        node = self._root
        while node is not None:
            if qs < node.center:
                # Crossing intervals with start <= qs contain the stab point;
                # keep those whose end also reaches qe.
                idx = bisect.bisect_right(node.starts, qs)
                for iv in node.by_start[:idx]:
                    if iv.end >= qe:
                        out.append(iv)
                node = node.left
            elif qs > node.center:
                # All crossing intervals start <= center < qs; keep those
                # whose end reaches qe (>= qe implies >= qs here).
                idx = bisect.bisect_right(node.neg_ends, -qe)
                out.extend(node.by_end[:idx])
                node = node.right
            else:
                idx = bisect.bisect_right(node.neg_ends, -qe)
                out.extend(node.by_end[:idx])
                node = None
        return out

    def overlapping(self, query: Interval[Any]) -> list[Interval[T]]:
        """All intervals overlapping ``query`` (inclusive endpoints)."""
        out: list[Interval[T]] = []
        root = self._root
        if root is None:
            return out
        stack = [root]
        while stack:
            node = stack.pop()
            if query.start <= node.center <= query.end:
                out.extend(node.by_start)
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
            elif query.end < node.center:
                # Crossing intervals start <= center; they overlap iff
                # start <= query.end.
                idx = bisect.bisect_right(node.starts, query.end)
                out.extend(node.by_start[:idx])
                if node.left is not None:
                    stack.append(node.left)
            else:  # query.start > node.center
                idx = bisect.bisect_right(node.neg_ends, -query.start)
                out.extend(node.by_end[:idx])
                if node.right is not None:
                    stack.append(node.right)
        return out

    # -- helpers -----------------------------------------------------------
    def tightest_containing(self, query: Interval[Any]) -> Optional[Interval[T]]:
        """The smallest-length interval containing ``query``, or ``None``."""
        candidates = self.containing(query)
        if not candidates:
            return None
        return min(candidates, key=lambda iv: (iv.length, iv.start))
