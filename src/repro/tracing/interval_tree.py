"""Centered interval tree used for parent-child reconstruction.

The paper (Sec. III-A) reconstructs missing parent-child relationships by
building an interval tree over span start/end timestamps and checking
interval set inclusion.  This module provides a classic centered interval
tree supporting stabbing queries (all intervals containing a point) and
containment queries (all intervals containing a query interval), both in
O(log n + k).

The implementation is self-contained (no third-party interval library) and
deliberately favours clarity: trees are built once per trace and queried
many times.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Interval(Generic[T]):
    """A half-open-agnostic interval ``[start, end]`` carrying a payload.

    Containment checks treat both endpoints as inclusive, matching the
    paper's span-inclusion rule (a kernel launched at exactly the layer's
    start timestamp belongs to that layer).
    """

    start: int
    end: int
    data: T = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains_point(self, point: int) -> bool:
        return self.start <= point <= self.end

    def contains_interval(self, other: "Interval[Any]") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval[Any]") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass
class _Node(Generic[T]):
    center: int
    # Intervals crossing `center`, sorted by start ascending / end descending.
    by_start: List[Interval[T]] = field(default_factory=list)
    by_end: List[Interval[T]] = field(default_factory=list)
    left: Optional["_Node[T]"] = None
    right: Optional["_Node[T]"] = None


class IntervalTree(Generic[T]):
    """Static centered interval tree.

    Built once from an iterable of :class:`Interval`; supports:

    * :meth:`stab` — all intervals containing a point,
    * :meth:`containing` — all intervals containing a query interval,
    * :meth:`overlapping` — all intervals overlapping a query interval.
    """

    def __init__(self, intervals: Iterable[Interval[T]] = ()) -> None:
        self._intervals: list[Interval[T]] = list(intervals)
        self._root = self._build(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval[T]]:
        return iter(self._intervals)

    # -- construction ----------------------------------------------------
    @staticmethod
    def _build(intervals: list[Interval[T]]) -> Optional[_Node[T]]:
        if not intervals:
            return None
        endpoints = sorted({iv.start for iv in intervals} | {iv.end for iv in intervals})
        center = endpoints[len(endpoints) // 2]
        crossing: list[Interval[T]] = []
        lefts: list[Interval[T]] = []
        rights: list[Interval[T]] = []
        for iv in intervals:
            if iv.end < center:
                lefts.append(iv)
            elif iv.start > center:
                rights.append(iv)
            else:
                crossing.append(iv)
        node = _Node(center=center)
        node.by_start = sorted(crossing, key=lambda iv: iv.start)
        node.by_end = sorted(crossing, key=lambda iv: -iv.end)
        node.left = IntervalTree._build(lefts)
        node.right = IntervalTree._build(rights)
        return node

    # -- queries ----------------------------------------------------------
    def stab(self, point: int) -> list[Interval[T]]:
        """All intervals containing ``point`` (inclusive endpoints)."""
        out: list[Interval[T]] = []
        node = self._root
        while node is not None:
            if point < node.center:
                # Crossing intervals sorted by start: those starting <= point
                # necessarily contain the point (they all end >= center > point).
                starts = [iv.start for iv in node.by_start]
                idx = bisect.bisect_right(starts, point)
                out.extend(node.by_start[:idx])
                node = node.left
            elif point > node.center:
                # Sorted by end descending: those ending >= point contain it.
                for iv in node.by_end:
                    if iv.end < point:
                        break
                    out.append(iv)
                node = node.right
            else:
                out.extend(node.by_start)
                node = None
        return out

    def containing(self, query: Interval[Any]) -> list[Interval[T]]:
        """All intervals that fully contain ``query``."""
        return [iv for iv in self.stab(query.start) if iv.end >= query.end]

    def overlapping(self, query: Interval[Any]) -> list[Interval[T]]:
        """All intervals overlapping ``query`` (inclusive endpoints)."""
        out: list[Interval[T]] = []
        self._overlap(self._root, query, out)
        return out

    def _overlap(
        self, node: Optional[_Node[T]], query: Interval[Any], out: list[Interval[T]]
    ) -> None:
        if node is None:
            return
        if query.start <= node.center <= query.end:
            out.extend(node.by_start)
            self._overlap(node.left, query, out)
            self._overlap(node.right, query, out)
        elif query.end < node.center:
            # Crossing intervals start <= center; they overlap iff start <= query.end.
            starts = [iv.start for iv in node.by_start]
            idx = bisect.bisect_right(starts, query.end)
            out.extend(node.by_start[:idx])
            self._overlap(node.left, query, out)
        else:  # query.start > node.center
            for iv in node.by_end:
                if iv.end < query.start:
                    break
                out.append(iv)
            self._overlap(node.right, query, out)

    # -- helpers -----------------------------------------------------------
    def tightest_containing(self, query: Interval[Any]) -> Optional[Interval[T]]:
        """The smallest-length interval containing ``query``, or ``None``."""
        candidates = self.containing(query)
        if not candidates:
            return None
        return min(candidates, key=lambda iv: (iv.length, iv.start))
