"""A15 — GPU kernel information aggregated per model (paper Table VI, Fig. 10).

Model-level totals of kernel latency, flops and DRAM traffic; the
latency-weighted achieved occupancy; and the whole-model roofline
classification across batch sizes.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.roofline import RooflinePoint
from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def model_aggregate_row(profile: ModelProfile) -> dict[str, object]:
    return {
        "batch": profile.batch,
        "model_latency_ms": profile.model_latency_ms,
        "kernel_latency_ms": profile.kernel_latency_ms,
        "gflops": profile.flops / 1e9,
        "dram_read_mb": profile.dram_read_bytes / 1e6,
        "dram_write_mb": profile.dram_write_bytes / 1e6,
        "occupancy_pct": 100.0 * profile.achieved_occupancy,
        "arithmetic_intensity": profile.arithmetic_intensity,
        "throughput_tflops": profile.arithmetic_throughput_tflops,
        "memory_bound": profile.memory_bound,
    }


def model_aggregate_table(
    sweep: Mapping[int, ModelProfile], *, model_name: str = "", system: str = ""
) -> Table:
    """The paper's Table VI: one row per batch size."""
    table = Table(
        title=f"A15 model aggregate across batch sizes: {model_name} on {system}",
        columns=[
            Column("batch", "Batch Size", "d"),
            Column("model_latency_ms", "Model Latency (ms)", ".2f"),
            Column("kernel_latency_ms", "Kernel Latency (ms)", ".2f"),
            Column("gflops", "Model Gflops", ".2f"),
            Column("dram_read_mb", "DRAM Reads (MB)", ".2f"),
            Column("dram_write_mb", "DRAM Writes (MB)", ".2f"),
            Column("occupancy_pct", "Achieved Occupancy (%)", ".2f"),
            Column("arithmetic_intensity", "Arithmetic Intensity", ".2f"),
            Column("memory_bound", "Memory Bound?"),
        ],
    )
    for batch in sorted(sweep):
        table.add(**model_aggregate_row(sweep[batch]))
    return table


def model_roofline_points(
    sweep: Mapping[int, ModelProfile]
) -> list[RooflinePoint]:
    """Fig. 10: the model's roofline position per batch size."""
    return [
        RooflinePoint(
            label=f"bs{batch}",
            arithmetic_intensity=sweep[batch].arithmetic_intensity,
            arithmetic_throughput_tflops=sweep[batch].arithmetic_throughput_tflops,
            latency_ms=sweep[batch].model_latency_ms,
        )
        for batch in sorted(sweep)
    ]
