"""A11 — GPU kernel information aggregated by layer (paper Table V).

Requires the layer/kernel correlation only XSP provides: "A layer's kernel
latency, flops, DRAM reads and writes are calculated by adding the
corresponding values of all the kernels invoked by that layer."
"""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def kernel_by_layer_table(profile: ModelProfile) -> Table:
    gpu = profile.gpu
    table = Table(
        title=f"A11 GPU kernels aggregated by layer: {profile.model_name} "
        f"(batch {profile.batch}) on {profile.system}",
        columns=[
            Column("index", "Layer Index", "d"),
            Column("latency_ms", "Layer Latency (ms)", ".2f"),
            Column("kernel_latency_ms", "Kernel Latency (ms)", ".2f"),
            Column("gflops", "Layer Gflops", ".2f"),
            Column("dram_read_mb", "DRAM Reads (MB)", ".2f"),
            Column("dram_write_mb", "DRAM Writes (MB)", ".2f"),
            Column("occupancy_pct", "Achieved Occupancy (%)", ".2f"),
            Column("arithmetic_intensity", "Arithmetic Intensity", ".2f"),
            Column("throughput_tflops", "Throughput (Tflops/s)", ".2f"),
            Column("memory_bound", "Memory Bound?"),
        ],
    )
    for layer in profile.layers:
        if not layer.kernels:
            continue
        table.add(
            index=layer.index,
            latency_ms=layer.latency_ms,
            kernel_latency_ms=layer.kernel_latency_ms,
            gflops=layer.flops / 1e9,
            dram_read_mb=layer.dram_read_bytes / 1e6,
            dram_write_mb=layer.dram_write_bytes / 1e6,
            occupancy_pct=100.0 * layer.achieved_occupancy,
            arithmetic_intensity=layer.arithmetic_intensity,
            throughput_tflops=layer.arithmetic_throughput_tflops,
            memory_bound=layer.memory_bound(gpu),
        )
    return table


def top_layers_by_kernels(profile: ModelProfile, n: int = 5) -> Table:
    """The paper's Table V: kernel aggregates for the top-N layers."""
    return kernel_by_layer_table(profile).sorted_by("latency_ms", reverse=True).head(n)
