"""A3 — per-layer latency in execution order (paper Fig. 5a)."""

from __future__ import annotations

from repro.analysis.stages import dominant_stage
from repro.core.pipeline import ModelProfile


def layer_latency_series(profile: ModelProfile) -> list[tuple[int, float]]:
    """(layer index, latency ms) in execution order."""
    return [(layer.index, layer.latency_ms) for layer in profile.layers]


def latency_stage(profile: ModelProfile) -> str:
    """Which execution interval (beginning/middle/end) dominates latency."""
    return dominant_stage(profile, lambda layer: layer.latency_ms)
