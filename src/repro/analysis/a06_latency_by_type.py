"""A6 — layer latency aggregated by type (paper Fig. 4b).

Also provides the "percentage of model latency attributed to convolution
layers" metric used throughout the paper's Table VIII (its last column:
Conv2D + DepthwiseConv2dNative share of total layer latency).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile

#: TF layer types counted as convolution by the paper.
CONV_TYPES = ("Conv2D", "DepthwiseConv2dNative", "Convolution")


def latency_by_type(profile: ModelProfile) -> Table:
    totals: dict[str, float] = defaultdict(float)
    for layer in profile.layers:
        totals[layer.layer_type] += layer.latency_ms
    grand = sum(totals.values())
    table = Table(
        title=f"A6 layer latency by type: {profile.model_name}",
        columns=[
            Column("layer_type", "Layer Type", align="<"),
            Column("latency_ms", "Latency (ms)", ".2f"),
            Column("percentage", "Percentage (%)", ".2f"),
        ],
    )
    for layer_type, latency in sorted(totals.items(), key=lambda kv: -kv[1]):
        table.add(
            layer_type=layer_type,
            latency_ms=latency,
            percentage=100.0 * latency / grand if grand else 0.0,
        )
    return table


def convolution_latency_percentage(profile: ModelProfile) -> float:
    """Table VIII last column: convolution share of total layer latency."""
    conv = sum(
        layer.latency_ms
        for layer in profile.layers
        if layer.layer_type in CONV_TYPES
    )
    total = sum(layer.latency_ms for layer in profile.layers)
    return 100.0 * conv / total if total else 0.0
