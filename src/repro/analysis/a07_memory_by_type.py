"""A7 — layer memory allocation aggregated by type (paper Fig. 4c)."""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def memory_by_type(profile: ModelProfile) -> Table:
    totals: dict[str, float] = defaultdict(float)
    for layer in profile.layers:
        totals[layer.layer_type] += layer.alloc_mb
    grand = sum(totals.values())
    table = Table(
        title=f"A7 layer memory allocation by type: {profile.model_name}",
        columns=[
            Column("layer_type", "Layer Type", align="<"),
            Column("alloc_mb", "Alloc Mem (MB)", ".1f"),
            Column("percentage", "Percentage (%)", ".2f"),
        ],
    )
    for layer_type, alloc in sorted(totals.items(), key=lambda kv: -kv[1]):
        table.add(
            layer_type=layer_type,
            alloc_mb=alloc,
            percentage=100.0 * alloc / grand if grand else 0.0,
        )
    return table
