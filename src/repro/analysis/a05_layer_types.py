"""A5 — layer type distribution (paper Fig. 4a)."""

from __future__ import annotations

from collections import Counter

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def layer_type_distribution(profile: ModelProfile) -> Table:
    counts = Counter(layer.layer_type for layer in profile.layers)
    total = sum(counts.values())
    table = Table(
        title=f"A5 layer type distribution: {profile.model_name}",
        columns=[
            Column("layer_type", "Layer Type", align="<"),
            Column("count", "Count", "d"),
            Column("percentage", "Percentage (%)", ".2f"),
        ],
    )
    for layer_type, count in counts.most_common():
        table.add(
            layer_type=layer_type, count=count, percentage=100.0 * count / total
        )
    return table
