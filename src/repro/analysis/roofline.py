"""Shared roofline math (paper Sec. III-D3, Figs. 6/9/10/12).

A kernel/layer/model with arithmetic intensity below the device's ideal
arithmetic intensity (peak FLOPS / memory bandwidth) is memory-bound;
otherwise compute-bound.  Attainable throughput under the roofline is
``min(peak, AI * bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.hardware import GPUSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One entity placed on the roofline plot."""

    label: str
    arithmetic_intensity: float  # flops / byte
    arithmetic_throughput_tflops: float
    latency_ms: float = 0.0

    def memory_bound(self, gpu: GPUSpec) -> bool:
        return self.arithmetic_intensity < gpu.ideal_arithmetic_intensity

    def attainable_tflops(self, gpu: GPUSpec) -> float:
        """Roofline ceiling at this point's arithmetic intensity."""
        return min(
            gpu.peak_tflops,
            self.arithmetic_intensity * gpu.memory_bandwidth / 1e12,
        )

    def efficiency(self, gpu: GPUSpec) -> float:
        """Achieved fraction of the attainable roofline throughput."""
        ceiling = self.attainable_tflops(gpu)
        if ceiling == 0:
            return 0.0
        return self.arithmetic_throughput_tflops / ceiling


def classify(point: RooflinePoint, gpu: GPUSpec) -> str:
    return "memory-bound" if point.memory_bound(gpu) else "compute-bound"


def roofline_curve(
    gpu: GPUSpec, intensities: list[float]
) -> list[tuple[float, float]]:
    """(AI, attainable TFLOPS) samples of the device roofline."""
    return [
        (ai, min(gpu.peak_tflops, ai * gpu.memory_bandwidth / 1e12))
        for ai in intensities
    ]
