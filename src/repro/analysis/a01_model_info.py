"""A1 — model information table (model-level profiling only).

Latency and throughput across batch sizes, plus the optimal-batch-size
rule: "XSP computes the optimal batch size by evaluating the model across
batch sizes and selecting the batch size where doubling it does not
increase the model's throughput by more than 5%" (Sec. III-D1, Fig. 3).
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import Column, Table


def throughputs(latencies_ms: Mapping[int, float]) -> dict[int, float]:
    """inputs/second per batch size."""
    return {b: b / (ms / 1e3) for b, ms in latencies_ms.items() if ms > 0}


def optimal_batch_size(
    latencies_ms: Mapping[int, float], threshold: float = 0.05
) -> int:
    """Smallest batch size whose doubling gains <= ``threshold`` throughput."""
    if not latencies_ms:
        raise ValueError("optimal_batch_size needs at least one batch size")
    tput = throughputs(latencies_ms)
    for batch in sorted(tput):
        double = batch * 2
        if double in tput and tput[double] <= tput[batch] * (1.0 + threshold):
            return batch
    return max(tput)


def optimal_batch_for_latency_target(
    latencies_ms: Mapping[int, float], target_ms: float
) -> int | None:
    """Largest measured batch size meeting a user-defined latency target.

    Sec. III-D1: "XSP then computes the model's optimal batch size given
    a user-defined metric (e.g. a latency target)."  Returns None when
    even batch 1 misses the target.
    """
    if target_ms <= 0:
        raise ValueError(f"latency target must be positive, got {target_ms}")
    feasible = [b for b, ms in latencies_ms.items() if ms <= target_ms]
    return max(feasible) if feasible else None


def model_information_table(
    latencies_ms: Mapping[int, float], *, model_name: str = "", system: str = ""
) -> Table:
    """The A1 table: one row per batch size + optimal-batch marker."""
    tput = throughputs(latencies_ms)
    optimal = optimal_batch_size(latencies_ms)
    table = Table(
        title=f"A1 model information: {model_name} on {system}".strip().rstrip(":"),
        columns=[
            Column("batch", "Batch Size", "d"),
            Column("latency_ms", "Latency (ms)", ".2f"),
            Column("throughput", "Throughput (inputs/s)", ".1f"),
            Column("optimal", "Optimal?"),
        ],
    )
    for batch in sorted(latencies_ms):
        table.add(
            batch=batch,
            latency_ms=latencies_ms[batch],
            throughput=tput.get(batch, 0.0),
            optimal=batch == optimal,
        )
    return table
