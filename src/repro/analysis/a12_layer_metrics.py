"""A12 — GPU metrics aggregated per layer (paper Fig. 7).

Total flops, DRAM reads, and DRAM writes per layer in execution order;
requires the layer/kernel correlation.
"""

from __future__ import annotations

from repro.analysis.stages import dominant_stage
from repro.core.pipeline import ModelProfile


def layer_flops_series(profile: ModelProfile) -> list[tuple[int, float]]:
    """(layer index, Gflops)."""
    return [(layer.index, layer.flops / 1e9) for layer in profile.layers]


def layer_dram_read_series(profile: ModelProfile) -> list[tuple[int, float]]:
    """(layer index, DRAM reads MB)."""
    return [(layer.index, layer.dram_read_bytes / 1e6) for layer in profile.layers]


def layer_dram_write_series(profile: ModelProfile) -> list[tuple[int, float]]:
    """(layer index, DRAM writes MB)."""
    return [(layer.index, layer.dram_write_bytes / 1e6) for layer in profile.layers]


def flops_stage(profile: ModelProfile) -> str:
    return dominant_stage(profile, lambda layer: layer.flops)


def memory_access_stage(profile: ModelProfile) -> str:
    return dominant_stage(profile, lambda layer: layer.dram_bytes)
