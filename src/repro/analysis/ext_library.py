"""Extension analysis: ML-library API-call table (paper Sec. III-E).

With the LIBRARY profiling level enabled ("one can add a ML library
profiling level between the layer- and GPU kernel-level to measure the
cuDNN API calls"), this analysis aggregates the captured API-call spans
by name — the library-level analog of A10.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.tables import Column, Table
from repro.core.session import ProfiledRun
from repro.tracing.span import Level


def library_call_table(run: ProfiledRun) -> Table:
    """Aggregate LIBRARY-level spans by API name."""
    spans = run.trace.at_level(Level.LIBRARY)
    if not spans:
        raise ValueError(
            "no LIBRARY-level spans in this trace; profile with the "
            "MLLibG level set (repro.core.MLLibG) to capture API calls"
        )
    groups: dict[str, list] = defaultdict(list)
    for span in spans:
        groups[span.name].append(span)
    total_ms = sum(s.duration_ms for s in spans)

    table = Table(
        title=f"Library API calls: {run.trace.metadata.get('model', '?')} "
        f"(batch {run.batch}) on {run.system}",
        columns=[
            Column("api", "API Call", align="<"),
            Column("count", "Count", "d"),
            Column("latency_ms", "Host Latency (ms)", ".3f"),
            Column("latency_pct", "Share (%)", ".1f"),
            Column("kernels", "Kernels Launched", "d"),
        ],
    )
    for api, api_spans in groups.items():
        latency = sum(s.duration_ms for s in api_spans)
        table.add(
            api=api,
            count=len(api_spans),
            latency_ms=latency,
            latency_pct=100.0 * latency / total_ms if total_ms else 0.0,
            kernels=sum(s.tags.get("n_kernels", 0) for s in api_spans),
        )
    return table.sorted_by("latency_ms", reverse=True)
