"""Table export: CSV and JSON for downstream tooling.

Analysis tables render to text for reports; pipelines that post-process
results (plotting, regression tracking) consume the CSV/JSON forms.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.analysis.tables import Table


def table_to_csv(table: Table) -> str:
    """CSV with one header row (column headers) per the table's columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([c.header for c in table.columns])
    for row in table.rows:
        writer.writerow([_csv_value(row.get(c.key)) for c in table.columns])
    return buffer.getvalue()


def table_to_json(table: Table) -> str:
    """JSON document: {title, columns, rows}."""
    return json.dumps(
        {
            "title": table.title,
            "columns": [
                {"key": c.key, "header": c.header} for c in table.columns
            ],
            "rows": [
                {c.key: _json_value(row.get(c.key)) for c in table.columns}
                for row in table.rows
            ],
        }
    )


def table_from_json(document: str) -> Table:
    """Rebuild a Table (string-format columns) from table_to_json output."""
    from repro.analysis.tables import Column

    data = json.loads(document)
    columns = [Column(c["key"], c["header"]) for c in data["columns"]]
    table = Table(title=data["title"], columns=columns)
    table.extend(data["rows"])
    return table


def save_table(table: Table, path: str) -> None:
    """Write CSV or JSON depending on the file extension."""
    if path.endswith(".json"):
        payload = table_to_json(table)
    elif path.endswith(".csv"):
        payload = table_to_csv(table)
    else:
        raise ValueError(f"unsupported table format for {path!r} "
                         "(use .csv or .json)")
    with open(path, "w") as fh:
        fh.write(payload)


def _csv_value(value: Any) -> Any:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return value


def _json_value(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_value(v) for v in value]
    return str(value)
