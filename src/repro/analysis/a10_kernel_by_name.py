"""A10 — GPU kernel information aggregated by name (paper Table IV).

Latency/flops/DRAM are summed over all instances of a kernel name; the
achieved occupancy is the latency-weighted mean; arithmetic intensity and
throughput are recomputed from the aggregated totals — exactly the
aggregation rules of Sec. III-D3.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.tables import Column, Table
from repro.core.pipeline import KernelProfile, ModelProfile


def kernel_by_name_table(profile: ModelProfile) -> Table:
    gpu = profile.gpu
    groups: dict[str, list[KernelProfile]] = defaultdict(list)
    for kernel in profile.kernels:
        groups[kernel.name].append(kernel)
    total_latency = profile.kernel_latency_ms
    model_latency = profile.model_latency_ms

    table = Table(
        title=f"A10 GPU kernels aggregated by name: {profile.model_name} "
        f"(batch {profile.batch}) on {profile.system}",
        columns=[
            Column("name", "Kernel Name", align="<"),
            Column("count", "Count", "d"),
            Column("latency_ms", "Latency (ms)", ".2f"),
            Column("latency_pct", "Latency (%)", ".2f"),
            Column("gflops", "Gflops", ".2f"),
            Column("dram_read_mb", "DRAM Reads (MB)", ".2f"),
            Column("dram_write_mb", "DRAM Writes (MB)", ".2f"),
            Column("occupancy_pct", "Achieved Occupancy (%)", ".2f"),
            Column("arithmetic_intensity", "Arithmetic Intensity", ".2f"),
            Column("throughput_tflops", "Throughput (Tflops/s)", ".2f"),
            Column("memory_bound", "Memory Bound?"),
        ],
    )
    for name, kernels in groups.items():
        latency = sum(k.latency_ms for k in kernels)
        flops = sum(k.flops for k in kernels)
        reads = sum(k.dram_read_bytes for k in kernels)
        writes = sum(k.dram_write_bytes for k in kernels)
        occupancy = (
            sum(k.achieved_occupancy * k.latency_ms for k in kernels) / latency
            if latency
            else 0.0
        )
        intensity = flops / (reads + writes) if reads + writes else 0.0
        table.add(
            name=name,
            count=len(kernels),
            latency_ms=latency,
            latency_pct=100.0 * latency / model_latency if model_latency else 0.0,
            gflops=flops / 1e9,
            dram_read_mb=reads / 1e6,
            dram_write_mb=writes / 1e6,
            occupancy_pct=100.0 * occupancy,
            arithmetic_intensity=intensity,
            throughput_tflops=flops / (latency / 1e3) / 1e12 if latency else 0.0,
            memory_bound=intensity < gpu.ideal_arithmetic_intensity,
        )
    del total_latency
    return table.sorted_by("latency_ms", reverse=True)
