"""Terminal plots: ASCII roofline scatter and series charts.

The paper's figures are matplotlib plots; this reproduction renders the
same data as terminal graphics so reports and examples remain
dependency-free and diffable.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.roofline import RooflinePoint
from repro.sim.hardware import GPUSpec


def ascii_roofline(
    points: Sequence[RooflinePoint],
    gpu: GPUSpec,
    *,
    width: int = 72,
    height: int = 18,
    marker: str = "o",
) -> str:
    """Log-log roofline scatter with the device ceiling drawn in.

    X: arithmetic intensity (flops/byte); Y: arithmetic throughput
    (Tflops/s).  The bandwidth slope and compute roof appear as ``/`` and
    ``-``; the ridge (ideal arithmetic intensity) as ``^`` on the axis.
    """
    finite = [p for p in points
              if p.arithmetic_intensity > 0
              and math.isfinite(p.arithmetic_intensity)
              and p.arithmetic_throughput_tflops > 0]
    if not finite:
        raise ValueError("no plottable roofline points")
    x_min = min(min(p.arithmetic_intensity for p in finite) / 2, 0.1)
    x_max = max(max(p.arithmetic_intensity for p in finite) * 2,
                gpu.ideal_arithmetic_intensity * 4)
    y_max = gpu.peak_tflops * 2
    y_min = min(min(p.arithmetic_throughput_tflops for p in finite) / 2,
                y_max / 1e4)

    def to_col(x: float) -> int:
        frac = (math.log10(x) - math.log10(x_min)) / (
            math.log10(x_max) - math.log10(x_min)
        )
        return max(0, min(width - 1, int(round(frac * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (math.log10(y) - math.log10(y_min)) / (
            math.log10(y_max) - math.log10(y_min)
        )
        return max(0, min(height - 1, int(round((1 - frac) * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    # Draw the roofline ceiling.
    for col in range(width):
        x = 10 ** (math.log10(x_min) + col / (width - 1)
                   * (math.log10(x_max) - math.log10(x_min)))
        ceiling = min(gpu.peak_tflops, x * gpu.memory_bandwidth / 1e12)
        row = to_row(ceiling)
        char = "-" if ceiling >= gpu.peak_tflops * 0.999 else "/"
        grid[row][col] = char
    # Scatter the points (drawn after the roof so they stay visible).
    for point in finite:
        grid[to_row(point.arithmetic_throughput_tflops)][
            to_col(point.arithmetic_intensity)
        ] = marker

    lines = [f"roofline: {gpu.name} (peak {gpu.peak_tflops} TFLOPS, "
             f"ridge {gpu.ideal_arithmetic_intensity:.2f} flops/byte)"]
    lines += ["|" + "".join(row) for row in grid]
    axis = [" "] * width
    axis[to_col(gpu.ideal_arithmetic_intensity)] = "^"
    lines.append("+" + "-" * width)
    lines.append(" " + "".join(axis) + " (ridge)")
    lines.append(f"  x: {x_min:.2g} .. {x_max:.2g} flops/byte (log) | "
                 f"y: {y_min:.2g} .. {y_max:.2g} Tflops/s (log)")
    return "\n".join(lines)


def ascii_series(
    series: Sequence[tuple[int, float]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 12,
    marker: str = "#",
) -> str:
    """Bar-style chart of an (index, value) series (A3/A4/A12 figures)."""
    if not series:
        raise ValueError("empty series")
    values = [v for _, v in series]
    v_max = max(values) or 1.0
    # Downsample columns to fit the width.
    n = len(series)
    buckets: list[float] = []
    for col in range(min(width, n)):
        lo = col * n // min(width, n)
        hi = max(lo + 1, (col + 1) * n // min(width, n))
        buckets.append(max(values[lo:hi]))
    lines = [title] if title else []
    for row in range(height, 0, -1):
        threshold = v_max * row / height
        lines.append(
            "|" + "".join(marker if v >= threshold else " " for v in buckets)
        )
    lines.append("+" + "-" * len(buckets))
    lines.append(f"  max {v_max:.3g} over {n} layers")
    return "\n".join(lines)
