"""A4 — per-layer allocated memory in execution order (paper Fig. 5b)."""

from __future__ import annotations

from repro.analysis.stages import dominant_stage
from repro.core.pipeline import ModelProfile


def layer_memory_series(profile: ModelProfile) -> list[tuple[int, float]]:
    """(layer index, allocated MB) in execution order."""
    return [(layer.index, layer.alloc_mb) for layer in profile.layers]


def memory_stage(profile: ModelProfile) -> str:
    """Which execution interval dominates memory allocation."""
    return dominant_stage(profile, lambda layer: layer.alloc_mb)
