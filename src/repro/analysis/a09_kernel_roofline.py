"""A9 — GPU kernel roofline analysis (paper Fig. 6)."""

from __future__ import annotations

from repro.analysis.roofline import RooflinePoint
from repro.core.pipeline import ModelProfile


def kernel_roofline(profile: ModelProfile) -> list[RooflinePoint]:
    """One roofline point per kernel invocation."""
    return [
        RooflinePoint(
            label=kernel.name,
            arithmetic_intensity=kernel.arithmetic_intensity,
            arithmetic_throughput_tflops=kernel.arithmetic_throughput_tflops,
            latency_ms=kernel.latency_ms,
        )
        for kernel in profile.kernels
        if kernel.dram_bytes > 0
    ]


def bound_counts(profile: ModelProfile) -> dict[str, int]:
    """How many kernels fall on each side of the roofline ridge."""
    gpu = profile.gpu
    out = {"memory-bound": 0, "compute-bound": 0}
    for point in kernel_roofline(profile):
        key = "memory-bound" if point.memory_bound(gpu) else "compute-bound"
        out[key] += 1
    return out
