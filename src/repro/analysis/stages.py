"""Execution-stage analysis (paper Table IX's last four columns).

"To understand the performance trend within model execution, we divide
the model execution into 3 intervals based on the layer index: beginning,
middle, and end ... then compute the total latency, flops, and memory
accesses within each interval and identify which interval dominates."
"""

from __future__ import annotations

from typing import Callable

from repro.core.pipeline import LayerProfile, ModelProfile

STAGES = ("B", "M", "E")  # beginning, middle, end


def stage_of(position: int, total: int) -> str:
    """Stage label for the layer at ``position`` (0-based) of ``total``."""
    if total <= 0:
        raise ValueError("total must be positive")
    third = total / 3.0
    if position < third:
        return "B"
    if position < 2 * third:
        return "M"
    return "E"


def stage_totals(
    profile: ModelProfile, value: Callable[[LayerProfile], float]
) -> dict[str, float]:
    totals = {stage: 0.0 for stage in STAGES}
    n = len(profile.layers)
    for position, layer in enumerate(profile.layers):
        totals[stage_of(position, n)] += value(layer)
    return totals


def dominant_stage(
    profile: ModelProfile, value: Callable[[LayerProfile], float]
) -> str:
    """The interval with the largest total of ``value`` ("B", "M" or "E")."""
    totals = stage_totals(profile, value)
    return max(STAGES, key=lambda stage: totals[stage])


def stage_summary(profile: ModelProfile) -> dict[str, str]:
    """Table IX's four stage columns for one model profile."""
    return {
        "latency": dominant_stage(profile, lambda l: l.latency_ms),
        "memory": dominant_stage(profile, lambda l: l.alloc_mb),
        "flops": dominant_stage(profile, lambda l: l.flops),
        "access": dominant_stage(profile, lambda l: l.dram_bytes),
    }
