"""A14 — layer roofline analysis (paper Fig. 9).

Conv2D/MatMul layers are compute-bound; Add/Mul/Relu element-wise layers
are memory-bound.  Requires the layer/kernel correlation.
"""

from __future__ import annotations

from repro.analysis.roofline import RooflinePoint
from repro.core.pipeline import ModelProfile


def layer_roofline(profile: ModelProfile) -> list[RooflinePoint]:
    return [
        RooflinePoint(
            label=f"{layer.index}:{layer.layer_type}",
            arithmetic_intensity=layer.arithmetic_intensity,
            arithmetic_throughput_tflops=layer.arithmetic_throughput_tflops,
            latency_ms=layer.latency_ms,
        )
        for layer in profile.layers
        if layer.kernels and layer.dram_bytes > 0
    ]


def bound_by_layer_type(profile: ModelProfile) -> dict[str, str]:
    """Majority roofline classification per layer type."""
    gpu = profile.gpu
    votes: dict[str, list[bool]] = {}
    for layer in profile.layers:
        if not layer.kernels or layer.dram_bytes == 0:
            continue
        votes.setdefault(layer.layer_type, []).append(layer.memory_bound(gpu))
    return {
        layer_type: (
            "memory-bound"
            if sum(flags) > len(flags) / 2
            else "compute-bound"
        )
        for layer_type, flags in votes.items()
    }
