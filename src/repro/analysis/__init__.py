"""The 15 automated analyses of paper Table I.

Each analysis consumes :class:`repro.core.pipeline.ModelProfile` objects
(or batch sweeps of them) produced by the analysis pipeline and emits
tables/series matching the paper's figures and tables.  The registry at
the bottom records, for every analysis, the profiling levels it requires
and which existing tool classes could perform it — reproducing Table I's
capability matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.a01_model_info import (
    model_information_table,
    optimal_batch_for_latency_target,
    optimal_batch_size,
    throughputs,
)
from repro.analysis.a02_layer_info import layer_information_table, top_layers
from repro.analysis.a03_layer_latency import latency_stage, layer_latency_series
from repro.analysis.a04_layer_memory import layer_memory_series, memory_stage
from repro.analysis.a05_layer_types import layer_type_distribution
from repro.analysis.a06_latency_by_type import (
    convolution_latency_percentage,
    latency_by_type,
)
from repro.analysis.a07_memory_by_type import memory_by_type
from repro.analysis.a08_kernel_info import kernel_information_table, top_kernels
from repro.analysis.a09_kernel_roofline import bound_counts, kernel_roofline
from repro.analysis.a10_kernel_by_name import kernel_by_name_table
from repro.analysis.a11_kernel_by_layer import (
    kernel_by_layer_table,
    top_layers_by_kernels,
)
from repro.analysis.a12_layer_metrics import (
    flops_stage,
    layer_dram_read_series,
    layer_dram_write_series,
    layer_flops_series,
    memory_access_stage,
)
from repro.analysis.a13_gpu_vs_nongpu import (
    gpu_vs_nongpu_series,
    gpu_vs_nongpu_table,
    model_non_gpu_latency_ms,
)
from repro.analysis.a14_layer_roofline import bound_by_layer_type, layer_roofline
from repro.analysis.a15_model_aggregate import (
    model_aggregate_row,
    model_aggregate_table,
    model_roofline_points,
)
from repro.analysis.roofline import RooflinePoint, classify, roofline_curve
from repro.analysis.stages import dominant_stage, stage_of, stage_summary
from repro.analysis.tables import Column, Table


@dataclass(frozen=True)
class AnalysisInfo:
    """One row of the paper's Table I capability matrix."""

    analysis_id: str
    description: str
    levels: str  # profiling levels required: M, L, G combinations
    end_to_end_benchmarking: bool
    framework_profilers: bool
    nvidia_profilers: bool
    xsp: bool = True


#: Table I verbatim: which tool classes can perform each analysis.
ANALYSIS_REGISTRY: tuple[AnalysisInfo, ...] = (
    AnalysisInfo("A1", "Model information table", "M", True, False, False),
    AnalysisInfo("A2", "Layer information table", "L", False, True, False),
    AnalysisInfo("A3", "Layer latency", "L", False, True, False),
    AnalysisInfo("A4", "Layer memory allocation", "L", False, True, False),
    AnalysisInfo("A5", "Layer type distribution", "L", False, True, False),
    AnalysisInfo("A6", "Layer latency aggregated by type", "L", False, True, False),
    AnalysisInfo(
        "A7", "Layer memory allocation aggregated by type", "L", False, True, False
    ),
    AnalysisInfo("A8", "GPU kernel information table", "G", False, False, True),
    AnalysisInfo("A9", "GPU kernel roofline", "G", False, False, True),
    AnalysisInfo(
        "A10", "GPU kernel information aggregated by name table", "G",
        False, False, True,
    ),
    AnalysisInfo(
        "A11", "GPU kernel information aggregated by layer table", "L/G",
        False, False, False,
    ),
    AnalysisInfo("A12", "GPU metrics aggregated by layer", "L/G", False, False, False),
    AnalysisInfo("A13", "GPU vs Non-GPU latency", "L/G", False, False, False),
    AnalysisInfo("A14", "Layer roofline", "L/G", False, False, False),
    AnalysisInfo(
        "A15", "GPU kernel information aggregated by model table", "M/G",
        False, False, True,
    ),
)

__all__ = [
    "ANALYSIS_REGISTRY",
    "AnalysisInfo",
    "Column",
    "RooflinePoint",
    "Table",
    "bound_by_layer_type",
    "bound_counts",
    "classify",
    "convolution_latency_percentage",
    "dominant_stage",
    "flops_stage",
    "gpu_vs_nongpu_series",
    "gpu_vs_nongpu_table",
    "kernel_by_layer_table",
    "kernel_by_name_table",
    "kernel_information_table",
    "kernel_roofline",
    "latency_by_type",
    "latency_stage",
    "layer_dram_read_series",
    "layer_dram_write_series",
    "layer_flops_series",
    "layer_information_table",
    "layer_latency_series",
    "layer_memory_series",
    "layer_roofline",
    "layer_type_distribution",
    "memory_access_stage",
    "memory_by_type",
    "memory_stage",
    "model_aggregate_row",
    "model_aggregate_table",
    "model_information_table",
    "optimal_batch_for_latency_target",
    "model_non_gpu_latency_ms",
    "model_roofline_points",
    "optimal_batch_size",
    "roofline_curve",
    "stage_of",
    "stage_summary",
    "throughputs",
    "top_kernels",
    "top_layers",
    "top_layers_by_kernels",
]
