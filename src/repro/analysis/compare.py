"""Comparison reports: models, frameworks, and systems side by side.

"The consistent profiling and automated analysis workflows in XSP enable
systematic comparisons of models, frameworks, and hardware" (paper
Sec. I).  These helpers take profiles produced under different
configurations and render the comparison tables Sec. IV builds manually.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.a06_latency_by_type import convolution_latency_percentage
from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile

_PROFILE_COLUMNS = [
    Column("label", "Configuration", align="<"),
    Column("latency_ms", "Latency (ms)", ".2f"),
    Column("throughput", "Throughput (/s)", ".1f"),
    Column("gpu_pct", "GPU %", ".1f"),
    Column("conv_pct", "Conv %", ".1f"),
    Column("gflops", "Gflops", ".1f"),
    Column("dram_gb", "DRAM (GB)", ".2f"),
    Column("occ_pct", "Occupancy %", ".1f"),
    Column("ai", "Arithmetic Intensity", ".2f"),
    Column("memory_bound", "Memory Bound?"),
]


def _profile_row(label: str, profile: ModelProfile) -> dict:
    return {
        "label": label,
        "latency_ms": profile.model_latency_ms,
        "throughput": profile.throughput,
        "gpu_pct": profile.gpu_latency_percentage,
        "conv_pct": convolution_latency_percentage(profile),
        "gflops": profile.flops / 1e9,
        "dram_gb": profile.dram_bytes / 1e9,
        "occ_pct": 100 * profile.achieved_occupancy,
        "ai": profile.arithmetic_intensity,
        "memory_bound": profile.memory_bound,
    }


def comparison_table(
    profiles: Mapping[str, ModelProfile], *, title: str = "Comparison"
) -> Table:
    """One row per labelled profile, same metrics everywhere."""
    if not profiles:
        raise ValueError("comparison_table needs at least one profile")
    table = Table(title=title, columns=_PROFILE_COLUMNS)
    for label, profile in profiles.items():
        table.add(**_profile_row(label, profile))
    return table


def compare_models(profiles: Sequence[ModelProfile]) -> Table:
    """Model-vs-model at matching (system, framework, batch)."""
    _require_uniform(profiles, ("system", "framework"))
    return comparison_table(
        {p.model_name: p for p in profiles},
        title=f"Model comparison on {profiles[0].system} "
        f"({profiles[0].framework})",
    )


def compare_frameworks(profiles: Sequence[ModelProfile]) -> Table:
    """Framework-vs-framework for one model (paper Sec. IV-B)."""
    _require_uniform(profiles, ("system", "model_name", "batch"))
    return comparison_table(
        {p.framework: p for p in profiles},
        title=f"Framework comparison: {profiles[0].model_name} "
        f"(batch {profiles[0].batch}) on {profiles[0].system}",
    )


def compare_systems(profiles: Sequence[ModelProfile]) -> Table:
    """System-vs-system for one model (paper Sec. IV-C)."""
    _require_uniform(profiles, ("framework", "model_name", "batch"))
    return comparison_table(
        {p.system: p for p in profiles},
        title=f"System comparison: {profiles[0].model_name} "
        f"(batch {profiles[0].batch})",
    )


def speedup_summary(
    baseline: ModelProfile, candidate: ModelProfile
) -> dict[str, float]:
    """Headline ratios candidate/baseline (latency inverse = speedup)."""
    return {
        "speedup": baseline.model_latency_ms / candidate.model_latency_ms,
        "throughput_ratio": candidate.throughput / baseline.throughput,
        "gpu_time_ratio": (candidate.kernel_latency_ms
                           / baseline.kernel_latency_ms
                           if baseline.kernel_latency_ms else float("nan")),
        "dram_ratio": (candidate.dram_bytes / baseline.dram_bytes
                       if baseline.dram_bytes else float("nan")),
    }


def _require_uniform(
    profiles: Sequence[ModelProfile], attributes: Sequence[str]
) -> None:
    if not profiles:
        raise ValueError("need at least one profile")
    for attribute in attributes:
        values = {getattr(p, attribute) for p in profiles}
        if len(values) > 1:
            raise ValueError(
                f"profiles differ in {attribute} ({sorted(map(str, values))}); "
                "comparisons must vary exactly one dimension"
            )
