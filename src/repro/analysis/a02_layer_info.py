"""A2 — layer information table (layer-level profiling).

Index, name, type, shape, latency, and allocated memory of every layer
the framework executed (paper Table II shows the top-5 most
time-consuming layers of MLPerf_ResNet50_v1.5).
"""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def layer_information_table(profile: ModelProfile) -> Table:
    table = Table(
        title=f"A2 layer information: {profile.model_name} "
        f"(batch {profile.batch}) on {profile.system}",
        columns=[
            Column("index", "Layer Index", "d"),
            Column("name", "Layer Name", align="<"),
            Column("layer_type", "Layer Type", align="<"),
            Column("shape", "Layer Shape", align="<"),
            Column("latency_ms", "Latency (ms)", ".2f"),
            Column("alloc_mb", "Alloc Mem (MB)", ".1f"),
        ],
    )
    for layer in profile.layers:
        table.add(
            index=layer.index,
            name=layer.name,
            layer_type=layer.layer_type,
            shape="\u27e8" + ", ".join(str(d) for d in layer.shape) + "\u27e9",
            latency_ms=layer.latency_ms,
            alloc_mb=layer.alloc_mb,
        )
    return table


def top_layers(profile: ModelProfile, n: int = 5) -> Table:
    """The paper's Table II: top-N most time-consuming layers."""
    return layer_information_table(profile).sorted_by("latency_ms", reverse=True).head(n)
