"""Diff inputs: profiles from store entries, profile JSONs, or raw traces.

``repro diff`` accepts either side of a comparison in three shapes:

* **store coordinates** — resolved against a
  :class:`~repro.core.cache.ProfileStore` (the PR 1 cache becomes A/B
  infrastructure: every cached entry is a comparable artifact),
* **a saved profile JSON** — a store document (``schema_version`` +
  ``key`` + ``profile``) or a bare :func:`profile_to_dict` payload,
* **a saved trace JSON** — a ``repro trace --output`` capture, converted
  to a single-run :class:`~repro.core.pipeline.ModelProfile` via
  :func:`profile_from_trace` (layer spans supply latencies, correlated
  execution spans supply the kernels and their ``metric.*`` tags).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.pipeline import KernelProfile, LayerProfile, ModelProfile
from repro.tracing.export import trace_from_dict
from repro.tracing.span import Level, SpanKind
from repro.tracing.table import _KIND_CODE, NONE_ID
from repro.tracing.trace import Trace


def profile_from_trace(trace: Trace) -> ModelProfile:
    """A single-run profile view of one captured across-stack trace.

    Accuracy note (paper Sec. III-C): a trace mixes levels captured in
    one run, so layer latencies carry the GPU-profiling overhead the
    leveled pipeline removes — good enough for diffing two traces
    captured the same way, not a substitute for the merged profile.

    Consumes the trace's columnar storage directly (row partitions from
    the index, read-only tag access) — no span objects are materialized.
    """
    table = trace.table
    index = trace.index
    starts = table.start_ns
    ends = table.end_ns
    span_ids = table.span_id
    parents = table.parent_id

    layer_rows = sorted(
        index.level_rows().get(Level.LAYER, []),
        key=lambda row: table.peek_tags(row).get("layer_index", 0),
    )
    layers: list[LayerProfile] = []
    by_layer_span: dict[int, LayerProfile] = {}
    for row in layer_rows:
        tags = table.peek_tags(row)
        layer = LayerProfile(
            index=int(tags.get("layer_index", len(layers))),
            name=table.name_of(row),
            layer_type=str(tags.get("layer_type", "unknown")),
            shape=tuple(tags.get("shape", ())),
            latency_ms=(ends[row] - starts[row]) / 1e6,
            alloc_bytes=int(tags.get("alloc_bytes", 0)),
        )
        layers.append(layer)
        by_layer_span[span_ids[row]] = layer
    # Kernels hang off their layer span directly, or — when the library
    # level was captured — via an intermediate cuDNN/cuBLAS API span, so
    # resolve through the ancestor chain up to the enclosing layer.
    row_by_id = index.row_by_id()

    def enclosing_layer(row: int) -> LayerProfile | None:
        seen: set[int] = set()
        parent_id = parents[row]
        while parent_id != NONE_ID and parent_id not in seen:
            layer = by_layer_span.get(parent_id)
            if layer is not None:
                return layer
            seen.add(parent_id)
            parent_row = row_by_id.get(parent_id)
            parent_id = parents[parent_row] if parent_row is not None else NONE_ID
        return None

    execution_code = _KIND_CODE[SpanKind.EXECUTION]
    kinds = table.kind
    for row in index.level_rows().get(Level.GPU_KERNEL, []):
        if kinds[row] != execution_code:
            continue
        layer = enclosing_layer(row)
        if layer is None:
            continue  # kernel outside any layer span
        tags = table.peek_tags(row)
        layer.kernels.append(
            KernelProfile(
                name=table.name_of(row),
                layer_index=layer.index,
                position=len(layer.kernels),
                latency_ms=(ends[row] - starts[row]) / 1e6,
                flops=float(tags.get("metric.flop_count_sp", 0.0)),
                dram_read_bytes=float(tags.get("metric.dram_read_bytes", 0.0)),
                dram_write_bytes=float(
                    tags.get("metric.dram_write_bytes", 0.0)
                ),
                achieved_occupancy=float(
                    tags.get("metric.achieved_occupancy", 0.0)
                ),
                grid=tuple(tags.get("grid", (1, 1, 1))),
                block=tuple(tags.get("block", (1, 1, 1))),
            )
        )
    predict = trace.first_named("predict")
    if predict is not None:
        model_latency_ms = predict.duration_ms
    else:
        lo, hi = trace.span_extent_ns()
        model_latency_ms = (hi - lo) / 1e6
    meta = trace.metadata
    return ModelProfile(
        model_name=str(meta.get("model", f"trace-{trace.trace_id}")),
        system=str(meta.get("system", "unknown")),
        framework=str(meta.get("framework", "unknown")),
        batch=int(meta.get("batch", 1)),
        model_latency_ms=model_latency_ms,
        layers=layers,
        n_runs=1,
        metadata={"source": "trace", "trace_id": trace.trace_id},
    )


def profile_from_document(document: dict[str, Any]) -> ModelProfile:
    """A profile from an already-parsed JSON document (store or bare)."""
    # Imported here: cache imports pipeline; keep this module light to load.
    from repro.core.cache import profile_from_dict

    if "profile" in document and "schema_version" in document:
        return profile_from_dict(document["profile"])
    if "layers" in document and "model_name" in document:
        return profile_from_dict(document)
    raise ValueError(
        "JSON document is neither a profile-store entry, a bare profile, "
        "nor a trace"
    )


def load_profile_json(path: str) -> ModelProfile:
    """Load either a saved profile JSON or a saved trace JSON as a profile."""
    with open(path) as fh:
        text = fh.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err})") from err
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if "spans" in document and "format_version" in document:
        return profile_from_trace(trace_from_dict(document))
    try:
        return profile_from_document(document)
    except ValueError as err:
        raise ValueError(f"{path}: {err}") from err
