"""Differential-analysis data model: what changed between two profiles.

XSP's headline workflow is comparative — the paper's Tables VIII-X
profile the same models across systems and frameworks and explain *why*
one configuration beats another.  A :class:`ProfileDiff` is that
explanation in machine-checkable form: per-layer and per-kernel
:class:`Delta` records between an aligned *baseline* and *candidate*
profile, model-level rollups, and ranked :class:`DiffFinding`\\ s whose
:class:`~repro.insights.model.Evidence` resolves against **both** source
profiles (baseline references against the baseline, candidate references
against the candidate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.insights.model import Evidence, severity_label

#: Finding kinds a diff can classify (see repro.analysis.diff.engine).
FINDING_KINDS = (
    "regression",
    "improvement",
    "new-hotspot",
    "kernel-mix-shift",
)


def _json_number(value: float) -> float | None:
    """Strict-JSON form of a possibly-infinite measurement.

    ``json.dumps`` would emit the non-standard ``Infinity`` token (which
    jq / ``JSON.parse`` / most strict parsers reject), so unbounded
    ratios serialize as ``null`` — "no finite value" — instead.
    """
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class Delta:
    """One scalar measured on both sides of a diff."""

    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float:
        """candidate / baseline; 1.0 when both are zero, inf when only
        the baseline is."""
        if self.baseline == 0:
            return 1.0 if self.candidate == 0 else math.inf
        return self.candidate / self.baseline

    @property
    def pct_change(self) -> float:
        """Relative change in percent (+ = candidate larger)."""
        ratio = self.ratio
        return math.inf if math.isinf(ratio) else 100.0 * (ratio - 1.0)

    def to_dict(self) -> dict[str, float | None]:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "ratio": _json_number(self.ratio),
        }

    def format(self, unit: str = "", spec: str = ".3f") -> str:
        pct = self.pct_change
        arrow = "=" if self.delta == 0 else ("+" if self.delta > 0 else "-")
        pct_s = "inf%" if math.isinf(pct) else f"{abs(pct):.1f}%"
        return (
            f"{self.baseline:{spec}}{unit} -> {self.candidate:{spec}}{unit} "
            f"({arrow}{pct_s})"
        )


@dataclass(frozen=True)
class KernelDelta:
    """All same-named kernels of one aligned layer pair, side by side.

    Kernels are matched per-layer by name; counts can differ (algorithm
    switches change launch counts), so each side is the *aggregate* over
    its same-named group.  ``status`` is ``matched`` / ``added`` (only in
    the candidate) / ``removed`` (only in the baseline); the missing side
    of an added/removed kernel reads as zero.
    """

    name: str
    status: str
    count: Delta
    latency_ms: Delta
    flops: Delta
    dram_bytes: Delta
    occupancy: Delta  #: latency-weighted achieved occupancy

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "count": self.count.to_dict(),
            "latency_ms": self.latency_ms.to_dict(),
            "flops": self.flops.to_dict(),
            "dram_bytes": self.dram_bytes.to_dict(),
            "occupancy": self.occupancy.to_dict(),
        }


@dataclass(frozen=True)
class LayerDelta:
    """One aligned layer (or a layer present on only one side).

    ``status`` is ``matched`` / ``added`` / ``removed``; for matched
    layers ``via`` records the alignment rule that paired them
    (``name`` / ``type`` / ``index``).  Indices are per-side
    (``baseline_index`` resolves against the baseline profile,
    ``candidate_index`` against the candidate); the absent side of an
    added/removed layer is ``None`` and its metrics read as zero.
    """

    name: str
    layer_type: str
    status: str
    via: str | None
    baseline_index: int | None
    candidate_index: int | None
    latency_ms: Delta
    flops: Delta
    dram_bytes: Delta
    occupancy: Delta
    alloc_bytes: Delta
    kernels: tuple[KernelDelta, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "layer_type": self.layer_type,
            "status": self.status,
            "via": self.via,
            "baseline_index": self.baseline_index,
            "candidate_index": self.candidate_index,
            "latency_ms": self.latency_ms.to_dict(),
            "flops": self.flops.to_dict(),
            "dram_bytes": self.dram_bytes.to_dict(),
            "occupancy": self.occupancy.to_dict(),
            "alloc_bytes": self.alloc_bytes.to_dict(),
            "kernels": [k.to_dict() for k in self.kernels],
        }


@dataclass(frozen=True)
class DiffFinding:
    """One classified, ranked change between the two profiles.

    Severity reuses the insight engine's conventions (``ramp`` + the
    info/warning/critical bands); the evidence is split per side so every
    span id / layer index / kernel name resolves against the profile it
    was measured on.
    """

    kind: str  #: one of :data:`FINDING_KINDS`
    title: str
    severity: float  #: in [0, 1]
    recommendation: str
    baseline_evidence: tuple[Evidence, ...] = ()
    candidate_evidence: tuple[Evidence, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FINDING_KINDS:
            raise ValueError(
                f"unknown finding kind {self.kind!r}; valid: {FINDING_KINDS}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(
                f"severity must be in [0, 1], got {self.severity} "
                f"({self.kind!r})"
            )

    @property
    def severity_band(self) -> str:
        return severity_label(self.severity)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "title": self.title,
            "severity": self.severity,
            "severity_band": self.severity_band,
            "recommendation": self.recommendation,
            "baseline_evidence": [e.to_dict() for e in self.baseline_evidence],
            "candidate_evidence": [
                e.to_dict() for e in self.candidate_evidence
            ],
        }

    def render(self) -> str:
        lines = [
            f"[{self.severity_band.upper():>8} {self.severity:.2f}] "
            f"{self.title}  ({self.kind})",
            f"    -> {self.recommendation}",
        ]
        for side, evidence in (
            ("baseline", self.baseline_evidence),
            ("candidate", self.candidate_evidence),
        ):
            for ev in evidence:
                lines.append(f"    * {side}: {ev.summary}")
        return "\n".join(lines)


#: Model-level rollup metrics (name -> display unit/format) in render order.
ROLLUP_METRICS = (
    ("model_latency_ms", " ms", ".3f"),
    ("kernel_latency_ms", " ms", ".3f"),
    ("throughput", " /s", ".1f"),
    ("flops", "", ".3e"),
    ("dram_bytes", "", ".3e"),
    ("achieved_occupancy", "", ".3f"),
    ("alloc_bytes", "", ".3e"),
    ("n_kernels", "", ".0f"),
)


@dataclass
class ProfileDiff:
    """The aligned, classified difference between two profiles."""

    baseline: dict[str, Any]  #: identity of side A (model/system/...)
    candidate: dict[str, Any]  #: identity of side B
    totals: dict[str, Delta]  #: model-level rollups (see ROLLUP_METRICS)
    layers: list[LayerDelta] = field(default_factory=list)
    findings: list[DiffFinding] = field(default_factory=list)

    # -- headline numbers ---------------------------------------------------
    @property
    def latency(self) -> Delta:
        return self.totals["model_latency_ms"]

    @property
    def speedup(self) -> float:
        """baseline latency / candidate latency (> 1 = candidate faster)."""
        ratio = self.latency.ratio
        if ratio == 0:
            return math.inf
        return 0.0 if math.isinf(ratio) else 1.0 / ratio

    @property
    def regression_fraction(self) -> float:
        """Fractional model-latency slowdown of the candidate (>= 0).

        This is the number the CLI's ``--max-regression`` gate checks:
        0.25 means the candidate is 25% slower than the baseline.
        """
        ratio = self.latency.ratio
        return math.inf if math.isinf(ratio) else max(0.0, ratio - 1.0)

    # -- views ---------------------------------------------------------------
    def findings_above(self, min_severity: float) -> list[DiffFinding]:
        return [f for f in self.findings if f.severity >= min_severity]

    def layers_with_status(self, status: str) -> list[LayerDelta]:
        return [l for l in self.layers if l.status == status]

    def to_dict(self, *, min_severity: float = 0.0) -> dict[str, Any]:
        return {
            "baseline": dict(self.baseline),
            "candidate": dict(self.candidate),
            "speedup": _json_number(self.speedup),
            "regression_fraction": _json_number(self.regression_fraction),
            "totals": {k: d.to_dict() for k, d in self.totals.items()},
            "layers": [l.to_dict() for l in self.layers],
            "findings": [
                f.to_dict() for f in self.findings_above(min_severity)
            ],
        }

    def render(self, *, min_severity: float = 0.0, max_layers: int = 10) -> str:
        """Narrated text comparison (the CLI's default output)."""

        def _ident(side: dict[str, Any]) -> str:
            return (
                f"{side.get('model_name', '?')} | {side.get('framework', '?')}"
                f" | {side.get('system', '?')} | batch {side.get('batch', '?')}"
            )

        header = (
            f"XSP diff: {_ident(self.baseline)}  vs  {_ident(self.candidate)}"
        )
        lines = [header, "=" * len(header)]
        verb = "faster" if self.speedup >= 1.0 else "slower"
        factor = (
            self.speedup
            if self.speedup >= 1.0
            else (1.0 / self.speedup if self.speedup > 0 else math.inf)
        )
        lines.append(
            f"candidate is {factor:.2f}x {verb} "
            f"({self.latency.format(' ms')})"
        )
        lines.append("")
        lines.append("model-level rollups:")
        for metric, unit, spec in ROLLUP_METRICS:
            delta = self.totals.get(metric)
            if delta is not None:
                lines.append(f"  {metric:<20} {delta.format(unit, spec)}")
        added = self.layers_with_status("added")
        removed = self.layers_with_status("removed")
        if added or removed:
            lines.append(
                f"layer alignment: {len(self.layers_with_status('matched'))} "
                f"matched, {len(added)} only in candidate, "
                f"{len(removed)} only in baseline"
            )
        movers = sorted(
            (l for l in self.layers if l.latency_ms.delta != 0),
            key=lambda l: -abs(l.latency_ms.delta),
        )[:max_layers]
        if movers:
            lines.append("")
            lines.append(f"top layer movers (of {len(self.layers)} layers):")
            for layer in movers:
                lines.append(
                    f"  [{layer.status:<7}] {layer.name:<32} "
                    f"{layer.latency_ms.format(' ms')}"
                )
        shown = self.findings_above(min_severity)
        lines.append("")
        if shown:
            lines.append("findings:")
            lines.extend(f.render() for f in shown)
        else:
            lines.append("no findings at or above the requested severity")
        hidden = len(self.findings) - len(shown)
        if hidden:
            lines.append(f"... ({hidden} below severity {min_severity:.2f})")
        return "\n".join(lines)
