"""Across-stack differential analysis: what changed between two profiles.

XSP's comparisons (paper Tables VIII-X) put the same model on two
systems or frameworks and explain the gap.  This package automates that:

* :func:`diff_profiles` — align two
  :class:`~repro.core.pipeline.ModelProfile`\\ s (layers by
  index/name/type with tolerance for inserts and renames, kernels
  per-layer by name) into a :class:`ProfileDiff` of per-layer /
  per-kernel deltas, model-level rollups, and ranked
  :class:`DiffFinding`\\ s (regression / improvement / new-hotspot /
  kernel-mix-shift) whose evidence resolves against both sources.
* :func:`diff_campaigns` / :class:`CampaignDiff` — grid-vs-grid A/B
  (``CampaignResult.diff(other)``), including OOM-point set differences.
* :func:`load_profile_json` / :func:`profile_from_trace` — diff inputs
  from saved profile JSONs, store entries, or raw trace captures.
* the ``repro diff`` CLI wires all of it up, with a
  ``--max-regression`` exit-code gate for CI use.
"""

from repro.analysis.diff.align import (
    LayerAlignment,
    LayerMatch,
    align_layers,
    group_kernels,
)
from repro.analysis.diff.campaign import CampaignDiff, diff_campaigns
from repro.analysis.diff.engine import classify, diff_profiles
from repro.analysis.diff.model import (
    Delta,
    DiffFinding,
    KernelDelta,
    LayerDelta,
    ProfileDiff,
)
from repro.analysis.diff.sources import (
    load_profile_json,
    profile_from_document,
    profile_from_trace,
)

__all__ = [
    "CampaignDiff",
    "Delta",
    "DiffFinding",
    "KernelDelta",
    "LayerAlignment",
    "LayerDelta",
    "LayerMatch",
    "ProfileDiff",
    "align_layers",
    "classify",
    "diff_campaigns",
    "diff_profiles",
    "group_kernels",
    "load_profile_json",
    "profile_from_document",
    "profile_from_trace",
]
