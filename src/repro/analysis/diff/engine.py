"""The diff engine: align two profiles, measure deltas, classify findings.

:func:`diff_profiles` is the subsystem's entry point.  It aligns the two
layer sequences (:mod:`repro.analysis.diff.align`), emits per-layer and
per-kernel :class:`~repro.analysis.diff.model.Delta` records plus
model-level rollups, then classifies ranked
:class:`~repro.analysis.diff.model.DiffFinding`\\ s using the insight
engine's severity conventions (:func:`repro.insights.model.ramp`, the
info/warning/critical bands) and :class:`~repro.insights.model.Evidence`
records that resolve against both source profiles.

A self-diff is clean by construction: ``diff_profiles(p, p)`` measures
zero change everywhere, so every emitted finding scores severity 0 —
findings are *observational* (like insight rules) and ``--min-severity``
/ severity bands do the filtering.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.diff.align import (
    KernelGroup,
    LayerAlignment,
    align_layers,
    group_kernels,
)
from repro.analysis.diff.model import (
    Delta,
    DiffFinding,
    KernelDelta,
    LayerDelta,
    ProfileDiff,
)
from repro.core.pipeline import LayerProfile, ModelProfile
from repro.insights.model import Evidence, ramp

#: Fractional model-latency change at which a regression/improvement
#: starts to matter / saturates the severity ramp.
LATENCY_WARN_FRACTION = 0.05
LATENCY_SATURATION = 0.50

#: Candidate kernel-time share at which a kernel counts as a hotspot, and
#: the share *gain* that saturates the new-hotspot ramp.
NEW_HOTSPOT_SHARE = 0.10
NEW_HOTSPOT_SATURATION = 0.40
#: A hotspot is "new" when its candidate share at least doubled.
NEW_HOTSPOT_GROWTH = 2.0

#: Total-variation distance between kernel-time distributions at which
#: the mix shift warns / saturates.
MIX_WARN_DISTANCE = 0.10
MIX_SATURATION = 0.60

#: Layers / kernels quoted as evidence per finding.
TOP_CONTRIBUTORS = 3
#: Independent new-hotspot findings emitted at most.
MAX_HOTSPOT_FINDINGS = 3

_EMPTY = KernelGroup(
    name="", count=0, latency_ms=0.0, flops=0.0, dram_bytes=0.0, occupancy=0.0
)


def _identity(profile: ModelProfile) -> dict[str, object]:
    return {
        "model_name": profile.model_name,
        "system": profile.system,
        "framework": profile.framework,
        "batch": profile.batch,
        "n_runs": profile.n_runs,
        "model_latency_ms": profile.model_latency_ms,
    }


def _kernel_deltas(
    baseline: list, candidate: list
) -> tuple[KernelDelta, ...]:
    base = group_kernels(baseline)
    cand = group_kernels(candidate)
    deltas: list[KernelDelta] = []
    for name, b in base.items():
        c = cand.get(name, _EMPTY)
        deltas.append(_kernel_delta(name, b, c, "matched" if name in cand else "removed"))
    for name, c in cand.items():
        if name not in base:
            deltas.append(_kernel_delta(name, _EMPTY, c, "added"))
    return tuple(deltas)


def _kernel_delta(
    name: str, b: KernelGroup, c: KernelGroup, status: str
) -> KernelDelta:
    return KernelDelta(
        name=name,
        status=status,
        count=Delta(b.count, c.count),
        latency_ms=Delta(b.latency_ms, c.latency_ms),
        flops=Delta(b.flops, c.flops),
        dram_bytes=Delta(b.dram_bytes, c.dram_bytes),
        occupancy=Delta(b.occupancy, c.occupancy),
    )


def _layer_delta(
    baseline: LayerProfile | None,
    candidate: LayerProfile | None,
    *,
    via: str | None = None,
) -> LayerDelta:
    reference = candidate if candidate is not None else baseline
    assert reference is not None

    def metric(attr: str) -> Delta:
        return Delta(
            float(getattr(baseline, attr)) if baseline is not None else 0.0,
            float(getattr(candidate, attr)) if candidate is not None else 0.0,
        )

    if baseline is not None and candidate is not None:
        status = "matched"
    elif candidate is not None:
        status = "added"
    else:
        status = "removed"
    return LayerDelta(
        name=reference.name,
        layer_type=reference.layer_type,
        status=status,
        via=via,
        baseline_index=baseline.index if baseline is not None else None,
        candidate_index=candidate.index if candidate is not None else None,
        latency_ms=metric("latency_ms"),
        flops=metric("flops"),
        dram_bytes=metric("dram_bytes"),
        occupancy=metric("achieved_occupancy"),
        alloc_bytes=metric("alloc_bytes"),
        kernels=_kernel_deltas(
            baseline.kernels if baseline is not None else [],
            candidate.kernels if candidate is not None else [],
        ),
    )


def _totals(baseline: ModelProfile, candidate: ModelProfile) -> dict[str, Delta]:
    def metric(fn) -> Delta:
        return Delta(float(fn(baseline)), float(fn(candidate)))

    return {
        "model_latency_ms": metric(lambda p: p.model_latency_ms),
        "kernel_latency_ms": metric(lambda p: p.kernel_latency_ms),
        # Guard the degenerate zero-latency profile a malformed JSON or
        # empty trace can produce (ModelProfile.throughput divides by it).
        "throughput": metric(
            lambda p: p.throughput if p.model_latency_ms > 0 else 0.0
        ),
        "flops": metric(lambda p: p.flops),
        "dram_bytes": metric(lambda p: p.dram_bytes),
        "achieved_occupancy": metric(lambda p: p.achieved_occupancy),
        "alloc_bytes": metric(
            lambda p: sum(layer.alloc_bytes for layer in p.layers)
        ),
        "n_kernels": metric(lambda p: len(p.kernels)),
    }


# -- finding classification ---------------------------------------------------


def _model_evidence(profile: ModelProfile, threshold: dict) -> Evidence:
    throughput = (
        profile.throughput if profile.model_latency_ms > 0 else 0.0
    )
    return Evidence(
        kind="model",
        summary=(
            f"{profile.model_name} on {profile.system} "
            f"({profile.framework}, batch {profile.batch}): "
            f"{profile.model_latency_ms:.3f} ms, "
            f"{throughput:.1f} inputs/s"
        ),
        measured={
            "model_latency_ms": profile.model_latency_ms,
            "throughput": throughput,
        },
        threshold=threshold,
    )


def _layer_side_evidence(
    layer: LayerDelta, side: str
) -> Evidence | None:
    """Per-side layer evidence; None when the layer is absent on ``side``."""
    index = (
        layer.baseline_index if side == "baseline" else layer.candidate_index
    )
    if index is None:
        return None
    value = getattr(layer.latency_ms, side)
    return Evidence(
        kind="layer",
        summary=(
            f"layer {layer.name} ({layer.layer_type}): {value:.3f} ms "
            f"[{layer.latency_ms.format(' ms')}]"
        ),
        layer_indices=(index,),
        measured={
            "latency_ms": value,
            "latency_delta_ms": layer.latency_ms.delta,
        },
    )


def _latency_finding(
    baseline: ModelProfile,
    candidate: ModelProfile,
    layers: list[LayerDelta],
    totals: dict[str, Delta],
) -> DiffFinding:
    latency = totals["model_latency_ms"]
    regressed = latency.delta > 0
    fraction = (
        max(0.0, latency.ratio - 1.0)
        if regressed
        else max(0.0, 1.0 - latency.ratio)
    )
    severity = ramp(
        min(fraction, LATENCY_SATURATION),
        LATENCY_WARN_FRACTION / 2,
        LATENCY_SATURATION,
    )
    threshold = {"latency_change_fraction": LATENCY_WARN_FRACTION}
    base_ev = [_model_evidence(baseline, threshold)]
    cand_ev = [_model_evidence(candidate, threshold)]
    # The layers that moved the needle, in the finding's direction.
    sign = 1.0 if regressed else -1.0
    contributors = sorted(
        (l for l in layers if sign * l.latency_ms.delta > 0),
        key=lambda l: -sign * l.latency_ms.delta,
    )[:TOP_CONTRIBUTORS]
    for layer in contributors:
        for side, bucket in (("baseline", base_ev), ("candidate", cand_ev)):
            ev = _layer_side_evidence(layer, side)
            if ev is not None:
                bucket.append(ev)
    if regressed:
        kind = "regression"
        title = (
            f"candidate is {100 * fraction:.1f}% slower "
            f"({latency.format(' ms')})"
        )
        recommendation = (
            "the layers below contribute most of the slowdown; compare "
            "their kernel deltas to see whether the library picked a "
            "different algorithm or the layer itself grew"
        )
    else:
        kind = "improvement"
        title = (
            f"candidate is {100 * fraction:.1f}% faster "
            f"({latency.format(' ms')})"
        )
        recommendation = (
            "improvement — the layers below gained the most; their kernel "
            "deltas show where the time went"
        )
    return DiffFinding(
        kind=kind,
        title=title,
        severity=severity,
        recommendation=recommendation,
        baseline_evidence=tuple(base_ev),
        candidate_evidence=tuple(cand_ev),
    )


class _KernelView:
    """One side's kernel statistics, computed once per diff.

    ``ModelProfile.kernels`` walks every layer on each access, so the
    finding classifiers share this snapshot instead of re-deriving
    shares/name-sets per finding.
    """

    def __init__(self, profile: ModelProfile) -> None:
        self.kernels = profile.kernels
        self.total_ms = sum(k.latency_ms for k in self.kernels)
        shares: dict[str, float] = defaultdict(float)
        if self.total_ms > 0:
            for k in self.kernels:
                shares[k.name] += k.latency_ms / self.total_ms
        self.shares: dict[str, float] = dict(shares)
        self.names = frozenset(k.name for k in self.kernels)

    def layers_of(self, name: str) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for k in self.kernels:
            if k.name == name and k.layer_index not in seen:
                seen[k.layer_index] = None
                if len(seen) >= 10:
                    break
        return tuple(seen)


def _kernel_side_evidence(
    view: _KernelView, name: str, share: float, threshold: dict
) -> Evidence:
    if name in view.names:
        return Evidence(
            kind="kernel",
            summary=(
                f"{name}: {100 * share:.1f}% of GPU kernel time"
            ),
            kernel_names=(name,),
            layer_indices=view.layers_of(name),
            measured={"share": share},
            threshold=threshold,
        )
    return Evidence(
        kind="kernel",
        summary=f"{name}: not launched in this profile",
        measured={"share": 0.0},
        threshold=threshold,
    )


def _hotspot_findings(
    base_view: _KernelView, cand_view: _KernelView
) -> list[DiffFinding]:
    base_shares = base_view.shares
    cand_shares = cand_view.shares
    threshold = {
        "share": NEW_HOTSPOT_SHARE,
        "growth": NEW_HOTSPOT_GROWTH,
    }
    emerged = sorted(
        (
            (name, share)
            for name, share in cand_shares.items()
            if share >= NEW_HOTSPOT_SHARE
            and share >= NEW_HOTSPOT_GROWTH * base_shares.get(name, 0.0)
        ),
        key=lambda item: -(item[1] - base_shares.get(item[0], 0.0)),
    )[:MAX_HOTSPOT_FINDINGS]
    findings = []
    for name, share in emerged:
        base_share = base_shares.get(name, 0.0)
        findings.append(
            DiffFinding(
                kind="new-hotspot",
                title=(
                    f"kernel {name} emerged as a hotspot: "
                    f"{100 * base_share:.1f}% -> {100 * share:.1f}% of "
                    "GPU time"
                ),
                severity=ramp(
                    share - base_share,
                    NEW_HOTSPOT_SHARE / 2,
                    NEW_HOTSPOT_SATURATION,
                ),
                recommendation=(
                    "this kernel barely registered in the baseline; check "
                    "which layers now launch it (library algorithm switch, "
                    "shape change) before optimizing anything else"
                ),
                baseline_evidence=(
                    _kernel_side_evidence(
                        base_view, name, base_share, threshold
                    ),
                ),
                candidate_evidence=(
                    _kernel_side_evidence(cand_view, name, share, threshold),
                ),
            )
        )
    return findings


def _mix_shift_finding(
    base_view: _KernelView, cand_view: _KernelView
) -> DiffFinding | None:
    base_shares = base_view.shares
    cand_shares = cand_view.shares
    if not base_shares and not cand_shares:
        return None
    names = set(base_shares) | set(cand_shares)
    distance = 0.5 * sum(
        abs(base_shares.get(n, 0.0) - cand_shares.get(n, 0.0)) for n in names
    )
    threshold = {"mix_distance": MIX_WARN_DISTANCE}
    movers = sorted(
        names,
        key=lambda n: -abs(base_shares.get(n, 0.0) - cand_shares.get(n, 0.0)),
    )[:TOP_CONTRIBUTORS]
    base_ev = [
        Evidence(
            kind="kernel_mix",
            summary=(
                f"{len(base_shares)} kernel names over "
                f"{base_view.total_ms:.3f} ms of GPU time"
            ),
            measured={"mix_distance": distance},
            threshold=threshold,
        )
    ]
    cand_ev = [
        Evidence(
            kind="kernel_mix",
            summary=(
                f"{len(cand_shares)} kernel names over "
                f"{cand_view.total_ms:.3f} ms of GPU time"
            ),
            measured={"mix_distance": distance},
            threshold=threshold,
        )
    ]
    for name in movers:
        b, c = base_shares.get(name, 0.0), cand_shares.get(name, 0.0)
        if name in base_shares:
            base_ev.append(
                _kernel_side_evidence(base_view, name, b, threshold)
            )
        if name in cand_shares:
            cand_ev.append(
                _kernel_side_evidence(cand_view, name, c, threshold)
            )
    return DiffFinding(
        kind="kernel-mix-shift",
        title=(
            f"kernel-time distribution moved {100 * distance:.1f}% "
            "(total-variation distance) between the two profiles"
        ),
        severity=ramp(distance, MIX_WARN_DISTANCE / 2, MIX_SATURATION),
        recommendation=(
            "a large mix shift means the two configurations run different "
            "code, not just different speeds — attribute the diff per "
            "kernel before crediting the hardware or framework"
        ),
        baseline_evidence=tuple(base_ev),
        candidate_evidence=tuple(cand_ev),
    )


def classify(
    baseline: ModelProfile,
    candidate: ModelProfile,
    layers: list[LayerDelta],
    totals: dict[str, Delta],
) -> list[DiffFinding]:
    """Ranked findings for an aligned profile pair."""
    base_view = _KernelView(baseline)
    cand_view = _KernelView(candidate)
    findings = [_latency_finding(baseline, candidate, layers, totals)]
    findings.extend(_hotspot_findings(base_view, cand_view))
    mix = _mix_shift_finding(base_view, cand_view)
    if mix is not None:
        findings.append(mix)
    findings.sort(key=lambda f: -f.severity)
    return findings


def diff_profiles(
    baseline: ModelProfile, candidate: ModelProfile
) -> ProfileDiff:
    """Align ``baseline`` and ``candidate`` and explain what changed."""
    alignment: LayerAlignment = align_layers(baseline.layers, candidate.layers)
    layers: list[LayerDelta] = [
        _layer_delta(m.baseline, m.candidate, via=m.via)
        for m in alignment.matched
    ]
    layers.extend(_layer_delta(l, None) for l in alignment.removed)
    layers.extend(_layer_delta(None, l) for l in alignment.added)
    totals = _totals(baseline, candidate)
    return ProfileDiff(
        baseline=_identity(baseline),
        candidate=_identity(candidate),
        totals=totals,
        layers=layers,
        findings=classify(baseline, candidate, layers, totals),
    )
