"""Layer and kernel alignment between two profiles.

Two profiles of the *same* model usually have identical layer sequences,
but the comparisons XSP cares about break that: a different framework
names (and sometimes fuses) layers differently, a model revision inserts
or removes blocks, a cuDNN heuristic switch changes the kernel mix under
an unchanged layer.  Alignment therefore works like a sequence diff:

1. layers are compared as a (name, type) sequence with
   :class:`difflib.SequenceMatcher`; ``equal`` runs pair directly
   (``via="name"``),
2. inside a replaced run, layers are paired positionally and accepted
   when the *name* matches (reordered), else the *type* matches
   (renamed layer), else the original *index* matches (retyped layer) —
   the index/name/type tolerance ladder,
3. anything left is reported as ``removed`` (baseline-only) or
   ``added`` (candidate-only) rather than force-matched.

Kernels are matched *within* an aligned layer pair by kernel name; same
-named launches aggregate per side so algorithm switches that change
launch counts still line up.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from repro.core.pipeline import KernelProfile, LayerProfile


@dataclass(frozen=True)
class LayerMatch:
    """One baseline layer paired with one candidate layer."""

    baseline: LayerProfile
    candidate: LayerProfile
    via: str  #: "name" | "type" | "index"


@dataclass
class LayerAlignment:
    """The full pairing of two layer sequences."""

    matched: list[LayerMatch]
    removed: list[LayerProfile]  #: baseline-only
    added: list[LayerProfile]  #: candidate-only

    @property
    def n_layers(self) -> int:
        return len(self.matched) + len(self.removed) + len(self.added)


def _signature(layer: LayerProfile) -> tuple[str, str]:
    return (layer.name, layer.layer_type)


def _pair_replaced(
    base: list[LayerProfile],
    cand: list[LayerProfile],
    alignment: LayerAlignment,
) -> None:
    """Pair a replaced run positionally via the name/type/index ladder."""
    for offset in range(max(len(base), len(cand))):
        if offset >= len(base):
            alignment.added.append(cand[offset])
            continue
        if offset >= len(cand):
            alignment.removed.append(base[offset])
            continue
        b, c = base[offset], cand[offset]
        if b.name == c.name:
            via = "name"
        elif b.layer_type == c.layer_type:
            via = "type"
        elif b.index == c.index:
            via = "index"
        else:
            alignment.removed.append(b)
            alignment.added.append(c)
            continue
        alignment.matched.append(LayerMatch(b, c, via))


def align_layers(
    baseline: list[LayerProfile], candidate: list[LayerProfile]
) -> LayerAlignment:
    """Pair the two layer sequences, tolerating inserts and renames."""
    alignment = LayerAlignment(matched=[], removed=[], added=[])
    matcher = SequenceMatcher(
        a=[_signature(l) for l in baseline],
        b=[_signature(l) for l in candidate],
        autojunk=False,
    )
    for op, b_lo, b_hi, c_lo, c_hi in matcher.get_opcodes():
        if op == "equal":
            alignment.matched.extend(
                LayerMatch(b, c, "name")
                for b, c in zip(baseline[b_lo:b_hi], candidate[c_lo:c_hi])
            )
        elif op == "replace":
            _pair_replaced(
                baseline[b_lo:b_hi], candidate[c_lo:c_hi], alignment
            )
        elif op == "delete":
            alignment.removed.extend(baseline[b_lo:b_hi])
        else:  # insert
            alignment.added.extend(candidate[c_lo:c_hi])
    return alignment


@dataclass(frozen=True)
class KernelGroup:
    """Aggregate view of all same-named kernel launches in one layer."""

    name: str
    count: int
    latency_ms: float
    flops: float
    dram_bytes: float
    occupancy: float  #: latency-weighted achieved occupancy

    @classmethod
    def of(cls, name: str, kernels: list[KernelProfile]) -> "KernelGroup":
        latency = sum(k.latency_ms for k in kernels)
        occupancy = (
            sum(k.achieved_occupancy * k.latency_ms for k in kernels) / latency
            if latency > 0
            else 0.0
        )
        return cls(
            name=name,
            count=len(kernels),
            latency_ms=latency,
            flops=sum(k.flops for k in kernels),
            dram_bytes=sum(k.dram_bytes for k in kernels),
            occupancy=occupancy,
        )


def group_kernels(kernels: list[KernelProfile]) -> dict[str, KernelGroup]:
    """Kernels aggregated by name, in first-seen order."""
    buckets: dict[str, list[KernelProfile]] = {}
    for k in kernels:
        buckets.setdefault(k.name, []).append(k)
    return {name: KernelGroup.of(name, ks) for name, ks in buckets.items()}
