"""Grid-vs-grid differential analysis: ``CampaignResult.diff(other)``.

A campaign grid profiled twice — under a different framework, system,
or code revision — is an A/B experiment per point.  This module aligns
the two grids point-by-point, diffs every matched pair with
:func:`~repro.analysis.diff.engine.diff_profiles`, and summarizes the
distribution of speedups plus the OOM-point *set differences* (a
configuration that fits on one side but not the other is itself a
finding).

Point matching drops the grid's comparison axis automatically: a field
(model / system / framework / batch) that is constant within each grid
but differs *between* them (e.g. every point TF on one side, MXNet on
the other) is excluded from the match key and reported as the diff axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analysis.diff.engine import diff_profiles
from repro.analysis.diff.model import ProfileDiff, _json_number
from repro.core.pipeline import ModelProfile

#: Point fields considered for matching, in label order.
KEY_FIELDS = ("model", "system", "framework", "batch")


def _point_key(point: Any) -> dict[str, Any]:
    """The full coordinate dict of a CampaignPoint-like object."""
    from repro.models import get_model

    return {
        "model": get_model(point.model).name,
        "system": point.system,
        "framework": point.framework,
        "batch": point.batch,
    }


def _match_fields(
    base_keys: list[dict[str, Any]], cand_keys: list[dict[str, Any]]
) -> tuple[tuple[str, ...], dict[str, tuple[Any, Any]]]:
    """Fields to match on, plus the dropped (axis) fields' two values.

    A field is dropped from the match key iff it is constant within each
    grid but the two constants differ — that field *is* the comparison.
    """
    fields: list[str] = []
    axis: dict[str, tuple[Any, Any]] = {}
    for name in KEY_FIELDS:
        base_values = {k[name] for k in base_keys}
        cand_values = {k[name] for k in cand_keys}
        if (
            len(base_values) == 1
            and len(cand_values) == 1
            and base_values != cand_values
        ):
            axis[name] = (next(iter(base_values)), next(iter(cand_values)))
        else:
            fields.append(name)
    return tuple(fields), axis


def _reduced(key: dict[str, Any], fields: tuple[str, ...]) -> tuple:
    return tuple(key[f] for f in fields)


def _label(reduced: tuple, fields: tuple[str, ...]) -> str:
    return "|".join(f"{f}={v}" for f, v in zip(fields, reduced)) or "(all)"


@dataclass
class CampaignDiff:
    """Every matched point diffed, plus grid-level set differences."""

    #: Comparison axis: field -> (baseline value, candidate value).
    axis: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    #: Matched-point diffs keyed by the reduced point label.
    diffs: dict[str, ProfileDiff] = field(default_factory=dict)
    #: Points profiled on only one side (no counterpart to diff against).
    only_in_baseline: tuple[str, ...] = ()
    only_in_candidate: tuple[str, ...] = ()
    #: OOM set differences: configurations that fit on exactly one side.
    newly_oom: tuple[str, ...] = ()  #: OOM in candidate, fine in baseline
    resolved_oom: tuple[str, ...] = ()  #: OOM in baseline, fine in candidate
    oom_in_both: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.diffs)

    # -- aggregates -----------------------------------------------------------
    @property
    def mean_speedup(self) -> float:
        if not self.diffs:
            return 1.0
        speedups = [d.speedup for d in self.diffs.values()]
        return sum(speedups) / len(speedups)

    @property
    def max_regression_fraction(self) -> float:
        return max(
            (d.regression_fraction for d in self.diffs.values()), default=0.0
        )

    def regressed(self, *, beyond: float = 0.0) -> dict[str, ProfileDiff]:
        """Matched points whose candidate regressed more than ``beyond``."""
        return {
            label: d
            for label, d in self.diffs.items()
            if d.regression_fraction > beyond
        }

    def improved(self, *, beyond: float = 0.0) -> dict[str, ProfileDiff]:
        return {
            label: d
            for label, d in self.diffs.items()
            if d.speedup > 1.0 + beyond
        }

    def to_dict(self, *, min_severity: float = 0.0) -> dict[str, Any]:
        return {
            "axis": {k: list(v) for k, v in self.axis.items()},
            "mean_speedup": _json_number(self.mean_speedup),
            "max_regression_fraction": _json_number(
                self.max_regression_fraction
            ),
            "points": {
                label: d.to_dict(min_severity=min_severity)
                for label, d in self.diffs.items()
            },
            "only_in_baseline": list(self.only_in_baseline),
            "only_in_candidate": list(self.only_in_candidate),
            "newly_oom": list(self.newly_oom),
            "resolved_oom": list(self.resolved_oom),
            "oom_in_both": list(self.oom_in_both),
        }

    def render(self) -> str:
        if self.axis:
            axis = ", ".join(
                f"{name}: {a} -> {b}" for name, (a, b) in self.axis.items()
            )
        else:
            axis = "same coordinates (re-run vs re-run)"
        title = f"Campaign diff ({axis}): {len(self.diffs)} matched points"
        lines = [title, "=" * len(title)]
        if self.diffs:
            lines.append(
                f"mean speedup {self.mean_speedup:.2f}x; worst regression "
                f"{100 * self.max_regression_fraction:.1f}%"
            )
            ranked = sorted(
                self.diffs.items(), key=lambda item: item[1].speedup
            )
            for label, diff in ranked:
                verdict = (
                    "faster" if diff.speedup >= 1.0 else "SLOWER"
                )
                lines.append(
                    f"  {label:<48} {diff.speedup:>6.2f}x {verdict:<6} "
                    f"({diff.latency.format(' ms')})"
                )
        for caption, labels in (
            ("matched in baseline only", self.only_in_baseline),
            ("matched in candidate only", self.only_in_candidate),
            ("newly OOM in candidate", self.newly_oom),
            ("OOM resolved in candidate", self.resolved_oom),
            ("OOM on both sides", self.oom_in_both),
        ):
            if labels:
                lines.append(f"{caption}: {', '.join(labels)}")
        return "\n".join(lines)


def diff_campaigns(
    baseline_profiles: Mapping[Any, ModelProfile],
    candidate_profiles: Mapping[Any, ModelProfile],
    *,
    baseline_oom: Iterable[Any] = (),
    candidate_oom: Iterable[Any] = (),
) -> CampaignDiff:
    """Align two campaign grids and diff every matched point.

    Inputs are keyed by CampaignPoint-like objects (``model`` /
    ``system`` / ``framework`` / ``batch`` attributes) — exactly the
    shape of ``CampaignResult.profiles`` and ``.out_of_memory``.
    """
    base_points = list(baseline_profiles) + list(baseline_oom)
    cand_points = list(candidate_profiles) + list(candidate_oom)
    if not base_points or not cand_points:
        raise ValueError("diff_campaigns needs points on both sides")
    base_keys = [_point_key(p) for p in base_points]
    cand_keys = [_point_key(p) for p in cand_points]
    fields, axis = _match_fields(base_keys, cand_keys)

    def index(
        points: Iterable[Any], profiles: Mapping[Any, ModelProfile]
    ) -> dict[tuple, ModelProfile | None]:
        out: dict[tuple, ModelProfile | None] = {}
        for point in points:
            out[_reduced(_point_key(point), fields)] = profiles.get(point)
        return out

    base = index(base_points, baseline_profiles)
    cand = index(cand_points, candidate_profiles)

    result = CampaignDiff(axis=axis)
    diffs: dict[str, ProfileDiff] = {}
    only_base, only_cand = [], []
    newly_oom, resolved_oom, oom_both = [], [], []
    for reduced in sorted(set(base) | set(cand), key=str):
        label = _label(reduced, fields)
        in_base, in_cand = reduced in base, reduced in cand
        b = base.get(reduced)
        c = cand.get(reduced)
        if in_base and in_cand:
            if b is not None and c is not None:
                diffs[label] = diff_profiles(b, c)
            elif b is not None and c is None:
                newly_oom.append(label)
            elif b is None and c is not None:
                resolved_oom.append(label)
            else:
                oom_both.append(label)
        elif in_base:
            only_base.append(label)
        else:
            only_cand.append(label)
    result.diffs = diffs
    result.only_in_baseline = tuple(only_base)
    result.only_in_candidate = tuple(only_cand)
    result.newly_oom = tuple(newly_oom)
    result.resolved_oom = tuple(resolved_oom)
    result.oom_in_both = tuple(oom_both)
    return result
