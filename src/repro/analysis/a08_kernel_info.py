"""A8 — GPU kernel information table (paper Table III).

Every kernel invocation with its layer correlation, latency, flops, DRAM
reads/writes, achieved occupancy, arithmetic intensity/throughput, and
memory-boundedness.
"""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def kernel_information_table(profile: ModelProfile) -> Table:
    gpu = profile.gpu
    table = Table(
        title=f"A8 GPU kernel information: {profile.model_name} "
        f"(batch {profile.batch}) on {profile.system}",
        columns=[
            Column("name", "Kernel Name", align="<"),
            Column("layer_index", "Layer Index", "d"),
            Column("latency_ms", "Kernel Latency (ms)", ".2f"),
            Column("gflops", "Kernel Gflops", ".2f"),
            Column("dram_read_mb", "DRAM Reads (MB)", ".2f"),
            Column("dram_write_mb", "DRAM Writes (MB)", ".2f"),
            Column("occupancy_pct", "Achieved Occupancy (%)", ".2f"),
            Column("arithmetic_intensity", "Arithmetic Intensity", ".2f"),
            Column("throughput_tflops", "Throughput (Tflops/s)", ".2f"),
            Column("memory_bound", "Memory Bound?"),
        ],
    )
    for kernel in profile.kernels:
        table.add(
            name=kernel.name,
            layer_index=kernel.layer_index,
            latency_ms=kernel.latency_ms,
            gflops=kernel.flops / 1e9,
            dram_read_mb=kernel.dram_read_bytes / 1e6,
            dram_write_mb=kernel.dram_write_bytes / 1e6,
            occupancy_pct=100.0 * kernel.achieved_occupancy,
            arithmetic_intensity=kernel.arithmetic_intensity,
            throughput_tflops=kernel.arithmetic_throughput_tflops,
            memory_bound=kernel.memory_bound(gpu),
        )
    return table


def top_kernels(profile: ModelProfile, n: int = 5) -> Table:
    """The paper's Table III: top-N most time-consuming kernel calls."""
    return (
        kernel_information_table(profile)
        .sorted_by("latency_ms", reverse=True)
        .head(n)
    )
