"""Lightweight typed tables for analysis output.

Every analysis renders to a :class:`Table`: ordered columns with format
specs, dict rows, text rendering for reports/benchmarks, and sorting
helpers.  Deliberately dependency-free (no pandas)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


@dataclass(frozen=True)
class Column:
    """One table column."""

    key: str
    header: str
    fmt: str = ""  # format spec applied to the value ("", ".2f", ",")
    align: str = ">"  # alignment in text rendering

    def format(self, value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if self.fmt:
            try:
                return format(value, self.fmt)
            except (TypeError, ValueError):
                return str(value)
        return str(value)


@dataclass
class Table:
    """An ordered collection of dict rows with typed columns."""

    title: str
    columns: Sequence[Column]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def extend(self, rows: Iterable[dict[str, Any]]) -> None:
        self.rows.extend(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, key: str) -> list[Any]:
        return [row.get(key) for row in self.rows]

    def sorted_by(
        self, key: str | Callable[[dict[str, Any]], Any], reverse: bool = False
    ) -> "Table":
        if callable(key):
            keyfn = key
        else:
            # None-safe: missing values sort last regardless of direction.
            def keyfn(row: dict[str, Any]):
                value = row.get(key)
                missing = value is None
                return (missing != reverse, value if not missing else 0)
        return Table(
            title=self.title,
            columns=self.columns,
            rows=sorted(self.rows, key=keyfn, reverse=reverse),
        )

    def head(self, n: int) -> "Table":
        return Table(title=self.title, columns=self.columns, rows=self.rows[:n])

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        return Table(
            title=self.title,
            columns=self.columns,
            rows=[r for r in self.rows if predicate(r)],
        )

    def render(self, max_rows: int | None = None) -> str:
        """Plain-text rendering with a title rule and aligned columns."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[c.format(row.get(c.key)) for c in self.columns] for row in rows]
        headers = [c.header for c in self.columns]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(
                    format(cell, f"{self.columns[i].align}{widths[i]}")
                    for i, cell in enumerate(row)
                )
            )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(r) for r in self.rows]
