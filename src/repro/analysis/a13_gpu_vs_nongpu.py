"""A13 — GPU vs non-GPU latency per layer (paper Fig. 8).

"Subtracting a layer's total GPU kernel latency from its overall latency
computes the time not spent performing GPU computation" — framework
overhead, stalls, synchronization.
"""

from __future__ import annotations

from repro.analysis.tables import Column, Table
from repro.core.pipeline import ModelProfile


def gpu_vs_nongpu_series(
    profile: ModelProfile,
) -> list[tuple[int, float, float]]:
    """(layer index, normalized GPU share, normalized non-GPU share)."""
    out = []
    for layer in profile.layers:
        if layer.latency_ms <= 0:
            out.append((layer.index, 0.0, 0.0))
            continue
        gpu_share = min(1.0, layer.kernel_latency_ms / layer.latency_ms)
        out.append((layer.index, gpu_share, 1.0 - gpu_share))
    return out


def gpu_vs_nongpu_table(profile: ModelProfile) -> Table:
    table = Table(
        title=f"A13 GPU vs non-GPU latency: {profile.model_name}",
        columns=[
            Column("index", "Layer Index", "d"),
            Column("latency_ms", "Layer Latency (ms)", ".3f"),
            Column("gpu_ms", "GPU (ms)", ".3f"),
            Column("non_gpu_ms", "Non-GPU (ms)", ".3f"),
            Column("gpu_pct", "GPU (%)", ".1f"),
        ],
    )
    for layer in profile.layers:
        gpu_ms = layer.kernel_latency_ms
        table.add(
            index=layer.index,
            latency_ms=layer.latency_ms,
            gpu_ms=gpu_ms,
            non_gpu_ms=layer.non_gpu_latency_ms,
            gpu_pct=100.0 * gpu_ms / layer.latency_ms if layer.latency_ms else 0.0,
        )
    return table


def model_non_gpu_latency_ms(profile: ModelProfile) -> float:
    """Total model time not attributable to GPU kernels."""
    return max(0.0, profile.model_latency_ms - profile.kernel_latency_ms)
