"""Full per-model text report combining all 15 analyses.

One call -> the across-stack characterization the paper walks through in
Sec. III-D for MLPerf_ResNet50_v1.5: model info, layer tables and
aggregations, kernel tables, rooflines, GPU-vs-non-GPU split, and the
model-level aggregate.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import (
    bound_counts,
    convolution_latency_percentage,
    gpu_vs_nongpu_series,
    kernel_by_name_table,
    latency_by_type,
    latency_stage,
    layer_type_distribution,
    memory_by_type,
    memory_stage,
    model_aggregate_table,
    model_information_table,
    top_kernels,
    top_layers,
    top_layers_by_kernels,
)
from repro.core.pipeline import ModelProfile


def full_report(
    profile: ModelProfile,
    sweep: Mapping[int, ModelProfile] | None = None,
    *,
    top_n: int = 5,
) -> str:
    """Render the complete analysis suite for one profiled model."""
    sections: list[str] = []
    header = (
        f"XSP across-stack report: {profile.model_name} | system "
        f"{profile.system} | framework {profile.framework} | batch "
        f"{profile.batch} | runs {profile.n_runs}"
    )
    sections.append(header)
    sections.append("#" * len(header))

    sections.append(
        f"model latency {profile.model_latency_ms:.2f} ms | throughput "
        f"{profile.throughput:.1f} inputs/s | GPU latency "
        f"{profile.gpu_latency_percentage:.1f}% | conv latency "
        f"{convolution_latency_percentage(profile):.1f}% | "
        f"{'memory' if profile.memory_bound else 'compute'}-bound"
    )
    if profile.overheads:
        overhead = " | ".join(
            f"{label}: +{ms:.2f} ms" for label, ms in profile.overheads.items()
        )
        sections.append(f"profiling overhead per level ({overhead})")

    if sweep:
        latencies = {b: p.model_latency_ms for b, p in sweep.items()}
        sections.append(
            model_information_table(
                latencies, model_name=profile.model_name, system=profile.system
            ).render()
        )

    sections.append(top_layers(profile, top_n).render())
    sections.append(layer_type_distribution(profile).render(max_rows=10))
    sections.append(latency_by_type(profile).render(max_rows=10))
    sections.append(memory_by_type(profile).render(max_rows=10))
    sections.append(
        f"A3/A4 dominant stages: latency={latency_stage(profile)} "
        f"memory={memory_stage(profile)}"
    )
    sections.append(top_kernels(profile, top_n).render())
    sections.append(kernel_by_name_table(profile).head(top_n).render())
    sections.append(top_layers_by_kernels(profile, top_n).render())

    counts = bound_counts(profile)
    sections.append(
        f"A9 kernel roofline: {counts['compute-bound']} compute-bound, "
        f"{counts['memory-bound']} memory-bound kernels "
        f"(ideal AI {profile.gpu.ideal_arithmetic_intensity:.2f} flops/byte)"
    )
    try:
        from repro.analysis.plots import ascii_roofline
        from repro.analysis import kernel_roofline

        sections.append(ascii_roofline(kernel_roofline(profile), profile.gpu))
    except ValueError:
        pass  # nothing plottable (e.g. zero-traffic kernels only)

    series = gpu_vs_nongpu_series(profile)
    mean_gpu = sum(s[1] for s in series) / len(series) if series else 0.0
    sections.append(
        f"A13 mean per-layer GPU share {100 * mean_gpu:.1f}% "
        f"(model-level GPU share {profile.gpu_latency_percentage:.1f}%)"
    )

    if sweep:
        sections.append(
            model_aggregate_table(
                sweep, model_name=profile.model_name, system=profile.system
            ).render()
        )

    return "\n\n".join(sections)
