"""Centralized calibration constants for the kernel latency model.

Every "magic number" in the simulated substrate lives here, next to the
paper observation it is calibrated against.  The constants are *not* fitted
to match the paper's absolute numbers exactly (our substrate is a simulator,
not the authors' testbed); they are chosen so the qualitative shapes hold:

* big conv kernels on V100 reach ~80% of peak FLOPS (Table III reports
  12.8-13.0 Tflops/s of 15.7 peak),
* Eigen element-wise kernels run at ~40% of peak DRAM bandwidth
  (Table IV: ~10 GB over ~28 ms on a 900 GB/s part),
* achieved occupancy sits near 13-23% for conv kernels, ~50% for
  element-wise multiplies/adds and ~98% for ReLU max kernels (Tables III/IV),
* model-level occupancy rises with batch size toward the optimum
  (Table VI: 22.6% at batch 1 -> ~44% at batch 128),
* small batches underutilize the GPU so throughput saturates near each
  model's optimal batch size (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

#: No kernel sustains more than this fraction of theoretical peak FLOPS —
#: the paper's best-performing kernels top out at ~12.8 of 15.7 TFLOPS
#: (Table III).  Caps giant-grid convolutions (VGG-style) that would
#: otherwise saturate the utilization model.
MAX_COMPUTE_EFFICIENCY = 0.88


@dataclass(frozen=True)
class ClassCalibration:
    """Latency-model constants for one kernel class.

    ``eff_compute``     peak fraction of theoretical FLOPS at full utilization
    ``eff_memory``      peak fraction of theoretical DRAM bandwidth
    ``occ_cap``         achieved-occupancy ceiling for the class
    ``waves_half``      CTA waves at which utilization reaches 50% of its cap
                        (smaller = saturates the GPU at smaller problem sizes);
                        a "wave" is one full complement of concurrently
                        resident CTAs given the class's occupancy ceiling
    ``util_floor``      utilization floor — even a tiny grid keeps its few
                        SMs running at reasonable per-SM efficiency
    ``fixed_ns``        fixed per-kernel cost (launch tail, setup)
    ``memory_overlap``  fraction of DRAM time hidden behind compute.
                        cuDNN GEMM-style kernels software-pipeline their
                        loads, so their runtime tracks flops even when
                        their arithmetic intensity dips (Table III shows
                        conv kernels at ~12.8 Tflops/s across AI 200-900);
                        element-wise kernels hide nothing.
    """

    eff_compute: float
    eff_memory: float
    occ_cap: float
    waves_half: float
    util_floor: float
    fixed_ns: float
    memory_overlap: float = 0.0


# Keyed by KernelClass.value to avoid an import cycle with kernels.py.
CLASS_CALIBRATION: dict[str, ClassCalibration] = {
    # cuDNN implicit GEMM (batch < 16 heuristic choice). Moderate efficiency,
    # very low DRAM traffic (no precomputed-index reads) -> high AI.
    "conv_implicit_gemm": ClassCalibration(
        eff_compute=0.62, eff_memory=0.60, occ_cap=0.22,
        waves_half=0.50, util_floor=0.10, fixed_ns=3500, memory_overlap=1.0,
    ),
    # cuDNN implicit precomp GEMM ({arch}_scudnn_128x*_relu_interior_nn_v1).
    # Table III: ~12.8 Tflops/s on V100 at batch 256 (~2.7-wave grids);
    # the saturation knee matches Table VI's latency curve (the paper's
    # own data gives a 3.9% throughput gain from batch 128 to 256, so the
    # stated 5%-doubling rule lands on 128; see EXPERIMENTS.md).
    "conv_precomp_gemm": ClassCalibration(
        eff_compute=0.99, eff_memory=0.62, occ_cap=0.23,
        waves_half=1.80, util_floor=0.10, fixed_ns=3500, memory_overlap=1.0,
    ),
    # volta_cgemm_32x32_tn: complex GEMM used for transformed convolutions.
    # Table III: 12.8 Tflops/s, occupancy ~12%.
    "conv_cgemm": ClassCalibration(
        eff_compute=0.82, eff_memory=0.55, occ_cap=0.125,
        waves_half=0.35, util_floor=0.10, fixed_ns=4500, memory_overlap=1.0,
    ),
    # Depthwise convolutions (MobileNet): memory-bound, modest efficiency.
    "conv_depthwise": ClassCalibration(
        eff_compute=0.25, eff_memory=0.55, occ_cap=0.46,
        waves_half=0.30, util_floor=0.08, fixed_ns=3000,
    ),
    # Dense/cuBLAS GEMM (fully-connected layers).
    "gemm": ClassCalibration(
        eff_compute=0.75, eff_memory=0.60, occ_cap=0.30,
        waves_half=0.40, util_floor=0.08, fixed_ns=3200, memory_overlap=1.0,
    ),
    # Eigen element-wise kernels (TensorFlow path). Table IV: ~0.25-0.26
    # flops/byte, ~0.10 Tflops/s, ~370-380 GB/s effective on V100.
    "elementwise_eigen": ClassCalibration(
        eff_compute=0.10, eff_memory=0.42, occ_cap=0.50,
        waves_half=0.25, util_floor=0.06, fixed_ns=2200,
    ),
    # ReLU-style max kernels: Table IV reports 98.4% occupancy.
    "elementwise_max": ClassCalibration(
        eff_compute=0.10, eff_memory=0.42, occ_cap=0.985,
        waves_half=0.25, util_floor=0.06, fixed_ns=2200,
    ),
    # mshadow element-wise kernels (MXNet path): comparable effective
    # bandwidth to Eigen on large tensors (the paper finds TF and MXNet
    # ResNet GPU latencies "about the same"); higher occupancy.
    "elementwise_mshadow": ClassCalibration(
        eff_compute=0.12, eff_memory=0.52, occ_cap=0.62,
        waves_half=0.25, util_floor=0.06, fixed_ns=2200,
    ),
    # Fused batch-norm inference kernels (MXNet path): one kernel doing
    # the work of TF's Mul + Add pair, at similar total traffic.
    "batchnorm_fused": ClassCalibration(
        eff_compute=0.15, eff_memory=0.52, occ_cap=0.60,
        waves_half=0.28, util_floor=0.06, fixed_ns=2600,
    ),
    # Pooling kernels.
    "pool": ClassCalibration(
        eff_compute=0.15, eff_memory=0.50, occ_cap=0.50,
        waves_half=0.30, util_floor=0.06, fixed_ns=2600,
    ),
    # Softmax / reductions.
    "reduction": ClassCalibration(
        eff_compute=0.12, eff_memory=0.45, occ_cap=0.40,
        waves_half=0.30, util_floor=0.05, fixed_ns=2800,
    ),
    # Data-movement kernels (transpose, shuffle, concat, pad, offset comp).
    "memory_movement": ClassCalibration(
        eff_compute=0.05, eff_memory=0.50, occ_cap=0.45,
        waves_half=0.25, util_floor=0.05, fixed_ns=2000,
    ),
    # `Where`-style host-interactive tensor reshaping (object detection
    # models). Heavily serialized, tiny GPU work per call (Sec. IV-A).
    "where_op": ClassCalibration(
        eff_compute=0.02, eff_memory=0.20, occ_cap=0.25,
        waves_half=1.0, util_floor=0.02, fixed_ns=5000,
    ),
}


@dataclass(frozen=True)
class HostCalibration:
    """Host-side (non-GPU) cost model for a framework.

    Layer latency = kernel time (the layer synchronizes with its stream)
    plus host overhead; paper Fig. 8 calls the difference "non-GPU latency".

    ``layer_fixed_us``       per-layer scheduling/dispatch cost
    ``layer_per_mb_us``      per-layer cost proportional to output MB
                             (allocation, tensor bookkeeping)
    ``per_image_us``         per-input host cost (feeding, per-image
                             bookkeeping) — caps tiny models' throughput
    ``launch_us``            host cost of one kernel launch (cudaLaunchKernel)
    ``run_fixed_us``         fixed per-prediction cost (session dispatch).
                             The MXNet-like framework's extra overhead is
                             per-LAYER (dependency-engine scheduling), which
                             reproduces the paper's Sec. IV-B finding: deep
                             ResNets are 1.3-1.8x slower online on MXNet
                             (many layers) while shallow MobileNets are at
                             parity
    """

    layer_fixed_us: float
    layer_per_mb_us: float
    launch_us: float
    run_fixed_us: float
    per_image_us: float = 0.0


HOST_CALIBRATION: dict[str, HostCalibration] = {
    "tensorflow_like": HostCalibration(
        layer_fixed_us=3.0, layer_per_mb_us=0.45, launch_us=2.6,
        run_fixed_us=400.0, per_image_us=6.0,
    ),
    "mxnet_like": HostCalibration(
        layer_fixed_us=14.0, layer_per_mb_us=0.55, launch_us=2.8,
        run_fixed_us=500.0, per_image_us=7.0,
    ),
}


@dataclass(frozen=True)
class ProfilingCalibration:
    """Cost of profiling itself (drives leveled experimentation, Fig. 2).

    ``framework_layer_us``   framework-profiler cost per layer record
                             (Fig. 2: 157 ms over 234 layers at batch 256
                             -> ~670 us/layer; the cost scales with the
                             per-layer allocation bookkeeping)
    ``cupti_kernel_us``      CUPTI activity/callback cost per kernel
                             (Fig. 2: 0.24 ms over 3 kernels -> 80 us)
    ``metric_pass_us``       per-kernel fixed cost of one metric replay pass
    ``replay_passes``        replay passes required per metric group; DRAM
                             byte counters are the expensive ones (paper:
                             memory metrics can slow execution >100x)
    """

    framework_layer_us: float = 670.0
    cupti_kernel_us: float = 80.0
    metric_pass_us: float = 30.0
    replay_passes: dict[str, int] | None = None

    def passes_for(self, metric: str) -> int:
        table = self.replay_passes or DEFAULT_METRIC_PASSES
        return table.get(metric, 1)


#: Replay passes per supported GPU metric. flop counts and occupancy come
#: from always-on counters (1 pass); DRAM traffic needs many replay passes.
DEFAULT_METRIC_PASSES: dict[str, int] = {
    "flop_count_sp": 1,
    "achieved_occupancy": 1,
    "dram_read_bytes": 24,
    "dram_write_bytes": 24,
}

PROFILING_CALIBRATION = ProfilingCalibration()
