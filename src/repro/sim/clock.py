"""Virtual time.

Every latency in this reproduction is deterministic virtual time measured
in integer nanoseconds.  The host (framework) owns one clock; device
streams keep their own timelines and synchronize with the host clock at
CUDA synchronization points, mirroring how asynchronous GPU execution
relates to host wall-clock time.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual clock with nanosecond resolution."""

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = int(start_ns)

    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    def advance(self, delta_ns: float) -> int:
        """Advance by ``delta_ns`` (>= 0) nanoseconds; returns the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta_ns}")
        self._now_ns += int(round(delta_ns))
        return self._now_ns

    def advance_us(self, delta_us: float) -> int:
        return self.advance(delta_us * 1e3)

    def advance_ms(self, delta_ms: float) -> int:
        return self.advance(delta_ms * 1e6)

    def advance_to(self, timestamp_ns: int) -> int:
        """Move forward to ``timestamp_ns`` if it is in the future."""
        if timestamp_ns > self._now_ns:
            self._now_ns = int(timestamp_ns)
        return self._now_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now_ns} ns)"
