"""GPU kernel descriptors and the roofline-derived latency model.

A :class:`KernelSpec` captures everything the device model needs to execute
a kernel in virtual time: its name, class, flop count, DRAM traffic, and
grid geometry.  Kernel duration follows the roofline model the paper itself
uses for analysis (Sec. III-D3):

    t = max( flops / (peak_flops * eff_c * u),  bytes / (bw * eff_m * u) ) + fixed

where ``u`` is a utilization factor that rises with the number of CTA waves
the kernel puts on the machine — small problems (small batches) underutilize
the GPU, which is what makes throughput saturate near the optimal batch
size (Fig. 3) and achieved occupancy rise with batch size (Table VI).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.sim.calibration import (
    CLASS_CALIBRATION,
    MAX_COMPUTE_EFFICIENCY,
    ClassCalibration,
)
from repro.sim.hardware import GPUSpec


class KernelClass(enum.Enum):
    """Behavioural class of a GPU kernel; selects calibration constants."""

    CONV_IMPLICIT_GEMM = "conv_implicit_gemm"
    CONV_PRECOMP_GEMM = "conv_precomp_gemm"
    CONV_CGEMM = "conv_cgemm"
    CONV_DEPTHWISE = "conv_depthwise"
    GEMM = "gemm"
    ELEMENTWISE_EIGEN = "elementwise_eigen"
    ELEMENTWISE_MAX = "elementwise_max"
    ELEMENTWISE_MSHADOW = "elementwise_mshadow"
    BATCHNORM_FUSED = "batchnorm_fused"
    POOL = "pool"
    REDUCTION = "reduction"
    MEMORY_MOVEMENT = "memory_movement"
    WHERE_OP = "where_op"

    @property
    def calibration(self) -> ClassCalibration:
        return CLASS_CALIBRATION[self.value]

    @property
    def is_conv(self) -> bool:
        return self in (
            KernelClass.CONV_IMPLICIT_GEMM,
            KernelClass.CONV_PRECOMP_GEMM,
            KernelClass.CONV_CGEMM,
            KernelClass.CONV_DEPTHWISE,
        )


@dataclass(frozen=True)
class KernelSpec:
    """Immutable description of one GPU kernel invocation."""

    name: str
    klass: KernelClass
    flops: float
    dram_read_bytes: float
    dram_write_bytes: float
    #: Total CTAs (thread blocks) launched; drives utilization/occupancy.
    blocks: int
    threads_per_block: int = 256
    #: Kernel-specific compute-efficiency scale (e.g. narrow-GEMM penalty).
    eff_scale: float = 1.0
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_read_bytes < 0 or self.dram_write_bytes < 0:
            raise ValueError(f"kernel {self.name!r}: negative work is invalid")
        if self.blocks < 1:
            raise ValueError(f"kernel {self.name!r}: needs at least one block")

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """flops per DRAM byte (paper's kernel AI definition)."""
        if self.dram_bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.dram_bytes

    def with_tags(self, **tags: Any) -> "KernelSpec":
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    @property
    def grid(self) -> tuple[int, int, int]:
        return (self.blocks, 1, 1)

    @property
    def block(self) -> tuple[int, int, int]:
        return (self.threads_per_block, 1, 1)


def _waves(spec: KernelSpec, gpu: GPUSpec) -> float:
    """CTA waves: launched CTAs / concurrently resident CTA capacity.

    Residency is occupancy-limited: fat CTAs (registers/shared memory caps
    modelled by the class's ``occ_cap``) allow fewer concurrent CTAs per
    SM, so a modest grid can already constitute several waves.
    """
    cal = spec.klass.calibration
    ctas_per_sm = max(
        1.0, cal.occ_cap * gpu.max_threads_per_sm / spec.threads_per_block
    )
    return spec.blocks / (gpu.sm_count * ctas_per_sm)


def utilization(spec: KernelSpec, gpu: GPUSpec) -> float:
    """Saturating utilization in (0, 1]: max(floor, w / (w + w_half))."""
    cal = spec.klass.calibration
    w = _waves(spec, gpu)
    return max(cal.util_floor, w / (w + cal.waves_half))


def achieved_occupancy(spec: KernelSpec, gpu: GPUSpec) -> float:
    """Achieved occupancy: class ceiling scaled by launch utilization.

    Matches the paper's observation that occupancy is class-dependent
    (conv ~13-23%, Eigen mul/add ~50%, ReLU ~98%) and rises with batch
    size as more CTAs are put in flight (Table VI).  A floor of 30% of
    the class ceiling models the residual per-SM warp parallelism even
    tiny grids retain.
    """
    cal = spec.klass.calibration
    w = _waves(spec, gpu)
    ramp = max(0.30, w / (w + 0.45))
    occ = cal.occ_cap * ramp
    return max(0.005, min(occ, cal.occ_cap))


def _deterministic_jitter(spec: KernelSpec, gpu: GPUSpec, run_index: int) -> float:
    """Multiplicative jitter in [-1%, +1%], deterministic per (kernel, run).

    Real measurements vary run to run; the analysis pipeline computes
    trimmed means across runs (Sec. III-D), so the simulator produces
    stable, seedable run-to-run variation for that machinery to chew on.
    """
    key = f"{gpu.name}|{spec.name}|{spec.flops}|{spec.dram_bytes}|{run_index}"
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    unit = int.from_bytes(digest, "little") / 2**64  # [0, 1)
    return 1.0 + (unit - 0.5) * 0.02


def kernel_duration_ns(
    spec: KernelSpec, gpu: GPUSpec, *, run_index: int = 0
) -> int:
    """Roofline-derived kernel duration in virtual nanoseconds."""
    cal = spec.klass.calibration
    u = utilization(spec, gpu)
    t_compute = 0.0
    if spec.flops > 0:
        eff = min(cal.eff_compute * u, MAX_COMPUTE_EFFICIENCY) * spec.eff_scale
        t_compute = spec.flops / (gpu.peak_flops * eff)
    t_memory = 0.0
    if spec.dram_bytes > 0:
        # Small transfers never reach streaming bandwidth (DRAM page
        # overheads, kernel ramp-up): effectiveness scales in with the
        # transfer size, floored so sub-megabyte kernels stay O(fixed).
        # This is part of what caps tiny models' throughput.
        size_eff = max(0.30, spec.dram_bytes / (spec.dram_bytes + 0.35e6))
        t_memory = spec.dram_bytes / (
            gpu.memory_bandwidth * cal.eff_memory * size_eff * u
        )
    # GEMM-style kernels hide (most of) their DRAM time behind compute.
    seconds = max(t_compute, t_memory * (1.0 - cal.memory_overlap))
    jitter = _deterministic_jitter(spec, gpu, run_index)
    return max(1, int(round((seconds * 1e9 + cal.fixed_ns) * jitter)))


def effective_throughput_tflops(spec: KernelSpec, duration_ns: int) -> float:
    """Arithmetic throughput achieved by one kernel execution (Tflops/s)."""
    if duration_ns <= 0:
        return 0.0
    return spec.flops / (duration_ns / 1e9) / 1e12


def is_memory_bound(spec: KernelSpec, gpu: GPUSpec) -> bool:
    """Paper's roofline rule: AI below the device's ideal AI => memory-bound."""
    return spec.arithmetic_intensity < gpu.ideal_arithmetic_intensity
