"""CUDA-runtime-like execution API.

Frameworks launch kernels through :class:`CudaRuntime`.  A launch is a
host-side API call (``cudaLaunchKernel``) that costs a few microseconds on
the host clock and enqueues the kernel onto an in-order stream; the kernel
then executes asynchronously on the device timeline.  Synchronization
points advance the host clock to the device completion time.

``CUDA_LAUNCH_BLOCKING=1`` — honoured via the ``environment`` mapping, as
the paper does "by specifying environment variables without modifications
to the application" — makes every launch synchronous, serializing parallel
events so XSP can disambiguate span parentage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.sim.clock import VirtualClock
from repro.sim.hardware import GPUSpec
from repro.sim.kernels import KernelSpec, kernel_duration_ns
from repro.sim.memory import DeviceMemoryPool
from repro.sim.stream import Stream, StreamRecord

#: Effective host<->device copy bandwidth (bytes/s). Frameworks use
#: pinned, staged, overlapped transfers; the paper's Fig. 2 shows the
#: batch-256 Data layer taking ~1.2 ms for a ~154 MB input.
_PCIE_BANDWIDTH = 120e9
_MEMCPY_FIXED_NS = 9_000
#: Default host cost of the cudaLaunchKernel API call itself.
_DEFAULT_LAUNCH_NS = 2_600


@dataclass
class KernelLaunchRecord:
    """Everything known about one kernel launch + execution."""

    correlation_id: int
    spec: KernelSpec
    stream_id: int
    #: Host-side cudaLaunchKernel API interval.
    api_start_ns: int
    api_end_ns: int
    #: Device-side execution interval (single clean pass).
    device_start_ns: int
    device_end_ns: int
    #: Device time the stream is actually occupied until (>= device_end_ns
    #: when profiling replays the kernel for metric collection).
    device_busy_until_ns: int

    @property
    def duration_ns(self) -> int:
        return self.device_end_ns - self.device_start_ns


@dataclass
class MemcpyRecord:
    """One host<->device copy."""

    correlation_id: int
    kind: str  # "h2d" | "d2h" | "d2d"
    nbytes: int
    start_ns: int
    end_ns: int


class CudaRuntime:
    """Virtual-time CUDA runtime bound to one GPU and one host clock."""

    def __init__(
        self,
        gpu: GPUSpec,
        clock: VirtualClock | None = None,
        *,
        environment: Mapping[str, str] | None = None,
        run_index: int = 0,
        launch_overhead_ns: int = _DEFAULT_LAUNCH_NS,
    ) -> None:
        self.gpu = gpu
        self.clock = clock if clock is not None else VirtualClock()
        self.environment = dict(environment or {})
        self.run_index = run_index
        self.launch_overhead_ns = launch_overhead_ns
        self.memory = DeviceMemoryPool(capacity_bytes=int(gpu.dram_gb * 2**30))
        self._streams: dict[int, Stream] = {}
        self._stream_counter = itertools.count(1)
        self._correlation = itertools.count(1)
        self.launch_records: list[KernelLaunchRecord] = []
        self.memcpy_records: list[MemcpyRecord] = []
        # Profiler hooks (CUPTI subscribes here).
        self._launch_callbacks: list[Callable[[KernelLaunchRecord], None]] = []
        self._memcpy_callbacks: list[Callable[[MemcpyRecord], None]] = []
        #: Extra host-side cost per launch added by an attached profiler.
        self.profiler_launch_overhead_ns: int = 0
        #: Kernel replay passes required by metric collection (1 = no replay).
        self.profiler_replay_passes: int = 1
        #: Fixed per-pass device cost added by metric collection.
        self.profiler_pass_overhead_ns: int = 0

    # -- configuration ------------------------------------------------------
    @property
    def launch_blocking(self) -> bool:
        """True when CUDA_LAUNCH_BLOCKING=1 is set in the environment."""
        return self.environment.get("CUDA_LAUNCH_BLOCKING", "0") == "1"

    def default_stream(self) -> Stream:
        return self.stream(0)

    def stream(self, stream_id: int) -> Stream:
        if stream_id not in self._streams:
            self._streams[stream_id] = Stream(stream_id=stream_id)
        return self._streams[stream_id]

    def create_stream(self) -> Stream:
        return self.stream(next(self._stream_counter))

    @property
    def streams(self) -> list[Stream]:
        return list(self._streams.values())

    def on_launch(self, callback: Callable[[KernelLaunchRecord], None]) -> None:
        """Register a profiler callback invoked after every kernel launch."""
        self._launch_callbacks.append(callback)

    def on_memcpy(self, callback: Callable[[MemcpyRecord], None]) -> None:
        """Register a profiler callback invoked after every memcpy."""
        self._memcpy_callbacks.append(callback)

    # -- kernel launch -------------------------------------------------------
    def launch_kernel(self, spec: KernelSpec, stream_id: int = 0) -> KernelLaunchRecord:
        """Launch a kernel asynchronously; returns its combined record."""
        stream = self.stream(stream_id)
        api_start = self.clock.now()
        self.clock.advance(self.launch_overhead_ns + self.profiler_launch_overhead_ns)
        api_end = self.clock.now()

        clean_ns = kernel_duration_ns(spec, self.gpu, run_index=self.run_index)
        busy_ns = (
            clean_ns * self.profiler_replay_passes
            + self.profiler_pass_overhead_ns * max(0, self.profiler_replay_passes - 1)
        )
        correlation_id = next(self._correlation)
        stream_record: StreamRecord = stream.enqueue(
            spec, correlation_id, enqueue_ns=api_end, duration_ns=busy_ns
        )
        record = KernelLaunchRecord(
            correlation_id=correlation_id,
            spec=spec,
            stream_id=stream_id,
            api_start_ns=api_start,
            api_end_ns=api_end,
            device_start_ns=stream_record.start_ns,
            device_end_ns=stream_record.start_ns + clean_ns,
            device_busy_until_ns=stream_record.end_ns,
        )
        self.launch_records.append(record)
        if self.launch_blocking:
            self.clock.advance_to(stream_record.end_ns)
        for cb in self._launch_callbacks:
            cb(record)
        return record

    # -- synchronization ----------------------------------------------------
    def stream_synchronize(self, stream_id: int = 0) -> int:
        """Block the host until the stream drains; returns host time."""
        stream = self.stream(stream_id)
        return self.clock.advance_to(stream.next_free_ns)

    def device_synchronize(self) -> int:
        """Block the host until all streams drain."""
        latest = max((s.next_free_ns for s in self._streams.values()), default=0)
        return self.clock.advance_to(latest)

    # -- memory ------------------------------------------------------------
    def memcpy(self, nbytes: int, kind: str = "h2d") -> MemcpyRecord:
        """Blocking host<->device copy over PCIe (d2d uses DRAM bandwidth)."""
        if kind not in ("h2d", "d2h", "d2d"):
            raise ValueError(f"unknown memcpy kind {kind!r}")
        bandwidth = self.gpu.memory_bandwidth if kind == "d2d" else _PCIE_BANDWIDTH
        start = self.clock.now()
        self.clock.advance(_MEMCPY_FIXED_NS + nbytes / bandwidth * 1e9)
        record = MemcpyRecord(
            correlation_id=next(self._correlation),
            kind=kind,
            nbytes=nbytes,
            start_ns=start,
            end_ns=self.clock.now(),
        )
        self.memcpy_records.append(record)
        for cb in self._memcpy_callbacks:
            cb(record)
        return record

    # -- bookkeeping ---------------------------------------------------------
    def reset(self) -> None:
        """Clear all execution state, keeping configuration."""
        for s in self._streams.values():
            s.reset()
        self.launch_records.clear()
        self.memcpy_records.clear()
        self.memory.free_all()

    def gpu_busy_ns(self) -> int:
        """Total device-occupied nanoseconds across streams."""
        return sum(s.busy_ns for s in self._streams.values())

    def summary(self) -> dict[str, Any]:
        return {
            "gpu": self.gpu.name,
            "kernels": len(self.launch_records),
            "memcpys": len(self.memcpy_records),
            "gpu_busy_ms": self.gpu_busy_ns() / 1e6,
            "host_now_ms": self.clock.now() / 1e6,
        }
