"""Simulated HW/SW substrate.

The paper evaluates XSP on physical NVIDIA GPUs through CUDA, CUPTI, cuDNN,
cuBLAS and Eigen.  This package provides deterministic virtual-time
equivalents of each of those components (see DESIGN.md, "Substitutions"):

* :mod:`repro.sim.clock`      — virtual nanosecond clock
* :mod:`repro.sim.hardware`   — the 5 GPU systems of Table VII
* :mod:`repro.sim.kernels`    — roofline-derived kernel latency/occupancy model
* :mod:`repro.sim.stream`     — in-order CUDA stream timelines
* :mod:`repro.sim.memory`     — device memory pool
* :mod:`repro.sim.cuda`       — CUDA-runtime-like launch/sync API
* :mod:`repro.sim.cupti`      — CUPTI-like callback/activity/metric APIs
* :mod:`repro.sim.cudnn`      — cuDNN-like algorithm selection + kernels
* :mod:`repro.sim.cublas`     — GEMM kernels
* :mod:`repro.sim.eigen`      — Eigen-like element-wise kernels (TF path)
* :mod:`repro.sim.mshadow`    — mshadow-like element-wise kernels (MXNet path)
"""

from repro.sim.clock import VirtualClock
from repro.sim.hardware import GPUSpec, SYSTEMS, get_system, Architecture
from repro.sim.kernels import KernelClass, KernelSpec, kernel_duration_ns, achieved_occupancy
from repro.sim.stream import Stream
from repro.sim.memory import DeviceMemoryPool
from repro.sim.cuda import CudaRuntime, KernelLaunchRecord
from repro.sim.cupti import Cupti, ActivityRecord, ApiRecord

__all__ = [
    "ActivityRecord",
    "ApiRecord",
    "Architecture",
    "Cupti",
    "CudaRuntime",
    "DeviceMemoryPool",
    "GPUSpec",
    "KernelClass",
    "KernelLaunchRecord",
    "KernelSpec",
    "SYSTEMS",
    "Stream",
    "VirtualClock",
    "achieved_occupancy",
    "get_system",
    "kernel_duration_ns",
]
