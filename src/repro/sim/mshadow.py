"""mshadow-like element-wise kernels (the MXNet execution path).

MXNet dispatches element-wise work to its own mshadow/operator kernels
rather than Eigen.  Per the paper's framework evaluation (Sec. IV-B), the
MXNet kernels perform *fewer* DRAM accesses than TensorFlow's Eigen ones
and achieve higher occupancy, which is why MXNet MobileNets reach 35-74%
higher maximum throughput — the traffic factors below are correspondingly
leaner than :mod:`repro.sim.eigen`'s.

MXNet also keeps batch norm as a single fused inference kernel instead of
decomposing it into Mul/Add, halving the element-wise kernel count.
"""

from __future__ import annotations

from repro.sim.kernels import KernelClass, KernelSpec

_F32 = 4

#: Traffic volume is close to Eigen's (Table X reports similar DRAM
#: totals); the mshadow advantage is *effective bandwidth* via higher
#: occupancy (ClassCalibration eff_memory 0.55 vs Eigen 0.42).
_READ_FACTOR = 0.36
_WRITE_FACTOR = 0.50


def _elementwise_kernel(
    name: str,
    elems: int,
    *,
    flops_per_elem: float,
    n_inputs: int = 1,
    klass: KernelClass = KernelClass.ELEMENTWISE_MSHADOW,
) -> KernelSpec:
    if elems < 1:
        raise ValueError(f"element-wise kernel needs elems >= 1, got {elems}")
    in_bytes = n_inputs * elems * _F32
    out_bytes = elems * _F32
    return KernelSpec(
        name=name,
        klass=klass,
        flops=flops_per_elem * elems,
        dram_read_bytes=_READ_FACTOR * in_bytes,
        dram_write_bytes=_WRITE_FACTOR * out_bytes,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
        tags={"library": "mshadow"},
    )


def batchnorm_inference_kernel(elems: int) -> KernelSpec:
    """Fused BN inference: scale + shift in one pass (2 flops/element).

    One fused kernel instead of TF's Mul + Add pair; per-tensor traffic is
    higher than a single element-wise op (statistics reads, NHWC staging)
    but lower than the pair, per Table X's similar DRAM totals.
    """
    in_bytes = elems * _F32
    out_bytes = elems * _F32
    return KernelSpec(
        name="mxnet::op::BatchNormInferenceKernel",
        klass=KernelClass.BATCHNORM_FUSED,
        flops=2.0 * elems,
        dram_read_bytes=0.80 * in_bytes,
        dram_write_bytes=1.00 * out_bytes,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
        tags={"library": "mshadow"},
    )


def relu_kernel(elems: int) -> KernelSpec:
    """ReLU forward; comparisons count 0 flops (matches Table IV)."""
    return _elementwise_kernel(
        "mxnet::op::mxnet_op::ReluKernel", elems, flops_per_elem=0.0
    )


def add_kernel(elems: int, n_inputs: int = 2) -> KernelSpec:
    """Residual element-wise sum."""
    return _elementwise_kernel(
        "mxnet::op::ElementWiseSumKernel",
        elems,
        flops_per_elem=float(max(1, n_inputs - 1)),
        n_inputs=n_inputs,
    )


def multiply_kernel(elems: int) -> KernelSpec:
    return _elementwise_kernel(
        "mxnet::op::ElementWiseMulKernel", elems, flops_per_elem=1.0
    )


def bias_add_kernel(elems: int) -> KernelSpec:
    return _elementwise_kernel(
        "mxnet::op::BiasAddKernel", elems, flops_per_elem=1.0
    )


def sigmoid_kernel(elems: int) -> KernelSpec:
    return _elementwise_kernel(
        "mxnet::op::SigmoidKernel", elems, flops_per_elem=4.0
    )
