"""CUDA stream model: an in-order device execution timeline.

Work items enqueued on a stream execute back-to-back in enqueue order; a
kernel's device start time is the later of its host launch completion and
the stream becoming free.  This is the asynchrony XSP's launch/execution
span pairs capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.kernels import KernelSpec


@dataclass
class StreamRecord:
    """One executed work item on a stream."""

    spec: KernelSpec
    correlation_id: int
    enqueue_ns: int
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class Stream:
    """An in-order execution queue on the device."""

    stream_id: int
    #: Device time at which the stream next becomes free.
    next_free_ns: int = 0
    records: list[StreamRecord] = field(default_factory=list)

    def enqueue(
        self,
        spec: KernelSpec,
        correlation_id: int,
        enqueue_ns: int,
        duration_ns: int,
    ) -> StreamRecord:
        """Schedule a kernel; returns its device-time record."""
        start = max(enqueue_ns, self.next_free_ns)
        end = start + duration_ns
        record = StreamRecord(
            spec=spec,
            correlation_id=correlation_id,
            enqueue_ns=enqueue_ns,
            start_ns=start,
            end_ns=end,
        )
        self.records.append(record)
        self.next_free_ns = end
        return record

    @property
    def busy_ns(self) -> int:
        """Total device time occupied by this stream's work."""
        return sum(r.duration_ns for r in self.records)

    def pending_after(self, timestamp_ns: int) -> list[StreamRecord]:
        """Records still executing or queued at ``timestamp_ns``."""
        return [r for r in self.records if r.end_ns > timestamp_ns]

    def reset(self) -> None:
        self.records.clear()
        self.next_free_ns = 0
