"""Eigen-like element-wise kernels (the TensorFlow execution path).

TensorFlow dispatches element-wise layers (Mul/Add/Relu/BiasAdd/AddN) to
Eigen tensor kernels.  The paper's framework comparison (Sec. IV-B) finds
that "the Eigen library ... incurs excessive DRAM reads and writes", which
becomes the performance-limiting factor for memory-bound models; the
traffic factors here are correspondingly higher than the mshadow ones
(:mod:`repro.sim.mshadow`).

Kernel names mirror the mangled Eigen functor names the paper reports in
Table IV (``Eigen::TensorCwiseBinaryOp<scalar_product_op>`` etc.).  Note
that ReLU (``scalar_max_op``) performs comparisons, not floating-point
arithmetic — Table IV reports 0 flops for it — and runs at ~98% occupancy.
"""

from __future__ import annotations

from repro.sim.kernels import KernelClass, KernelSpec

_F32 = 4

#: Effective DRAM traffic per logical input/output byte (after L2).
#: Calibrated against Table IV: 52 product ops move ~10.5 GB over tensors
#: totalling ~9.5 GB at batch 256.
_READ_FACTOR = 0.36
_WRITE_FACTOR = 0.50


def _binary_kernel(
    functor: str,
    klass: KernelClass,
    elems: int,
    *,
    flops_per_elem: float,
    n_inputs: int = 1,
) -> KernelSpec:
    """One TensorCwiseBinaryOp-style kernel over ``elems`` elements.

    ``n_inputs`` counts full-size input tensors (a broadcast scalar/vector
    operand contributes negligible traffic and is ignored).
    """
    if elems < 1:
        raise ValueError(f"element-wise kernel needs elems >= 1, got {elems}")
    in_bytes = n_inputs * elems * _F32
    out_bytes = elems * _F32
    return KernelSpec(
        name=f"Eigen::TensorCwiseBinaryOp<{functor}>",
        klass=klass,
        flops=flops_per_elem * elems,
        dram_read_bytes=_READ_FACTOR * in_bytes,
        dram_write_bytes=_WRITE_FACTOR * out_bytes,
        blocks=max(1, elems // 1024),
        threads_per_block=1024,
        tags={"library": "eigen"},
    )


def multiply_kernel(elems: int) -> KernelSpec:
    """Element-wise multiply (BN scale in TF's decomposed batch norm)."""
    return _binary_kernel(
        "scalar_product_op", KernelClass.ELEMENTWISE_EIGEN, elems, flops_per_elem=1.0
    )


def add_kernel(elems: int) -> KernelSpec:
    """Element-wise add (BN shift / BiasAdd)."""
    return _binary_kernel(
        "scalar_sum_op", KernelClass.ELEMENTWISE_EIGEN, elems, flops_per_elem=1.0
    )


def max_kernel(elems: int) -> KernelSpec:
    """Element-wise max-with-zero (ReLU). Comparisons count 0 flops."""
    return _binary_kernel(
        "scalar_max_op", KernelClass.ELEMENTWISE_MAX, elems, flops_per_elem=0.0
    )


def addn_kernel(elems: int, n_inputs: int = 2) -> KernelSpec:
    """N-ary tensor sum (residual skip connections)."""
    if n_inputs < 2:
        raise ValueError(f"AddN needs >= 2 inputs, got {n_inputs}")
    spec = _binary_kernel(
        "scalar_sum_op",
        KernelClass.ELEMENTWISE_EIGEN,
        elems,
        flops_per_elem=float(n_inputs - 1),
        n_inputs=n_inputs,
    )
    return KernelSpec(
        name="Eigen::TensorCwiseBinaryOp<scalar_sum_op>[AddN]",
        klass=spec.klass,
        flops=spec.flops,
        dram_read_bytes=spec.dram_read_bytes,
        dram_write_bytes=spec.dram_write_bytes,
        blocks=spec.blocks,
        threads_per_block=spec.threads_per_block,
        tags=dict(spec.tags),
    )


def sigmoid_kernel(elems: int) -> KernelSpec:
    """Element-wise logistic (used by SSD heads / SRGAN)."""
    return _binary_kernel(
        "scalar_logistic_op", KernelClass.ELEMENTWISE_EIGEN, elems, flops_per_elem=4.0
    )


def tanh_kernel(elems: int) -> KernelSpec:
    return _binary_kernel(
        "scalar_tanh_op", KernelClass.ELEMENTWISE_EIGEN, elems, flops_per_elem=4.0
    )


def relu6_kernel(elems: int) -> KernelSpec:
    """Clipped ReLU used by MobileNet (two comparisons, 0 flops)."""
    spec = _binary_kernel(
        "scalar_max_op", KernelClass.ELEMENTWISE_MAX, elems, flops_per_elem=0.0
    )
    return KernelSpec(
        name="Eigen::TensorCwiseBinaryOp<scalar_clamp_op>",
        klass=spec.klass,
        flops=0.0,
        dram_read_bytes=spec.dram_read_bytes,
        dram_write_bytes=spec.dram_write_bytes,
        blocks=spec.blocks,
        threads_per_block=spec.threads_per_block,
        tags=dict(spec.tags),
    )
