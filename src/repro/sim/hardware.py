"""GPU hardware catalog — the five systems of Table VII.

Theoretical FLOPS and memory bandwidth are taken verbatim from the paper;
the ideal arithmetic intensity (peak FLOPS / bandwidth) therefore matches
Table VII's last column.  SM counts and per-SM thread capacity follow the
public NVIDIA datasheets and only influence the occupancy/efficiency
scaling of the kernel latency model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Architecture(enum.Enum):
    """GPU generations covered by the paper's evaluation."""

    TURING = "turing"
    VOLTA = "volta"
    PASCAL = "pascal"
    MAXWELL = "maxwell"

    @property
    def kernel_prefix(self) -> str:
        """Prefix cuDNN uses when naming SGEMM-style kernels for this arch.

        Paper Sec. IV-C: Volta and Turing invoke ``volta_scudnn_*`` kernels
        while Pascal and Maxwell systems invoke ``maxwell_scudnn_*`` ones —
        cuDNN ships optimized kernels only for generations >= Volta.
        """
        if self in (Architecture.TURING, Architecture.VOLTA):
            return "volta"
        return "maxwell"


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU system (one row of Table VII)."""

    name: str
    cpu: str
    gpu: str
    architecture: Architecture
    peak_tflops: float
    memory_bandwidth_gbps: float
    sm_count: int
    max_threads_per_sm: int = 2048
    l2_cache_mb: float = 6.0
    dram_gb: float = 16.0
    #: Number of hardware performance counters available concurrently;
    #: metrics needing more are collected via kernel replay (Sec. III-C).
    hw_counters: int = 8

    @property
    def peak_flops(self) -> float:
        """Peak single-precision throughput in flops/s."""
        return self.peak_tflops * 1e12

    @property
    def memory_bandwidth(self) -> float:
        """Global memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def ideal_arithmetic_intensity(self) -> float:
        """peak FLOPS / memory bandwidth, in flops/byte (Table VII)."""
        return self.peak_flops / self.memory_bandwidth

    @property
    def max_resident_threads(self) -> int:
        return self.sm_count * self.max_threads_per_sm


#: The five evaluation systems (Table VII).  Keyed by the paper's names.
SYSTEMS: dict[str, GPUSpec] = {
    "Quadro_RTX": GPUSpec(
        name="Quadro_RTX",
        cpu="Intel Xeon E5-2630 v4 @ 2.20GHz",
        gpu="Quadro RTX 6000",
        architecture=Architecture.TURING,
        peak_tflops=16.3,
        memory_bandwidth_gbps=624.0,
        sm_count=72,
        max_threads_per_sm=1024,
        l2_cache_mb=6.0,
        dram_gb=24.0,
    ),
    "Tesla_V100": GPUSpec(
        name="Tesla_V100",
        cpu="Intel Xeon E5-2686 v4 @ 2.30GHz",
        gpu="Tesla V100-SXM2-16GB",
        architecture=Architecture.VOLTA,
        peak_tflops=15.7,
        memory_bandwidth_gbps=900.0,
        sm_count=80,
        max_threads_per_sm=2048,
        l2_cache_mb=6.0,
        dram_gb=16.0,
    ),
    "Tesla_P100": GPUSpec(
        name="Tesla_P100",
        cpu="Intel Xeon E5-2682 v4 @ 2.50GHz",
        gpu="Tesla P100-PCIE-16GB",
        architecture=Architecture.PASCAL,
        peak_tflops=9.3,
        memory_bandwidth_gbps=732.0,
        sm_count=56,
        max_threads_per_sm=2048,
        l2_cache_mb=4.0,
        dram_gb=16.0,
    ),
    "Tesla_P4": GPUSpec(
        name="Tesla_P4",
        cpu="Intel Xeon E5-2682 v4 @ 2.50GHz",
        gpu="Tesla P4",
        architecture=Architecture.PASCAL,
        peak_tflops=5.5,
        memory_bandwidth_gbps=192.0,
        sm_count=20,
        max_threads_per_sm=2048,
        l2_cache_mb=2.0,
        dram_gb=8.0,
    ),
    "Tesla_M60": GPUSpec(
        name="Tesla_M60",
        cpu="Intel Xeon E5-2686 v4 @ 2.30GHz",
        gpu="Tesla M60",
        architecture=Architecture.MAXWELL,
        peak_tflops=4.8,
        memory_bandwidth_gbps=160.0,
        sm_count=16,
        max_threads_per_sm=2048,
        l2_cache_mb=2.0,
        dram_gb=8.0,
    ),
}


def get_system(name: str) -> GPUSpec:
    """Look up one of the Table VII systems by its paper name."""
    try:
        return SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None
