"""Device memory pool with allocation tracking.

Frameworks allocate output tensors and workspaces per layer; the layer-level
profile reports per-layer allocated memory (paper Table II's "Alloc Mem"
column).  The pool tracks live bytes, peak usage, and an allocation log.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OutOfDeviceMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's DRAM capacity."""


@dataclass(frozen=True)
class Allocation:
    """One live device allocation."""

    alloc_id: int
    nbytes: int
    tag: str
    timestamp_ns: int


@dataclass
class AllocationEvent:
    """Log entry for an allocation or free."""

    kind: str  # "alloc" | "free"
    alloc_id: int
    nbytes: int
    tag: str
    timestamp_ns: int
    live_bytes_after: int


@dataclass
class DeviceMemoryPool:
    """Byte-accounting allocator for a simulated device."""

    capacity_bytes: int
    live_bytes: int = 0
    peak_bytes: int = 0
    _next_id: int = 1
    _live: dict[int, Allocation] = field(default_factory=dict)
    log: list[AllocationEvent] = field(default_factory=list)

    def alloc(self, nbytes: int, *, tag: str = "", timestamp_ns: int = 0) -> Allocation:
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes ({nbytes})")
        if self.live_bytes + nbytes > self.capacity_bytes:
            raise OutOfDeviceMemoryError(
                f"allocation of {nbytes} bytes (tag={tag!r}) exceeds device "
                f"capacity {self.capacity_bytes} (live={self.live_bytes})"
            )
        allocation = Allocation(
            alloc_id=self._next_id, nbytes=nbytes, tag=tag, timestamp_ns=timestamp_ns
        )
        self._next_id += 1
        self._live[allocation.alloc_id] = allocation
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.log.append(
            AllocationEvent(
                kind="alloc",
                alloc_id=allocation.alloc_id,
                nbytes=nbytes,
                tag=tag,
                timestamp_ns=timestamp_ns,
                live_bytes_after=self.live_bytes,
            )
        )
        return allocation

    def free(self, allocation: Allocation, *, timestamp_ns: int = 0) -> None:
        if allocation.alloc_id not in self._live:
            raise KeyError(f"allocation {allocation.alloc_id} is not live")
        del self._live[allocation.alloc_id]
        self.live_bytes -= allocation.nbytes
        self.log.append(
            AllocationEvent(
                kind="free",
                alloc_id=allocation.alloc_id,
                nbytes=allocation.nbytes,
                tag=allocation.tag,
                timestamp_ns=timestamp_ns,
                live_bytes_after=self.live_bytes,
            )
        )

    def free_all(self, *, timestamp_ns: int = 0) -> None:
        for allocation in list(self._live.values()):
            self.free(allocation, timestamp_ns=timestamp_ns)

    @property
    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def allocated_bytes_by_tag(self) -> dict[str, int]:
        """Total bytes ever allocated, grouped by tag (layer name)."""
        totals: dict[str, int] = {}
        for ev in self.log:
            if ev.kind == "alloc":
                totals[ev.tag] = totals.get(ev.tag, 0) + ev.nbytes
        return totals
