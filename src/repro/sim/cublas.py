"""cuBLAS-like GEMM kernels.

Fully-connected (dense/MatMul) layers dispatch to a single SGEMM kernel.
Kernel names follow the architecture prefix convention the paper observes
for cuDNN kernels (``volta_sgemm_*`` on Volta/Turing, ``maxwell_sgemm_*``
on Pascal/Maxwell).
"""

from __future__ import annotations

import math

from repro.sim.hardware import GPUSpec
from repro.sim.kernels import KernelClass, KernelSpec

_F32 = 4


def sgemm_kernel(
    m: int,
    n: int,
    k: int,
    gpu: GPUSpec,
    *,
    transpose: str = "nn",
) -> KernelSpec:
    """One C[m,n] = A[m,k] @ B[k,n] single-precision GEMM kernel.

    Effective DRAM traffic assumes tiled execution with L2 reuse: each
    operand is streamed roughly once when the working set exceeds L2.
    """
    if m < 1 or n < 1 or k < 1:
        raise ValueError(f"invalid GEMM shape m={m} n={n} k={k}")
    tile_m, tile_n = (128, 64) if m >= 128 else (32, 32)
    blocks = max(1, math.ceil(m / tile_m) * math.ceil(n / tile_n))
    a_bytes = m * k * _F32
    b_bytes = k * n * _F32
    c_bytes = m * n * _F32
    return KernelSpec(
        name=f"{gpu.architecture.kernel_prefix}_sgemm_{tile_m}x{tile_n}_{transpose}",
        klass=KernelClass.GEMM,
        flops=2.0 * m * n * k,
        dram_read_bytes=0.7 * (a_bytes + b_bytes),
        dram_write_bytes=1.0 * c_bytes,
        blocks=blocks,
        threads_per_block=256,
        tags={"library": "cublas", "m": m, "n": n, "k": k},
    )


def dense_layer_kernels(
    batch: int, in_features: int, out_features: int, gpu: GPUSpec
) -> list[KernelSpec]:
    """Kernels for a dense layer (GEMM; the bias add is a framework op)."""
    return [sgemm_kernel(batch, out_features, in_features, gpu)]
